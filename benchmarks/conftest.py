"""Shared fixtures for the benchmark harness.

The composite measurement (five workloads, §2.2) is simulated once per
session and shared by every table benchmark; each benchmark then times
its own data-reduction step and prints the regenerated table next to the
paper's published values.

Environment knobs:
    REPRO_BENCH_INSTRUCTIONS   measured instructions per workload
                               (default 60000)
    REPRO_BENCH_SEED           workload generation seed (default 1984)
    REPRO_BENCH_JOBS           worker processes for the five workloads
                               (default 1 = serial; results are
                               bit-identical either way)
"""

import os

import pytest

from repro.workloads.engine import standard_composite

BENCH_INSTRUCTIONS = int(os.environ.get("REPRO_BENCH_INSTRUCTIONS", 60000))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", 1984))
BENCH_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", 1))


@pytest.fixture(scope="session")
def composite_measurement():
    """The five-workload composite, simulated once per session."""
    return standard_composite(instructions=BENCH_INSTRUCTIONS,
                              seed=BENCH_SEED, jobs=BENCH_JOBS)


def emit(text: str) -> None:
    """Print a regenerated table (shown with pytest -s / captured o/w)."""
    print()
    print(text)
