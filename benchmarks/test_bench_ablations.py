"""Ablation benchmarks for the design choices DESIGN.md calls out.

Each ablation reruns one workload with one implementation parameter
changed and checks the predicted direction of the effect — these are the
"where performance may be improved, and where it may not" observations
of §5, made quantitative.
"""

import pytest

from repro.analysis import Measurement, section4, table8
from repro.cpu.machine import VAX780
from repro.osim.executive import Executive
from repro.params import VAX780 as STOCK
from repro.ucode.rows import Column
from repro.workloads.profiles import TIMESHARING_RESEARCH

ABLATION_INSTRUCTIONS = 15000


def run_config(params, seed=1984, instructions=ABLATION_INSTRUCTIONS):
    machine = VAX780(params)
    executive = Executive(machine, TIMESHARING_RESEARCH, seed=seed)
    executive.boot()
    executive.run(instructions)
    return Measurement.capture("ablation", machine)


@pytest.fixture(scope="module")
def stock_measurement():
    return run_config(STOCK)


def test_bench_ablation_cache_size(benchmark, stock_measurement):
    """Halving the cache raises miss rate and CPI; doubling lowers both."""
    small = benchmark.pedantic(
        run_config, args=(STOCK.with_overrides(cache_bytes=2 * 1024),),
        rounds=1, iterations=1)
    large = run_config(STOCK.with_overrides(cache_bytes=32 * 1024))

    stock_misses = section4(stock_measurement) \
        .cache_read_misses_per_instruction
    small_misses = section4(small).cache_read_misses_per_instruction
    large_misses = section4(large).cache_read_misses_per_instruction
    print(f"\ncache 2KB misses/instr {small_misses:.3f}  "
          f"8KB {stock_misses:.3f}  32KB {large_misses:.3f}")
    assert small_misses > stock_misses > large_misses

    cpi_small = table8(small).cycles_per_instruction
    cpi_stock = table8(stock_measurement).cycles_per_instruction
    cpi_large = table8(large).cycles_per_instruction
    print(f"CPI: 2KB {cpi_small:.2f}  8KB {cpi_stock:.2f}  "
          f"32KB {cpi_large:.2f}")
    assert cpi_small > cpi_large


def test_bench_ablation_tb_size(benchmark, stock_measurement):
    """A smaller TB misses more; the paper's flush-interval concern."""
    small = benchmark.pedantic(
        run_config, args=(STOCK.with_overrides(tb_entries=32),),
        rounds=1, iterations=1)
    stock_tb = section4(stock_measurement).tb_misses_per_instruction
    small_tb = section4(small).tb_misses_per_instruction
    print(f"\nTB misses/instr: 32-entry {small_tb:.4f}  "
          f"128-entry {stock_tb:.4f}")
    assert small_tb > stock_tb


def test_bench_ablation_write_buffer_depth(benchmark, stock_measurement):
    """A deeper write buffer removes most write stalls (§5 blames the
    one-longword buffer for the CALLS stall)."""
    deep = benchmark.pedantic(
        run_config, args=(STOCK.with_overrides(write_buffer_depth=4),),
        rounds=1, iterations=1)
    stock_ws = table8(stock_measurement).column_totals[Column.WSTALL]
    deep_ws = table8(deep).column_totals[Column.WSTALL]
    print(f"\nW-stall cycles/instr: depth 1 {stock_ws:.3f}  "
          f"depth 4 {deep_ws:.3f}")
    assert deep_ws < stock_ws


def test_bench_ablation_read_miss_penalty(benchmark, stock_measurement):
    """Doubling memory latency inflates R-stall roughly proportionally."""
    slow = benchmark.pedantic(
        run_config, args=(STOCK.with_overrides(read_miss_penalty=12),),
        rounds=1, iterations=1)
    stock_rs = table8(stock_measurement).column_totals[Column.RSTALL]
    slow_rs = table8(slow).column_totals[Column.RSTALL]
    print(f"\nR-stall cycles/instr: 6-cycle {stock_rs:.3f}  "
          f"12-cycle {slow_rs:.3f}")
    assert slow_rs > 1.5 * stock_rs


def test_bench_ablation_microcode_patches(benchmark, stock_measurement):
    """Removing the field-installed patches removes their abort cycles
    (the paper's Aborts row charges one cycle per executed patch)."""
    clean = benchmark.pedantic(
        run_config, args=(STOCK.with_overrides(patched_families=()),),
        rounds=1, iterations=1)
    from repro.ucode.rows import Row
    stock_aborts = table8(stock_measurement).row_totals[Row.ABORTS]
    clean_aborts = table8(clean).row_totals[Row.ABORTS]
    print(f"\nAborts cycles/instr: patched {stock_aborts:.3f}  "
          f"clean {clean_aborts:.3f}")
    assert clean_aborts < stock_aborts


def test_bench_ablation_larger_ib(benchmark, stock_measurement):
    """A 16-byte IB cannot hurt IB stalls (it mostly helps branch-free
    stretches; branch refills still pay the redirect latency)."""
    wide = benchmark.pedantic(
        run_config, args=(STOCK.with_overrides(ib_bytes=16),),
        rounds=1, iterations=1)
    stock_ib = table8(stock_measurement).column_totals[Column.IBSTALL]
    wide_ib = table8(wide).column_totals[Column.IBSTALL]
    print(f"\nIB-stall cycles/instr: 8-byte {stock_ib:.3f}  "
          f"16-byte {wide_ib:.3f}")
    assert wide_ib <= stock_ib * 1.1


def test_bench_simulator_throughput(benchmark):
    """Raw simulator speed: instructions simulated per second."""
    def short_run():
        machine = VAX780()
        executive = Executive(machine, TIMESHARING_RESEARCH, seed=7)
        executive.boot()
        executive.run(4000)
        return machine

    machine = benchmark.pedantic(short_run, rounds=2, iterations=1)
    assert machine.tracer.instructions >= 4000


def test_bench_ablation_overlapped_decode(benchmark, stock_measurement):
    """§5: "saving the non-overlapped I-Decode cycle could save one cycle
    on each non-PC-changing instruction. (The later VAX model 11/750 did
    exactly this.)"  The saving equals one cycle times the non-PC-changing
    fraction (~60-75% of instructions)."""
    overlapped = benchmark.pedantic(
        run_config, args=(STOCK.with_overrides(overlapped_decode=True),),
        rounds=1, iterations=1)
    # Overlapped dispatches are event counts, not cycles (see
    # machine.step), so compare wall-clock cycles per instruction.
    stock_cpi = stock_measurement.cycles \
        / stock_measurement.tracer.instructions
    fast_cpi = overlapped.cycles / overlapped.tracer.instructions
    saving = stock_cpi - fast_cpi
    print(f"\nCPI: non-overlapped {stock_cpi:.2f}  "
          f"overlapped (11/750-style) {fast_cpi:.2f}  "
          f"saving {saving:.2f} cycles/instr")
    assert 0.3 < saving < 1.3
