"""Figure 1 (block diagram) and the §4 implementation-event benchmarks."""

from repro.analysis import section4
from repro.cpu.machine import VAX780
from repro.report import paper
from repro.report.compare import within_factor
from repro.report.format import render_figure1, render_section4
from benchmarks.conftest import emit


def test_bench_figure1_block_diagram(benchmark):
    """Figure 1: construct the machine and render its topology."""
    machine = benchmark(VAX780)
    diagram = render_figure1(machine)
    emit(diagram)

    nodes, edges = machine.component_graph()
    # Figure 1's structure: the three pipeline stages plus the memory
    # subsystem components, wired as in the paper.
    assert set(nodes) >= {"I-Fetch", "Instruction Buffer", "I-Decode",
                          "EBOX", "Translation Buffer", "Cache",
                          "Write Buffer", "SBI", "Memory"}
    assert ("Translation Buffer", "Cache") in edges
    assert ("Cache", "SBI") in edges
    assert ("SBI", "Memory") in edges
    assert ("EBOX", "Write Buffer") in edges
    # Both reference streams translate through the TB.
    assert ("EBOX", "Translation Buffer") in edges
    assert ("I-Fetch", "Translation Buffer") in edges


def test_bench_section4_implementation_events(benchmark,
                                              composite_measurement):
    result = benchmark(section4, composite_measurement)
    emit(render_section4(result))

    ref = paper.SECTION4
    # IB behaviour (§4.1): repeated references deliver < 4 bytes each.
    assert within_factor(result.ib_references_per_instruction,
                         ref["ib_references_per_instruction"], 1.6)
    assert result.ib_bytes_per_reference < 4.0

    # TB misses (§4.2): D-stream misses dominate I-stream misses, and
    # the service routine costs ~21.6 cycles.
    assert result.tb_d_misses_per_instruction > \
        result.tb_i_misses_per_instruction
    assert within_factor(result.tb_misses_per_instruction,
                         ref["tb_misses_per_instruction"], 2.3)
    assert within_factor(result.tb_service_cycles,
                         ref["tb_service_cycles"], 1.4)
    assert 0 < result.tb_service_stall_cycles < 6

    # Cache misses: right order of magnitude (our runs are 10^5
    # instructions on synthetic programs, not hours of live load; see
    # EXPERIMENTS.md for the documented gap).
    assert 0.03 < result.cache_read_misses_per_instruction < 0.5

    # Unaligned references are rare (§3.3.1: 0.016 per instruction).
    assert result.unaligned_refs_per_instruction < 0.08
