"""End-to-end simulator throughput benchmark and perf-tool smoke test.

``test_bench_composite_throughput`` times a fresh (uncached) composite
and prints instructions/second and cycles/second — the same quantities
``tools/perf_bench.py`` records in ``BENCH_perf.json``.  The counted
cycles are asserted against the serial path so a throughput win can
never ride on a timing-model change.

Run with ``pytest benchmarks/test_bench_perf.py -s``.
"""

import json
import os
import subprocess
import sys
import time

from repro.workloads import engine

from .conftest import emit

PERF_INSTRUCTIONS = int(os.environ.get("REPRO_PERF_INSTRUCTIONS", 10_000))
PERF_SEED = 1984

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _fresh_composite():
    engine.clear_cache()
    return engine.standard_composite(instructions=PERF_INSTRUCTIONS,
                                          seed=PERF_SEED)


def test_bench_composite_throughput(benchmark):
    """Simulated instructions/second over the five-workload composite."""
    t0 = time.perf_counter()
    reference = _fresh_composite()
    reference_elapsed = time.perf_counter() - t0

    measurement = benchmark.pedantic(_fresh_composite, rounds=1,
                                     iterations=1)
    assert measurement.cycles == reference.cycles
    instructions = measurement.tracer.instructions
    assert instructions == 5 * PERF_INSTRUCTIONS

    rate = instructions / reference_elapsed
    emit(f"composite of 5 x {PERF_INSTRUCTIONS}: "
         f"{reference_elapsed:.2f}s  {rate:,.0f} instr/s  "
         f"{measurement.cycles / reference_elapsed:,.0f} cycles/s")
    assert rate > 1_000  # sanity floor, ~50x below observed


def test_perf_bench_tool_writes_json(tmp_path):
    """tools/perf_bench.py produces a well-formed BENCH_perf.json entry."""
    out = tmp_path / "BENCH_perf.json"
    result = subprocess.run(
        [sys.executable, os.path.join(REPO, "tools", "perf_bench.py"),
         "--instructions", "500", "--repeats", "1",
         "--label", "after", "--output", str(out)],
        capture_output=True, text=True, cwd=REPO)
    assert result.returncode == 0, result.stderr
    doc = json.loads(out.read_text())
    entry = doc["after"]
    assert entry["total_instructions"] == 2500
    assert entry["composite_cycles"] > 0
    assert entry["instructions_per_second"] > 0
    assert entry["cycles_per_second"] > 0
    ubench = entry["ubench"]
    assert ubench["kernels"] > 0
    assert ubench["sweep_cycles"] > 0
    assert ubench["kernels_per_second"] > 0
    explore = entry["explore"]
    assert explore["spec"] == "smoke"
    assert explore["tasks"] == explore["points"] * 5
    assert explore["sweep_cycles"] > 0
    # The warm pass reads the store instead of simulating.
    assert explore["best_warm_seconds"] < explore["best_cold_seconds"]
