"""Benchmark regenerating Table 8 — the paper's centrepiece.

The complete cycles-per-average-instruction decomposition: where every
200 ns of the average VAX instruction goes, across 14 activity rows and
6 cycle-kind columns.
"""

from repro.analysis import table8
from repro.report import paper
from repro.report.compare import within_factor, within_slack
from repro.report.format import render_table8
from repro.ucode.rows import Column, Row
from benchmarks.conftest import emit


def test_bench_table8_cycles_per_instruction(benchmark,
                                             composite_measurement):
    result = benchmark(table8, composite_measurement)
    emit(render_table8(result))

    # Headline: CPI of the same order as the paper's 10.6.
    assert within_factor(result.cycles_per_instruction,
                         paper.CYCLES_PER_INSTRUCTION, 1.8)

    # The Decode row's compute is exactly one cycle per instruction
    # (§2.1: the single non-overlapped I-Decode cycle).
    assert within_slack(result.cells[(Row.DECODE, Column.COMPUTE)],
                        1.000, 0.01)

    # Row shape: Decode + specifier processing is the largest block.
    front_end = (result.row_totals[Row.DECODE]
                 + result.row_totals[Row.SPEC1]
                 + result.row_totals[Row.SPEC26]
                 + result.row_totals[Row.BDISP])
    share = front_end / result.cycles_per_instruction
    assert 0.25 < share < 0.65  # paper: "almost half"

    # CALL/RET contributes the most of any execute row despite its low
    # frequency (§5's headline observation).
    exec_rows = (Row.EX_SIMPLE, Row.EX_FIELD, Row.EX_FLOAT,
                 Row.EX_CALLRET, Row.EX_SYSTEM, Row.EX_CHARACTER,
                 Row.EX_DECIMAL)
    heaviest = max(exec_rows, key=lambda r: result.row_totals[r])
    assert heaviest in (Row.EX_CALLRET, Row.EX_SIMPLE)
    assert result.row_totals[Row.EX_CALLRET] > \
        0.5 * result.row_totals[Row.EX_SIMPLE]

    # Column shape: compute dominates; each stall class is within a
    # factor of the paper's.
    cols = result.column_totals
    assert cols[Column.COMPUTE] == max(cols.values())
    assert within_factor(cols[Column.READ],
                         paper.TABLE8_COLUMN_TOTALS["Read"], 1.6)
    assert within_factor(cols[Column.WRITE],
                         paper.TABLE8_COLUMN_TOTALS["Write"], 1.8)
    assert within_factor(cols[Column.IBSTALL],
                         paper.TABLE8_COLUMN_TOTALS["IB-Stall"], 1.8)
    assert within_factor(cols[Column.WSTALL],
                         paper.TABLE8_COLUMN_TOTALS["W-Stall"], 2.5)
    assert within_factor(cols[Column.RSTALL],
                         paper.TABLE8_COLUMN_TOTALS["R-Stall"], 3.0)

    # Overheads exist and are minor: memory management, interrupts and
    # aborts together stay under 2 cycles.
    overhead = (result.row_totals[Row.MEM_MGMT]
                + result.row_totals[Row.INT_EXCEPT]
                + result.row_totals[Row.ABORTS])
    assert 0.1 < overhead < 2.0

    # The SIMPLE group, 84% of executions, uses only ~10% of the time
    # in its execute phase (§5).
    simple_share = result.row_totals[Row.EX_SIMPLE] \
        / result.cycles_per_instruction
    assert simple_share < 0.25
