"""Benchmark regenerating Table 9: per-group execute cost (unweighted)."""

from repro.analysis import table9
from repro.arch.groups import OpcodeGroup
from repro.report import paper
from repro.report.compare import within_factor
from repro.report.format import render_table9
from benchmarks.conftest import emit


def test_bench_table9_within_group_cycles(benchmark,
                                          composite_measurement):
    result = benchmark(table9, composite_measurement)
    emit(render_table9(result))

    totals = result.totals

    # "The computation associated with the average simple instruction is
    # quite simple: a little over one cycle" (§5).
    assert 0.8 < totals[OpcodeGroup.SIMPLE] < 2.0

    # "The range of cycle time requirements ... covers two orders of
    # magnitude" (§5).
    heavy = max(totals[OpcodeGroup.CHARACTER],
                totals[OpcodeGroup.DECIMAL])
    assert heavy / totals[OpcodeGroup.SIMPLE] > 50

    # Orderings the paper reports.
    assert totals[OpcodeGroup.CHARACTER] > totals[OpcodeGroup.CALLRET]
    assert totals[OpcodeGroup.CALLRET] > totals[OpcodeGroup.FLOAT]
    assert totals[OpcodeGroup.CALLRET] > totals[OpcodeGroup.SIMPLE]

    # Magnitudes within a factor of the paper's means.
    assert within_factor(totals[OpcodeGroup.SIMPLE],
                         paper.TABLE9_TOTALS["Simple"], 1.6)
    assert within_factor(totals[OpcodeGroup.CALLRET],
                         paper.TABLE9_TOTALS["Call/Ret"], 1.8)
    assert within_factor(totals[OpcodeGroup.CHARACTER],
                         paper.TABLE9_TOTALS["Character"], 2.0)
    assert within_factor(totals[OpcodeGroup.FIELD],
                         paper.TABLE9_TOTALS["Field"], 2.0)
    assert within_factor(totals[OpcodeGroup.FLOAT],
                         paper.TABLE9_TOTALS["Float"], 2.0)
    if result.group_instructions[OpcodeGroup.DECIMAL]:
        assert within_factor(totals[OpcodeGroup.DECIMAL],
                             paper.TABLE9_TOTALS["Decimal"], 2.2)
