"""Benchmarks regenerating Tables 1-4 from the composite µPC histogram.

Each benchmark times the paper's data-reduction step (raw histogram ->
published table) and asserts the reproduction's shape targets.
"""

import pytest

from repro.analysis import table1, table2, table3, table4
from repro.arch.groups import GROUP_ORDER, OpcodeGroup
from repro.report import paper
from repro.report.compare import same_ordering, within_factor, within_slack
from repro.report.format import (render_table1, render_table2,
                                 render_table3, render_table4)
from benchmarks.conftest import emit


def test_bench_table1_opcode_group_frequency(benchmark,
                                             composite_measurement):
    result = benchmark(table1, composite_measurement)
    emit(render_table1(result))

    freq = {g.value: result.frequency_percent[g] for g in GROUP_ORDER}
    # Ordering: Simple dominates and the rare groups stay rare.
    assert freq["Simple"] == max(freq.values())
    assert within_slack(freq["Simple"], paper.TABLE1_FREQUENCY["Simple"],
                        8.0)
    for group in ("Field", "Float", "Call/Ret", "System"):
        assert within_factor(freq[group], paper.TABLE1_FREQUENCY[group],
                             2.5), group
    assert freq["Character"] < 2.5
    assert freq["Decimal"] < 1.0


def test_bench_table2_pc_changing_instructions(benchmark,
                                               composite_measurement):
    result = benchmark(table2, composite_measurement)
    emit(render_table2(result))

    assert within_factor(result.total_percent, paper.TABLE2_TOTAL[0], 1.8)
    assert within_slack(result.total_taken_percent, paper.TABLE2_TOTAL[1],
                        15.0)
    by_label = {row.label: row for row in result.rows}
    # The always-taken classes really are always taken.
    for label in ("Subroutine call and return", "Case branch (CASEx)",
                  "Procedure call and return", "System branches (REI)"):
        row = by_label[label]
        if row.executed:
            assert row.percent_taken == pytest.approx(100.0)
    # Loop branches approach the paper's ~10-iteration behaviour.
    assert by_label["Loop branches"].percent_taken > 75


def test_bench_table3_specifier_counts(benchmark, composite_measurement):
    result = benchmark(table3, composite_measurement)
    emit(render_table3(result))

    assert within_factor(result.first_specifiers,
                         paper.TABLE3["first_specifiers"], 1.35)
    assert within_factor(result.other_specifiers,
                         paper.TABLE3["other_specifiers"], 1.35)
    assert within_factor(result.branch_displacements,
                         paper.TABLE3["branch_displacements"], 1.8)


def test_bench_table4_specifier_distribution(benchmark,
                                             composite_measurement):
    result = benchmark(table4, composite_measurement)
    emit(render_table4(result))

    total = result.total_percent
    # Register mode is the most common mode overall (§3.2) ...
    assert total["Register"] == max(total.values())
    assert within_slack(total["Register"], 41.0, 12.0)
    # ... register is commoner after the first specifier than in it ...
    assert result.spec26_percent["Register"] > \
        result.spec1_percent["Register"]
    # ... displacement is the most common memory mode ...
    memory_modes = ("Displacement", "Register deferred", "Autoincrement",
                    "Autodecrement", "Disp. deferred", "Absolute",
                    "Autoinc. deferred")
    assert total["Displacement"] == max(total[m] for m in memory_modes)
    # ... short literals far outnumber immediates (§3.2) ...
    assert total["Short literal"] > 3 * total["Immediate"]
    # ... and indexing is surprisingly common (§3.2: 6.3 %).
    assert within_factor(result.indexed_percent,
                         paper.TABLE4_INDEXED_PERCENT, 2.0)
