"""Benchmarks regenerating Tables 5-7."""

from repro.analysis import table5, table6, table7
from repro.report import paper
from repro.report.compare import within_factor
from repro.report.format import render_table5, render_table6, render_table7
from benchmarks.conftest import emit


def test_bench_table5_reads_writes(benchmark, composite_measurement):
    result = benchmark(table5, composite_measurement)
    emit(render_table5(result))

    assert within_factor(result.total_reads, paper.TABLE5_TOTAL_READS, 1.6)
    assert within_factor(result.total_writes, paper.TABLE5_TOTAL_WRITES,
                         1.8)
    # Reads outnumber writes about two to one (§3.3.1).
    ratio = result.total_reads / result.total_writes
    assert 1.2 < ratio < 3.5
    # Spec 1 reads dominate Spec 2-6 reads, as in the paper.
    assert result.rows["Spec 1"][0] > result.rows["Spec 2-6"][0]
    # The CALL/RET group makes the largest execute-row contribution to
    # both reads and writes ("the greatest portion", §3.3.1).
    exec_rows = {k: v for k, v in result.rows.items()
                 if k not in ("Spec 1", "Spec 2-6", "Other")}
    callret_reads = result.rows["Call/Ret"][0]
    callret_writes = result.rows["Call/Ret"][1]
    assert callret_reads == max(r for r, _ in exec_rows.values())
    assert callret_writes == max(w for _, w in exec_rows.values())


def test_bench_table6_instruction_size(benchmark, composite_measurement):
    result = benchmark(table6, composite_measurement)
    emit(render_table6(result))

    assert within_factor(result.total_bytes, paper.TABLE6["total_bytes"],
                         1.25)
    assert within_factor(result.avg_specifier_size,
                         paper.TABLE6["avg_specifier_size"], 1.35)
    assert within_factor(result.specifiers_per_instruction,
                         paper.TABLE6["specifiers_per_instruction"], 1.3)


def test_bench_table7_headways(benchmark, composite_measurement):
    result = benchmark(table7, composite_measurement)
    emit(render_table7(result))

    ref = paper.TABLE7
    assert within_factor(result.interrupt_headway, ref["interrupts"], 2.5)
    assert within_factor(result.software_interrupt_request_headway,
                         ref["software_interrupt_requests"], 2.5)
    assert within_factor(result.context_switch_headway,
                         ref["context_switches"], 2.5)
    # Ordering: software requests are rarer than interrupts, context
    # switches rarer still.
    assert result.interrupt_headway < \
        result.software_interrupt_request_headway < \
        result.context_switch_headway * 1.2
