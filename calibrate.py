#!/usr/bin/env python
"""Calibration harness: composite vs paper, every quantity on one page.

Not part of the library — a development tool for tuning profiles/costs.
"""
import sys
import time

from repro.analysis import (Measurement, section4, table1, table2, table3,
                            table4, table5, table6, table7, table8, table9)
from repro.workloads.engine import standard_composite

N = int(sys.argv[1]) if len(sys.argv) > 1 else 20000
JOBS = int(sys.argv[2]) if len(sys.argv) > 2 else 1

t0 = time.time()
meas = standard_composite(instructions=N, jobs=JOBS)
print(f"[composite of 5 x {N} instructions in {time.time()-t0:.1f}s]\n")

t1 = table1(meas)
PAPER1 = {"Simple": 83.60, "Field": 6.92, "Float": 3.62, "Call/Ret": 3.22,
          "System": 2.11, "Character": 0.43, "Decimal": 0.03}
print("TABLE 1 (group %)          measured   paper")
for g, p in t1.frequency_percent.items():
    print(f"  {g.value:12s} {p:10.2f} {PAPER1[g.value]:8.2f}")

t2 = table2(meas)
PAPER2 = {"Simple cond., plus BRB, BRW": (19.3, 56), "Loop branches": (4.1, 91),
          "Low-bit tests": (2.0, 41), "Subroutine call and return": (4.5, 100),
          "Unconditional (JMP)": (0.3, 100), "Case branch (CASEx)": (0.9, 100),
          "Bit branches": (4.3, 44), "Procedure call and return": (2.4, 100),
          "System branches (REI)": (0.4, 100)}
print("\nTABLE 2 (branch type: %instr / %taken)    measured      paper")
for row in t2.rows:
    pp = PAPER2[row.label]
    print(f"  {row.label:30s} {row.percent_of_instructions:6.1f} "
          f"{row.percent_taken:5.0f}   | {pp[0]:5.1f} {pp[1]:4d}")
print(f"  {'TOTAL':30s} {t2.total_percent:6.1f} "
      f"{t2.total_taken_percent:5.0f}   |  38.5   67")

t3 = table3(meas)
print(f"\nTABLE 3: spec1 {t3.first_specifiers:.3f} (0.726)  "
      f"spec2-6 {t3.other_specifiers:.3f} (0.758)  "
      f"bdisp {t3.branch_displacements:.3f} (0.312)")

t4 = table4(meas)
PAPER4 = {"Register": (28.7, 52.6, 41.0), "Short literal": (21.1, 10.8, 15.8),
          "Immediate": (3.2, 1.7, 2.4), "Displacement": (25.0, None, None)}
print("\nTABLE 4 (mode %: spec1/spec2-6/total)")
for row, total in t4.total_percent.items():
    print(f"  {row:18s} {t4.spec1_percent[row]:6.1f} "
          f"{t4.spec26_percent[row]:6.1f} {total:6.1f}")
print(f"  indexed: {t4.indexed_percent:.1f}% (paper 6.3%)")

t5 = table5(meas)
print(f"\nTABLE 5 reads/writes per instr: "
      f"total R {t5.total_reads:.3f} (0.783)  W {t5.total_writes:.3f} (0.409)")
for label, (r, w) in t5.rows.items():
    print(f"  {label:12s} R {r:6.3f}  W {w:6.3f}")

t6 = table6(meas)
print(f"\nTABLE 6: specs/instr {t6.specifiers_per_instruction:.2f} (1.48), "
      f"spec size {t6.avg_specifier_size:.2f} (1.68), "
      f"total {t6.total_bytes:.2f} bytes (3.8)")

t7 = table7(meas)
print(f"\nTABLE 7 headways: swreq {t7.software_interrupt_request_headway:.0f}"
      f" (2539)  int {t7.interrupt_headway:.0f} (637)  "
      f"ctxsw {t7.context_switch_headway:.0f} (6418)")

t8 = table8(meas)
print(f"\nTABLE 8 (cycles/instr)  CPI = {t8.cycles_per_instruction:.2f} (10.59)")
PAPER8_ROWS = {"Decode": 1.613, "Spec 1": 1.052, "Spec 2-6": 1.226,
               "Simple": 0.977, "Field": 0.600, "Float": 0.302,
               "Call/Ret": 1.458, "System": 0.482, "Character": 0.506,
               "Decimal": 0.031, "Int/Except": 0.071, "Mem Mgmt": 0.824,
               "Aborts": 0.127}
for row, tot in t8.row_totals.items():
    ref = PAPER8_ROWS.get(row.value, None)
    refs = f"{ref:8.3f}" if ref is not None else "     ~  "
    print(f"  {row.value:12s} {tot:8.3f} {refs}")
PAPER8_COLS = {"Compute": 7.267, "Read": 0.783, "R-Stall": 0.964,
               "Write": 0.409, "W-Stall": 0.450, "IB-Stall": 0.720}
print("  columns:")
for col, tot in t8.column_totals.items():
    print(f"  {col.value:12s} {tot:8.3f} {PAPER8_COLS[col.value]:8.3f}")

t9 = table9(meas)
PAPER9 = {"Simple": 1.17, "Field": 8.67, "Float": 8.33, "Call/Ret": 45.25,
          "System": 22.83, "Character": 117.04, "Decimal": 100.77}
print("\nTABLE 9 (cycles per group instr)")
for g, tot in t9.totals.items():
    print(f"  {g.value:12s} {tot:8.2f} {PAPER9[g.value]:8.2f}")

s4 = section4(meas)
print(f"\nSECTION 4: ib refs/instr {s4.ib_references_per_instruction:.2f}"
      f" (2.2)  bytes/ref {s4.ib_bytes_per_reference:.2f} (1.7)")
print(f"  cache misses/instr {s4.cache_read_misses_per_instruction:.3f}"
      f" (0.28): I {s4.cache_i_misses_per_instruction:.3f} (0.18)"
      f"  D {s4.cache_d_misses_per_instruction:.3f} (0.10)")
print(f"  tb misses/instr {s4.tb_misses_per_instruction:.4f} (0.029): "
      f"D {s4.tb_d_misses_per_instruction:.4f} (0.020) "
      f"I {s4.tb_i_misses_per_instruction:.4f} (0.009)")
print(f"  tb service {s4.tb_service_cycles:.1f} (21.6) "
      f"stall {s4.tb_service_stall_cycles:.1f} (3.5)")
print(f"  unaligned/instr {s4.unaligned_refs_per_instruction:.4f} (0.016)")
