#!/usr/bin/env python
"""Microcode hot spots: what the original analysts saw in the raw data.

The paper's authors called the µPC histogram "a general resource from
which the answers to many questions ... can be obtained simply by doing
additional interpretation of the raw histogram data" (§2.2).  This
example does exactly that interpretation: it ranks control-store
addresses by cycles consumed (execution + stall), labels each with its
routine and slot from the microcode map, and prints the machine's hot
microcode — without any of the table machinery.

Run:  python examples/microcode_hotspots.py [instructions]
"""

import sys

from repro.analysis.reduction import reference_map
from repro.workloads.engine import run_workload
from repro.workloads.profiles import TIMESHARING_RESEARCH


def main():
    instructions = int(sys.argv[1]) if len(sys.argv) > 1 else 30_000
    measurement = run_workload(TIMESHARING_RESEARCH, instructions)
    histogram = measurement.histogram
    store, umap = reference_map()

    rows = []
    for annotation in store.annotations():
        executions = histogram.nonstalled[annotation.address]
        stalled = histogram.stalled[annotation.address]
        if executions or stalled:
            rows.append((executions + stalled, executions, stalled,
                         annotation))
    rows.sort(key=lambda r: -r[0])

    total_cycles = histogram.total_cycles()
    print(f"{'uPC':>5s}  {'cycles':>9s} {'%':>6s} {'exec':>9s} "
          f"{'stall':>8s}  {'row':12s} routine.slot")
    print("-" * 78)
    shown = 0
    for cycles, executions, stalled, ann in rows[:30]:
        share = 100.0 * cycles / total_cycles
        shown += share
        print(f"{ann.address:5d}  {cycles:9d} {share:6.2f} "
              f"{executions:9d} {stalled:8d}  {ann.row.value:12s} "
              f"{ann.routine}.{ann.slot}")
    print("-" * 78)
    print(f"top 30 locations cover {shown:.1f}% of all "
          f"{total_cycles} measured cycles")
    print()
    print("The decode dispatch for MOV and the conditional-branch flow")
    print("dominate, with the insufficient-bytes (IB stall) dispatch and")
    print("the TB-miss PTE read carrying the big stall counts - the same")
    print("picture the 1984 analysts reduced into Table 8.")


if __name__ == "__main__":
    main()
