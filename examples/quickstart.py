#!/usr/bin/env python
"""Quickstart: assemble a VAX program, run it, read the µPC histogram.

This is the smallest end-to-end use of the library: the text assembler,
the VAX-11/780 machine model, and the measurement path the paper built —
every executed microcycle lands in a histogram bucket, and the analysis
classifies each bucket by activity (Table 8's rows) and cycle kind (its
columns).

Run:  python examples/quickstart.py
"""

from repro.analysis import Measurement, Reduction, table8
from repro.asm import assemble_text
from repro.cpu.machine import VAX780
from repro.report.format import render_table8
from repro.vm.address import S0_BASE

PROGRAM = """
; Sum the first 100 integers, with a procedure call per iteration.
start:
    movl    #100, r6        ; loop counter
    clrl    r1              ; accumulator
loop:
    pushl   r6
    calls   #1, @#add_one   ; r0 = arg + accumulator
    movl    r0, r1
    sobgtr  r6, loop
    movl    r1, @#result
    halt

add_one:
    .word   ^x0004          ; entry mask: save r2
    movl    4(ap), r2
    addl3   r2, r1, r0
    ret

result:
    .long   0
"""


def main():
    image = assemble_text(PROGRAM, base=S0_BASE + 0x2000)
    machine = VAX780()
    machine.boot(image)
    machine.run(max_instructions=100_000)

    result_pa = image.address_of("result") - S0_BASE
    total = machine.mem.debug_read(result_pa, 4)
    print(f"program result: {total} (expect 5050)")
    print(f"instructions executed: {machine.tracer.instructions}")
    print(f"cycles: {machine.cycles} "
          f"({machine.cycles * machine.params.cycle_ns / 1000:.1f} us "
          f"of simulated 1980s time)")

    measurement = Measurement.capture("quickstart", machine)
    reduction = Reduction(measurement.histogram)
    print(f"cycles per instruction: "
          f"{reduction.cycles_per_instruction():.2f}")
    print()
    print(render_table8(table8(measurement)))
    print()
    print("Note how CALLS/RET dominates the execute rows even in this")
    print("tiny program - the paper's central observation.")


if __name__ == "__main__":
    main()
