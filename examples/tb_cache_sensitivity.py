#!/usr/bin/env python
"""Sensitivity study: sweep cache and TB geometry around the 11/780's.

The paper closes §3.4 noting the context-switch headway "is useful in
setting the 'flush' interval in cache and translation buffer
simulations".  This example IS such a simulation: the same workload over
a grid of cache sizes and TB sizes, reporting miss rates and CPI — the
kind of design-space exploration the 11/780's measurements enabled.

Run:  python examples/tb_cache_sensitivity.py [instructions]
"""

import sys

from repro.analysis import Measurement, section4, table8
from repro.cpu.machine import VAX780
from repro.osim.executive import Executive
from repro.params import VAX780 as STOCK
from repro.workloads.profiles import TIMESHARING_RESEARCH


def run_config(params, instructions):
    machine = VAX780(params)
    executive = Executive(machine, TIMESHARING_RESEARCH, seed=1984)
    executive.boot()
    executive.run(instructions)
    return Measurement.capture(f"sweep", machine)


def main():
    instructions = int(sys.argv[1]) if len(sys.argv) > 1 else 12_000

    print("Cache size sweep (stock = 8 KB, 2-way, 8-byte blocks)")
    print(f"{'size':>8s} {'misses/instr':>13s} {'CPI':>7s}")
    for kb in (2, 4, 8, 16, 32):
        params = STOCK.with_overrides(cache_bytes=kb * 1024)
        measurement = run_config(params, instructions)
        events = section4(measurement)
        cpi = table8(measurement).cycles_per_instruction
        marker = "  <- 11/780" if kb == 8 else ""
        print(f"{kb:6d}KB {events.cache_read_misses_per_instruction:13.3f}"
              f" {cpi:7.2f}{marker}")

    print()
    print("Translation buffer sweep (stock = 128 entries, 2-way, "
          "split halves)")
    print(f"{'entries':>8s} {'TB miss/instr':>14s} {'Mem Mgmt cyc':>13s} "
          f"{'CPI':>7s}")
    from repro.ucode.rows import Row
    for entries in (32, 64, 128, 256):
        params = STOCK.with_overrides(tb_entries=entries)
        measurement = run_config(params, instructions)
        events = section4(measurement)
        t8 = table8(measurement)
        marker = "  <- 11/780" if entries == 128 else ""
        print(f"{entries:8d} {events.tb_misses_per_instruction:14.4f} "
              f"{t8.row_totals[Row.MEM_MGMT]:13.3f} "
              f"{t8.cycles_per_instruction:7.2f}{marker}")

    print()
    print("Write buffer depth (stock = one longword; §5 blames it for")
    print("the CALL instruction's stalls)")
    from repro.ucode.rows import Column
    print(f"{'depth':>8s} {'W-stall/instr':>14s} {'CPI':>7s}")
    for depth in (1, 2, 4):
        params = STOCK.with_overrides(write_buffer_depth=depth)
        measurement = run_config(params, instructions)
        t8 = table8(measurement)
        marker = "  <- 11/780" if depth == 1 else ""
        print(f"{depth:8d} {t8.column_totals[Column.WSTALL]:14.3f} "
              f"{t8.cycles_per_instruction:7.2f}{marker}")


if __name__ == "__main__":
    main()
