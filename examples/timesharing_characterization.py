#!/usr/bin/env python
"""The full paper reproduction: five workloads, composite, every table.

This is the flagship example: it performs the paper's §2.2 measurement
campaign end to end — two live-timesharing-style workloads and three
RTE-style synthetic environments, each booted under the modeled executive
on its own machine, measured with the µPC histogram monitor, summed into
the composite, and reduced to Tables 1-9 plus the §4 implementation
events and Figure 1.

Run:  python examples/timesharing_characterization.py [instructions]

The default 40000 measured instructions per workload takes about half a
minute; the table benchmarks use 60000.
"""

import sys
import time

from repro.analysis import (section4, table1, table2, table3, table4,
                            table5, table6, table7, table8, table9)
from repro.cpu.machine import VAX780
from repro.report.format import (render_figure1, render_section4,
                                 render_table1, render_table2,
                                 render_table3, render_table4,
                                 render_table5, render_table6,
                                 render_table7, render_table8,
                                 render_table9)
from repro.workloads.engine import (run_standard_experiments,
                                         standard_composite)


def main():
    instructions = int(sys.argv[1]) if len(sys.argv) > 1 else 40_000

    print("=" * 72)
    print("A Characterization of Processor Performance in the VAX-11/780")
    print("Emer & Clark, ISCA 1984 - reproduction run")
    print("=" * 72)

    print(render_figure1(VAX780()))

    started = time.time()
    print(f"Running the five workload experiments "
          f"({instructions} measured instructions each)...")
    runs = run_standard_experiments(instructions=instructions)
    for name, measurement in runs.items():
        cpi = table8(measurement).cycles_per_instruction
        print(f"  {name:24s} CPI {cpi:5.2f}  "
              f"({measurement.tracer.instructions} instructions)")
    composite = standard_composite(instructions=instructions)
    print(f"simulation took {time.time() - started:.1f}s; "
          f"composite = sum of the five histograms (paper §2.2)")
    print()

    renderers = [
        (render_table1, table1), (render_table2, table2),
        (render_table3, table3), (render_table4, table4),
        (render_table5, table5), (render_table6, table6),
        (render_table7, table7), (render_table8, table8),
        (render_table9, table9), (render_section4, section4),
    ]
    for render, compute in renderers:
        print(render(compute(composite)))
        print()


if __name__ == "__main__":
    main()
