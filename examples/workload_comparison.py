#!/usr/bin/env python
"""Compare the five workload environments against each other.

The paper reports only the composite, noting that results "are, of
course, dependent on the characteristics of that workload" (§6).  This
example quantifies that dependence: the same machine, the same analysis,
five different user populations — and visibly different CPI, group mixes
and stall profiles.

Run:  python examples/workload_comparison.py [instructions]
"""

import sys

from repro.analysis import section4, table1, table8
from repro.arch.groups import GROUP_ORDER
from repro.ucode.rows import Column
from repro.workloads.engine import run_standard_experiments


def main():
    instructions = int(sys.argv[1]) if len(sys.argv) > 1 else 25_000
    runs = run_standard_experiments(instructions=instructions)

    names = list(runs)
    print(f"{'':26s}" + "".join(f"{n.split('-')[-1][:10]:>11s}"
                                for n in names))

    # CPI per workload.
    t8s = {n: table8(m) for n, m in runs.items()}
    print(f"{'CPI':26s}" + "".join(
        f"{t8s[n].cycles_per_instruction:11.2f}" for n in names))

    # Group mix.
    t1s = {n: table1(m) for n, m in runs.items()}
    for group in GROUP_ORDER:
        print(f"{group.value + ' %':26s}" + "".join(
            f"{t1s[n].frequency_percent[group]:11.2f}" for n in names))

    # Stall profile.
    for col in (Column.RSTALL, Column.WSTALL, Column.IBSTALL):
        print(f"{col.value + ' cycles':26s}" + "".join(
            f"{t8s[n].column_totals[col]:11.3f}" for n in names))

    # Memory behaviour.
    s4s = {n: section4(m) for n, m in runs.items()}
    print(f"{'cache misses/instr':26s}" + "".join(
        f"{s4s[n].cache_read_misses_per_instruction:11.3f}"
        for n in names))
    print(f"{'TB misses/instr':26s}" + "".join(
        f"{s4s[n].tb_misses_per_instruction:11.4f}" for n in names))

    print()
    print("Expected contrasts: the scientific environment leads on the")
    print("Float row; the commercial environment leads on Decimal and")
    print("Character; CPI varies with the mix even on identical hardware.")


if __name__ == "__main__":
    main()
