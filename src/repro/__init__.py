"""Reproduction of Emer & Clark, "A Characterization of Processor
Performance in the VAX-11/780" (ISCA 1984).

A VAX-11/780 micro-architectural simulator with a micro-PC histogram
monitor, a VMS-like executive driving synthetic timesharing workloads,
and an analysis pipeline that regenerates every table in the paper.

Quick start — the typed facade (:mod:`repro.api`) is the public
surface; :mod:`repro.obs` makes any call observable::

    from repro import api, obs

    with obs.observe("out/", heartbeat=10):
        result = api.characterize(smoke=True, table="8")
    print(result.cycles_per_instruction)

The building blocks remain importable for lower-level work::

    from repro import VAX780, Executive, TIMESHARING_RESEARCH
    from repro.analysis import Measurement, table8

    machine = VAX780()
    executive = Executive(machine, TIMESHARING_RESEARCH)
    executive.boot()
    executive.run(50_000)
    result = table8(Measurement.capture("demo", machine))
    print(result.cycles_per_instruction)
"""

from repro.cpu.machine import VAX780
from repro.osim.executive import Executive
from repro.params import MachineParams, VAX780 as VAX780_PARAMS
from repro.workloads.profiles import (COMMERCIAL, EDUCATIONAL, MixProfile,
                                      SCIENTIFIC, STANDARD_PROFILES,
                                      TIMESHARING_CPU_DEV,
                                      TIMESHARING_RESEARCH)

__version__ = "1.0.0"

#: Facade callables re-exported lazily (PEP 562): ``repro.characterize``
#: is ``repro.api.characterize``.  Lazy so that importing ``repro``
#: stays cheap and the api -> engine -> obs import chain never cycles
#: back through this package's own initialisation.
#: (``workloads`` — the registry listing — is NOT here: the name is
#: taken by the ``repro.workloads`` subpackage; call
#: ``repro.api.workloads()``.)
_FACADE = ("characterize", "run_workload", "hotspots", "disasm",
           "figure1", "profiles", "record_trace", "ubench", "explore",
           "explore_points", "validate", "ApiError")

__all__ = ["VAX780", "Executive", "MachineParams", "VAX780_PARAMS",
           "COMMERCIAL", "EDUCATIONAL", "MixProfile", "SCIENTIFIC",
           "STANDARD_PROFILES", "TIMESHARING_CPU_DEV",
           "TIMESHARING_RESEARCH", "api", "obs", "__version__",
           *_FACADE]


def __getattr__(name):
    if name in ("api", "obs"):
        import importlib

        return importlib.import_module(f"repro.{name}")
    if name in _FACADE:
        from repro import api

        return getattr(api, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
