"""Reproduction of Emer & Clark, "A Characterization of Processor
Performance in the VAX-11/780" (ISCA 1984).

A VAX-11/780 micro-architectural simulator with a micro-PC histogram
monitor, a VMS-like executive driving synthetic timesharing workloads,
and an analysis pipeline that regenerates every table in the paper.

Quick start::

    from repro import VAX780, Executive, TIMESHARING_RESEARCH
    from repro.analysis import Measurement, table8

    machine = VAX780()
    executive = Executive(machine, TIMESHARING_RESEARCH)
    executive.boot()
    executive.run(50_000)
    result = table8(Measurement.capture("demo", machine))
    print(result.cycles_per_instruction)
"""

from repro.cpu.machine import VAX780
from repro.osim.executive import Executive
from repro.params import MachineParams, VAX780 as VAX780_PARAMS
from repro.workloads.profiles import (COMMERCIAL, EDUCATIONAL, MixProfile,
                                      SCIENTIFIC, STANDARD_PROFILES,
                                      TIMESHARING_CPU_DEV,
                                      TIMESHARING_RESEARCH)

__version__ = "1.0.0"

__all__ = ["VAX780", "Executive", "MachineParams", "VAX780_PARAMS",
           "COMMERCIAL", "EDUCATIONAL", "MixProfile", "SCIENTIFIC",
           "STANDARD_PROFILES", "TIMESHARING_CPU_DEV",
           "TIMESHARING_RESEARCH", "__version__"]
