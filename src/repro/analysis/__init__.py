"""Analysis: histogram reduction and the paper's Tables 1-9."""

from repro.analysis.measurement import (Measurement, MemoryStats,
                                        TracerStats, composite)
from repro.analysis.reduction import Reduction, reference_map
from repro.analysis.tables import (Section4Result, Table1Result,
                                   Table2Result, Table3Result, Table4Result,
                                   Table5Result, Table6Result, Table7Result,
                                   Table8Result, Table9Result, section4,
                                   table1, table2, table3, table4, table5,
                                   table6, table7, table8, table9)

__all__ = ["Measurement", "MemoryStats", "TracerStats", "composite",
           "Reduction", "reference_map",
           "Section4Result", "Table1Result", "Table2Result", "Table3Result",
           "Table4Result", "Table5Result", "Table6Result", "Table7Result",
           "Table8Result", "Table9Result", "section4", "table1", "table2",
           "table3", "table4", "table5", "table6", "table7", "table8",
           "table9"]
