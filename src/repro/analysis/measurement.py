"""Measurement capture and composition.

A :class:`Measurement` is everything one experiment run produces: the µPC
histogram (the paper's instrument), the ground-truth tracer, and the
memory-subsystem statistics the paper imported from its companion cache
study.  Measurements add, which is how the paper's *composite* workload is
built: "the sum of the five µPC histograms" (§2.2).
"""

from __future__ import annotations

from collections import Counter

from repro.monitor.histogram import Histogram


class MemoryStats:
    """Snapshot of cache/TB/IB/alignment statistics for one run."""

    __slots__ = ("cache_read_hits", "cache_read_misses", "cache_write_hits",
                 "cache_write_misses", "tb_hits", "tb_misses",
                 "tb_d_misses", "tb_i_misses", "ib_references",
                 "ib_bytes_delivered", "unaligned_reads",
                 "unaligned_writes", "write_stall_cycles", "writes")

    def __init__(self, machine=None) -> None:
        if machine is None:
            self.cache_read_hits = Counter()
            self.cache_read_misses = Counter()
            self.cache_write_hits = 0
            self.cache_write_misses = 0
            self.tb_hits = 0
            self.tb_misses = 0
            self.tb_d_misses = 0
            self.tb_i_misses = 0
            self.ib_references = 0
            self.ib_bytes_delivered = 0
            self.unaligned_reads = 0
            self.unaligned_writes = 0
            self.write_stall_cycles = 0
            self.writes = 0
            return
        cache = machine.mem.cache.stats
        self.cache_read_hits = Counter(cache.read_hits)
        self.cache_read_misses = Counter(cache.read_misses)
        self.cache_write_hits = cache.write_hits
        self.cache_write_misses = cache.write_misses
        tb = machine.tb.stats
        self.tb_hits = tb.hits
        self.tb_misses = tb.misses
        self.tb_d_misses = tb.d_misses
        self.tb_i_misses = tb.i_misses
        ib = machine.ebox.ib
        self.ib_references = ib.references
        self.ib_bytes_delivered = ib.bytes_delivered
        self.unaligned_reads = machine.mem.unaligned_reads
        self.unaligned_writes = machine.mem.unaligned_writes
        self.write_stall_cycles = machine.mem.write_buffer.stall_cycles
        self.writes = machine.mem.write_buffer.writes

    def __add__(self, other: "MemoryStats") -> "MemoryStats":
        out = MemoryStats()
        out.cache_read_hits = self.cache_read_hits + other.cache_read_hits
        out.cache_read_misses = (self.cache_read_misses
                                 + other.cache_read_misses)
        for name in ("cache_write_hits", "cache_write_misses", "tb_hits",
                     "tb_misses", "tb_d_misses", "tb_i_misses",
                     "ib_references", "ib_bytes_delivered",
                     "unaligned_reads", "unaligned_writes",
                     "write_stall_cycles", "writes"):
            setattr(out, name, getattr(self, name) + getattr(other, name))
        return out


class TracerStats:
    """Snapshot of the ground-truth tracer for one run."""

    _COUNTERS = ("opcode_counts", "family_counts", "group_counts",
                 "branches_executed", "branches_taken", "specifier_modes",
                 "tb_miss_services")
    _SCALARS = ("instructions", "indexed_specifiers", "specifiers",
                "branch_displacements", "branch_disp_bytes",
                "instruction_bytes", "interrupts",
                "software_interrupt_requests", "exceptions",
                "context_switches", "tb_miss_cycles",
                "tb_miss_stall_cycles", "page_faults",
                "tb_miss_faults", "instruction_aborts",
                "gated_off_cycles",
                "decode_dispatches", "pc_change_dispatches",
                "overlapped_decodes")

    def __init__(self, tracer=None) -> None:
        for name in self._COUNTERS:
            setattr(self, name,
                    Counter(getattr(tracer, name)) if tracer else Counter())
        for name in self._SCALARS:
            setattr(self, name, getattr(tracer, name) if tracer else 0)

    def __add__(self, other: "TracerStats") -> "TracerStats":
        out = TracerStats()
        for name in self._COUNTERS:
            setattr(out, name, getattr(self, name) + getattr(other, name))
        for name in self._SCALARS:
            setattr(out, name, getattr(self, name) + getattr(other, name))
        return out


class Measurement:
    """One experiment's complete observables."""

    def __init__(self, name: str, histogram: Histogram,
                 tracer: TracerStats, memory: MemoryStats,
                 cycles: int) -> None:
        self.name = name
        self.histogram = histogram
        self.tracer = tracer
        self.memory = memory
        self.cycles = cycles

    @property
    def measured_cycles(self) -> int:
        """Wall cycles minus gated-off (Null-process) cycles.

        This is what the histogram actually saw: its busy + stall total
        equals ``measured_cycles + tracer.overlapped_decodes`` exactly
        (see :mod:`repro.validate.invariants`).
        """
        return self.cycles - self.tracer.gated_off_cycles

    @classmethod
    def capture(cls, name: str, machine) -> "Measurement":
        """Snapshot a machine after a measured run."""
        machine.tracer.settle_gate(machine.cycles)
        return cls(name, machine.board.snapshot(),
                   TracerStats(machine.tracer), MemoryStats(machine),
                   machine.cycles)

    def __add__(self, other: "Measurement") -> "Measurement":
        return Measurement(f"{self.name}+{other.name}",
                           self.histogram + other.histogram,
                           self.tracer + other.tracer,
                           self.memory + other.memory,
                           self.cycles + other.cycles)


def composite(measurements) -> Measurement:
    """Sum measurements into the paper-style composite."""
    measurements = list(measurements)
    if not measurements:
        raise ValueError("no measurements to composite")
    total = measurements[0]
    for m in measurements[1:]:
        total = total + m
    total.name = "composite"
    return total
