"""Histogram reduction: from raw µPC counts to classified cycles.

This module plays the role of the paper's data-reduction programs: armed
with the microcode listing (the annotated control-store map, which is
deterministic across machines), it classifies every histogram bucket into
Table 8's row x column grid and recovers instruction/event counts from
known dispatch addresses.
"""

from __future__ import annotations

import functools

from repro.arch.groups import OpcodeGroup
from repro.arch.opcodes import ALL_OPCODES
from repro.monitor.histogram import Histogram
from repro.ucode.controlstore import ControlStore
from repro.ucode.costs import EXC_SETUP_CYCLES, LDPCTX_ENTRY_CYCLES
from repro.ucode.map import MicrocodeMap
from repro.ucode.rows import (COLUMN_ORDER, Column, CycleKind, EXECUTE_ROW,
                              ROW_ORDER, Row)


@functools.lru_cache(maxsize=1)
def reference_map():
    """The canonical (control store, microcode map) pair.

    Allocation order is deterministic, so this matches the map inside
    every :class:`~repro.cpu.machine.VAX780` instance.
    """
    store = ControlStore()
    umap = MicrocodeMap(store)
    return store, umap


@functools.lru_cache(maxsize=1)
def family_groups():
    """family name -> OpcodeGroup (families never span groups)."""
    mapping = {}
    for info in ALL_OPCODES:
        mapping[info.family] = info.group
    return mapping


class Reduction:
    """Classified view of one histogram."""

    def __init__(self, histogram: Histogram) -> None:
        self.histogram = histogram
        store, umap = reference_map()
        self.umap = umap
        ns = histogram.nonstalled
        st = histogram.stalled

        #: (Row, Column) -> cycles
        self.cells = {(row, col): 0 for row in ROW_ORDER
                      for col in COLUMN_ORDER}
        #: (Row) -> reads / writes (reference *counts*, for Table 5)
        self.reads_by_row = {row: 0 for row in ROW_ORDER}
        self.writes_by_row = {row: 0 for row in ROW_ORDER}

        for ann in store.annotations():
            addr = ann.address
            executions = ns[addr]
            stalled = st[addr]
            if not executions and not stalled:
                continue
            kind = ann.kind
            self.cells[(ann.row, kind.primary_column)] += executions
            if stalled:
                stall_col = kind.stall_column
                if stall_col is None:
                    raise AssertionError(
                        f"stall cycles at non-stallable {ann.routine}."
                        f"{ann.slot}")
                self.cells[(ann.row, stall_col)] += stalled
            if kind is CycleKind.READ:
                self.reads_by_row[ann.row] += executions
            elif kind is CycleKind.WRITE:
                self.writes_by_row[ann.row] += executions

        #: instructions per family, from the IRD dispatch counts.
        self.family_instructions = {
            family: ns[addr] for family, addr in umap.ird.items()
        }
        self.instructions = sum(self.family_instructions.values())

        groups = family_groups()
        #: instructions per Table 1 group.
        self.group_instructions = {group: 0 for group in OpcodeGroup}
        for family, count in self.family_instructions.items():
            self.group_instructions[groups[family]] += count

    # -- derived quantities -------------------------------------------------

    def total_cycles(self) -> int:
        """All classified cycles."""
        return sum(self.cells.values())

    def cycles_per_instruction(self) -> float:
        """The paper's headline: average cycles per VAX instruction."""
        if not self.instructions:
            return 0.0
        return self.total_cycles() / self.instructions

    def row_total(self, row: Row) -> int:
        """Cycles in one Table 8 row."""
        return sum(self.cells[(row, col)] for col in COLUMN_ORDER)

    def column_total(self, column: Column) -> int:
        """Cycles in one Table 8 column."""
        return sum(self.cells[(row, column)] for row in ROW_ORDER)

    def per_instruction(self, count) -> float:
        """``count`` per measured instruction."""
        if not self.instructions:
            return 0.0
        return count / self.instructions

    # -- event counts recovered from known addresses -------------------------

    def taken_count(self, family: str) -> int:
        """Taken-branch count: executions of a family's redirect slot."""
        slots = self.umap.exec_flows[family]
        return self.histogram.nonstalled[slots["redirect"]]

    def executed_count(self, family: str) -> int:
        """Instruction count of a family (IRD dispatch executions)."""
        return self.family_instructions.get(family, 0)

    def interrupts_delivered(self) -> int:
        """Interrupt deliveries (irq entry executions)."""
        return self.histogram.nonstalled[self.umap.irq_entry]

    def exceptions_delivered(self) -> int:
        """Exception deliveries (exc entry executions / setup length)."""
        return self.histogram.nonstalled[self.umap.exc_entry] \
            // EXC_SETUP_CYCLES

    def context_switches(self) -> int:
        """Context switches: LDPCTX executions."""
        return self.executed_count("LDPCTX")

    def tb_miss_services(self) -> int:
        """TB miss service entries."""
        return self.histogram.nonstalled[self.umap.tbm_entry]

    def tb_miss_cycles(self) -> int:
        """All cycles in the TB-miss service routine (incl. PTE stalls)."""
        h = self.histogram
        u = self.umap
        return (h.nonstalled[u.tbm_entry] + h.nonstalled[u.tbm_compute]
                + h.nonstalled[u.tbm_pte_read] + h.stalled[u.tbm_pte_read]
                + h.nonstalled[u.tbm_insert])

    def tb_miss_stall_cycles(self) -> int:
        """Read-stall cycles on the PTE fetch within miss service."""
        return self.histogram.stalled[self.umap.tbm_pte_read]

    def group_execute_cycles(self, group: OpcodeGroup) -> int:
        """Cycles in a group's execute row (all columns)."""
        return self.row_total(EXECUTE_ROW[group])
