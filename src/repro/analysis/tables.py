"""Computation of every table in the paper's evaluation.

Each ``tableN`` function takes a :class:`~repro.analysis.measurement.
Measurement` (usually the five-workload composite) and returns a typed
result object with the same quantities the paper reports.

Measurement provenance mirrors the paper's: Tables 1, 2, 5, 7, 8 and 9
come from the µPC histogram (via :class:`~repro.analysis.reduction.
Reduction`); Tables 3, 4 and 6 use specifier statistics the real analysts
recovered from microcode-map knowledge (our ground-truth tracer sees the
identical stream); the §4 events come from the second instrument (tracer +
memory statistics), as the paper took them from its companion cache study.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.groups import GROUP_ORDER, OpcodeGroup
from repro.arch.specifiers import TABLE4_ROWS
from repro.ucode.rows import COLUMN_ORDER, EXECUTE_ROW, ROW_ORDER, Row
from repro.analysis.measurement import Measurement
from repro.analysis.reduction import Reduction


# ---------------------------------------------------------------------------
# Table 1: opcode group frequency
# ---------------------------------------------------------------------------

@dataclass
class Table1Result:
    """Percent of instruction executions per Table 1 group."""

    frequency_percent: dict
    counts: dict
    instructions: int


def table1(measurement: Measurement) -> Table1Result:
    """Opcode group frequency from IRD dispatch counts."""
    red = Reduction(measurement.histogram)
    total = red.instructions or 1
    freq = {group: 100.0 * red.group_instructions[group] / total
            for group in GROUP_ORDER}
    return Table1Result(freq, dict(red.group_instructions),
                        red.instructions)


# ---------------------------------------------------------------------------
# Table 2: PC-changing instructions
# ---------------------------------------------------------------------------

#: (row label, contributing microcode families)
TABLE2_ROWS = (
    ("Simple cond., plus BRB, BRW", ("BCOND",)),
    ("Loop branches", ("AOB", "SOB", "ACB")),
    ("Low-bit tests", ("BLB",)),
    ("Subroutine call and return", ("BSB", "JSB", "RSB")),
    ("Unconditional (JMP)", ("JMP",)),
    ("Case branch (CASEx)", ("CASE",)),
    ("Bit branches", ("BB",)),
    ("Procedure call and return", ("CALL", "RET")),
    ("System branches (REI)", ("REI",)),
)


@dataclass
class Table2Row:
    """One class of PC-changing instructions."""

    label: str
    percent_of_instructions: float
    percent_taken: float
    taken_percent_of_instructions: float
    executed: int
    taken: int


@dataclass
class Table2Result:
    """The PC-changing instruction table."""

    rows: list
    total_percent: float
    total_taken_percent: float
    total_taken_percent_of_instructions: float


def table2(measurement: Measurement) -> Table2Result:
    """PC-changing frequency and taken ratios from branch-flow µPCs."""
    red = Reduction(measurement.histogram)
    instructions = red.instructions or 1
    rows = []
    total_executed = 0
    total_taken = 0
    for label, families in TABLE2_ROWS:
        executed = sum(red.executed_count(f) for f in families)
        taken = sum(red.taken_count(f) for f in families)
        total_executed += executed
        total_taken += taken
        rows.append(Table2Row(
            label,
            100.0 * executed / instructions,
            100.0 * taken / executed if executed else 0.0,
            100.0 * taken / instructions,
            executed, taken))
    return Table2Result(
        rows,
        100.0 * total_executed / instructions,
        100.0 * total_taken / total_executed if total_executed else 0.0,
        100.0 * total_taken / instructions)


# ---------------------------------------------------------------------------
# Table 3: specifiers and branch displacements per instruction
# ---------------------------------------------------------------------------

@dataclass
class Table3Result:
    """Average specifier and branch-displacement counts."""

    first_specifiers: float
    other_specifiers: float
    branch_displacements: float


def table3(measurement: Measurement) -> Table3Result:
    """Specifier counts per average instruction."""
    t = measurement.tracer
    instructions = t.instructions or 1
    spec1 = sum(count for (bucket, _), count in t.specifier_modes.items()
                if bucket == "spec1")
    spec26 = sum(count for (bucket, _), count in t.specifier_modes.items()
                 if bucket == "spec26")
    return Table3Result(spec1 / instructions, spec26 / instructions,
                        t.branch_displacements / instructions)


# ---------------------------------------------------------------------------
# Table 4: operand specifier mode distribution
# ---------------------------------------------------------------------------

@dataclass
class Table4Result:
    """Mode distribution in percent, by specifier position."""

    spec1_percent: dict
    spec26_percent: dict
    total_percent: dict
    indexed_percent: float


def table4(measurement: Measurement) -> Table4Result:
    """Addressing-mode distribution (Table 4 row categories)."""
    t = measurement.tracer
    spec1_counts = {row: 0 for row in TABLE4_ROWS}
    spec26_counts = {row: 0 for row in TABLE4_ROWS}
    for (bucket, mode), count in t.specifier_modes.items():
        target = spec1_counts if bucket == "spec1" else spec26_counts
        target[mode.table4_category] += count
    n1 = sum(spec1_counts.values()) or 1
    n26 = sum(spec26_counts.values()) or 1
    total = n1 + n26
    return Table4Result(
        {row: 100.0 * spec1_counts[row] / n1 for row in TABLE4_ROWS},
        {row: 100.0 * spec26_counts[row] / n26 for row in TABLE4_ROWS},
        {row: 100.0 * (spec1_counts[row] + spec26_counts[row]) / total
         for row in TABLE4_ROWS},
        100.0 * t.indexed_specifiers / (t.specifiers or 1))


# ---------------------------------------------------------------------------
# Table 5: D-stream reads and writes per average instruction
# ---------------------------------------------------------------------------

#: Table 5 display rows: the two specifier rows, the execute groups, and
#: the overhead activities lumped as "Other" (as the paper does).
_TABLE5_OTHER = (Row.DECODE, Row.BDISP, Row.INT_EXCEPT, Row.MEM_MGMT,
                 Row.ABORTS)


@dataclass
class Table5Result:
    """Reads/writes per instruction, by the activity making them."""

    rows: dict          #: label -> (reads per instr, writes per instr)
    total_reads: float
    total_writes: float


def table5(measurement: Measurement) -> Table5Result:
    """Memory-operation attribution from read/write µPC counts."""
    red = Reduction(measurement.histogram)
    n = red.instructions or 1
    rows = {}
    rows["Spec 1"] = (red.reads_by_row[Row.SPEC1] / n,
                      red.writes_by_row[Row.SPEC1] / n)
    rows["Spec 2-6"] = (red.reads_by_row[Row.SPEC26] / n,
                        red.writes_by_row[Row.SPEC26] / n)
    for group in GROUP_ORDER:
        row = EXECUTE_ROW[group]
        rows[group.value] = (red.reads_by_row[row] / n,
                             red.writes_by_row[row] / n)
    other_r = sum(red.reads_by_row[row] for row in _TABLE5_OTHER)
    other_w = sum(red.writes_by_row[row] for row in _TABLE5_OTHER)
    rows["Other"] = (other_r / n, other_w / n)
    total_r = sum(r for r, _ in rows.values())
    total_w = sum(w for _, w in rows.values())
    return Table5Result(rows, total_r, total_w)


# ---------------------------------------------------------------------------
# Table 6: estimated size of the average instruction
# ---------------------------------------------------------------------------

@dataclass
class Table6Result:
    """Average instruction size and its decomposition."""

    specifiers_per_instruction: float
    avg_specifier_size: float
    branch_disp_bytes_per_instruction: float
    total_bytes: float


def table6(measurement: Measurement) -> Table6Result:
    """Instruction size: opcode + specifiers + branch displacements."""
    t = measurement.tracer
    n = t.instructions or 1
    spec_bytes = t.instruction_bytes - t.instructions - t.branch_disp_bytes
    specs = t.specifiers or 1
    return Table6Result(
        t.specifiers / n,
        spec_bytes / specs,
        t.branch_disp_bytes / n,
        t.instruction_bytes / n)


# ---------------------------------------------------------------------------
# Table 7: interrupt and context-switch headway
# ---------------------------------------------------------------------------

@dataclass
class Table7Result:
    """Average instruction headway between executive events."""

    software_interrupt_request_headway: float
    interrupt_headway: float
    context_switch_headway: float


def table7(measurement: Measurement) -> Table7Result:
    """Headways from interrupt/context-switch flow entry counts."""
    red = Reduction(measurement.histogram)
    n = red.instructions
    t = measurement.tracer

    def headway(count):
        return n / count if count else float("inf")

    return Table7Result(
        headway(t.software_interrupt_requests),
        headway(red.interrupts_delivered()),
        headway(red.context_switches()))


# ---------------------------------------------------------------------------
# Table 8: the cycles-per-instruction matrix
# ---------------------------------------------------------------------------

@dataclass
class Table8Result:
    """Cycles per average instruction, rows x columns."""

    cells: dict         #: (Row, Column) -> cycles per instruction
    row_totals: dict    #: Row -> cycles per instruction
    column_totals: dict  #: Column -> cycles per instruction
    cycles_per_instruction: float
    instructions: int


def table8(measurement: Measurement) -> Table8Result:
    """The complete Table 8 decomposition."""
    red = Reduction(measurement.histogram)
    n = red.instructions or 1
    cells = {key: cycles / n for key, cycles in red.cells.items()}
    row_totals = {row: red.row_total(row) / n for row in ROW_ORDER}
    col_totals = {col: red.column_total(col) / n for col in COLUMN_ORDER}
    return Table8Result(cells, row_totals, col_totals,
                        red.cycles_per_instruction(), red.instructions)


# ---------------------------------------------------------------------------
# Table 9: cycles per instruction within each group
# ---------------------------------------------------------------------------

@dataclass
class Table9Result:
    """Execute-phase cycles per instruction *of each group* (unweighted)."""

    cells: dict         #: (OpcodeGroup, Column) -> cycles per group instr
    totals: dict        #: OpcodeGroup -> cycles per group instr
    group_instructions: dict


def table9(measurement: Measurement) -> Table9Result:
    """Per-group execute cost, exclusive of specifier processing."""
    red = Reduction(measurement.histogram)
    cells = {}
    totals = {}
    for group in GROUP_ORDER:
        count = red.group_instructions[group]
        row = EXECUTE_ROW[group]
        for col in COLUMN_ORDER:
            cells[(group, col)] = red.cells[(row, col)] / count \
                if count else 0.0
        totals[group] = red.row_total(row) / count if count else 0.0
    return Table9Result(cells, totals, dict(red.group_instructions))


# ---------------------------------------------------------------------------
# Section 4 implementation events
# ---------------------------------------------------------------------------

@dataclass
class Section4Result:
    """The implementation-event rates of §4.1 and §4.2."""

    ib_references_per_instruction: float
    ib_bytes_per_reference: float
    avg_instruction_bytes: float
    cache_read_misses_per_instruction: float
    cache_i_misses_per_instruction: float
    cache_d_misses_per_instruction: float
    tb_misses_per_instruction: float
    tb_d_misses_per_instruction: float
    tb_i_misses_per_instruction: float
    tb_service_cycles: float
    tb_service_stall_cycles: float
    unaligned_refs_per_instruction: float


def section4(measurement: Measurement) -> Section4Result:
    """Events invisible to the µPC method, from the second instrument."""
    red = Reduction(measurement.histogram)
    mem = measurement.memory
    t = measurement.tracer
    n = red.instructions or 1
    services = red.tb_miss_services() or 1
    return Section4Result(
        mem.ib_references / n,
        mem.ib_bytes_delivered / (mem.ib_references or 1),
        t.instruction_bytes / (t.instructions or 1),
        (mem.cache_read_misses["i"] + mem.cache_read_misses["d"]) / n,
        mem.cache_read_misses["i"] / n,
        mem.cache_read_misses["d"] / n,
        (mem.tb_d_misses + mem.tb_i_misses) / n,
        mem.tb_d_misses / n,
        mem.tb_i_misses / n,
        red.tb_miss_cycles() / services,
        red.tb_miss_stall_cycles() / services,
        (mem.unaligned_reads + mem.unaligned_writes) / n)
