"""repro.api: the stable, typed facade over the reproduction.

Every capability the command line exposes — the paper's measurement
campaign, single workloads, control-store hotspots, the assembler
listing, the block diagram, the microbenchmark sweep, design-space
exploration, validation — is one plain function here, returning a
frozen dataclass with a uniform :meth:`~_Result.to_json`.  The CLI
(:mod:`repro.cli`) is a thin argparse shell over these calls; scripts
and notebooks should import this module instead of reaching into the
engine packages::

    from repro import api

    result = api.characterize(smoke=True, table="8")
    print(result.cycles_per_instruction)
    json_doc = result.to_json()

Contract:

* invalid arguments raise :class:`ApiError` (a ``ValueError``) *before*
  any simulation runs; the CLI maps it to exit code 2;
* results are frozen — a result is a record of what happened, not a
  handle to mutate;
* heavyweight attachments (measurements, sweep objects, invariant
  reports) ride along for programmatic use but stay out of
  ``to_json()``;
* every call emits ``run_started``/``run_finished`` events and bumps an
  ``api.calls.<command>`` counter when an observation is active
  (:mod:`repro.obs`), and none of that changes any simulated count.
"""

from __future__ import annotations

import time
import warnings
from contextlib import contextmanager
from dataclasses import dataclass, field, fields

from repro import obs
from repro.analysis import (section4, table1, table2, table3, table4,
                            table5, table6, table7, table8, table9)
from repro.obs import metrics
from repro.report.format import (render_figure1, render_section4,
                                 render_table1, render_table2,
                                 render_table3, render_table4,
                                 render_table5, render_table6,
                                 render_table7, render_table8,
                                 render_table9)
from repro.workloads import engine as _engines
from repro.workloads import registry as _registry

__all__ = ["ApiError", "DEFAULT_INSTRUCTIONS", "SMOKE_INSTRUCTIONS",
           "TABLES",
           "CharacterizeResult", "WorkloadResult", "HotspotsResult",
           "DisasmResult", "Figure1Result", "ProfilesResult",
           "WorkloadsResult", "TraceResult",
           "MachinesResult", "UbenchResult", "ExploreResult",
           "ExplorePointsResult", "ValidateResult", "RefuteResult",
           "characterize", "run_workload", "hotspots", "disasm",
           "figure1", "profiles", "workloads", "record_trace",
           "machines", "ubench", "explore",
           "explore_points", "explore_spec", "validate", "refute"]

#: The budget the CLI has always defaulted to for measurement commands.
DEFAULT_INSTRUCTIONS = 30_000
#: Re-exported: the fixed small budget behind every ``--smoke``.
SMOKE_INSTRUCTIONS = _engines.SMOKE_INSTRUCTIONS

#: table key -> (compute, render); the paper's tables plus §4's text.
TABLES = {
    "1": (table1, render_table1), "2": (table2, render_table2),
    "3": (table3, render_table3), "4": (table4, render_table4),
    "5": (table5, render_table5), "6": (table6, render_table6),
    "7": (table7, render_table7), "8": (table8, render_table8),
    "9": (table9, render_table9), "s4": (section4, render_section4),
}


class ApiError(ValueError):
    """A bad argument to a facade call (the CLI maps it to exit 2)."""


def _engine(value, choices=None):
    """Resolve an ``engine`` argument before anything simulates.

    ``None`` means scalar; anything outside ``choices`` (default: all
    of ``repro.batch.ENGINES``) raises :class:`ApiError` listing the
    valid engines — the same pre-validation contract as ``--table``
    and the sweep axes.
    """
    from repro.batch import ENGINES, validate_engine

    try:
        return validate_engine(value, choices or ENGINES)
    except ValueError as exc:
        raise ApiError(str(exc)) from exc


def _machine(value):
    """Resolve a ``machine`` argument before anything simulates.

    ``None`` means the default backend (the paper's 11/780); anything
    not in the registry raises :class:`ApiError` listing the registered
    machine names — the same pre-validation contract as ``--table``,
    engines and the sweep axes.
    """
    from repro.machines import MachineError, validate_machine

    try:
        return validate_machine(value)
    except MachineError as exc:
        raise ApiError(str(exc)) from exc


def _workload(value, machine_name: str = None):
    """Resolve one workload argument to its registered spec.

    Accepts a registered name, a unique name suffix, a ``trace:PATH``
    reference, a :class:`~repro.workloads.registry.WorkloadSpec`, or —
    deprecated — a raw :class:`~repro.workloads.profiles.MixProfile`.
    Unknown workloads and machine-refused workloads raise
    :class:`ApiError` before anything simulates, listing the registry.
    """
    from repro.workloads.profiles import MixProfile

    if isinstance(value, MixProfile):
        spec = _registry.WORKLOADS.get(value.name)
        if spec is None or spec.profile is not value:
            raise ApiError(
                f"profile {value.name!r} is not a registered workload; "
                "register it (repro.workloads.registry.register) or "
                "call the engine directly")
        warnings.warn(
            "passing a MixProfile to the facade is deprecated; pass "
            f"the workload name ({value.name!r}) instead",
            DeprecationWarning, stacklevel=3)
        return spec
    try:
        spec = _registry.find_workload(value)
    except _registry.WorkloadError as exc:
        raise ApiError(str(exc)) from exc
    except Exception as exc:
        # A trace:PATH reference that failed to load.
        raise ApiError(str(exc)) from exc
    if spec is None:
        raise ApiError(
            f"unknown workload {value!r}; choose from "
            f"{', '.join(_registry.workload_names())} "
            "(see 'repro workloads')")
    try:
        spec.check_machine(machine_name)
    except _registry.WorkloadError as exc:
        raise ApiError(str(exc)) from exc
    return spec


def _workload_names(value, machine_name: str = None):
    """Resolve a ``workloads`` argument to a tuple of registered names.

    ``None`` passes through (callers default to the paper's five);
    ``"all"`` selects every registered generator workload the machine
    supports; otherwise each entry resolves via :func:`_workload`.
    """
    if value is None:
        return None
    if value == "all":
        return tuple(
            name for name, spec in _registry.WORKLOADS.items()
            if spec.trace is None and spec.supported_on(machine_name))
    if isinstance(value, str):
        value = [value]
    names = []
    for item in value:
        name = _workload(item, machine_name).name
        if name not in names:
            names.append(name)
    return tuple(names)


def _attachment(**kwargs):
    """A dataclass field carried on the result but left out of JSON."""
    return field(repr=False, compare=False, metadata={"internal": True},
                 **kwargs)


def _jsonable(value):
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    return value


@dataclass(frozen=True)
class _Result:
    """Base for all facade results: frozen, uniformly serialisable."""

    def to_json(self) -> dict:
        """The result as a JSON-serialisable dict (attachments omitted)."""
        doc = {"kind": type(self).__name__}
        for spec in fields(self):
            if spec.metadata.get("internal"):
                continue
            doc[spec.name] = _jsonable(getattr(self, spec.name))
        return doc


@contextmanager
def _span(command: str, **fields_):
    """Observe one facade call: counter plus run start/finish events."""
    metrics.counter(f"api.calls.{command}").inc()
    obs.emit("run_started", command=command, **fields_)
    started = time.monotonic()
    try:
        yield
    except BaseException as exc:
        obs.emit("run_finished", command=command, ok=False,
                 error=type(exc).__name__,
                 seconds=round(time.monotonic() - started, 6))
        raise
    obs.emit("run_finished", command=command, ok=True,
             seconds=round(time.monotonic() - started, 6))


def _budget(instructions, smoke: bool) -> int:
    if instructions is not None:
        return instructions
    return SMOKE_INSTRUCTIONS if smoke else DEFAULT_INSTRUCTIONS


# -- characterize -------------------------------------------------------


@dataclass(frozen=True)
class CharacterizeResult(_Result):
    """A workload composite and its rendered tables."""

    instructions: int
    seed: int
    jobs: int
    paranoid: bool
    engine: str
    machine: str
    workloads: tuple         #: the composite's workload names, in order
    cycles: int
    instructions_measured: int
    cycles_per_instruction: float
    tables: tuple            #: ({"table": key, "text": rendered}, ...)
    measurement: object = _attachment(default=None)


def characterize(instructions: int = None, seed: int = 1984,
                 jobs: int = 1, paranoid: bool = False,
                 table="all", smoke: bool = False,
                 engine: str = None, machine: str = None,
                 workloads=None) -> CharacterizeResult:
    """Run a measurement campaign and compute the paper's tables.

    The default campaign is the paper's: the five-workload composite,
    bit-identical to what this call has always produced.  ``workloads``
    widens or narrows it — an iterable of registered names (or unique
    suffixes), or ``"all"`` for every generator workload the chosen
    machine supports (see ``repro workloads``).

    ``table`` selects what to compute: ``"all"``, one key (``"1"``
    ... ``"9"``, ``"s4"``), or an iterable of keys.  Unknown keys raise
    :class:`ApiError` before the (expensive) composite run, as do an
    unknown ``engine`` (scalar, batch, or auto; results are
    bit-identical, see :mod:`repro.batch`), an unknown ``machine``
    (a registered backend, see :mod:`repro.machines`), and an unknown
    or machine-refused workload.
    """
    engine_name = _engine(engine)
    machine_name = _machine(machine)
    names = _workload_names(workloads, machine_name)
    if table in ("all", None):
        keys = list(TABLES)
    elif isinstance(table, str):
        keys = [table]
    else:
        keys = [str(key) for key in table]
    for key in keys:
        if key not in TABLES:
            raise ApiError(f"unknown table {key!r}; choose from "
                           f"{', '.join(TABLES)}")
    instructions = _budget(instructions, smoke)
    with _span("characterize", instructions=instructions, seed=seed,
               jobs=jobs, engine=engine_name, machine=machine_name):
        measurement = _engines.standard_composite(
            instructions=instructions, seed=seed, jobs=jobs,
            paranoid=paranoid, engine=engine_name,
            machine=machine_name, workloads=names)
        rendered = tuple(
            {"table": key,
             "text": TABLES[key][1](TABLES[key][0](measurement))}
            for key in keys)
        summary = table8(measurement)
    return CharacterizeResult(
        instructions=instructions, seed=seed, jobs=jobs,
        paranoid=paranoid, engine=engine_name, machine=machine_name,
        workloads=(names if names is not None
                   else _registry.paper_workload_names()),
        cycles=measurement.cycles,
        instructions_measured=summary.instructions,
        cycles_per_instruction=summary.cycles_per_instruction,
        tables=rendered, measurement=measurement)


# -- run_workload -------------------------------------------------------


@dataclass(frozen=True)
class WorkloadResult(_Result):
    """One workload environment's measurement summary."""

    profile: str             #: the resolved workload name (historical)
    description: str
    instructions: int
    seed: int
    paranoid: bool
    machine: str
    kind: str                #: paper | generator | trace
    cycles: int
    instructions_measured: int
    cycles_per_instruction: float
    table1_text: str
    measurement: object = _attachment(default=None)

    @property
    def workload(self) -> str:
        """The resolved workload name (alias of ``profile``)."""
        return self.profile


def _find_profile(profile):
    """Deprecated: resolve a loose spelling to a registered profile."""
    warnings.warn(
        "repro.api._find_profile is deprecated; use "
        "repro.workloads.registry.find_workload",
        DeprecationWarning, stacklevel=2)
    spec = _registry.find_workload(profile)
    return None if spec is None else spec.profile


def run_workload(workload=None, instructions: int = None,
                 seed: int = 1984, paranoid: bool = False,
                 smoke: bool = False, machine: str = None,
                 profile=None) -> WorkloadResult:
    """Run one registered workload (by name, suffix, or trace:PATH).

    ``profile`` is the parameter's deprecated former name.  For a
    trace-backed workload the recorded budget and seed are implied
    when not given explicitly (and enforced when they are — replay is
    pinned to its recording).
    """
    if profile is not None:
        warnings.warn(
            "run_workload(profile=...) is deprecated; use "
            "run_workload(workload=...)", DeprecationWarning,
            stacklevel=2)
        if workload is None:
            workload = profile
    machine_name = _machine(machine)
    resolved = _workload(workload, machine_name)
    if resolved.trace is not None:
        if instructions is None and not smoke:
            instructions = resolved.trace.instructions
        seed = resolved.trace.seed if seed == 1984 else seed
    instructions = _budget(instructions, smoke)
    with _span("run-workload", profile=resolved.name,
               instructions=instructions, seed=seed,
               machine=machine_name):
        try:
            measurement = _engines.run_workload(
                resolved.name, instructions, seed=seed,
                paranoid=paranoid, machine=machine_name)
        except _registry.WorkloadError as exc:
            raise ApiError(str(exc)) from exc
        summary = table8(measurement)
        table1_text = render_table1(table1(measurement))
    return WorkloadResult(
        profile=resolved.name, description=resolved.description,
        instructions=instructions, seed=seed, paranoid=paranoid,
        machine=machine_name, kind=resolved.kind,
        cycles=measurement.cycles,
        instructions_measured=summary.instructions,
        cycles_per_instruction=summary.cycles_per_instruction,
        table1_text=table1_text, measurement=measurement)


# -- hotspots -----------------------------------------------------------


@dataclass(frozen=True)
class HotspotsResult(_Result):
    """The hottest control-store locations of a reference run."""

    instructions: int
    seed: int
    top: int
    total_cycles: int
    rows: tuple  #: ({"address", "cycles", "percent", "row", ...}, ...)
    measurement: object = _attachment(default=None)


def hotspots(instructions: int = 20_000, top: int = 20,
             seed: int = 1984, smoke: bool = False) -> HotspotsResult:
    """Rank control-store locations by cycles on the reference workload."""
    from repro.analysis.reduction import reference_map

    if smoke:
        instructions = min(instructions, SMOKE_INSTRUCTIONS)
    with _span("hotspots", instructions=instructions, top=top):
        measurement = _engines.run_workload(
            _registry.DEFAULT_WORKLOAD, instructions, seed=seed)
        histogram = measurement.histogram
        store, _ = reference_map()
        ranked = []
        for ann in store.annotations():
            cycles = histogram.nonstalled[ann.address] \
                + histogram.stalled[ann.address]
            if cycles:
                ranked.append((cycles, ann))
        ranked.sort(key=lambda item: -item[0])
        total = histogram.total_cycles()
        rows = tuple(
            {"address": ann.address, "cycles": cycles,
             "percent": 100 * cycles / total, "row": ann.row.value,
             "routine": ann.routine, "slot": ann.slot}
            for cycles, ann in ranked[:top])
    return HotspotsResult(instructions=instructions, seed=seed, top=top,
                          total_cycles=total, rows=rows,
                          measurement=measurement)


# -- disasm / figure1 / profiles ---------------------------------------


@dataclass(frozen=True)
class DisasmResult(_Result):
    """An assembled program and its disassembly listing."""

    base: int
    lines: tuple


def disasm(source: str, base: int = 0x200) -> DisasmResult:
    """Assemble VAX MACRO source text and return its listing lines."""
    from repro.arch.disasm import disassemble_image
    from repro.asm import assemble_text

    with _span("disasm", base=base):
        image = assemble_text(source, base=base)
        lines = tuple(str(line) for line in disassemble_image(image))
    return DisasmResult(base=base, lines=lines)


@dataclass(frozen=True)
class Figure1Result(_Result):
    """The rendered 11/780 block diagram."""

    text: str


def figure1() -> Figure1Result:
    """Render the block diagram from the machine model."""
    from repro.cpu.machine import VAX780

    with _span("figure1"):
        text = render_figure1(VAX780())
    return Figure1Result(text=text)


@dataclass(frozen=True)
class ProfilesResult(_Result):
    """The five standard workload profiles."""

    profiles: tuple  #: ({"name", "description"}, ...)


def profiles() -> ProfilesResult:
    """List the paper's five workload profiles.

    Historical listing; :func:`workloads` lists the whole registry.
    """
    return ProfilesResult(profiles=tuple(
        {"name": spec.name, "description": spec.description}
        for spec in _registry.paper_workloads()))


@dataclass(frozen=True)
class WorkloadsResult(_Result):
    """The registered workloads and their per-machine support."""

    count: int
    default: str
    workloads: tuple  #: ({"name", "kind", ..., "supported": {...}}, ...)


def workloads() -> WorkloadsResult:
    """List the workload registry (see :mod:`repro.workloads.registry`).

    Each entry reports the workload's name, kind (paper / generator /
    trace), generator class, required executor families, and — per
    registered machine — whether that machine runs it.
    """
    from repro.machines import MACHINES

    listing = tuple(
        {"name": spec.name, "kind": spec.kind,
         "generator": spec.generator,
         "description": spec.description,
         "requires_families": tuple(spec.requires_families),
         "supported": {machine: spec.supported_on(machine)
                       for machine in MACHINES}}
        for spec in _registry.WORKLOADS.values())
    return WorkloadsResult(count=len(listing),
                           default=_registry.DEFAULT_WORKLOAD,
                           workloads=listing)


# -- record-trace -------------------------------------------------------


@dataclass(frozen=True)
class TraceResult(_Result):
    """One recorded instruction trace and its self-description."""

    workload: str            #: the name the trace registers under
    source: str              #: the workload that was recorded
    path: str
    machine: str
    seed: int
    instructions: int
    events: int
    cycles: int
    file_sha256: str
    registered: bool
    handle: object = _attachment(default=None)
    measurement: object = _attachment(default=None)


def record_trace(workload=None, path: str = None,
                 instructions: int = None, seed: int = 1984,
                 machine: str = None, name: str = None,
                 smoke: bool = False,
                 register: bool = True) -> TraceResult:
    """Record a workload run to a trace file (and register it).

    The recording run is bit-identical to an ordinary
    :func:`run_workload` of the source workload (the recorder is a
    passive boundary hook), so its measurement also primes the engine
    memo.  With ``register`` (the default) the trace immediately joins
    the registry under ``name`` (default ``trace-<source>``) and can
    be run like any other workload.
    """
    from repro.workloads.trace import TraceError
    from repro.workloads.trace import record_trace as _record

    if path is None:
        raise ApiError("record_trace needs a destination path")
    machine_name = _machine(machine)
    spec = _workload(workload, machine_name)
    instructions = _budget(instructions, smoke)
    with _span("record-trace", workload=spec.name,
               instructions=instructions, seed=seed,
               machine=machine_name):
        try:
            handle, measurement = _record(
                spec.name, path, instructions=instructions, seed=seed,
                machine=machine_name, name=name)
        except (TraceError, _registry.WorkloadError) as exc:
            raise ApiError(str(exc)) from exc
        _engines.prime_cache(spec.name, instructions, seed,
                             measurement, machine=machine_name)
        if register:
            from repro.workloads.trace import register_trace

            try:
                handle = register_trace(path, name=handle.name).trace
            except _registry.WorkloadError as exc:
                raise ApiError(str(exc)) from exc
    return TraceResult(
        workload=handle.name, source=handle.source, path=handle.path,
        machine=handle.machine, seed=handle.seed,
        instructions=handle.instructions, events=handle.events,
        cycles=handle.cycles, file_sha256=handle.file_sha256,
        registered=register, handle=handle, measurement=measurement)


@dataclass(frozen=True)
class MachinesResult(_Result):
    """The registered machine backends."""

    machines: tuple  #: ({"name", "description", "default", ...}, ...)


def machines() -> MachinesResult:
    """List the registered machine backends (see :mod:`repro.machines`)."""
    from repro.machines import DEFAULT_MACHINE, MACHINES

    return MachinesResult(machines=tuple(
        {"name": spec.name, "description": spec.description,
         "default": spec.name == DEFAULT_MACHINE, "subset": spec.subset,
         "cpi_nominal": spec.cpi_nominal}
        for spec in MACHINES.values()))


# -- ubench -------------------------------------------------------------


@dataclass(frozen=True)
class UbenchResult(_Result):
    """The microbenchmark sweep, measured vs. the analytical model."""

    suite: str
    kernel_count: int
    seed: int
    jobs: int
    machine: str
    failed: tuple            #: kernels not exact-and-reconciled
    check_ok: object         #: composite consistency verdict, or None
    ok: bool
    results: tuple = _attachment(default=())
    check: object = _attachment(default=None)


def ubench(group: str = None, mode: str = None, variant: str = None,
           smoke: bool = False, jobs: int = 1, check: bool = True,
           check_instructions: int = 20_000, seed: int = 1984,
           machine: str = None) -> UbenchResult:
    """Run the microbenchmark kernels and confront them with the model.

    ``machine`` selects the backend the kernels run on; the suite is
    filtered to the families that machine implements, and the model
    predicts with that machine's params (patch set, per-group extra
    cycles), so exactness holds on every backend.
    """
    from repro.ubench import runner, suite

    machine_name = _machine(machine)
    kernels = suite.select(group=group, mode=mode, variant=variant,
                           smoke=smoke, machine=machine_name)
    if not kernels:
        raise ApiError(
            f"no kernels match group={group!r} mode={mode!r} "
            f"variant={variant!r} on machine {machine_name!r}; groups: "
            f"{', '.join(suite.groups())}; modes: "
            f"{', '.join(suite.modes())}")
    with _span("ubench", kernels=len(kernels), jobs=jobs,
               machine=machine_name):
        results = runner.run_suite(kernels, jobs=jobs,
                                   machine=machine_name)
        check_doc = None
        if check:
            from repro.ubench.consistency import check_composite

            composite = _engines.standard_composite(
                instructions=check_instructions, seed=seed, jobs=jobs,
                machine=machine_name)
            check_doc = check_composite(composite, machine=machine_name)
    failed = tuple(r["kernel"] for r in results
                   if not (r["exact"] and r["reconciled"]))
    check_ok = None if check_doc is None else bool(check_doc["ok"])
    return UbenchResult(
        suite="smoke" if smoke else "standard",
        kernel_count=len(kernels), seed=seed, jobs=jobs,
        machine=machine_name, failed=failed,
        check_ok=check_ok, ok=not failed and check_ok is not False,
        results=tuple(results), check=check_doc)


# -- explore ------------------------------------------------------------


@dataclass(frozen=True)
class ExploreResult(_Result):
    """One design-space sweep run and its sensitivity report."""

    spec: str
    mode: str
    engine: str
    machine: str
    instructions: int
    seed: int
    stats: dict
    decode_claim_ok: object  #: True/False, or None when not checked
    ok: bool
    sweep: object = _attachment(default=None)
    report: object = _attachment(default=None)


@dataclass(frozen=True)
class ExplorePointsResult(_Result):
    """A sweep's enumerated points and their store status."""

    spec: str
    mode: str
    workloads: int
    points: tuple            #: ({"label", "cached"}, ...)


def explore_spec(spec: str = "paper-sensitivity", axes=(),
                 mode: str = None, instructions: int = None,
                 seed: int = None, smoke: bool = False,
                 machine: str = None):
    """Resolve facade arguments into a validated SweepSpec.

    ``axes`` entries may be ``"name=v1,v2"`` strings or Axis objects;
    any axis replaces the named spec's axes (the spec is then called
    ``custom``).  A ``workload=a,b,...`` axis is special: it replaces
    the sweep's workload *population* rather than varying a per-point
    override.  ``machine`` re-baselines the sweep on a registered
    backend (a ``machine=...`` axis still varies it point by point).
    Unknown specs, axes, values, workloads or machines raise
    :class:`ApiError` before anything simulates.
    """
    from dataclasses import replace

    from repro.explore import SPECS, SpaceError, parse_axis
    from repro.explore.space import WORKLOAD_AXIS

    machine_name = _machine(machine)
    parsed = []
    sweep_workloads = None
    for axis in axes:
        if isinstance(axis, str):
            try:
                axis = parse_axis(axis)
            except SpaceError as exc:
                raise ApiError(str(exc)) from exc
        if axis.name == WORKLOAD_AXIS:
            sweep_workloads = tuple(axis.values)
            continue
        parsed.append(axis)
    name = "smoke" if smoke else spec
    base = SPECS.get(name)
    if base is None:
        raise ApiError(f"unknown spec {name!r}; choose from "
                       f"{', '.join(sorted(SPECS))}")
    overrides = {}
    if parsed:
        overrides["axes"] = tuple(parsed)
        overrides["name"] = "custom"
    if sweep_workloads is not None:
        overrides["workloads"] = sweep_workloads
        overrides["name"] = "custom"
    if mode is not None:
        overrides["mode"] = mode
    if instructions is not None:
        overrides["instructions"] = instructions
    if seed is not None:
        overrides["seed"] = seed
    if machine is not None:
        overrides["machine"] = machine_name
    try:
        return replace(base, **overrides) if overrides else base
    except SpaceError as exc:
        raise ApiError(str(exc)) from exc


def explore_points(spec: str = "paper-sensitivity", axes=(),
                   mode: str = None, instructions: int = None,
                   seed: int = None, smoke: bool = False,
                   store=None, machine: str = None) -> ExplorePointsResult:
    """Enumerate a sweep's points (and store status) without simulating."""
    from repro.explore import ResultStore, code_version, result_key

    resolved = explore_spec(spec, axes, mode, instructions, seed, smoke,
                            machine=machine)
    if store is not None and not isinstance(store, ResultStore):
        store = ResultStore(store)
    code = code_version()
    listing = []
    for point in resolved.points():
        params = point.params()
        cached = sum(
            1 for workload in resolved.workloads
            if store is not None and result_key(
                params, workload, point.instructions, point.seed,
                code=code, machine=point.machine) in store)
        listing.append({"label": point.label(), "cached": cached})
    return ExplorePointsResult(spec=resolved.name, mode=resolved.mode,
                               workloads=len(resolved.workloads),
                               points=tuple(listing))


def explore(spec: str = "paper-sensitivity", axes=(), mode: str = None,
            instructions: int = None, seed: int = None,
            smoke: bool = False, store=".explore/store",
            resume: bool = True, jobs: int = 1,
            progress=None, engine: str = None,
            machine: str = None) -> ExploreResult:
    """Run a design-space sweep and compute its sensitivity report.

    ``store`` is a directory path, a ResultStore, or None (no
    persistence).  ``progress`` is an optional ``callable(str)``.
    ``engine`` selects the execution engine (scalar, batch, or auto —
    batch fuses budget-only point variants onto shared machines; the
    records are bit-identical); ``machine`` re-baselines the sweep on a
    registered backend.  An unknown engine or machine name raises
    :class:`ApiError` before anything simulates.
    """
    from repro.explore import ResultStore, run_sweep, sensitivity

    engine_name = _engine(engine)
    resolved = explore_spec(spec, axes, mode, instructions, seed, smoke,
                            machine=machine)
    if store is not None and not isinstance(store, ResultStore):
        store = ResultStore(store)
    with _span("explore", spec=resolved.name, jobs=jobs,
               engine=engine_name, machine=resolved.machine):
        sweep = run_sweep(resolved, store=store, jobs=jobs,
                          resume=resume, progress=progress,
                          engine=engine_name)
        report = sensitivity(sweep)
    claim = report.get("decode_claim")
    claim_ok = None if claim is None else bool(claim["ok"])
    return ExploreResult(
        spec=resolved.name, mode=resolved.mode,
        engine=sweep.stats.get("engine", engine_name),
        machine=resolved.machine,
        instructions=resolved.instructions, seed=resolved.seed,
        stats=dict(sweep.stats), decode_claim_ok=claim_ok,
        ok=claim_ok is not False, sweep=sweep, report=report)


# -- validate -----------------------------------------------------------


@dataclass(frozen=True)
class ValidateResult(_Result):
    """Conservation invariants plus differential fuzzing verdicts."""

    instructions: int
    seed: int
    engine: str
    machine: str
    fuzz_cases: int
    fuzz_instructions: int
    smoke: bool
    invariants_ok: bool
    divergences: int
    ok: bool
    reports: tuple = _attachment(default=())
    fuzz_results: tuple = _attachment(default=())


def validate(instructions: int = None, fuzz_cases: int = 0,
             fuzz_instructions: int = 400, seed: int = 1984,
             smoke: bool = False, progress=None, jobs: int = 1,
             engine: str = None, machine: str = None,
             workloads=None) -> ValidateResult:
    """Check the conservation laws on registered workloads, then fuzz.

    ``workloads`` selects which (default: the paper's five; ``"all"``
    means every generator workload the machine supports).

    ``engine`` selects what the fuzzer differences against: ``scalar``
    (the default) runs the fast-path engine against the per-cycle
    reference spec; ``batch`` runs the lockstep batch engine against
    independent scalar runs, capturing each case at several prefix
    boundaries.  ``auto`` is rejected here — a validation run must name
    the engine it is validating.  ``machine`` selects the backend the
    workloads run on; the conservation laws are chosen to match its
    capabilities (no IB / overlapped-decode laws on a machine without
    them), and the fuzzer — which differences the 780's fast path
    against its reference spec — only runs on the default machine.
    ``jobs`` parallelises the fuzz cases; the results (and every shrunk
    reproducer) are byte-identical at any value.
    """
    from repro.machines import DEFAULT_MACHINE
    from repro.validate import check_measurement, fuzz, fuzz_batch

    engine_name = _engine(engine, choices=("scalar", "batch"))
    machine_name = _machine(machine)
    names = _workload_names(workloads, machine_name)
    if names is None:
        names = _registry.paper_workload_names()
    if machine_name != DEFAULT_MACHINE and fuzz_cases:
        raise ApiError(
            f"differential fuzzing validates the {DEFAULT_MACHINE} "
            f"engines; drop --fuzz to validate machine "
            f"{machine_name!r}")
    if instructions is None:
        instructions = SMOKE_INSTRUCTIONS if smoke else 20_000
    if smoke:
        fuzz_instructions = min(fuzz_instructions, 200)
    fuzzer = fuzz_batch if engine_name == "batch" else fuzz
    with _span("validate", instructions=instructions,
               fuzz_cases=fuzz_cases, engine=engine_name,
               machine=machine_name):
        reports = tuple(
            check_measurement(_engines.run_workload(
                name, instructions, seed=seed,
                machine=machine_name), machine=machine_name)
            for name in names)
        fuzz_results = tuple(
            fuzzer(fuzz_cases, seed=seed,
                   instructions=fuzz_instructions,
                   progress=progress, jobs=jobs)) if fuzz_cases else ()
    divergences = sum(1 for r in fuzz_results if not r["ok"])
    invariants_ok = all(report.ok for report in reports)
    return ValidateResult(
        instructions=instructions, seed=seed, engine=engine_name,
        machine=machine_name, fuzz_cases=fuzz_cases,
        fuzz_instructions=fuzz_instructions, smoke=smoke,
        invariants_ok=invariants_ok, divergences=divergences,
        ok=invariants_ok and divergences == 0,
        reports=reports, fuzz_results=fuzz_results)


# -- refute -------------------------------------------------------------


@dataclass(frozen=True)
class RefuteResult(_Result):
    """One refutation campaign plus the planted-bug self-check."""

    campaign: str
    seed: int
    jobs: int
    plant: str               #: perturbation installed, or None (clean)
    machines: tuple
    workloads: tuple
    probes: int
    refutations: int
    planted_total: object    #: self-check size, or None when skipped
    planted_detected: object
    ok: bool
    campaign_result: object = _attachment(default=None)
    planted: object = _attachment(default=None)


def refute(campaign: str = None, smoke: bool = False, seed: int = None,
           jobs: int = 1, store=".explore/store",
           self_check: bool = True, plant: str = None,
           progress=None) -> RefuteResult:
    """Run an assumption-refutation campaign (see :mod:`repro.refute`).

    ``campaign`` names a registered campaign (``standard`` or
    ``smoke``; ``smoke=True`` is shorthand for the latter).  A clean
    run also executes the planted-bug ``self_check`` — the smoke
    campaign once per registered perturbation, every one of which must
    be detected — so "zero refutations" is evidence, not silence.
    ``plant`` installs one named perturbation for the campaign itself
    (the self-check is then skipped, and ``ok`` means the plant *was*
    caught by the assumptions that must see it).  Probes, reproducers
    and the JSON document are byte-identical at any ``jobs``.
    """
    from repro.refute import (CAMPAIGNS, PERTURBATIONS, run_campaign,
                              run_self_check)

    name = "smoke" if smoke else (campaign or "standard")
    spec = CAMPAIGNS.get(name)
    if spec is None:
        raise ApiError(f"unknown campaign {name!r}; choose from "
                       f"{', '.join(CAMPAIGNS)}")
    if plant is not None and plant not in PERTURBATIONS:
        raise ApiError(f"unknown perturbation {plant!r}; choose from "
                       f"{', '.join(PERTURBATIONS)}")
    with _span("refute", campaign=spec.name, jobs=jobs, plant=plant):
        result = run_campaign(spec, seed=seed, jobs=jobs,
                              store=None if plant is not None else store,
                              plant=plant, progress=progress)
        checks = None
        if self_check and plant is None:
            checks = run_self_check(seed=seed, jobs=jobs,
                                    progress=progress)
    if plant is not None:
        expect = set(PERTURBATIONS[plant].expect)
        flagged = {item["assumption"] for item in result.refutations}
        ok = expect <= flagged
    else:
        ok = result.ok and (checks is None
                            or all(c["detected"] for c in checks))
    return RefuteResult(
        campaign=spec.name, seed=result.seed, jobs=jobs, plant=plant,
        machines=tuple(spec.machines), workloads=tuple(spec.workloads),
        probes=len(result.probes), refutations=len(result.refutations),
        planted_total=len(checks) if checks is not None else None,
        planted_detected=(sum(1 for c in checks if c["detected"])
                          if checks is not None else None),
        ok=ok, campaign_result=result, planted=checks)
