"""VAX architecture subset: datatypes, registers, opcodes, encode/decode.

This package is purely architectural — no timing, no implementation state.
The 11/780 implementation details (pipeline, cache, TB, microcode) live in
:mod:`repro.cpu`, :mod:`repro.mem`, :mod:`repro.vm` and :mod:`repro.ucode`.
"""

from repro.arch.datatypes import DataType, mask, sign_extend
from repro.arch.decode import DecodeError, decode_instruction
from repro.arch.disasm import (disassemble, disassemble_image,
                               disassemble_machine, format_instruction)
from repro.arch.encode import EncodeError, Operand, encode_instruction
from repro.arch.groups import GROUP_ORDER, OpcodeGroup
from repro.arch.instruction import Instruction
from repro.arch.opcodes import (ALL_OPCODES, OPCODES_BY_NAME,
                                OPCODES_BY_VALUE, OpcodeInfo, opcode,
                                opcodes_in_group)
from repro.arch.registers import (AP, FP, PC, PSL, SP, ConditionCodes,
                                  register_number)
from repro.arch.specifiers import AddressingMode, Specifier

__all__ = [
    "DataType", "mask", "sign_extend",
    "DecodeError", "decode_instruction",
    "disassemble", "disassemble_image", "disassemble_machine",
    "format_instruction",
    "EncodeError", "Operand", "encode_instruction",
    "GROUP_ORDER", "OpcodeGroup",
    "Instruction",
    "ALL_OPCODES", "OPCODES_BY_NAME", "OPCODES_BY_VALUE", "OpcodeInfo",
    "opcode", "opcodes_in_group",
    "AP", "FP", "PC", "PSL", "SP", "ConditionCodes", "register_number",
    "AddressingMode", "Specifier",
]
