"""VAX data types and the integer helpers the simulator is built on.

The VAX is a little-endian 32-bit architecture with byte, word (16-bit),
longword (32-bit), quadword (64-bit) integer types, packed-decimal strings,
and F/D floating formats.  The simulator stores architectural values as
Python ints masked to the type width; these helpers centralise the masking,
sign extension and flag computation every execute flow relies on.
"""

from __future__ import annotations

import enum


class DataType(enum.Enum):
    """A VAX operand data type, as named in the architecture manual."""

    BYTE = "b"
    WORD = "w"
    LONG = "l"
    QUAD = "q"
    F_FLOAT = "f"
    D_FLOAT = "d"

    @property
    def size(self) -> int:
        """Width of the type in bytes (F float is 4, D float is 8)."""
        return _SIZES[self]

    @property
    def bits(self) -> int:
        """Width of the type in bits."""
        return _SIZES[self] * 8

    @property
    def is_float(self) -> bool:
        """True for the floating-point formats."""
        return self in (DataType.F_FLOAT, DataType.D_FLOAT)


_SIZES = {
    DataType.BYTE: 1,
    DataType.WORD: 2,
    DataType.LONG: 4,
    DataType.QUAD: 8,
    DataType.F_FLOAT: 4,
    DataType.D_FLOAT: 8,
}

#: Masks per byte width, indexed by size in bytes.  Every width 1..8 is
#: present (not just the architectural operand sizes), so chunked access
#: paths can index unconditionally — a page-straddling access can split
#: at any byte count.
MASKS = {size: (1 << (8 * size)) - 1 for size in range(1, 9)}

#: Sign bits per byte width.
SIGN_BITS = {size: 1 << (8 * size - 1) for size in range(1, 9)}


def mask(value: int, size: int) -> int:
    """Truncate ``value`` to an unsigned field of ``size`` bytes."""
    return value & MASKS[size]


def sign_extend(value: int, size: int) -> int:
    """Interpret the low ``size`` bytes of ``value`` as a signed integer."""
    value = value & MASKS[size]
    if value & SIGN_BITS[size]:
        return value - (MASKS[size] + 1)
    return value


def is_negative(value: int, size: int) -> bool:
    """True if ``value`` has its sign bit set for a ``size``-byte field."""
    return bool(value & SIGN_BITS[size])


def add_with_flags(a: int, b: int, size: int, carry_in: int = 0):
    """Add two unsigned fields, returning ``(result, n, z, v, c)``.

    Overflow (V) follows two's-complement rules; carry (C) is the VAX
    convention for ADD (carry out of the most significant bit).
    """
    raw = (a & MASKS[size]) + (b & MASKS[size]) + carry_in
    result = raw & MASKS[size]
    n = is_negative(result, size)
    z = result == 0
    c = raw > MASKS[size]
    sa, sb = is_negative(a, size), is_negative(b, size)
    v = (sa == sb) and (is_negative(result, size) != sa)
    return result, n, z, v, c


def sub_with_flags(a: int, b: int, size: int, borrow_in: int = 0):
    """Compute ``a - b`` on unsigned fields, returning ``(result, n, z, v, c)``.

    C is set on borrow, matching the VAX SUB/CMP convention.
    """
    raw = (a & MASKS[size]) - (b & MASKS[size]) - borrow_in
    result = raw & MASKS[size]
    n = is_negative(result, size)
    z = result == 0
    c = raw < 0
    sa, sb = is_negative(a, size), is_negative(b, size)
    v = (sa != sb) and (is_negative(result, size) == sb)
    return result, n, z, v, c


def f_float_encode(value: float) -> int:
    """Encode a Python float into a 32-bit VAX F_floating bit pattern.

    VAX F floating: sign bit, 8-bit excess-128 exponent, 23-bit fraction
    with a hidden leading 1 and a 0.5 <= f < 1 normalisation.  True zero is
    an all-zero pattern.  Values out of range are clamped to the largest
    finite magnitude; this simulator does not model reserved operands.
    """
    if value == 0.0:
        return 0
    sign = 0
    if value < 0:
        sign = 1
        value = -value
    import math

    m, e = math.frexp(value)  # value = m * 2**e with 0.5 <= m < 1
    exponent = e + 128
    if exponent <= 0:
        return 0  # underflow to zero
    if exponent > 255:
        exponent, m = 255, 0.9999999
    fraction = int((m - 0.5) * (1 << 24)) & 0x7FFFFF
    return (sign << 31) | (exponent << 23) | fraction


def f_float_decode(pattern: int) -> float:
    """Decode a 32-bit VAX F_floating bit pattern into a Python float."""
    pattern &= 0xFFFFFFFF
    exponent = (pattern >> 23) & 0xFF
    if exponent == 0:
        return 0.0  # true zero (sign ignored; reserved operands unmodeled)
    sign = -1.0 if pattern & 0x80000000 else 1.0
    fraction = pattern & 0x7FFFFF
    m = 0.5 + fraction / float(1 << 24)
    return sign * m * 2.0 ** (exponent - 128)
