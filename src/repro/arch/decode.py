"""Instruction decoding: I-stream bytes to :class:`Instruction` objects.

The decoder mirrors the 11/780's I-Decode stage at an architectural level:
it consumes an opcode byte, then one specifier per operand (honouring index
prefixes, PC modes and displacement widths), and finally any branch
displacement bytes.

CASEx instructions carry a displacement table in the I-stream whose length
depends on the *limit* operand.  The real machine discovers the table
length at execute time; a decode-cached simulator needs it statically, so
this subset requires CASEx limit operands to be short literals (which is
how compilers emit them).  :class:`DecodeError` is raised otherwise.
"""

from __future__ import annotations

from repro.arch.datatypes import sign_extend
from repro.arch.instruction import Instruction
from repro.arch.opcodes import OPCODES_BY_VALUE
from repro.arch.specifiers import AddressingMode, Specifier, pc_relative_mode


class DecodeError(Exception):
    """Raised for undecodable byte sequences (reserved or unsupported)."""


_DISP_SIZES = {0xA: 1, 0xB: 1, 0xC: 2, 0xD: 2, 0xE: 4, 0xF: 4}


def decode_specifier(fetch, addr: int, kind) -> Specifier:
    """Decode one operand specifier starting at ``addr``.

    Args:
        fetch: callable ``fetch(address) -> int`` returning one byte.
        addr: virtual address of the first specifier byte.
        kind: the :class:`~repro.arch.opcodes.OperandKind` being decoded
            (needed to size immediate data).

    Returns:
        A :class:`Specifier` with its total encoded ``length`` set.
    """
    start = addr
    first = fetch(addr)
    addr += 1

    index_register = None
    if (first >> 4) == 0x4:
        index_register = first & 0xF
        first = fetch(addr)
        addr += 1
        if (first >> 4) in (0x0, 0x1, 0x2, 0x3, 0x4, 0x5):
            raise DecodeError(
                f"illegal base specifier {first:#04x} after index prefix")

    nibble = first >> 4
    reg = first & 0xF

    if nibble <= 0x3:
        spec = Specifier(AddressingMode.SHORT_LITERAL, value=first & 0x3F)
    elif nibble == 0x4:
        raise DecodeError("index prefix may not follow an index prefix")
    elif nibble == 0x5:
        spec = Specifier(AddressingMode.REGISTER, register=reg)
    elif nibble == 0x6:
        spec = Specifier(AddressingMode.REGISTER_DEFERRED, register=reg)
    elif nibble == 0x7:
        spec = Specifier(AddressingMode.AUTODECREMENT, register=reg)
    elif nibble == 0x8:
        mode = pc_relative_mode(AddressingMode.AUTOINCREMENT, reg)
        if mode is AddressingMode.IMMEDIATE:
            size = kind.size
            value = 0
            for i in range(size):
                value |= fetch(addr + i) << (8 * i)
            addr += size
            spec = Specifier(mode, register=reg, value=value)
        else:
            spec = Specifier(mode, register=reg)
    elif nibble == 0x9:
        mode = pc_relative_mode(AddressingMode.AUTOINC_DEFERRED, reg)
        if mode is AddressingMode.ABSOLUTE:
            value = 0
            for i in range(4):
                value |= fetch(addr + i) << (8 * i)
            addr += 4
            spec = Specifier(mode, register=reg, value=value)
        else:
            spec = Specifier(mode, register=reg)
    else:
        disp_size = _DISP_SIZES[nibble]
        deferred = nibble in (0xB, 0xD, 0xF)
        raw = 0
        for i in range(disp_size):
            raw |= fetch(addr + i) << (8 * i)
        addr += disp_size
        disp = sign_extend(raw, disp_size)
        base = (AddressingMode.DISP_DEFERRED if deferred
                else AddressingMode.DISPLACEMENT)
        mode = pc_relative_mode(base, reg)
        spec = Specifier(mode, register=reg, displacement=disp,
                         disp_size=disp_size)

    spec.index_register = index_register
    spec.length = addr - start
    return spec


def decode_instruction(fetch, address: int) -> Instruction:
    """Decode a full instruction starting at ``address``.

    Args:
        fetch: callable ``fetch(address) -> int`` returning one byte of the
            I-stream (through the simulated virtual memory).
        address: virtual address of the opcode byte.
    """
    opcode_byte = fetch(address)
    info = OPCODES_BY_VALUE.get(opcode_byte)
    if info is None:
        raise DecodeError(
            f"reserved or unimplemented opcode {opcode_byte:#04x} "
            f"at {address:#010x}")

    addr = address + 1
    specifiers = []
    for kind in info.specifier_operands:
        spec = decode_specifier(fetch, addr, kind)
        addr += spec.length
        spec.end_offset = addr - address
        specifiers.append(spec)

    branch_displacement = None
    branch_kind = info.branch_operand
    if branch_kind is not None:
        size = 1 if branch_kind.dtype == "b" else 2
        raw = 0
        for i in range(size):
            raw |= fetch(addr + i) << (8 * i)
        addr += size
        branch_displacement = sign_extend(raw, size)

    case_table = None
    if info.family == "CASE":
        limit_spec = specifiers[2]
        if limit_spec.mode is not AddressingMode.SHORT_LITERAL:
            raise DecodeError(
                f"{info.mnemonic} limit must be a short literal in this "
                f"subset (decode caching needs a static table length)")
        entries = limit_spec.value + 1
        table = []
        for i in range(entries):
            raw = fetch(addr) | (fetch(addr + 1) << 8)
            table.append(sign_extend(raw, 2))
            addr += 2
        case_table = tuple(table)

    return Instruction(info, tuple(specifiers), branch_displacement,
                       case_table, addr - address, address)
