"""Disassembler: decoded instructions back to VAX MACRO text.

The inverse of :mod:`repro.asm`: useful for inspecting generated
workloads and the modeled kernel, for debugging execute flows, and for
the CLI's ``disasm`` command.  Output parses back through the text
assembler for every construct the assembler supports (round-trip tested).
"""

from __future__ import annotations

from repro.arch.decode import decode_instruction
from repro.arch.instruction import Instruction
from repro.arch.registers import REGISTER_NAMES
from repro.arch.specifiers import AddressingMode, Specifier

_M = AddressingMode


def _reg(n: int) -> str:
    return REGISTER_NAMES[n].lower()


def format_specifier(spec: Specifier, kind, inst: Instruction) -> str:
    """Render one operand specifier in VAX MACRO syntax."""
    mode = spec.mode
    if mode is _M.SHORT_LITERAL:
        return f"s^#{spec.value}"
    if mode is _M.REGISTER:
        body = _reg(spec.register)
    elif mode is _M.IMMEDIATE:
        body = f"i^#{spec.value}"
    elif mode is _M.ABSOLUTE:
        body = f"@#^x{spec.value:X}"
    elif mode is _M.REGISTER_DEFERRED:
        body = f"({_reg(spec.register)})"
    elif mode is _M.AUTOINCREMENT:
        body = f"({_reg(spec.register)})+"
    elif mode is _M.AUTODECREMENT:
        body = f"-({_reg(spec.register)})"
    elif mode is _M.AUTOINC_DEFERRED:
        body = f"@({_reg(spec.register)})+"
    elif mode is _M.DISPLACEMENT:
        body = f"{spec.displacement}({_reg(spec.register)})"
    elif mode is _M.DISP_DEFERRED:
        body = f"@{spec.displacement}({_reg(spec.register)})"
    elif mode is _M.RELATIVE:
        target = (inst.address + spec.end_offset + spec.displacement) \
            & 0xFFFFFFFF
        body = f"^x{target:X}"       # relative rendered as its target
    elif mode is _M.RELATIVE_DEFERRED:
        target = (inst.address + spec.end_offset + spec.displacement) \
            & 0xFFFFFFFF
        body = f"@^x{target:X}"
    else:  # pragma: no cover - exhaustive over AddressingMode
        body = f"?{mode.value}?"
    if spec.indexed:
        body += f"[{_reg(spec.index_register)}]"
    return body


def format_instruction(inst: Instruction) -> str:
    """Render a decoded instruction as one line of VAX MACRO."""
    parts = []
    for spec, kind in zip(inst.specifiers, inst.info.specifier_operands):
        parts.append(format_specifier(spec, kind, inst))
    if inst.branch_displacement is not None:
        parts.append(f"^x{inst.branch_target():X}")
    if inst.case_table is not None:
        table_len = 2 * len(inst.case_table)
        table_base = inst.address + inst.length - table_len
        targets = ", ".join(f"^x{(table_base + d) & 0xFFFFFFFF:X}"
                            for d in inst.case_table)
        parts.append(f"({targets})")
    mnemonic = inst.mnemonic.lower()
    if not parts:
        return mnemonic
    return f"{mnemonic:8s}{', '.join(parts)}"


class DisassembledLine:
    """One disassembled instruction with its raw bytes."""

    __slots__ = ("address", "raw", "text", "instruction")

    def __init__(self, address, raw, text, instruction) -> None:
        self.address = address
        self.raw = raw
        self.text = text
        self.instruction = instruction

    def __str__(self) -> str:
        hexbytes = " ".join(f"{b:02X}" for b in self.raw)
        return f"{self.address:08X}  {hexbytes:<24s}  {self.text}"


def disassemble(fetch, address: int, count: int = 1):
    """Disassemble ``count`` instructions starting at ``address``.

    ``fetch(addr) -> int`` supplies I-stream bytes (e.g. through a
    machine's translator).  Decoding stops early on an undecodable byte,
    emitting a ``.byte`` line for it.
    """
    from repro.arch.decode import DecodeError

    lines = []
    for _ in range(count):
        try:
            inst = decode_instruction(fetch, address)
        except DecodeError:
            raw = bytes([fetch(address)])
            lines.append(DisassembledLine(
                address, raw, f".byte   ^x{raw[0]:02X}", None))
            address += 1
            continue
        raw = bytes(fetch(address + i) for i in range(inst.length))
        lines.append(DisassembledLine(address, raw,
                                      format_instruction(inst), inst))
        address = inst.next_pc
    return lines


def disassemble_image(image, count: int = None):
    """Disassemble an assembled :class:`~repro.asm.program.Image`."""
    def fetch(addr):
        return image.data[addr - image.base]

    if count is None:
        count = 1 << 30
    lines = []
    address = image.base
    end = image.base + len(image.data)
    while address < end and len(lines) < count:
        chunk = disassemble(fetch, address, 1)
        lines.extend(chunk)
        address = chunk[-1].address + len(chunk[-1].raw)
    return lines


def disassemble_machine(machine, va: int, count: int = 16):
    """Disassemble live machine memory at virtual address ``va``."""
    translate = machine.translator.translate
    read_byte = machine.mem.memory.read_byte

    def fetch(addr):
        return read_byte(translate(addr & 0xFFFFFFFF))

    return disassemble(fetch, va, count)
