"""Instruction encoding: operand descriptions to VAX machine bytes.

The assembler front-end produces :class:`Operand` descriptions; this module
turns an opcode plus operands into the architectural byte encoding that the
decoder (and the simulated I-stream) consumes.

Encoding summary (first specifier byte ``mode<<4 | reg``)::

    modes 0-3   short literal, 6-bit value in the low six bits
    mode  4     index prefix [Rx], followed by the base specifier
    mode  5     register
    mode  6     register deferred
    mode  7     autodecrement
    mode  8     autoincrement; with reg=PC, immediate data follows
    mode  9     autoincrement deferred; with reg=PC, a 4-byte absolute
                address follows
    modes A/C/E displacement (byte/word/long), signed displacement follows
    modes B/D/F displacement deferred
"""

from __future__ import annotations

import struct

from repro.arch.opcodes import OpcodeInfo, OperandKind
from repro.arch.registers import PC
from repro.arch.specifiers import AddressingMode


class EncodeError(Exception):
    """Raised for operands that cannot be encoded as requested."""


class Operand:
    """An assembler-level operand awaiting encoding.

    Build instances with the module-level constructors (:func:`literal`,
    :func:`register`, :func:`displacement`, ...) rather than directly.
    """

    __slots__ = ("mode", "register", "value", "displacement", "disp_size",
                 "index_register")

    def __init__(self, mode, register=0, value=0, displacement=0,
                 disp_size=0, index_register=None):
        self.mode = mode
        self.register = register
        self.value = value
        self.displacement = displacement
        self.disp_size = disp_size
        self.index_register = index_register

    def indexed(self, index_register: int) -> "Operand":
        """Return a copy of this operand with an ``[Rx]`` index prefix."""
        if self.mode in (AddressingMode.SHORT_LITERAL,
                         AddressingMode.REGISTER,
                         AddressingMode.IMMEDIATE):
            raise EncodeError(f"{self.mode.name} specifiers cannot be indexed")
        return Operand(self.mode, self.register, self.value,
                       self.displacement, self.disp_size, index_register)

    def __repr__(self) -> str:
        return (f"Operand({self.mode.name}, reg={self.register}, "
                f"value={self.value}, disp={self.displacement})")


def literal(value: int) -> Operand:
    """Short literal ``S^#value`` (0..63)."""
    if not 0 <= value <= 63:
        raise EncodeError(f"short literal out of range: {value}")
    return Operand(AddressingMode.SHORT_LITERAL, value=value)


def register(reg: int) -> Operand:
    """Register mode ``Rn``."""
    return Operand(AddressingMode.REGISTER, register=reg)


def register_deferred(reg: int) -> Operand:
    """Register deferred ``(Rn)``."""
    return Operand(AddressingMode.REGISTER_DEFERRED, register=reg)


def autoincrement(reg: int) -> Operand:
    """Autoincrement ``(Rn)+``."""
    return Operand(AddressingMode.AUTOINCREMENT, register=reg)


def autodecrement(reg: int) -> Operand:
    """Autodecrement ``-(Rn)``."""
    return Operand(AddressingMode.AUTODECREMENT, register=reg)


def autoinc_deferred(reg: int) -> Operand:
    """Autoincrement deferred ``@(Rn)+``."""
    return Operand(AddressingMode.AUTOINC_DEFERRED, register=reg)


def immediate(value: int) -> Operand:
    """Immediate ``I^#value`` — constant follows in the I-stream."""
    return Operand(AddressingMode.IMMEDIATE, register=PC, value=value)


def absolute(address: int) -> Operand:
    """Absolute ``@#address``."""
    return Operand(AddressingMode.ABSOLUTE, register=PC, value=address)


def displacement(reg: int, disp: int, size: int = 0) -> Operand:
    """Displacement ``d(Rn)``; ``size`` forces B^/W^/L^ (0 = smallest)."""
    chosen = size or _smallest_disp_size(disp)
    return Operand(AddressingMode.DISPLACEMENT, register=reg,
                   displacement=disp, disp_size=chosen)


def disp_deferred(reg: int, disp: int, size: int = 0) -> Operand:
    """Displacement deferred ``@d(Rn)``."""
    chosen = size or _smallest_disp_size(disp)
    return Operand(AddressingMode.DISP_DEFERRED, register=reg,
                   displacement=disp, disp_size=chosen)


def _smallest_disp_size(disp: int) -> int:
    if -128 <= disp <= 127:
        return 1
    if -32768 <= disp <= 32767:
        return 2
    return 4


_MODE_NIBBLE = {
    AddressingMode.REGISTER: 0x5,
    AddressingMode.REGISTER_DEFERRED: 0x6,
    AddressingMode.AUTODECREMENT: 0x7,
    AddressingMode.AUTOINCREMENT: 0x8,
    AddressingMode.IMMEDIATE: 0x8,
    AddressingMode.AUTOINC_DEFERRED: 0x9,
    AddressingMode.ABSOLUTE: 0x9,
}

_DISP_NIBBLE = {1: 0xA, 2: 0xC, 4: 0xE}
_DISP_PACK = {1: "<b", 2: "<h", 4: "<i"}


def encode_operand(op: Operand, kind: OperandKind) -> bytes:
    """Encode one operand specifier (with any index prefix) to bytes."""
    mode = op.mode
    if op.index_register is None:
        # Single-byte encodings (registers and short literals dominate
        # generated programs) skip the bytearray entirely.
        if mode is AddressingMode.SHORT_LITERAL:
            return bytes((op.value & 0x3F,))
        nibble = _MODE_NIBBLE.get(mode)
        if nibble is not None and mode is not AddressingMode.IMMEDIATE \
                and mode is not AddressingMode.ABSOLUTE:
            return bytes(((nibble << 4) | (op.register & 0xF),))
    out = bytearray()
    if op.index_register is not None:
        out.append(0x40 | (op.index_register & 0xF))

    if mode is AddressingMode.SHORT_LITERAL:
        out.append(op.value & 0x3F)
    elif mode is AddressingMode.IMMEDIATE:
        out.append(0x8F)
        out += _pack_immediate(op.value, kind)
    elif mode is AddressingMode.ABSOLUTE:
        out.append(0x9F)
        out += struct.pack("<I", op.value & 0xFFFFFFFF)
    elif mode in (AddressingMode.DISPLACEMENT, AddressingMode.DISP_DEFERRED):
        nibble = _DISP_NIBBLE[op.disp_size]
        if mode is AddressingMode.DISP_DEFERRED:
            nibble += 1
        out.append((nibble << 4) | (op.register & 0xF))
        out += struct.pack(_DISP_PACK[op.disp_size], op.displacement)
    else:
        out.append((_MODE_NIBBLE[mode] << 4) | (op.register & 0xF))
    return bytes(out)


def _pack_immediate(value: int, kind: OperandKind) -> bytes:
    size = kind.size
    fmt = {1: "<B", 2: "<H", 4: "<I", 8: "<Q"}[size]
    return struct.pack(fmt, value & ((1 << (8 * size)) - 1))


def encode_instruction(info: OpcodeInfo, operands, branch_disp=None,
                       case_table=None) -> bytes:
    """Encode a whole instruction.

    Args:
        info: the opcode.
        operands: one :class:`Operand` per specifier operand of ``info``.
        branch_disp: signed displacement for opcodes with a branch operand,
            relative to the address *after* the encoded instruction.
        case_table: for CASEx only, a sequence of signed word displacements
            (limit + 1 entries) appended after the specifiers.

    Returns:
        The architectural byte encoding.
    """
    spec_kinds = info.specifier_operands
    if len(operands) != len(spec_kinds):
        raise EncodeError(
            f"{info.mnemonic} takes {len(spec_kinds)} specifier operands, "
            f"got {len(operands)}")

    out = bytearray([info.value])
    for op, kind in zip(operands, spec_kinds):
        out += encode_operand(op, kind)

    branch_kind = info.branch_operand
    if branch_kind is not None:
        if branch_disp is None:
            raise EncodeError(f"{info.mnemonic} requires a branch displacement")
        fmt = "<b" if branch_kind.dtype == "b" else "<h"
        out += struct.pack(fmt, branch_disp)
    elif branch_disp is not None:
        raise EncodeError(f"{info.mnemonic} takes no branch displacement")

    if info.family == "CASE":
        if case_table is None:
            raise EncodeError(f"{info.mnemonic} requires a case table")
        for disp in case_table:
            out += struct.pack("<h", disp)
    elif case_table is not None:
        raise EncodeError(f"{info.mnemonic} takes no case table")

    return bytes(out)
