"""The paper's opcode-group taxonomy (Table 1 of Emer & Clark 1984).

Every opcode in the simulated subset belongs to exactly one of these seven
groups.  Group membership drives Table 1 (group frequency), the execute
rows of Table 8, and Table 9 (cycles per instruction within each group).
"""

from __future__ import annotations

import enum


class OpcodeGroup(enum.Enum):
    """Instruction group, as defined by Table 1 of the paper."""

    SIMPLE = "Simple"
    FIELD = "Field"
    FLOAT = "Float"
    CALLRET = "Call/Ret"
    SYSTEM = "System"
    CHARACTER = "Character"
    DECIMAL = "Decimal"


#: Table 1 constituents, verbatim from the paper, for documentation and
#: for the report module's reference rendering.
GROUP_CONSTITUENTS = {
    OpcodeGroup.SIMPLE: (
        "Move instructions; simple arithmetic operations; boolean "
        "operations; simple and loop branches; subroutine call and return"
    ),
    OpcodeGroup.FIELD: "Bit field operations",
    OpcodeGroup.FLOAT: "Floating point; integer multiply/divide",
    OpcodeGroup.CALLRET: (
        "Procedure call and return; multi-register push and pop"
    ),
    OpcodeGroup.SYSTEM: (
        "Privileged operations; context switch instructions; system "
        "service requests and return; queue manipulation; protection "
        "probe instructions"
    ),
    OpcodeGroup.CHARACTER: "Character string instructions",
    OpcodeGroup.DECIMAL: "Decimal instructions",
}

#: Display order used by the paper's tables.
GROUP_ORDER = (
    OpcodeGroup.SIMPLE,
    OpcodeGroup.FIELD,
    OpcodeGroup.FLOAT,
    OpcodeGroup.CALLRET,
    OpcodeGroup.SYSTEM,
    OpcodeGroup.CHARACTER,
    OpcodeGroup.DECIMAL,
)
