"""Decoded-instruction representation shared by the decoder and the CPU."""

from __future__ import annotations

from repro.arch.opcodes import OpcodeInfo


class Instruction:
    """One decoded VAX instruction.

    Instances are immutable in practice and cached by physical address in
    the CPU's decode cache, so they carry everything the execution engine
    needs: the opcode info, the decoded specifiers (parallel to
    ``info.specifier_operands``), the raw branch displacement (if any),
    the CASE displacement table (if any), and the total encoded length.
    """

    __slots__ = ("info", "specifiers", "branch_displacement",
                 "case_table", "length", "address", "trace_rec",
                 "fused_upc", "eval_plan", "exec_info")

    def __init__(self, info: OpcodeInfo, specifiers, branch_displacement,
                 case_table, length: int, address: int) -> None:
        self.info = info
        self.specifiers = specifiers
        self.branch_displacement = branch_displacement
        self.case_table = case_table
        self.length = length
        self.address = address
        #: Lazily-built caches for the hot loop, all pure functions of
        #: the decoded instruction and computed on first execution: the
        #: tracer's per-instruction record, the literal/register
        #: fused-cycle µPC (False = not fusable), the compiled operand
        #: specifier evaluation plan, and the machine's per-instruction
        #: dispatch tuple.
        self.trace_rec = None
        self.fused_upc = None
        self.eval_plan = None
        self.exec_info = None

    @property
    def mnemonic(self) -> str:
        """The opcode mnemonic."""
        return self.info.mnemonic

    @property
    def next_pc(self) -> int:
        """Address of the following instruction (fall-through path)."""
        return (self.address + self.length) & 0xFFFFFFFF

    def branch_target(self) -> int:
        """Target of the branch displacement, relative to next_pc."""
        if self.branch_displacement is None:
            raise ValueError(f"{self.mnemonic} has no branch displacement")
        return (self.next_pc + self.branch_displacement) & 0xFFFFFFFF

    def __repr__(self) -> str:
        specs = ", ".join(repr(s) for s in self.specifiers)
        return (f"Instruction({self.mnemonic} @ {self.address:#010x}, "
                f"len={self.length}, [{specs}])")
