"""The VAX opcode subset simulated by this reproduction.

Each :class:`OpcodeInfo` records the architectural opcode byte, the operand
signature, the paper's Table 1 group, and a *microcode family*.  The family
models the 11/780's microcode sharing: opcodes in the same family dispatch
to the same execute micro-routine (so, as in the paper, the µPC histogram
cannot tell ADDL2 from SUBL2 — only the family count is observable), while
architectural semantics still come from the per-opcode executor.

Operand signatures use the architecture manual's notation: a two-character
code of *access type* then *data type*.  Access types::

    r  read          w  write         m  modify
    a  address       v  variable bit field base
    b  branch displacement (raw bytes in the I-stream, not a specifier)

Data types are ``b w l q f d`` (byte, word, longword, quadword, F_floating,
D_floating).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.groups import OpcodeGroup


_DTYPE_SIZES = {"b": 1, "w": 2, "l": 4, "q": 8, "f": 4, "d": 8}


@dataclass(frozen=True)
class OperandKind:
    """One entry in an opcode's operand signature.

    ``is_branch_displacement`` and ``size`` are precomputed in
    ``__post_init__``: the decoder and the specifier-evaluation hot loop
    consult them on every instruction execution.
    """

    access: str  #: one of r w m a v b
    dtype: str   #: one of b w l q f d

    def __post_init__(self) -> None:
        object.__setattr__(self, "is_branch_displacement",
                           self.access == "b")
        object.__setattr__(self, "size", _DTYPE_SIZES[self.dtype])

    def __str__(self) -> str:
        return f"{self.access}{self.dtype}"


@dataclass(frozen=True)
class OpcodeInfo:
    """Static description of one VAX opcode.

    ``specifier_operands`` and ``branch_operand`` are derived once in
    ``__post_init__`` rather than per access — the instruction loop reads
    both on every executed instruction.
    """

    mnemonic: str
    value: int                    #: architectural opcode byte
    operands: tuple               #: tuple of OperandKind
    group: OpcodeGroup            #: Table 1 group
    family: str                   #: shared execute micro-routine name

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "specifier_operands",
            tuple(op for op in self.operands
                  if not op.is_branch_displacement))
        branch = None
        for op in self.operands:
            if op.is_branch_displacement:
                branch = op
                break
        object.__setattr__(self, "branch_operand", branch)

    def __str__(self) -> str:
        return self.mnemonic


def _ops(signature: str) -> tuple:
    """Parse ``"rl rl wl"`` into a tuple of OperandKind."""
    if not signature:
        return ()
    return tuple(OperandKind(tok[0], tok[1]) for tok in signature.split())


_S = OpcodeGroup.SIMPLE
_FI = OpcodeGroup.FIELD
_FL = OpcodeGroup.FLOAT
_CR = OpcodeGroup.CALLRET
_SY = OpcodeGroup.SYSTEM
_CH = OpcodeGroup.CHARACTER
_DE = OpcodeGroup.DECIMAL

#: (mnemonic, opcode byte, signature, group, family)
_TABLE = [
    # --- moves and related (SIMPLE) ------------------------------------
    ("MOVB", 0x90, "rb wb", _S, "MOV"),
    ("MOVW", 0xB0, "rw ww", _S, "MOV"),
    ("MOVL", 0xD0, "rl wl", _S, "MOV"),
    ("MOVQ", 0x7D, "rq wq", _S, "MOVQ"),
    ("MOVZBW", 0x9B, "rb ww", _S, "MOVZ"),
    ("MOVZBL", 0x9A, "rb wl", _S, "MOVZ"),
    ("MOVZWL", 0x3C, "rw wl", _S, "MOVZ"),
    ("MCOMB", 0x92, "rb wb", _S, "MCOM"),
    ("MCOMW", 0xB2, "rw ww", _S, "MCOM"),
    ("MCOML", 0xD2, "rl wl", _S, "MCOM"),
    ("MNEGB", 0x8E, "rb wb", _S, "MNEG"),
    ("MNEGW", 0xAE, "rw ww", _S, "MNEG"),
    ("MNEGL", 0xCE, "rl wl", _S, "MNEG"),
    ("CLRB", 0x94, "wb", _S, "CLR"),
    ("CLRW", 0xB4, "ww", _S, "CLR"),
    ("CLRL", 0xD4, "wl", _S, "CLR"),
    ("CLRQ", 0x7C, "wq", _S, "CLRQ"),
    ("CVTBW", 0x99, "rb ww", _S, "CVT_INT"),
    ("CVTBL", 0x98, "rb wl", _S, "CVT_INT"),
    ("CVTWB", 0x33, "rw wb", _S, "CVT_INT"),
    ("CVTWL", 0x32, "rw wl", _S, "CVT_INT"),
    ("CVTLB", 0xF6, "rl wb", _S, "CVT_INT"),
    ("CVTLW", 0xF7, "rl ww", _S, "CVT_INT"),
    ("MOVAB", 0x9E, "ab wl", _S, "MOVA"),
    ("MOVAW", 0x3E, "aw wl", _S, "MOVA"),
    ("MOVAL", 0xDE, "al wl", _S, "MOVA"),
    ("MOVAQ", 0x7E, "aq wl", _S, "MOVA"),
    ("PUSHAB", 0x9F, "ab", _S, "PUSHA"),
    ("PUSHAW", 0x3F, "aw", _S, "PUSHA"),
    ("PUSHAL", 0xDF, "al", _S, "PUSHA"),
    ("PUSHAQ", 0x7F, "aq", _S, "PUSHA"),
    ("PUSHL", 0xDD, "rl", _S, "PUSHL"),
    # --- integer arithmetic (SIMPLE) -----------------------------------
    ("ADDB2", 0x80, "rb mb", _S, "ADDSUB"),
    ("ADDB3", 0x81, "rb rb wb", _S, "ADDSUB"),
    ("SUBB2", 0x82, "rb mb", _S, "ADDSUB"),
    ("SUBB3", 0x83, "rb rb wb", _S, "ADDSUB"),
    ("ADDW2", 0xA0, "rw mw", _S, "ADDSUB"),
    ("ADDW3", 0xA1, "rw rw ww", _S, "ADDSUB"),
    ("SUBW2", 0xA2, "rw mw", _S, "ADDSUB"),
    ("SUBW3", 0xA3, "rw rw ww", _S, "ADDSUB"),
    ("ADDL2", 0xC0, "rl ml", _S, "ADDSUB"),
    ("ADDL3", 0xC1, "rl rl wl", _S, "ADDSUB"),
    ("SUBL2", 0xC2, "rl ml", _S, "ADDSUB"),
    ("SUBL3", 0xC3, "rl rl wl", _S, "ADDSUB"),
    ("INCB", 0x96, "mb", _S, "INCDEC"),
    ("INCW", 0xB6, "mw", _S, "INCDEC"),
    ("INCL", 0xD6, "ml", _S, "INCDEC"),
    ("DECB", 0x97, "mb", _S, "INCDEC"),
    ("DECW", 0xB7, "mw", _S, "INCDEC"),
    ("DECL", 0xD7, "ml", _S, "INCDEC"),
    ("ADWC", 0xD8, "rl ml", _S, "ADWC"),
    ("SBWC", 0xD9, "rl ml", _S, "ADWC"),
    ("ADAWI", 0x58, "rw mw", _S, "ADAWI"),
    ("ASHL", 0x78, "rb rl wl", _S, "ASH"),
    ("ASHQ", 0x79, "rb rq wq", _S, "ASHQ"),
    ("ROTL", 0x9C, "rb rl wl", _S, "ROT"),
    ("BISPSW", 0xB8, "rw", _S, "PSW"),
    ("BICPSW", 0xB9, "rw", _S, "PSW"),
    ("INDEX", 0x0A, "rl rl rl rl rl wl", _S, "INDEX"),
    # --- boolean / compare / test (SIMPLE) ------------------------------
    ("BISB2", 0x88, "rb mb", _S, "LOGICAL"),
    ("BISB3", 0x89, "rb rb wb", _S, "LOGICAL"),
    ("BICB2", 0x8A, "rb mb", _S, "LOGICAL"),
    ("BICB3", 0x8B, "rb rb wb", _S, "LOGICAL"),
    ("XORB2", 0x8C, "rb mb", _S, "LOGICAL"),
    ("XORB3", 0x8D, "rb rb wb", _S, "LOGICAL"),
    ("BISW2", 0xA8, "rw mw", _S, "LOGICAL"),
    ("BISW3", 0xA9, "rw rw ww", _S, "LOGICAL"),
    ("BICW2", 0xAA, "rw mw", _S, "LOGICAL"),
    ("BICW3", 0xAB, "rw rw ww", _S, "LOGICAL"),
    ("XORW2", 0xAC, "rw mw", _S, "LOGICAL"),
    ("XORW3", 0xAD, "rw rw ww", _S, "LOGICAL"),
    ("BISL2", 0xC8, "rl ml", _S, "LOGICAL"),
    ("BISL3", 0xC9, "rl rl wl", _S, "LOGICAL"),
    ("BICL2", 0xCA, "rl ml", _S, "LOGICAL"),
    ("BICL3", 0xCB, "rl rl wl", _S, "LOGICAL"),
    ("XORL2", 0xCC, "rl ml", _S, "LOGICAL"),
    ("XORL3", 0xCD, "rl rl wl", _S, "LOGICAL"),
    ("BITB", 0x93, "rb rb", _S, "BIT"),
    ("BITW", 0xB3, "rw rw", _S, "BIT"),
    ("BITL", 0xD3, "rl rl", _S, "BIT"),
    ("CMPB", 0x91, "rb rb", _S, "CMP"),
    ("CMPW", 0xB1, "rw rw", _S, "CMP"),
    ("CMPL", 0xD1, "rl rl", _S, "CMP"),
    ("TSTB", 0x95, "rb", _S, "TST"),
    ("TSTW", 0xB5, "rw", _S, "TST"),
    ("TSTL", 0xD5, "rl", _S, "TST"),
    ("NOP", 0x01, "", _S, "NOP"),
    # --- simple branches (SIMPLE; BRB/BRW share BCOND microcode, as the
    # --- paper notes in its Table 2 discussion) -------------------------
    ("BRB", 0x11, "bb", _S, "BCOND"),
    ("BRW", 0x31, "bw", _S, "BCOND"),
    ("BNEQ", 0x12, "bb", _S, "BCOND"),
    ("BEQL", 0x13, "bb", _S, "BCOND"),
    ("BGTR", 0x14, "bb", _S, "BCOND"),
    ("BLEQ", 0x15, "bb", _S, "BCOND"),
    ("BGEQ", 0x18, "bb", _S, "BCOND"),
    ("BLSS", 0x19, "bb", _S, "BCOND"),
    ("BGTRU", 0x1A, "bb", _S, "BCOND"),
    ("BLEQU", 0x1B, "bb", _S, "BCOND"),
    ("BVC", 0x1C, "bb", _S, "BCOND"),
    ("BVS", 0x1D, "bb", _S, "BCOND"),
    ("BCC", 0x1E, "bb", _S, "BCOND"),
    ("BCS", 0x1F, "bb", _S, "BCOND"),
    ("JMP", 0x17, "al", _S, "JMP"),
    ("BSBB", 0x10, "bb", _S, "BSB"),
    ("BSBW", 0x30, "bw", _S, "BSB"),
    ("JSB", 0x16, "al", _S, "JSB"),
    ("RSB", 0x05, "", _S, "RSB"),
    ("CASEB", 0x8F, "rb rb rb", _S, "CASE"),
    ("CASEW", 0xAF, "rw rw rw", _S, "CASE"),
    ("CASEL", 0xCF, "rl rl rl", _S, "CASE"),
    # --- loop branches (SIMPLE) -----------------------------------------
    ("AOBLSS", 0xF2, "rl ml bb", _S, "AOB"),
    ("AOBLEQ", 0xF3, "rl ml bb", _S, "AOB"),
    ("SOBGEQ", 0xF4, "ml bb", _S, "SOB"),
    ("SOBGTR", 0xF5, "ml bb", _S, "SOB"),
    ("ACBB", 0x9D, "rb rb mb bw", _S, "ACB"),
    ("ACBW", 0x3D, "rw rw mw bw", _S, "ACB"),
    ("ACBL", 0xF1, "rl rl ml bw", _S, "ACB"),
    # --- low-bit tests (SIMPLE, per Table 2) -----------------------------
    ("BLBS", 0xE8, "rl bb", _S, "BLB"),
    ("BLBC", 0xE9, "rl bb", _S, "BLB"),
    # --- bit field operations (FIELD) ------------------------------------
    ("EXTV", 0xEE, "rl rb vb wl", _FI, "EXT"),
    ("EXTZV", 0xEF, "rl rb vb wl", _FI, "EXT"),
    ("INSV", 0xF0, "rl rl rb vb", _FI, "INSV"),
    ("CMPV", 0xEC, "rl rb vb rl", _FI, "CMPV"),
    ("CMPZV", 0xED, "rl rb vb rl", _FI, "CMPV"),
    ("FFS", 0xEA, "rl rb vb wl", _FI, "FF"),
    ("FFC", 0xEB, "rl rb vb wl", _FI, "FF"),
    # --- bit branches (FIELD, per Table 2) -------------------------------
    ("BBS", 0xE0, "rl vb bb", _FI, "BB"),
    ("BBC", 0xE1, "rl vb bb", _FI, "BB"),
    ("BBSS", 0xE2, "rl vb bb", _FI, "BB"),
    ("BBCS", 0xE3, "rl vb bb", _FI, "BB"),
    ("BBSC", 0xE4, "rl vb bb", _FI, "BB"),
    ("BBCC", 0xE5, "rl vb bb", _FI, "BB"),
    ("BBSSI", 0xE6, "rl vb bb", _FI, "BB"),
    ("BBCCI", 0xE7, "rl vb bb", _FI, "BB"),
    # --- floating point and integer multiply/divide (FLOAT) --------------
    ("ADDF2", 0x40, "rf mf", _FL, "FADDSUB"),
    ("ADDF3", 0x41, "rf rf wf", _FL, "FADDSUB"),
    ("SUBF2", 0x42, "rf mf", _FL, "FADDSUB"),
    ("SUBF3", 0x43, "rf rf wf", _FL, "FADDSUB"),
    ("MULF2", 0x44, "rf mf", _FL, "FMULDIV"),
    ("MULF3", 0x45, "rf rf wf", _FL, "FMULDIV"),
    ("DIVF2", 0x46, "rf mf", _FL, "FMULDIV"),
    ("DIVF3", 0x47, "rf rf wf", _FL, "FMULDIV"),
    ("CVTFB", 0x48, "rf wb", _FL, "FCVT"),
    ("CVTFW", 0x49, "rf ww", _FL, "FCVT"),
    ("CVTFL", 0x4A, "rf wl", _FL, "FCVT"),
    ("CVTRFL", 0x4B, "rf wl", _FL, "FCVT"),
    ("CVTBF", 0x4C, "rb wf", _FL, "FCVT"),
    ("CVTWF", 0x4D, "rw wf", _FL, "FCVT"),
    ("CVTLF", 0x4E, "rl wf", _FL, "FCVT"),
    ("MOVF", 0x50, "rf wf", _FL, "FMOV"),
    ("MNEGF", 0x52, "rf wf", _FL, "FMOV"),
    ("CMPF", 0x51, "rf rf", _FL, "FCMP"),
    ("TSTF", 0x53, "rf", _FL, "FCMP"),
    ("ADDD2", 0x60, "rd md", _FL, "DADDSUB"),
    ("ADDD3", 0x61, "rd rd wd", _FL, "DADDSUB"),
    ("SUBD2", 0x62, "rd md", _FL, "DADDSUB"),
    ("SUBD3", 0x63, "rd rd wd", _FL, "DADDSUB"),
    ("MULD2", 0x64, "rd md", _FL, "DMULDIV"),
    ("MULD3", 0x65, "rd rd wd", _FL, "DMULDIV"),
    ("DIVD2", 0x66, "rd md", _FL, "DMULDIV"),
    ("DIVD3", 0x67, "rd rd wd", _FL, "DMULDIV"),
    ("MOVD", 0x70, "rd wd", _FL, "DMOV"),
    ("CMPD", 0x71, "rd rd", _FL, "DCMP"),
    ("MNEGD", 0x72, "rd wd", _FL, "DMOV"),
    ("TSTD", 0x73, "rd", _FL, "DCMP"),
    ("CVTFD", 0x56, "rf wd", _FL, "DCVT"),
    ("CVTDF", 0x76, "rd wf", _FL, "DCVT"),
    ("CVTDL", 0x6A, "rd wl", _FL, "DCVT"),
    ("CVTLD", 0x6E, "rl wd", _FL, "DCVT"),
    ("MULB2", 0x84, "rb mb", _FL, "MULDIV_INT"),
    ("MULB3", 0x85, "rb rb wb", _FL, "MULDIV_INT"),
    ("DIVB2", 0x86, "rb mb", _FL, "MULDIV_INT"),
    ("DIVB3", 0x87, "rb rb wb", _FL, "MULDIV_INT"),
    ("MULW2", 0xA4, "rw mw", _FL, "MULDIV_INT"),
    ("MULW3", 0xA5, "rw rw ww", _FL, "MULDIV_INT"),
    ("DIVW2", 0xA6, "rw mw", _FL, "MULDIV_INT"),
    ("DIVW3", 0xA7, "rw rw ww", _FL, "MULDIV_INT"),
    ("MULL2", 0xC4, "rl ml", _FL, "MULDIV_INT"),
    ("MULL3", 0xC5, "rl rl wl", _FL, "MULDIV_INT"),
    ("DIVL2", 0xC6, "rl ml", _FL, "MULDIV_INT"),
    ("DIVL3", 0xC7, "rl rl wl", _FL, "MULDIV_INT"),
    ("EMUL", 0x7A, "rl rl rl wq", _FL, "EMUL"),
    ("EDIV", 0x7B, "rl rq wl wl", _FL, "EDIV"),
    # --- procedure call and return (CALL/RET) -----------------------------
    ("CALLG", 0xFA, "al al", _CR, "CALL"),
    ("CALLS", 0xFB, "rl al", _CR, "CALL"),
    ("RET", 0x04, "", _CR, "RET"),
    ("PUSHR", 0xBB, "rw", _CR, "PUSHR"),
    ("POPR", 0xBA, "rw", _CR, "POPR"),
    # --- system instructions (SYSTEM) --------------------------------------
    ("CHMK", 0xBC, "rw", _SY, "CHM"),
    ("CHME", 0xBD, "rw", _SY, "CHM"),
    ("CHMS", 0xBE, "rw", _SY, "CHM"),
    ("CHMU", 0xBF, "rw", _SY, "CHM"),
    ("REI", 0x02, "", _SY, "REI"),
    ("SVPCTX", 0x07, "", _SY, "SVPCTX"),
    ("LDPCTX", 0x06, "", _SY, "LDPCTX"),
    ("PROBER", 0x0C, "rb rw ab", _SY, "PROBE"),
    ("PROBEW", 0x0D, "rb rw ab", _SY, "PROBE"),
    ("INSQUE", 0x0E, "ab ab", _SY, "INSQUE"),
    ("REMQUE", 0x0F, "ab wl", _SY, "REMQUE"),
    ("MTPR", 0xDA, "rl rl", _SY, "MTPR"),
    ("MFPR", 0xDB, "rl wl", _SY, "MFPR"),
    ("HALT", 0x00, "", _SY, "HALT"),
    # --- character string instructions (CHARACTER) --------------------------
    ("MOVC3", 0x28, "rw ab ab", _CH, "MOVC"),
    ("MOVC5", 0x2C, "rw ab rb rw ab", _CH, "MOVC"),
    ("CMPC3", 0x29, "rw ab ab", _CH, "CMPC"),
    ("CMPC5", 0x2D, "rw ab rb rw ab", _CH, "CMPC"),
    ("LOCC", 0x3A, "rb rw ab", _CH, "LOCC"),
    ("SKPC", 0x3B, "rb rw ab", _CH, "LOCC"),
    ("SCANC", 0x2A, "rw ab ab rb", _CH, "SCANC"),
    ("SPANC", 0x2B, "rw ab ab rb", _CH, "SCANC"),
    ("MOVTC", 0x2E, "rw ab rb ab rw ab", _CH, "MOVTC"),
    # --- decimal string instructions (DECIMAL) -------------------------------
    ("MOVP", 0x34, "rw ab ab", _DE, "MOVP"),
    ("CMPP3", 0x35, "rw ab ab", _DE, "CMPP"),
    ("ADDP4", 0x20, "rw ab rw ab", _DE, "ADDP"),
    ("SUBP4", 0x22, "rw ab rw ab", _DE, "ADDP"),
    ("ADDP6", 0x21, "rw ab rw ab rw ab", _DE, "ADDP"),
    ("SUBP6", 0x23, "rw ab rw ab rw ab", _DE, "ADDP"),
    ("CVTLP", 0xF9, "rl rw ab", _DE, "CVTLP"),
    ("CVTPL", 0x36, "rw ab wl", _DE, "CVTPL"),
]

#: Opcode byte -> OpcodeInfo.
OPCODES_BY_VALUE = {}
#: Mnemonic -> OpcodeInfo.
OPCODES_BY_NAME = {}


def _build_tables() -> None:
    for mnemonic, value, signature, group, family in _TABLE:
        info = OpcodeInfo(mnemonic, value, _ops(signature), group, family)
        if value in OPCODES_BY_VALUE:
            raise AssertionError(f"duplicate opcode value {value:#04x}")
        if mnemonic in OPCODES_BY_NAME:
            raise AssertionError(f"duplicate mnemonic {mnemonic}")
        OPCODES_BY_VALUE[value] = info
        OPCODES_BY_NAME[mnemonic] = info


_build_tables()

#: All opcode infos in table order.
ALL_OPCODES = tuple(OPCODES_BY_NAME.values())

#: All distinct microcode families, in first-appearance order.
ALL_FAMILIES = tuple(dict.fromkeys(info.family for info in ALL_OPCODES))


def opcode(name: str) -> OpcodeInfo:
    """Look up an opcode by mnemonic (case-insensitive)."""
    key = name.upper()
    if key not in OPCODES_BY_NAME:
        raise KeyError(f"unknown opcode mnemonic: {name!r}")
    return OPCODES_BY_NAME[key]


def opcodes_in_group(group) -> tuple:
    """All opcodes belonging to a Table 1 group."""
    return tuple(info for info in ALL_OPCODES if info.group == group)
