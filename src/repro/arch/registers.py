"""VAX general register definitions and the processor status longword.

The VAX has sixteen 32-bit general registers.  R12-R15 have architectural
roles: AP (argument pointer), FP (frame pointer), SP (stack pointer) and PC
(program counter).  The PSL carries the condition codes, the trap-enable
bits, the interrupt priority level (IPL) and the current access mode.
"""

from __future__ import annotations

#: Architectural register numbers.
R0, R1, R2, R3, R4, R5 = 0, 1, 2, 3, 4, 5
R6, R7, R8, R9, R10, R11 = 6, 7, 8, 9, 10, 11
AP, FP, SP, PC = 12, 13, 14, 15

#: Conventional names indexed by register number.
REGISTER_NAMES = (
    "R0", "R1", "R2", "R3", "R4", "R5", "R6", "R7",
    "R8", "R9", "R10", "R11", "AP", "FP", "SP", "PC",
)

#: Name -> number map accepting both Rn and role aliases.
REGISTER_NUMBERS = {name: i for i, name in enumerate(REGISTER_NAMES)}
REGISTER_NUMBERS.update({"R12": AP, "R13": FP, "R14": SP, "R15": PC})


def register_number(name: str) -> int:
    """Resolve a register name (``R3``, ``SP``, ``r7``...) to its number."""
    key = name.upper()
    if key not in REGISTER_NUMBERS:
        raise ValueError(f"unknown register name: {name!r}")
    return REGISTER_NUMBERS[key]


class ConditionCodes:
    """The N, Z, V, C condition code bits of the PSL.

    Kept as a small mutable object because execute flows update it on
    nearly every instruction; the PSL object exposes it as ``psl.cc``.
    """

    __slots__ = ("n", "z", "v", "c")

    def __init__(self, n: bool = False, z: bool = False,
                 v: bool = False, c: bool = False) -> None:
        self.n = n
        self.z = z
        self.v = v
        self.c = c

    def set(self, n=None, z=None, v=None, c=None) -> None:
        """Update any subset of the four condition bits."""
        if n is not None:
            self.n = bool(n)
        if z is not None:
            self.z = bool(z)
        if v is not None:
            self.v = bool(v)
        if c is not None:
            self.c = bool(c)

    def as_bits(self) -> int:
        """Pack into the low nibble of the PSW (C=bit0 ... N=bit3)."""
        return (int(self.n) << 3) | (int(self.z) << 2) | \
               (int(self.v) << 1) | int(self.c)

    def load_bits(self, bits: int) -> None:
        """Unpack from the low nibble of a PSW image."""
        self.n = bool(bits & 8)
        self.z = bool(bits & 4)
        self.v = bool(bits & 2)
        self.c = bool(bits & 1)

    def __repr__(self) -> str:
        return (f"ConditionCodes(n={int(self.n)}, z={int(self.z)}, "
                f"v={int(self.v)}, c={int(self.c)})")


#: Access modes, most to least privileged.
KERNEL, EXECUTIVE, SUPERVISOR, USER = 0, 1, 2, 3

ACCESS_MODE_NAMES = ("kernel", "executive", "supervisor", "user")


class PSL:
    """Processor status longword: condition codes, IPL and access modes.

    Only the fields this study observes are modeled: the condition codes
    (PSW<3:0>), the interrupt priority level (PSL<20:16>) and the current /
    previous access modes (PSL<25:24> and <23:22>).  Trap-enable bits exist
    in the image but have no behaviour here.
    """

    __slots__ = ("cc", "ipl", "current_mode", "previous_mode", "trap_enables")

    def __init__(self) -> None:
        self.cc = ConditionCodes()
        self.ipl = 0
        self.current_mode = KERNEL
        self.previous_mode = KERNEL
        self.trap_enables = 0

    def as_long(self) -> int:
        """Pack into the architectural 32-bit PSL image."""
        return (self.cc.as_bits()
                | (self.trap_enables & 0xF0)
                | ((self.ipl & 0x1F) << 16)
                | ((self.previous_mode & 3) << 22)
                | ((self.current_mode & 3) << 24))

    def load_long(self, image: int) -> None:
        """Unpack from a 32-bit PSL image (as REI does)."""
        self.cc.load_bits(image & 0xF)
        self.trap_enables = image & 0xF0
        self.ipl = (image >> 16) & 0x1F
        self.previous_mode = (image >> 22) & 3
        self.current_mode = (image >> 24) & 3

    def __repr__(self) -> str:
        return (f"PSL(ipl={self.ipl}, mode={ACCESS_MODE_NAMES[self.current_mode]}, "
                f"cc={self.cc!r})")
