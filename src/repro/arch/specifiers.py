"""VAX operand specifier addressing modes.

An operand specifier is one or more bytes in the instruction stream that
say where an operand lives.  The first byte's high nibble selects the
addressing mode; the low nibble names a register (or, for modes 0-3, forms
part of a 6-bit short literal).  Mode 4 is an *index prefix*: the indexed
specifier is the index byte followed by a complete base specifier.

Register number 15 (PC) turns the autoincrement family into the
program-counter modes: immediate ``(PC)+``, absolute ``@#``, and the
byte/word/longword *relative* modes used for position-independent code.

Table 4 of the paper reports the dynamic distribution of these modes; the
:attr:`AddressingMode.table4_category` property maps each mode onto the
paper's row labels.
"""

from __future__ import annotations

import enum

from repro.arch.registers import PC


class AddressingMode(enum.Enum):
    """A decoded VAX addressing mode (index handled as a flag, not a mode)."""

    SHORT_LITERAL = "literal"          # modes 0-3: S^#n
    REGISTER = "register"              # mode 5:   Rn
    REGISTER_DEFERRED = "reg_deferred"  # mode 6:   (Rn)
    AUTODECREMENT = "autodecrement"    # mode 7:   -(Rn)
    AUTOINCREMENT = "autoincrement"    # mode 8:   (Rn)+
    IMMEDIATE = "immediate"            # mode 8, Rn=PC: I^#n
    AUTOINC_DEFERRED = "autoinc_deferred"  # mode 9: @(Rn)+
    ABSOLUTE = "absolute"              # mode 9, Rn=PC: @#addr
    DISPLACEMENT = "displacement"      # modes A/C/E: B^d(Rn), W^, L^
    DISP_DEFERRED = "disp_deferred"    # modes B/D/F: @B^d(Rn), @W^, @L^
    RELATIVE = "relative"              # modes A/C/E, Rn=PC
    RELATIVE_DEFERRED = "relative_deferred"  # modes B/D/F, Rn=PC

    @property
    def is_memory(self) -> bool:
        """True when the operand datum lives in memory."""
        return self not in (AddressingMode.SHORT_LITERAL,
                            AddressingMode.REGISTER,
                            AddressingMode.IMMEDIATE)

    @property
    def table4_category(self) -> str:
        """The row of the paper's Table 4 this mode is tallied under."""
        return _TABLE4_CATEGORY[self]


#: Table 4 row labels, in the paper's order.
TABLE4_ROWS = (
    "Register",
    "Short literal",
    "Immediate",
    "Displacement",
    "Register deferred",
    "Autoincrement",
    "Autodecrement",
    "Disp. deferred",
    "Absolute",
    "Autoinc. deferred",
)

_TABLE4_CATEGORY = {
    AddressingMode.REGISTER: "Register",
    AddressingMode.SHORT_LITERAL: "Short literal",
    AddressingMode.IMMEDIATE: "Immediate",
    AddressingMode.DISPLACEMENT: "Displacement",
    AddressingMode.RELATIVE: "Displacement",
    AddressingMode.REGISTER_DEFERRED: "Register deferred",
    AddressingMode.AUTOINCREMENT: "Autoincrement",
    AddressingMode.AUTODECREMENT: "Autodecrement",
    AddressingMode.DISP_DEFERRED: "Disp. deferred",
    AddressingMode.RELATIVE_DEFERRED: "Disp. deferred",
    AddressingMode.ABSOLUTE: "Absolute",
    AddressingMode.AUTOINC_DEFERRED: "Autoinc. deferred",
}


class Specifier:
    """A decoded operand specifier.

    Attributes:
        mode: the :class:`AddressingMode`.
        register: base register number (meaningless for literal/immediate).
        value: short-literal value or immediate constant, if any.
        displacement: signed displacement for displacement/relative modes.
        disp_size: encoded displacement width in bytes (1, 2 or 4).
        index_register: register number of the ``[Rx]`` index prefix, or
            None when the specifier is not indexed.
        length: total encoded length in bytes, including any index prefix,
            displacement and immediate data.
    """

    __slots__ = ("mode", "register", "value", "displacement", "disp_size",
                 "index_register", "length", "end_offset")

    def __init__(self, mode, register=0, value=0, displacement=0,
                 disp_size=0, index_register=None, length=1,
                 end_offset=0):
        self.mode = mode
        self.register = register
        self.value = value
        self.displacement = displacement
        self.disp_size = disp_size
        self.index_register = index_register
        self.length = length
        #: offset from the instruction's first byte to the byte after this
        #: specifier — the PC value the PC-relative modes are based on.
        self.end_offset = end_offset

    @property
    def indexed(self) -> bool:
        """True when an index prefix is present."""
        return self.index_register is not None

    def __repr__(self) -> str:
        parts = [f"Specifier({self.mode.name}, R{self.register}"]
        if self.mode is AddressingMode.SHORT_LITERAL or \
                self.mode is AddressingMode.IMMEDIATE:
            parts = [f"Specifier({self.mode.name}, value={self.value}"]
        elif self.disp_size:
            parts.append(f", disp={self.displacement}")
        if self.indexed:
            parts.append(f", [R{self.index_register}]")
        return "".join(parts) + ")"


def displacement_mode_nibble(size: int, deferred: bool) -> int:
    """Encode a displacement width into the mode nibble (0xA..0xF)."""
    base = {1: 0xA, 2: 0xC, 4: 0xE}[size]
    return base + (1 if deferred else 0)


def pc_relative_mode(mode: AddressingMode, register: int) -> AddressingMode:
    """Fold PC-based encodings into their architectural PC modes."""
    if register != PC:
        return mode
    if mode is AddressingMode.AUTOINCREMENT:
        return AddressingMode.IMMEDIATE
    if mode is AddressingMode.AUTOINC_DEFERRED:
        return AddressingMode.ABSOLUTE
    if mode is AddressingMode.DISPLACEMENT:
        return AddressingMode.RELATIVE
    if mode is AddressingMode.DISP_DEFERRED:
        return AddressingMode.RELATIVE_DEFERRED
    return mode
