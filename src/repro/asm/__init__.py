"""Assembler: programmatic builder and VAX MACRO-style text front end."""

from repro.asm.assembler import Assembler, assemble_text
from repro.asm.program import (AssemblyError, Image, LabelRef,
                               ProgramBuilder)

__all__ = ["Assembler", "assemble_text", "AssemblyError", "Image",
           "LabelRef", "ProgramBuilder"]
