"""A small two-pass text assembler for the simulated VAX subset.

The syntax follows VAX MACRO conventions closely enough to be familiar::

    ; comments run to end of line
    start:
        movl    #100, r0        ; immediate / short literal (auto-sized)
        clrl    r1
    loop:
        addl2   r0, r1
        movl    4(r2), r3       ; byte displacement (auto-sized)
        movl    @#counter, r4   ; absolute, label-resolved
        movl    table[r0], r5   ; indexed absolute
        sobgtr  r0, loop
        chmk    #5
        halt
    counter:
        .long   0
    table:
        .space  400

Operand forms: ``#n`` (short literal when 0..63 and reads allow it,
immediate otherwise; force with ``s^#`` / ``i^#``), ``rN``/``ap``/``fp``/
``sp``/``pc``, ``(rN)``, ``(rN)+``, ``-(rN)``, ``@(rN)+``, ``d(rN)``,
``@d(rN)`` (force width with ``b^``/``w^``/``l^``), ``@#addr``, bare
``label`` (absolute), and an optional ``[rx]`` index suffix on any memory
form.  Directives: ``.byte``, ``.word``, ``.long``, ``.space``, ``.align``,
``.ascii``.

Pass 1 sizes every statement (all encodings in this subset have static
length); pass 2 encodes with the resolved symbol table, leaving branch
displacements to :class:`~repro.asm.program.ProgramBuilder` fixups.
"""

from __future__ import annotations

import re
import struct

from repro.arch import encode as enc
from repro.arch.opcodes import OPCODES_BY_NAME, opcode as opcode_info
from repro.arch.registers import register_number
from repro.asm.program import AssemblyError, Image, ProgramBuilder

_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):\s*(.*)$")
_NAME_RE = re.compile(r"^[A-Za-z_.$][\w.$]*$")
_DISP_RE = re.compile(r"^(?:([bwl])\^)?([^()]+)\((\w+)\)$", re.IGNORECASE)
_INDEX_RE = re.compile(r"^(.*)\[(\w+)\]$")


def _parse_int(text: str, symbols: dict) -> int:
    """Parse an integer literal, symbol, or ``symbol+offset`` expression."""
    text = text.strip()
    for op in ("+", "-"):
        # Split additive expressions (but not a leading sign).
        idx = text.rfind(op)
        if idx > 0:
            left, right = text[:idx], text[idx + 1:]
            try:
                lhs = _parse_int(left, symbols)
                rhs = _parse_int(right, symbols)
            except AssemblyError:
                continue
            return lhs + rhs if op == "+" else lhs - rhs
    if _NAME_RE.match(text) and text.lower() not in ("pc", "sp", "fp", "ap"):
        try:
            register_number(text)
        except ValueError:
            if text in symbols:
                return symbols[text]
            raise AssemblyError(f"undefined symbol: {text!r}")
    try:
        if text.lower().startswith("^x"):
            return int(text[2:], 16)
        return int(text, 0)
    except ValueError:
        raise AssemblyError(f"cannot parse integer: {text!r}")


def _split_operands(text: str) -> list:
    """Split an operand field on commas, respecting parentheses."""
    operands = []
    depth = 0
    current = []
    for ch in text:
        if ch == "," and depth == 0:
            operands.append("".join(current).strip())
            current = []
            continue
        if ch in "([":
            depth += 1
        elif ch in ")]":
            depth -= 1
        current.append(ch)
    tail = "".join(current).strip()
    if tail:
        operands.append(tail)
    return operands


class Assembler:
    """Parses assembly text and produces an :class:`Image`."""

    def __init__(self, text: str, base: int) -> None:
        self._lines = text.splitlines()
        self._base = base

    def assemble(self) -> Image:
        """Run both passes and return the assembled image."""
        statements = self._parse()
        symbols = self._size_pass(statements)
        return self._encode_pass(statements, symbols)

    # -- parsing ---------------------------------------------------------

    def _parse(self) -> list:
        statements = []
        for lineno, raw in enumerate(self._lines, start=1):
            line = raw.split(";", 1)[0].strip()
            while line:
                match = _LABEL_RE.match(line)
                if match:
                    statements.append(("label", match.group(1), lineno))
                    line = match.group(2).strip()
                    continue
                statements.append(("stmt", line, lineno))
                line = ""
        return statements

    # -- pass 1: sizing ---------------------------------------------------

    def _size_pass(self, statements) -> dict:
        symbols = {}
        offset = 0
        dummy = {name: 0 for name in self._collect_labels(statements)}
        for kind, text, lineno in statements:
            if kind == "label":
                symbols[text] = self._base + offset
                continue
            parts = text.split(None, 1)
            if parts[0].lower() == ".align":
                # Alignment depends on the running offset, which a fresh
                # sizing builder cannot see.
                boundary = _parse_int(parts[1], dummy)
                offset += (-offset) % boundary
                continue
            offset += len(self._encode_statement(text, dummy, lineno,
                                                 sizing=True))
        return symbols

    @staticmethod
    def _collect_labels(statements) -> list:
        return [text for kind, text, _ in statements if kind == "label"]

    # -- pass 2: encoding -------------------------------------------------

    def _encode_pass(self, statements, symbols) -> Image:
        builder = ProgramBuilder()
        for kind, text, lineno in statements:
            if kind == "label":
                builder.label(text)
                continue
            self._emit_statement(builder, text, symbols, lineno)
        return builder.assemble(self._base)

    def _encode_statement(self, text, symbols, lineno, sizing) -> bytes:
        builder = ProgramBuilder()
        self._emit_statement(builder, text, symbols, lineno, sizing=sizing)
        return builder.assemble(0).data

    def _emit_statement(self, builder, text, symbols, lineno,
                        sizing: bool = False) -> None:
        parts = text.split(None, 1)
        mnemonic = parts[0].lower()
        field = parts[1] if len(parts) > 1 else ""
        try:
            if mnemonic.startswith("."):
                self._emit_directive(builder, mnemonic, field, symbols)
                return
            info = opcode_info(mnemonic)
            operand_texts = _split_operands(field)
            if info.family == "CASE":
                self._emit_case(builder, info, operand_texts, symbols, sizing)
                return
            if info.branch_operand is not None:
                target_text = operand_texts[-1]
                operands = [self._parse_operand(t, symbols)
                            for t in operand_texts[:-1]]
                if sizing:
                    builder.branch(info.mnemonic, 0, *operands)
                else:
                    builder.branch(info.mnemonic, target_text, *operands)
                return
            operands = [self._parse_operand(t, symbols)
                        for t in operand_texts]
            builder.emit(info.mnemonic, *operands)
        except (AssemblyError, enc.EncodeError, KeyError, ValueError) as exc:
            raise AssemblyError(f"line {lineno}: {exc}") from exc

    def _emit_case(self, builder, info, operand_texts, symbols,
                   sizing) -> None:
        if len(operand_texts) < 3:
            raise AssemblyError(f"{info.mnemonic} needs selector, base, "
                                f"limit and targets")
        selector = self._parse_operand(operand_texts[0], symbols)
        base = self._parse_operand(operand_texts[1], symbols)
        limit = self._parse_operand(operand_texts[2], symbols)
        target_field = ",".join(operand_texts[3:]).strip().strip("()")
        targets = [t.strip() for t in target_field.split(",") if t.strip()]
        if sizing:
            targets = [0] * len(targets)
            table = list(targets)
            builder.data(enc.encode_instruction(
                info, [selector, base, limit], case_table=table))
        else:
            builder.case(info.mnemonic, selector, base, limit, targets)

    def _emit_directive(self, builder, name, field, symbols) -> None:
        if name == ".byte":
            for tok in _split_operands(field):
                builder.data(struct.pack("<B", _parse_int(tok, symbols) & 0xFF))
        elif name == ".word":
            for tok in _split_operands(field):
                builder.data(struct.pack("<H",
                                         _parse_int(tok, symbols) & 0xFFFF))
        elif name == ".long":
            for tok in _split_operands(field):
                builder.longword(_parse_int(tok, symbols))
        elif name == ".space":
            builder.space(_parse_int(field, symbols))
        elif name == ".align":
            builder.align(_parse_int(field, symbols))
        elif name == ".ascii":
            builder.data(field.strip().strip('"').encode("latin-1"))
        else:
            raise AssemblyError(f"unknown directive: {name}")

    # -- operand parsing ---------------------------------------------------

    def _parse_operand(self, text: str, symbols: dict):
        text = text.strip()
        index_register = None
        match = _INDEX_RE.match(text)
        if match and not text.startswith("-("):
            text, index_name = match.group(1).strip(), match.group(2)
            index_register = register_number(index_name)

        operand = self._parse_base_operand(text, symbols)
        if index_register is not None:
            operand = operand.indexed(index_register)
        return operand

    def _parse_base_operand(self, text: str, symbols: dict):
        lowered = text.lower()
        # forced short literal / immediate
        if lowered.startswith("s^#"):
            return enc.literal(_parse_int(text[3:], symbols))
        if lowered.startswith("i^#"):
            return enc.immediate(_parse_int(text[3:], symbols))
        if text.startswith("#"):
            value = _parse_int(text[1:], symbols)
            if 0 <= value <= 63:
                return enc.literal(value)
            return enc.immediate(value)
        if text.startswith("@#"):
            return enc.absolute(_parse_int(text[2:], symbols))
        if lowered.startswith("-("):
            return enc.autodecrement(register_number(text[2:-1]))
        if text.startswith("@(") and text.endswith(")+"):
            return enc.autoinc_deferred(register_number(text[2:-2]))
        if text.startswith("(") and text.endswith(")+"):
            return enc.autoincrement(register_number(text[1:-2]))
        if text.startswith("(") and text.endswith(")"):
            return enc.register_deferred(register_number(text[1:-1]))
        deferred = text.startswith("@")
        body = text[1:] if deferred else text
        match = _DISP_RE.match(body)
        if match:
            force, disp_text, reg_name = match.groups()
            disp = _parse_int(disp_text, symbols)
            size = {"b": 1, "w": 2, "l": 4}[force.lower()] if force else 0
            reg = register_number(reg_name)
            if deferred:
                return enc.disp_deferred(reg, disp, size)
            return enc.displacement(reg, disp, size)
        if deferred:
            raise AssemblyError(f"cannot parse operand: {text!r}")
        try:
            return enc.register(register_number(text))
        except ValueError:
            pass
        # bare symbol or integer: absolute reference
        return enc.absolute(_parse_int(text, symbols))


def assemble_text(text: str, base: int = 0x200) -> Image:
    """Assemble ``text`` at virtual address ``base`` and return the image."""
    return Assembler(text, base).assemble()
