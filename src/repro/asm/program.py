"""Programmatic VAX code construction.

:class:`ProgramBuilder` is the back-end shared by the text assembler and
the synthetic workload generators: callers emit instructions, labels and
data; :meth:`ProgramBuilder.assemble` resolves branch and case-table
fixups in a second pass and returns an :class:`Image`.

Because every VAX instruction in this subset has a statically known length
(branch displacements have fixed width per opcode and CASE limits are
short literals), a single sizing pass followed by a fixup patch pass is
exact — no relaxation iterations are needed.
"""

from __future__ import annotations

import struct

from repro.arch import encode as enc
from repro.arch.opcodes import opcode as opcode_info


class AssemblyError(Exception):
    """Raised for unresolvable labels or out-of-range displacements."""


class Image:
    """An assembled program image.

    Attributes:
        base: virtual base address of the image.
        data: the raw bytes.
        symbols: label name -> absolute virtual address.
        entry: address of the entry point (the ``start`` label when
            present, otherwise the base).
    """

    def __init__(self, base: int, data: bytes, symbols: dict) -> None:
        self.base = base
        self.data = data
        self.symbols = dict(symbols)
        self.entry = self.symbols.get("start", base)

    @property
    def end(self) -> int:
        """First address past the image."""
        return self.base + len(self.data)

    def address_of(self, label: str) -> int:
        """Absolute address of a label."""
        if label not in self.symbols:
            raise AssemblyError(f"undefined label: {label!r}")
        return self.symbols[label]


class _Fixup:
    """A displacement field to patch once label addresses are known."""

    __slots__ = ("offset", "size", "label", "anchor_offset")

    def __init__(self, offset: int, size: int, label: str,
                 anchor_offset: int) -> None:
        self.offset = offset          # where the field lives in the image
        self.size = size              # 1 or 2 bytes
        self.label = label            # target label
        self.anchor_offset = anchor_offset  # displacement is target - anchor


class LabelRef:
    """A forward/backward label reference usable as a branch target."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name


_RANGE = {1: (-128, 127), 2: (-32768, 32767)}


class ProgramBuilder:
    """Accumulates code and data, then assembles to an :class:`Image`."""

    def __init__(self) -> None:
        self._chunks = bytearray()
        self._labels: dict = {}
        self._fixups: list = []

    @property
    def offset(self) -> int:
        """Current emission offset from the image base."""
        return len(self._chunks)

    def label(self, name: str) -> None:
        """Define ``name`` at the current offset."""
        if name in self._labels:
            raise AssemblyError(f"duplicate label: {name!r}")
        self._labels[name] = self.offset

    def emit(self, mnemonic: str, *operands) -> None:
        """Emit a non-branching instruction with the given operands."""
        info = opcode_info(mnemonic)
        if info.branch_operand is not None:
            raise AssemblyError(
                f"{mnemonic} needs a branch target; use branch()")
        self._chunks += enc.encode_instruction(info, list(operands))

    def branch(self, mnemonic: str, target, *operands) -> None:
        """Emit a branch-displacement instruction.

        ``target`` is a label name, a :class:`LabelRef`, or an absolute
        integer displacement (relative to the instruction end).
        """
        info = opcode_info(mnemonic)
        kind = info.branch_operand
        if kind is None:
            raise AssemblyError(f"{mnemonic} takes no branch displacement")
        size = 1 if kind.dtype == "b" else 2
        body = enc.encode_instruction(info, list(operands), branch_disp=0)
        self._chunks += body
        end = self.offset
        field_offset = end - size
        if isinstance(target, int):
            self._patch(field_offset, size, target)
        else:
            name = target.name if isinstance(target, LabelRef) else target
            self._fixups.append(_Fixup(field_offset, size, name, end))

    def case(self, mnemonic: str, selector, base, limit, targets) -> None:
        """Emit a CASEx instruction.

        ``limit`` must be a short-literal operand; ``targets`` is a list of
        ``limit+1`` label names (or LabelRefs) for the displacement table.
        """
        info = opcode_info(mnemonic)
        table = [0] * len(targets)
        body = enc.encode_instruction(info, [selector, base, limit],
                                      case_table=table)
        table_bytes = 2 * len(targets)
        start = self.offset
        self._chunks += body
        table_offset = start + len(body) - table_bytes
        # CASE displacements are relative to the start of the table.
        for i, target in enumerate(targets):
            name = target.name if isinstance(target, LabelRef) else target
            self._fixups.append(
                _Fixup(table_offset + 2 * i, 2, name, table_offset))

    def data(self, payload: bytes) -> None:
        """Emit raw data bytes."""
        self._chunks += payload

    def longword(self, value: int) -> None:
        """Emit one little-endian longword of data."""
        self._chunks += struct.pack("<I", value & 0xFFFFFFFF)

    def space(self, nbytes: int, fill: int = 0) -> None:
        """Reserve ``nbytes`` bytes of ``fill``."""
        self._chunks += bytes([fill]) * nbytes

    def align(self, boundary: int = 4) -> None:
        """Pad with NOP-safe zero bytes to an address boundary."""
        while self.offset % boundary:
            self._chunks.append(0)

    def _patch(self, offset: int, size: int, value: int) -> None:
        lo, hi = _RANGE[size]
        if not lo <= value <= hi:
            raise AssemblyError(
                f"branch displacement {value} out of range for "
                f"{size}-byte field")
        fmt = "<b" if size == 1 else "<h"
        self._chunks[offset:offset + size] = struct.pack(fmt, value)

    def assemble(self, base: int) -> Image:
        """Resolve fixups against ``base`` and produce the final image."""
        for fixup in self._fixups:
            if fixup.label not in self._labels:
                raise AssemblyError(f"undefined label: {fixup.label!r}")
            target = self._labels[fixup.label]
            self._patch(fixup.offset, fixup.size,
                        target - fixup.anchor_offset)
        symbols = {name: base + off for name, off in self._labels.items()}
        return Image(base, bytes(self._chunks), symbols)
