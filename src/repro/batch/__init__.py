"""repro.batch: the lockstep batch execution engine.

A second way to run measurements: many lanes (workload × params ×
budget × seed) advance together — budget-only variants fused onto
shared machines, cross-lane state in struct-of-arrays numpy buffers,
every histogram accumulated in one matrix sink — with results
bit-identical to the scalar engine lane for lane.  See
:mod:`repro.batch.lanes` for the fusion rule and
:mod:`repro.batch.engine` for the identity argument.

Engine selection (``--engine`` on the CLI, ``engine=`` on the facade)
is validated here so every entry point rejects a bad name the same
way, before any simulation runs.
"""

from __future__ import annotations

from repro.batch.engine import (BatchRunner, LaneResult, QUANTUM,
                                run_lanes)
from repro.batch.histograms import BatchHistogramSink
from repro.batch.lanes import Cohort, LaneArrays, LaneSpec, plan_cohorts

__all__ = ["ENGINES", "EngineError", "validate_engine",
           "BatchRunner", "BatchHistogramSink", "Cohort", "LaneArrays",
           "LaneResult", "LaneSpec", "QUANTUM", "plan_cohorts",
           "run_lanes"]

#: Legal values everywhere an engine can be chosen.
ENGINES = ("scalar", "batch", "auto")


class EngineError(ValueError):
    """An engine name outside the accepted set."""


def validate_engine(name, choices=ENGINES) -> str:
    """Normalize and validate an engine name (None means scalar).

    Raises :class:`EngineError` — a ``ValueError`` — listing the valid
    engines, so callers can reject bad input before simulating,
    consistent with the ``--table``/axis pre-validation pattern.
    """
    if name is None:
        return "scalar"
    if name not in choices:
        raise EngineError(f"unknown engine {name!r}; choose from "
                          f"{', '.join(choices)}")
    return name
