"""The lockstep batch runner: many machine instances, one pass.

:class:`BatchRunner` executes a list of :class:`~repro.batch.lanes.LaneSpec`
requests by fusing budget-only variants into cohorts (one machine each,
captured at every lane's boundary as it goes by) and advancing all
cohorts round-robin in fixed instruction quanta.  Per-lane scheduling
state lives in struct-of-arrays numpy vectors
(:class:`~repro.batch.lanes.LaneArrays`) and every captured histogram
lands in one shared matrix sink
(:class:`~repro.batch.histograms.BatchHistogramSink`).

Bit-identity contract: each lane's measurement equals, bit for bit,
what the scalar path (:func:`repro.workloads.engine.run_workload` /
``explore``'s per-task worker) produces for the same (workload,
params, instructions, seed) — including the two failure modes, which
reproduce the scalar engine's exact :class:`RuntimeError` messages.
The inner loop below is a transcription of
:meth:`repro.osim.executive.Executive.run` with two differences that
are provably invisible to the simulated machine: the loop pauses at
quantum boundaries (the checks resume at the same state in the same
order), and passed boundaries trigger a passive mid-run capture
(``settle_gate`` is idempotent and the board is only read).  The
scalar↔batch differential fuzzer (:mod:`repro.validate.differential`)
enforces the contract on randomly perturbed profiles.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.analysis.measurement import Measurement, MemoryStats, TracerStats
from repro.batch.histograms import BatchHistogramSink
from repro.batch.lanes import Cohort, LaneArrays, LaneSpec, plan_cohorts
from repro.cpu.machine import VAX780
from repro.obs import metrics
from repro.osim.executive import Executive
from repro.params import VAX780 as STOCK_PARAMS

#: Measured instructions each cohort advances per lockstep round.
QUANTUM = 2048

#: Cycles allowed per measured instruction before a lane fails — the
#: same default budget as :meth:`repro.osim.executive.Executive.run`.
CYCLE_LIMIT_FACTOR = 400

#: The scalar engine's exact failure message for a halted machine.
HALTED_ERROR = "machine halted during workload run"


@dataclass(frozen=True)
class LaneResult:
    """One lane's outcome: a measurement, or the scalar error message."""

    spec: LaneSpec
    measurement: object = None
    error: str = None

    @property
    def ok(self) -> bool:
        return self.error is None


class _CohortState:
    """One cohort's live machine and its progress through its targets."""

    __slots__ = ("cohort", "machine", "targets", "cursor", "rows",
                 "results", "finished")

    def __init__(self, cohort: Cohort, machine, rows: list) -> None:
        self.cohort = cohort
        self.machine = machine
        self.targets = list(cohort.targets)
        self.cursor = 0
        self.rows = rows                  #: sink row per target
        self.results = {}                 #: target -> LaneResult payload
        self.finished = False

    @property
    def target(self) -> int:
        return self.targets[self.cursor]


class BatchRunner:
    """Advance many lanes in lockstep; results in input-lane order."""

    def __init__(self, lanes, quantum: int = QUANTUM, profiles=None,
                 on_result=None) -> None:
        self.lanes = [spec if isinstance(spec, LaneSpec)
                      else LaneSpec(*spec) for spec in lanes]
        if not self.lanes:
            raise ValueError("batch needs at least one lane")
        if quantum < 1:
            raise ValueError(f"quantum must be positive, got {quantum}")
        self.quantum = quantum
        if profiles is None:
            # Every registered generator workload is a valid lane;
            # trace-backed workloads replay on their own machine and
            # cannot be fused.
            from repro.workloads.registry import WORKLOADS

            profiles = {name: spec.profile
                        for name, spec in WORKLOADS.items()
                        if spec.trace is None}
        if not isinstance(profiles, dict):
            profiles = {profile.name: profile for profile in profiles}
        self.profiles = profiles
        for spec in self.lanes:
            if spec.workload not in self.profiles:
                raise ValueError(
                    f"unknown workload {spec.workload!r}; valid "
                    f"workloads: {', '.join(sorted(self.profiles))}")
        self.on_result = on_result
        self.cohorts = plan_cohorts(self.lanes)
        rows = sum(len(c.targets) for c in self.cohorts)
        self.sink = BatchHistogramSink(rows)
        self.arrays = LaneArrays(len(self.lanes))
        self._results = [None] * len(self.lanes)

    # -- lifecycle ------------------------------------------------------

    def _boot(self, cohort: Cohort, first_row: int) -> _CohortState:
        profile = self.profiles[cohort.workload]
        params = STOCK_PARAMS.with_overrides(**dict(cohort.overrides))
        machine = VAX780(params)
        executive = Executive(machine, profile, seed=cohort.seed)
        executive.boot()
        rows = list(range(first_row, first_row + len(cohort.targets)))
        return _CohortState(cohort, machine, rows)

    def run(self) -> list:
        """Execute every lane; returns LaneResults in input order."""
        fused = len(self.lanes) - len(self.cohorts)
        obs.emit("batch_started", lanes=len(self.lanes),
                 cohorts=len(self.cohorts), fused=fused,
                 quantum=self.quantum)
        metrics.counter("batch.lanes").inc(len(self.lanes))
        metrics.counter("batch.cohorts").inc(len(self.cohorts))
        if fused:
            metrics.counter("batch.fused_lanes").inc(fused)
        states = []
        row = 0
        for cohort in self.cohorts:
            states.append(self._boot(cohort, row))
            row += len(cohort.targets)
        for state in states:
            self._refresh(state)
        rounds = 0
        while True:
            live = [state for state in states if not state.finished]
            if not live:
                break
            for state in live:
                self._advance(state)
                self._refresh(state)
            rounds += 1
            # Vectorized cross-lane reduction over the SoA state: one
            # numpy pass tells the round how much work remains.
            obs.emit("batch_round", round=rounds,
                     live_lanes=self.arrays.live(),
                     remaining_instructions=self.arrays.remaining())
        metrics.counter("batch.rounds").inc(rounds)
        obs.emit("batch_finished", lanes=len(self.lanes),
                 cohorts=len(self.cohorts), rounds=rounds)
        return list(self._results)

    # -- the fused scalar loop ------------------------------------------

    def _advance(self, state: _CohortState) -> None:
        """Advance one cohort by up to one quantum of instructions.

        A transcription of ``Executive.run`` with capture at passed
        boundaries: while measuring toward target *t* the halted check
        precedes the ``now > t * 400`` check at every state, exactly as
        the scalar loop orders them for a run with budget *t*.
        """
        m = state.machine
        tracer = m.tracer
        ebox = m.ebox
        step = m.step
        stop_at = tracer.instructions + self.quantum
        while not state.finished and tracer.instructions < stop_at:
            target = state.target
            if tracer.instructions >= target:
                self._capture(state)
                continue
            limit = target * CYCLE_LIMIT_FACTOR
            bound = min(target, stop_at)
            while tracer.instructions < bound:
                if m.halted:
                    # Every remaining budget fails the same way the
                    # scalar run would: the halt persists and its check
                    # precedes the cycle-limit check.
                    self._fail_rest(state, HALTED_ERROR)
                    return
                if ebox.now > limit:
                    self._fail_target(
                        state,
                        f"cycle limit hit: {tracer.instructions} of "
                        f"{target} instructions measured")
                    break
                step()
            else:
                if tracer.instructions >= target:
                    self._capture(state)

    # -- per-target outcomes --------------------------------------------

    def _capture(self, state: _CohortState) -> None:
        m = state.machine
        m.tracer.settle_gate(m.cycles)
        histogram = self.sink.capture(state.rows[state.cursor], m.board)
        measurement = Measurement(state.cohort.workload, histogram,
                                  TracerStats(m.tracer), MemoryStats(m),
                                  m.cycles)
        metrics.counter("batch.captures").inc()
        self._settle_target(state, measurement=measurement)

    def _fail_target(self, state: _CohortState, error: str) -> None:
        metrics.counter("batch.lane_failures").inc()
        self._settle_target(state, error=error)

    def _fail_rest(self, state: _CohortState, error: str) -> None:
        while not state.finished:
            self._fail_target(state, error)

    def _settle_target(self, state: _CohortState, measurement=None,
                       error=None) -> None:
        target = state.target
        for index in state.cohort.lanes_at(target):
            result = LaneResult(self.lanes[index], measurement, error)
            self._results[index] = result
            obs.emit("batch_lane_finished", lane=index,
                     label=self.lanes[index].label(), ok=result.ok)
            if self.on_result is not None:
                self.on_result(index, result)
        state.results[target] = (measurement, error)
        state.cursor += 1
        if state.cursor >= len(state.targets):
            state.finished = True

    # -- SoA bookkeeping ------------------------------------------------

    def _refresh(self, state: _CohortState) -> None:
        """Mirror a cohort's live state into every lane's SoA slot."""
        for index, spec in state.cohort.lanes:
            target = spec.instructions
            settled = state.results.get(target)
            done = settled is not None and settled[1] is None
            failed = settled is not None and settled[1] is not None
            self.arrays.update(index, state.machine, target,
                               target * CYCLE_LIMIT_FACTOR, done, failed)


def run_lanes(lanes, quantum: int = QUANTUM, profiles=None,
              on_result=None, strict: bool = True) -> list:
    """Run lanes through one BatchRunner; optionally raise lane errors.

    With ``strict`` (the default) the first failed lane raises the
    scalar engine's :class:`RuntimeError` verbatim, matching what a
    serial loop over ``run_workload`` would have done.
    """
    runner = BatchRunner(lanes, quantum=quantum, profiles=profiles,
                         on_result=on_result)
    results = runner.run()
    if strict:
        for result in results:
            if result.error is not None:
                raise RuntimeError(result.error)
    return results
