"""Struct-of-arrays histogram accumulation for the batch engine.

The scalar path snapshots one board per run into one
:class:`~repro.monitor.histogram.Histogram` and sums snapshots pairwise
for the composite.  The batch engine instead owns a ``lanes × 16k``
pair of ``int64`` matrices — one row per captured lane, one matrix per
count set — written row-at-a-time as each lane's boundary goes by and
reduced column-wise (``sum(axis=0)``) for composites.  All arithmetic
is exact integer addition, so a row reads back as precisely the
``Histogram`` the scalar path would have snapshotted and a column sum
equals the scalar pairwise-sum chain bit for bit.
"""

from __future__ import annotations

from array import array

from repro.monitor.histogram import Histogram
from repro.ucode.controlstore import CONTROL_STORE_SIZE

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the toolchain
    _np = None


def _as_histogram(nonstalled, stalled) -> Histogram:
    """Wrap two int64 buffers as a Histogram without re-validation."""
    out = Histogram.__new__(Histogram)
    if _np is not None:
        ns, st = array("q"), array("q")
        ns.frombytes(_np.ascontiguousarray(nonstalled,
                                           dtype=_np.int64).tobytes())
        st.frombytes(_np.ascontiguousarray(stalled,
                                           dtype=_np.int64).tobytes())
        out.nonstalled, out.stalled = ns, st
        return out
    out.nonstalled = array("q", nonstalled)  # pragma: no cover
    out.stalled = array("q", stalled)  # pragma: no cover
    return out


class BatchHistogramSink:
    """A fixed-size bank of histogram rows, one per captured lane."""

    def __init__(self, rows: int, size: int = CONTROL_STORE_SIZE) -> None:
        self.rows = rows
        self.size = size
        self.captured = [False] * rows
        if _np is not None:
            self.nonstalled = _np.zeros((rows, size), dtype=_np.int64)
            self.stalled = _np.zeros((rows, size), dtype=_np.int64)
        else:  # pragma: no cover - numpy ships with the toolchain
            self.nonstalled = [array("q", [0] * size)
                               for _ in range(rows)]
            self.stalled = [array("q", [0] * size) for _ in range(rows)]

    def capture(self, row: int, board) -> Histogram:
        """Copy a live board's count sets into ``row``; return the view.

        The board is only read — capture is passive, exactly like
        :meth:`~repro.monitor.histogram.HistogramBoard.snapshot` — and
        the returned Histogram carries the same values a scalar
        ``snapshot()`` at this instant would.
        """
        if self.captured[row]:
            raise ValueError(f"histogram row {row} captured twice")
        self.captured[row] = True
        if _np is not None:
            self.nonstalled[row, :] = board.nonstalled
            self.stalled[row, :] = board.stalled
        else:  # pragma: no cover
            self.nonstalled[row] = array("q", board.nonstalled)
            self.stalled[row] = array("q", board.stalled)
        return self.histogram(row)

    def histogram(self, row: int) -> Histogram:
        """The captured row as an ordinary Histogram snapshot."""
        if not self.captured[row]:
            raise ValueError(f"histogram row {row} not captured yet")
        if _np is not None:
            return _as_histogram(self.nonstalled[row], self.stalled[row])
        return _as_histogram(self.nonstalled[row],  # pragma: no cover
                             self.stalled[row])

    def composite(self, rows=None) -> Histogram:
        """Column-wise sum over ``rows`` (default: every captured row).

        Bit-identical to summing the per-row Histograms pairwise: both
        are exact int64 addition, just batched here.
        """
        if rows is None:
            rows = [i for i, seen in enumerate(self.captured) if seen]
        rows = list(rows)
        for row in rows:
            if not self.captured[row]:
                raise ValueError(f"histogram row {row} not captured yet")
        if not rows:
            raise ValueError("no captured rows to composite")
        if _np is not None:
            return _as_histogram(self.nonstalled[rows].sum(axis=0),
                                 self.stalled[rows].sum(axis=0))
        total = self.histogram(rows[0])  # pragma: no cover
        for row in rows[1:]:  # pragma: no cover
            total = total + self.histogram(row)
        return total  # pragma: no cover
