"""Lane planning for the lockstep batch engine.

A *lane* is one requested measurement: a workload profile, an
instruction budget, a seed, and a tuple of MachineParams overrides.
The batch engine's central observation is that execution never depends
on the budget — :meth:`repro.osim.executive.Executive.run` only decides
*when to stop looking* — so two lanes that agree on everything except
the budget pass through bit-identical machine states.  Such lanes fuse
into one *cohort*: a single machine advances once, and each lane's
measurement is captured as its instruction boundary goes by.  A sweep
along the ``instructions`` axis therefore costs one run of the longest
lane instead of one run per point.

Nothing else may fuse.  Timing feeds back into architecture through the
executive's devices (:mod:`repro.osim.devices` polls ``ebox.now`` to
post interrupts), so lanes that differ in params, workload or seed
diverge architecturally and each gets its own cohort; the engine still
advances all cohorts in lockstep and accumulates their histograms in
one struct-of-arrays sink.

Cross-lane bookkeeping lives in :class:`LaneArrays` — parallel numpy
vectors of per-lane PC, cycle time, retired instructions, targets
and cycle limits — refreshed at every lockstep quantum and reduced with
vectorized operations (liveness masks, remaining-work counts, limit
margins).  The architectural core of each lane advances through the
ordinary scalar machine: that is the always-correct fallback path that
keeps every rare event (faults, interrupts, aborts, halts) bit-exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the toolchain
    _np = None


@dataclass(frozen=True)
class LaneSpec:
    """One requested measurement (hashable, so lanes dedup and memoise)."""

    workload: str            #: profile name (resolved by the runner)
    instructions: int        #: measured-instruction budget
    seed: int
    #: sorted (name, value) MachineParams overrides, like Point.overrides
    overrides: tuple = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "overrides",
            tuple(sorted(dict(self.overrides).items())))
        if self.instructions < 1:
            raise ValueError(
                f"lane {self.workload!r} needs a positive budget, "
                f"got {self.instructions}")

    def cohort_key(self) -> tuple:
        """Everything that shapes the architectural stream."""
        return (self.workload, self.seed, self.overrides)

    def label(self) -> str:
        extra = ",".join(f"{k}={v}" for k, v in self.overrides)
        return (f"{self.workload} n={self.instructions} "
                f"seed={self.seed}" + (f" [{extra}]" if extra else ""))


@dataclass(frozen=True)
class Cohort:
    """Lanes that share one machine: same workload, seed and params."""

    workload: str
    seed: int
    overrides: tuple
    lanes: tuple             #: (lane_index, LaneSpec) in caller order

    @property
    def targets(self) -> tuple:
        """Distinct capture boundaries, ascending."""
        return tuple(sorted({spec.instructions for _, spec in self.lanes}))

    def lanes_at(self, target: int) -> tuple:
        """Caller lane indices captured at ``target``."""
        return tuple(index for index, spec in self.lanes
                     if spec.instructions == target)

    def label(self) -> str:
        return (f"{self.workload} seed={self.seed} "
                f"targets={list(self.targets)}")


def plan_cohorts(lanes) -> list:
    """Group lanes into cohorts, preserving first-seen order.

    ``lanes`` is an iterable of :class:`LaneSpec`; the result covers
    every input lane exactly once (duplicate specs become two lanes of
    the same cohort sharing one capture).
    """
    grouped = {}
    order = []
    for index, spec in enumerate(lanes):
        key = spec.cohort_key()
        if key not in grouped:
            grouped[key] = []
            order.append(key)
        grouped[key].append((index, spec))
    return [Cohort(workload=key[0], seed=key[1], overrides=key[2],
                   lanes=tuple(grouped[key]))
            for key in order]


class LaneArrays:
    """Struct-of-arrays view of every lane's scheduling state.

    One slot per lane, refreshed from the live machines at each
    lockstep quantum.  The arrays are numpy ``int64`` vectors (plain
    lists when numpy is unavailable) so cross-lane reductions — how
    many lanes are live, the furthest cycle clock, worst-case limit
    margin — are single vectorized operations rather than per-lane
    Python loops.
    """

    FIELDS = ("pc", "now", "instructions", "target",
              "cycle_limit", "done", "failed")

    def __init__(self, count: int) -> None:
        self.count = count
        if _np is not None:
            for name in self.FIELDS:
                setattr(self, name, _np.zeros(count, dtype=_np.int64))
        else:  # pragma: no cover - numpy ships with the toolchain
            for name in self.FIELDS:
                setattr(self, name, [0] * count)

    def update(self, index: int, machine, target: int,
               cycle_limit: int, done: bool, failed: bool) -> None:
        """Refresh one lane's slot from its live machine."""
        self.pc[index] = machine.ebox.pc
        self.now[index] = machine.ebox.now
        self.instructions[index] = machine.tracer.instructions
        self.target[index] = target
        self.cycle_limit[index] = cycle_limit
        self.done[index] = 1 if done else 0
        self.failed[index] = 1 if failed else 0

    def live_mask(self):
        """Boolean vector: lanes still running."""
        if _np is not None:
            return (self.done == 0) & (self.failed == 0)
        return [not d and not f  # pragma: no cover
                for d, f in zip(self.done, self.failed)]

    def live(self) -> int:
        """Number of lanes still running."""
        mask = self.live_mask()
        return int(mask.sum()) if _np is not None else sum(mask)

    def remaining(self) -> int:
        """Measured instructions still outstanding across live lanes."""
        if _np is not None:
            gap = (self.target - self.instructions) * self.live_mask()
            return int(gap.sum())
        return sum((t - i) for t, i, m in  # pragma: no cover
                   zip(self.target, self.instructions, self.live_mask())
                   if m)

    def snapshot(self) -> dict:
        """Plain-python copy (for events, progress lines and tests)."""
        return {name: [int(v) for v in getattr(self, name)]
                for name in self.FIELDS}
