"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``characterize`` — the paper's measurement campaign: run the five
  workloads, form the composite, print the requested tables.
* ``run-workload`` — run a single workload environment and summarise it.
* ``hotspots`` — rank the hottest control-store locations (raw-histogram
  view).
* ``disasm`` — assemble a VAX MACRO source file and print its listing.
* ``figure1`` — render the 11/780 block diagram from the machine model.
* ``profiles`` — list the five standard workload profiles.
* ``ubench`` — run the microbenchmark kernel sweep (per-instruction
  cycle characterization, measured vs. analytical model).
* ``explore`` — design-space sweep: simulate MachineParams variations
  (§5's engineering what-ifs) with a persistent result store and print
  sensitivity tables.
* ``validate`` — conservation-invariant checks on the five workloads
  plus fastpath-vs-reference differential fuzzing.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis import (section4, table1, table2, table3, table4,
                            table5, table6, table7, table8, table9)
from repro.cpu.machine import VAX780
from repro.report.format import (render_figure1, render_section4,
                                 render_table1, render_table2,
                                 render_table3, render_table4,
                                 render_table5, render_table6,
                                 render_table7, render_table8,
                                 render_table9)
from repro.workloads.profiles import STANDARD_PROFILES

_TABLES = {
    "1": (table1, render_table1), "2": (table2, render_table2),
    "3": (table3, render_table3), "4": (table4, render_table4),
    "5": (table5, render_table5), "6": (table6, render_table6),
    "7": (table7, render_table7), "8": (table8, render_table8),
    "9": (table9, render_table9), "s4": (section4, render_section4),
}


def _version() -> str:
    """Package version: installed metadata, else the source tree's."""
    try:
        from importlib.metadata import version
        return version("repro")
    except Exception:
        import repro
        return getattr(repro, "__version__", "unknown")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="VAX-11/780 characterization study reproduction "
                    "(Emer & Clark, ISCA 1984)")
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {_version()}")
    sub = parser.add_subparsers(dest="command", required=True)

    characterize = sub.add_parser(
        "characterize", help="run the five-workload composite and print "
                             "the paper's tables")
    characterize.add_argument("--instructions", type=int, default=30_000,
                              help="measured instructions per workload")
    characterize.add_argument("--seed", type=int, default=1984)
    characterize.add_argument("--table", default="all",
                              help="which table: 1-9, s4, or 'all'")
    characterize.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the five workloads (1 = serial; "
             "results are bit-identical either way)")
    characterize.add_argument(
        "--paranoid", action="store_true",
        help="sample conservation-invariant checks during the runs "
             "(passive; forces --jobs 1)")

    one = sub.add_parser("run-workload",
                         help="run one workload environment")
    one.add_argument("profile", help="profile name (see 'profiles')")
    one.add_argument("--instructions", type=int, default=30_000)
    one.add_argument("--seed", type=int, default=1984)
    one.add_argument("--paranoid", action="store_true",
                     help="sample conservation-invariant checks "
                          "during the run (passive)")

    hotspots = sub.add_parser("hotspots",
                              help="hottest control-store locations")
    hotspots.add_argument("--instructions", type=int, default=20_000)
    hotspots.add_argument("--top", type=int, default=20)
    hotspots.add_argument("--seed", type=int, default=1984)

    disasm = sub.add_parser("disasm",
                            help="assemble a source file and list it")
    disasm.add_argument("source", help="VAX MACRO source file")
    disasm.add_argument("--base", type=lambda v: int(v, 0),
                        default=0x200, help="assembly base address")

    sub.add_parser("figure1", help="render the block diagram")
    sub.add_parser("profiles", help="list the workload profiles")

    ubench = sub.add_parser(
        "ubench", help="microbenchmark sweep: per-instruction cycles, "
                       "measured vs. analytical model")
    ubench.add_argument("--group", default=None,
                        help="only kernels of one opcode group "
                             "(simple, field, float, callret, system, "
                             "character, decimal)")
    ubench.add_argument("--mode", default=None,
                        help="only kernels of one operand-specifier "
                             "mode (e.g. register, immediate, "
                             "displacement-byte)")
    ubench.add_argument("--variant", default=None,
                        choices=("warm", "cold"),
                        help="only warm or cold cache/TB kernels")
    ubench.add_argument("--smoke", action="store_true",
                        help="run the small fixed smoke subset")
    ubench.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the kernel fan-out "
                             "(results bit-identical for any value)")
    ubench.add_argument("--json", default=None, metavar="PATH",
                        help="also write the machine-readable "
                             "UBENCH.json document to PATH")
    ubench.add_argument("--no-check", dest="check", action="store_false",
                        help="skip the composite consistency pass")
    ubench.add_argument("--check-instructions", type=int, default=20_000,
                        help="instructions per workload for the "
                             "consistency composite")
    ubench.add_argument("--seed", type=int, default=1984)

    explore = sub.add_parser(
        "explore", help="design-space sweep over MachineParams axes "
                        "with a persistent result store")
    explore.add_argument("--spec", default="paper-sensitivity",
                         help="named sweep spec (paper-sensitivity, "
                              "smoke)")
    explore.add_argument("--axis", action="append", default=[],
                         metavar="NAME=V1,V2,...",
                         help="sweep axis (repeatable); replaces the "
                              "spec's axes")
    explore.add_argument("--mode", default=None,
                         choices=("ofat", "cartesian"),
                         help="point enumeration: one-factor-at-a-time "
                              "or the full grid (default: the spec's)")
    explore.add_argument("--points", action="store_true",
                         help="list the enumerated points and their "
                              "store status without simulating")
    explore.add_argument("--smoke", action="store_true",
                         help="run the small fixed smoke sweep")
    explore.add_argument("--instructions", type=int, default=None,
                         help="measured instructions per workload "
                              "(default: the spec's)")
    explore.add_argument("--seed", type=int, default=None)
    explore.add_argument("--jobs", type=int, default=1,
                         help="worker processes for the point fan-out "
                              "(results bit-identical for any value)")
    explore.add_argument("--resume", action="store_true", default=True,
                         help="reuse stored results (default)")
    explore.add_argument("--no-resume", dest="resume",
                         action="store_false",
                         help="re-simulate every point (the store is "
                              "still updated)")
    explore.add_argument("--store", default=".explore/store",
                         metavar="DIR",
                         help="result store directory "
                              "(default: .explore/store)")
    explore.add_argument("--no-store", dest="use_store",
                         action="store_false", default=True,
                         help="do not read or write the result store")
    explore.add_argument("--json", default=None, metavar="PATH",
                         help="also write the machine-readable "
                              "EXPLORE.json document to PATH")

    validate = sub.add_parser(
        "validate", help="conservation-invariant checks and "
                         "fastpath-vs-reference differential fuzzing")
    validate.add_argument("--instructions", type=int, default=20_000,
                          help="measured instructions per workload for "
                               "the invariant pass")
    validate.add_argument("--fuzz", type=int, default=0, metavar="N",
                          help="differential fuzz cases to run "
                               "(0 = invariants only)")
    validate.add_argument("--fuzz-instructions", type=int, default=400,
                          help="measured instructions per fuzz case")
    validate.add_argument("--seed", type=int, default=1984,
                          help="workload seed; also seeds the fuzzer")
    validate.add_argument("--smoke", action="store_true",
                          help="small fixed budgets (CI smoke run)")
    validate.add_argument("--json", default=None, metavar="PATH",
                          help="also write the machine-readable "
                               "VALIDATE.json document to PATH")
    return parser


def _cmd_characterize(args) -> int:
    keys = list(_TABLES) if args.table == "all" else [args.table]
    for key in keys:
        # Validate before the (expensive) composite run.
        if key not in _TABLES:
            print(f"unknown table {key!r}; choose from "
                  f"{', '.join(_TABLES)}", file=sys.stderr)
            return 2
    from repro.workloads.experiments import standard_composite
    composite = standard_composite(instructions=args.instructions,
                                   seed=args.seed, jobs=args.jobs,
                                   paranoid=args.paranoid)
    for key in keys:
        compute, render = _TABLES[key]
        print(render(compute(composite)))
        print()
    return 0


def _find_profile(name: str):
    for profile in STANDARD_PROFILES:
        if profile.name == name or profile.name.endswith(name):
            return profile
    return None


def _cmd_run_workload(args) -> int:
    profile = _find_profile(args.profile)
    if profile is None:
        print(f"unknown profile {args.profile!r}; see 'repro profiles'",
              file=sys.stderr)
        return 2
    from repro.workloads.experiments import run_workload
    measurement = run_workload(profile, args.instructions, seed=args.seed,
                               paranoid=args.paranoid)
    result = table8(measurement)
    print(f"workload:  {profile.name}")
    print(f"           {profile.description}")
    print(f"instructions measured: {result.instructions}")
    print(f"cycles per instruction: "
          f"{result.cycles_per_instruction:.2f}")
    print()
    print(render_table1(table1(measurement)))
    return 0


def _cmd_hotspots(args) -> int:
    from repro.analysis.reduction import reference_map
    from repro.workloads.experiments import run_workload
    measurement = run_workload(STANDARD_PROFILES[0], args.instructions,
                               seed=args.seed)
    histogram = measurement.histogram
    store, _ = reference_map()
    rows = []
    for ann in store.annotations():
        cycles = histogram.nonstalled[ann.address] \
            + histogram.stalled[ann.address]
        if cycles:
            rows.append((cycles, ann))
    rows.sort(key=lambda r: -r[0])
    total = histogram.total_cycles()
    print(f"{'uPC':>5s} {'cycles':>10s} {'%':>6s}  {'row':12s} "
          f"routine.slot")
    for cycles, ann in rows[:args.top]:
        print(f"{ann.address:5d} {cycles:10d} {100 * cycles / total:6.2f}"
              f"  {ann.row.value:12s} {ann.routine}.{ann.slot}")
    return 0


def _cmd_disasm(args) -> int:
    from repro.arch.disasm import disassemble_image
    from repro.asm import assemble_text
    with open(args.source) as handle:
        source = handle.read()
    image = assemble_text(source, base=args.base)
    for line in disassemble_image(image):
        print(line)
    return 0


def _cmd_figure1(args) -> int:
    print(render_figure1(VAX780()))
    return 0


def _cmd_profiles(args) -> int:
    for profile in STANDARD_PROFILES:
        print(f"{profile.name:24s} {profile.description}")
    return 0


def _cmd_ubench(args) -> int:
    import json

    from repro.report.ubench import render_ubench, ubench_json
    from repro.ubench import runner, suite

    kernels = suite.select(group=args.group, mode=args.mode,
                           variant=args.variant, smoke=args.smoke)
    if not kernels:
        print(f"no kernels match group={args.group!r} mode={args.mode!r} "
              f"variant={args.variant!r}; groups: "
              f"{', '.join(suite.groups())}; modes: "
              f"{', '.join(suite.modes())}", file=sys.stderr)
        return 2
    results = runner.run_suite(kernels, jobs=args.jobs)

    check = None
    if args.check:
        from repro.ubench.consistency import check_composite
        from repro.workloads.experiments import standard_composite
        composite = standard_composite(
            instructions=args.check_instructions, seed=args.seed,
            jobs=args.jobs)
        check = check_composite(composite)

    print(render_ubench(results, check))
    if args.json:
        doc = ubench_json(results, check, meta={
            "suite": "smoke" if args.smoke else "standard",
            "kernel_count": len(kernels),
            "seed": args.seed,
        })
        with open(args.json, "w") as handle:
            json.dump(doc, handle, indent=1, sort_keys=True)
            handle.write("\n")
        print(f"\nwrote {args.json}")

    failed = [r["kernel"] for r in results
              if not (r["exact"] and r["reconciled"])]
    if failed:
        print(f"inexact kernels: {', '.join(failed)}", file=sys.stderr)
        return 1
    if check is not None and not check["ok"]:
        print("consistency check failed (see table above)",
              file=sys.stderr)
        return 1
    return 0


def _cmd_explore(args) -> int:
    import json
    from dataclasses import replace

    from repro.explore import (ResultStore, SPECS, SpaceError, SweepSpec,
                               code_version, parse_axis, result_key,
                               run_sweep, sensitivity)
    from repro.report.explore import explore_json, render_sensitivity

    # Validate every axis before any simulation, mirroring
    # ``characterize --table``'s pre-validation.
    axes = []
    for text in args.axis:
        try:
            axes.append(parse_axis(text))
        except SpaceError as exc:
            print(str(exc), file=sys.stderr)
            return 2

    name = "smoke" if args.smoke else args.spec
    base = SPECS.get(name)
    if base is None:
        print(f"unknown spec {name!r}; choose from "
              f"{', '.join(sorted(SPECS))}", file=sys.stderr)
        return 2
    overrides = {}
    if axes:
        overrides["axes"] = tuple(axes)
        overrides["name"] = "custom"
    if args.mode is not None:
        overrides["mode"] = args.mode
    if args.instructions is not None:
        overrides["instructions"] = args.instructions
    if args.seed is not None:
        overrides["seed"] = args.seed
    try:
        spec = replace(base, **overrides) if overrides else base
    except SpaceError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    store = ResultStore(args.store) if args.use_store else None

    if args.points:
        code = code_version()
        print(f"spec '{spec.name}' ({spec.mode}): "
              f"{len(spec.points())} points x "
              f"{len(spec.workloads)} workloads")
        for point in spec.points():
            params = point.params()
            cached = sum(
                1 for workload in spec.workloads
                if store is not None and result_key(
                    params, workload, point.instructions, point.seed,
                    code=code) in store)
            print(f"  {point.label():40s} {cached}/"
                  f"{len(spec.workloads)} cached")
        return 0

    result = run_sweep(spec, store=store, jobs=args.jobs,
                       resume=args.resume,
                       progress=lambda line: print(line,
                                                   file=sys.stderr))
    report = sensitivity(result)
    print(render_sensitivity(report, result.stats))
    if args.json:
        doc = explore_json(result, report, meta={
            "spec": spec.name,
            "store": args.store if args.use_store else None,
            "code_version": code_version(),
        })
        with open(args.json, "w") as handle:
            json.dump(doc, handle, indent=1, sort_keys=True)
            handle.write("\n")
        print(f"\nwrote {args.json}")
    claim = report.get("decode_claim")
    if claim is not None and not claim["ok"]:
        print("overlapped-decode claim check failed (see above)",
              file=sys.stderr)
        return 1
    return 0


def _cmd_validate(args) -> int:
    import json

    from repro.report.validate import render_validate, validate_json
    from repro.validate import check_measurement, fuzz
    from repro.workloads.experiments import run_workload

    instructions = 2_000 if args.smoke else args.instructions
    fuzz_instructions = min(args.fuzz_instructions,
                            200 if args.smoke else args.fuzz_instructions)

    reports = []
    for profile in STANDARD_PROFILES:
        measurement = run_workload(profile, instructions, seed=args.seed)
        reports.append(check_measurement(measurement))

    fuzz_results = []
    if args.fuzz:
        fuzz_results = fuzz(args.fuzz, seed=args.seed,
                            instructions=fuzz_instructions,
                            progress=lambda line: print(line,
                                                        file=sys.stderr))

    print(render_validate(reports, fuzz_results))
    ok = all(r.ok for r in reports) \
        and all(r["ok"] for r in fuzz_results)
    if args.json:
        doc = validate_json(reports, fuzz_results, meta={
            "instructions": instructions,
            "fuzz_cases": args.fuzz,
            "fuzz_instructions": fuzz_instructions,
            "seed": args.seed,
            "smoke": args.smoke,
        })
        with open(args.json, "w") as handle:
            json.dump(doc, handle, indent=1, sort_keys=True)
            handle.write("\n")
        print(f"\nwrote {args.json}")
    return 0 if ok else 1


_COMMANDS = {
    "characterize": _cmd_characterize,
    "run-workload": _cmd_run_workload,
    "hotspots": _cmd_hotspots,
    "disasm": _cmd_disasm,
    "figure1": _cmd_figure1,
    "profiles": _cmd_profiles,
    "ubench": _cmd_ubench,
    "explore": _cmd_explore,
    "validate": _cmd_validate,
}


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
