"""Command-line interface: ``python -m repro <command>``.

A thin argparse shell over :mod:`repro.api` — every handler parses
flags, calls one facade function, and renders the result.  Validation
errors surface as :class:`repro.api.ApiError` and exit with code 2;
result failures (inexact kernels, a failed claim check, a divergence)
exit with code 1.

Commands:

* ``characterize`` — the paper's measurement campaign: run the five
  workloads, form the composite, print the requested tables.
* ``run-workload`` — run a single workload environment and summarise it.
* ``hotspots`` — rank the hottest control-store locations (raw-histogram
  view).
* ``disasm`` — assemble a VAX MACRO source file and print its listing.
* ``figure1`` — render the 11/780 block diagram from the machine model.
* ``profiles`` — list the paper's five workload profiles (the
  historical subset of ``workloads``).
* ``workloads`` — list the full workload registry
  (:mod:`repro.workloads.registry`): name, generator class, and
  per-machine support for every registered workload — the paper's
  five, the synthetic zoo, and any ingested traces.
* ``record-trace`` — record one workload run to a versioned
  instruction-trace file; replaying the file is bit-identical to the
  recording, and the trace registers as a first-class workload.
* ``machines`` — list the registered machine backends
  (:mod:`repro.machines`): the paper's 11/780 and the MicroVAX 78032
  subset machine, selectable everywhere via ``--machine``.
* ``ubench`` — run the microbenchmark kernel sweep (per-instruction
  cycle characterization, measured vs. analytical model).
* ``explore`` — design-space sweep: simulate MachineParams variations
  (§5's engineering what-ifs) with a persistent result store and print
  sensitivity tables.
* ``validate`` — conservation-invariant checks on the five workloads
  plus fastpath-vs-reference differential fuzzing.
* ``refute`` — assumption-refutation campaign: sweep the configuration
  space hunting for violations of every registered assumption, shrink
  each to a minimal reproducer, self-check with planted bugs, and emit
  ``REFUTATIONS.json`` (see :mod:`repro.refute`).
* ``serve`` — run the simulation service: an async HTTP job server
  with a shared result cache, bounded queue, and backpressure (see
  :mod:`repro.serve`).
* ``submit`` — submit one job to a running server and wait for the
  result.

Every command accepts the shared flags ``--jobs``, ``--seed``,
``--json``, ``--smoke``, ``--store``, ``--engine``, ``--machine``,
``--obs DIR`` and ``--heartbeat SECS``; the obs pair wraps the run in a
:class:`repro.obs.Observation` (live JSONL events, metrics snapshot,
Chrome trace, flamegraph, liveness lines on stderr) without changing a
single simulated count.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro import api, obs

#: (flags, kwargs) for every shared option; the parent parser is built
#: from this table and the consistency test in ``tests/test_cli_flags``
#: checks each subcommand against it.
SHARED_FLAGS = (
    (("--jobs",), dict(
        type=int, default=None, metavar="N",
        help="worker processes for parallel fan-out (default 1 = "
             "serial; results are bit-identical either way)")),
    (("--seed",), dict(
        type=int, default=None, metavar="SEED",
        help="workload seed (default: 1984, or the sweep spec's)")),
    (("--json",), dict(
        default=None, metavar="PATH",
        help="also write a machine-readable JSON document to PATH")),
    (("--smoke",), dict(
        action="store_true",
        help="small fixed budgets / subsets (CI smoke run)")),
    (("--store",), dict(
        default=None, metavar="DIR",
        help="explore result store directory "
             "(default: .explore/store)")),
    (("--engine",), dict(
        default=None, metavar="ENGINE",
        help="execution engine: scalar (default), batch (lockstep "
             "many-lane engine, bit-identical results), or auto; "
             "validated before anything simulates")),
    (("--machine",), dict(
        default=None, metavar="NAME",
        help="machine backend: vax780 (default, the paper's machine) "
             "or uvax78032 (MicroVAX subset VAX); see 'repro "
             "machines'; validated before anything simulates")),
    (("--obs",), dict(
        default=None, metavar="DIR",
        help="write observability artifacts (events.jsonl, "
             "metrics.json, trace.json, flamegraph.collapsed) to DIR")),
    (("--heartbeat",), dict(
        type=float, default=None, metavar="SECS",
        help="print a liveness line to stderr every SECS seconds")),
)


def _version() -> str:
    """Package version: installed metadata, else the source tree's."""
    try:
        from importlib.metadata import version
        return version("repro")
    except Exception:
        import repro
        return getattr(repro, "__version__", "unknown")


def _shared_parent() -> argparse.ArgumentParser:
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("shared options")
    for flags, kwargs in SHARED_FLAGS:
        group.add_argument(*flags, **kwargs)
    return parent


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="VAX-11/780 characterization study reproduction "
                    "(Emer & Clark, ISCA 1984)")
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {_version()}")
    parent = _shared_parent()
    sub = parser.add_subparsers(dest="command", required=True)

    characterize = sub.add_parser(
        "characterize", parents=[parent],
        help="run the five-workload composite and print the paper's "
             "tables")
    characterize.add_argument("--instructions", type=int, default=None,
                              help="measured instructions per workload "
                                   "(default 30000; --smoke: 2000)")
    characterize.add_argument("--table", default="all",
                              help="which table: 1-9, s4, or 'all'")
    characterize.add_argument(
        "--paranoid", action="store_true",
        help="sample conservation-invariant checks during the runs "
             "(passive; forces --jobs 1)")
    characterize.add_argument(
        "--workloads", default=None, metavar="A,B,...",
        help="composite over these registered workloads instead of "
             "the paper's five ('all' = every generator workload the "
             "machine supports; see 'repro workloads')")

    one = sub.add_parser("run-workload", parents=[parent],
                         help="run one workload environment")
    one.add_argument("workload",
                     help="workload name (see 'repro workloads'), or "
                          "trace:PATH for a recorded trace file")
    one.add_argument("--instructions", type=int, default=None,
                     help="measured instructions "
                          "(default 30000; --smoke: 2000)")
    one.add_argument("--paranoid", action="store_true",
                     help="sample conservation-invariant checks "
                          "during the run (passive)")

    hotspots = sub.add_parser("hotspots", parents=[parent],
                              help="hottest control-store locations")
    hotspots.add_argument("--instructions", type=int, default=20_000)
    hotspots.add_argument("--top", type=int, default=20)

    disasm = sub.add_parser("disasm", parents=[parent],
                            help="assemble a source file and list it")
    disasm.add_argument("source", help="VAX MACRO source file")
    disasm.add_argument("--base", type=lambda v: int(v, 0),
                        default=0x200, help="assembly base address")

    sub.add_parser("figure1", parents=[parent],
                   help="render the block diagram")
    sub.add_parser("profiles", parents=[parent],
                   help="list the paper's five workload profiles")
    sub.add_parser("machines", parents=[parent],
                   help="list the registered machine backends")
    sub.add_parser("workloads", parents=[parent],
                   help="list the workload registry: name, class, and "
                        "per-machine support")

    record = sub.add_parser(
        "record-trace", parents=[parent],
        help="record one workload run to a replayable trace file and "
             "register it as a workload")
    record.add_argument("workload",
                        help="source workload to record "
                             "(see 'repro workloads')")
    record.add_argument("--out", default=None, metavar="PATH",
                        help="trace file to write "
                             "(default: <workload>.rprt)")
    record.add_argument("--instructions", type=int, default=None,
                        help="measured instructions to record "
                             "(default 30000; --smoke: 2000)")
    record.add_argument("--name", default=None, metavar="NAME",
                        help="registry name for the trace workload "
                             "(default: trace-<workload>)")
    record.add_argument("--no-register", dest="register",
                        action="store_false", default=True,
                        help="write the file without registering the "
                             "trace as a workload")

    ubench = sub.add_parser(
        "ubench", parents=[parent],
        help="microbenchmark sweep: per-instruction cycles, "
             "measured vs. analytical model")
    ubench.add_argument("--group", default=None,
                        help="only kernels of one opcode group "
                             "(simple, field, float, callret, system, "
                             "character, decimal)")
    ubench.add_argument("--mode", default=None,
                        help="only kernels of one operand-specifier "
                             "mode (e.g. register, immediate, "
                             "displacement-byte)")
    ubench.add_argument("--variant", default=None,
                        choices=("warm", "cold"),
                        help="only warm or cold cache/TB kernels")
    ubench.add_argument("--no-check", dest="check", action="store_false",
                        help="skip the composite consistency pass")
    ubench.add_argument("--check-instructions", type=int, default=20_000,
                        help="instructions per workload for the "
                             "consistency composite")

    explore = sub.add_parser(
        "explore", parents=[parent],
        help="design-space sweep over MachineParams axes with a "
             "persistent result store")
    explore.add_argument("--spec", default="paper-sensitivity",
                         help="named sweep spec (paper-sensitivity, "
                              "smoke)")
    explore.add_argument("--axis", action="append", default=[],
                         metavar="NAME=V1,V2,...",
                         help="sweep axis (repeatable); replaces the "
                              "spec's axes")
    explore.add_argument("--mode", default=None,
                         choices=("ofat", "cartesian"),
                         help="point enumeration: one-factor-at-a-time "
                              "or the full grid (default: the spec's)")
    explore.add_argument("--points", action="store_true",
                         help="list the enumerated points and their "
                              "store status without simulating")
    explore.add_argument("--instructions", type=int, default=None,
                         help="measured instructions per workload "
                              "(default: the spec's)")
    explore.add_argument("--resume", action="store_true", default=True,
                         help="reuse stored results (default)")
    explore.add_argument("--no-resume", dest="resume",
                         action="store_false",
                         help="re-simulate every point (the store is "
                              "still updated)")
    explore.add_argument("--no-store", dest="use_store",
                         action="store_false", default=True,
                         help="do not read or write the result store")

    validate = sub.add_parser(
        "validate", parents=[parent],
        help="conservation-invariant checks and fastpath-vs-reference "
             "differential fuzzing")
    validate.add_argument("--instructions", type=int, default=None,
                          help="measured instructions per workload for "
                               "the invariant pass "
                               "(default 20000; --smoke: 2000)")
    validate.add_argument("--fuzz", type=int, default=0, metavar="N",
                          help="differential fuzz cases to run "
                               "(0 = invariants only)")
    validate.add_argument("--fuzz-instructions", type=int, default=400,
                          help="measured instructions per fuzz case")
    validate.add_argument(
        "--workloads", default=None, metavar="A,B,...",
        help="run the invariant pass over these registered workloads "
             "instead of the paper's five ('all' = every generator "
             "workload the machine supports)")

    refute = sub.add_parser(
        "refute", parents=[parent],
        help="assumption-refutation campaign: hunt, shrink, and file "
             "model/simulator divergences (REFUTATIONS.json)")
    refute.add_argument("--campaign", default=None,
                        help="named campaign: standard (default) or "
                             "smoke (--smoke is shorthand)")
    refute.add_argument("--plant", default=None, metavar="NAME",
                        help="install one named perturbation for the "
                             "campaign (the run must then catch it); "
                             "see repro.refute.perturbation_names()")
    refute.add_argument("--no-self-check", dest="self_check",
                        action="store_false", default=True,
                        help="skip the planted-bug self-check that "
                             "normally follows a clean campaign")

    serve = sub.add_parser(
        "serve", parents=[parent],
        help="run the simulation service (async job server with a "
             "shared cache, queueing, and backpressure)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8080,
                       help="bind port (0 = ephemeral; the actual port "
                            "is printed at startup)")
    serve.add_argument("--queue-size", type=int, default=64,
                       help="bounded job queue depth; a full queue "
                            "answers 429 + Retry-After")
    serve.add_argument("--rate", type=float, default=None,
                       metavar="PER_SEC",
                       help="per-client submission rate limit "
                            "(default: unlimited)")
    serve.add_argument("--burst", type=int, default=8,
                       help="per-client token-bucket capacity")
    serve.add_argument("--job-timeout", type=float, default=None,
                       metavar="SECS",
                       help="per-round execution timeout; timed-out "
                            "jobs retry once, then fail")
    serve.add_argument("--no-store", dest="use_store",
                       action="store_false", default=True,
                       help="serve without the persistent result cache "
                            "(in-flight coalescing still applies)")

    submit = sub.add_parser(
        "submit", parents=[parent],
        help="submit one job to a running server")
    submit.add_argument("job_command", metavar="COMMAND",
                        help="service command: characterize, "
                             "run-workload, ubench, explore, validate")
    submit.add_argument("--param", action="append", default=[],
                        metavar="NAME=VALUE",
                        help="job parameter (repeatable); VALUE is "
                             "parsed as JSON, falling back to a string")
    submit.add_argument("--url", default="http://127.0.0.1:8080",
                        help="server address")
    submit.add_argument("--client-name", default=None, metavar="NAME",
                        help="client identity for rate limiting "
                             "(X-Repro-Client header)")
    submit.add_argument("--no-wait", dest="wait", action="store_false",
                        default=True,
                        help="return the queued job id immediately "
                             "instead of polling for the result")
    submit.add_argument("--timeout", type=float, default=600.0,
                        help="seconds to wait for the job to finish")
    return parser


def _seed(args) -> int:
    return 1984 if args.seed is None else args.seed


def _jobs(args) -> int:
    return 1 if args.jobs is None else args.jobs


def _write_json(path: str, doc: dict) -> None:
    with open(path, "w") as handle:
        json.dump(doc, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print(f"\nwrote {path}")


def _workload_list(value):
    """Parse a ``--workloads`` flag: comma list, 'all', or None."""
    if value is None or value == "all":
        return value
    return tuple(name.strip() for name in value.split(",")
                 if name.strip())


def _cmd_characterize(args) -> int:
    result = api.characterize(instructions=args.instructions,
                              seed=_seed(args), jobs=_jobs(args),
                              paranoid=args.paranoid, table=args.table,
                              smoke=args.smoke, engine=args.engine,
                              machine=args.machine,
                              workloads=_workload_list(args.workloads))
    for entry in result.tables:
        print(entry["text"])
        print()
    if args.json:
        _write_json(args.json, result.to_json())
    return 0


def _cmd_run_workload(args) -> int:
    result = api.run_workload(args.workload,
                              instructions=args.instructions,
                              seed=_seed(args), paranoid=args.paranoid,
                              smoke=args.smoke, machine=args.machine)
    print(f"workload:  {result.profile}")
    print(f"machine:   {result.machine}")
    print(f"           {result.description}")
    print(f"instructions measured: {result.instructions_measured}")
    print(f"cycles per instruction: "
          f"{result.cycles_per_instruction:.2f}")
    print()
    print(result.table1_text)
    if args.json:
        _write_json(args.json, result.to_json())
    return 0


def _cmd_hotspots(args) -> int:
    result = api.hotspots(instructions=args.instructions, top=args.top,
                          seed=_seed(args), smoke=args.smoke)
    print(f"{'uPC':>5s} {'cycles':>10s} {'%':>6s}  {'row':12s} "
          f"routine.slot")
    for row in result.rows:
        print(f"{row['address']:5d} {row['cycles']:10d} "
              f"{row['percent']:6.2f}  {row['row']:12s} "
              f"{row['routine']}.{row['slot']}")
    if args.json:
        _write_json(args.json, result.to_json())
    return 0


def _cmd_disasm(args) -> int:
    with open(args.source) as handle:
        source = handle.read()
    result = api.disasm(source, base=args.base)
    for line in result.lines:
        print(line)
    if args.json:
        _write_json(args.json, result.to_json())
    return 0


def _cmd_figure1(args) -> int:
    result = api.figure1()
    print(result.text)
    if args.json:
        _write_json(args.json, result.to_json())
    return 0


def _cmd_profiles(args) -> int:
    result = api.profiles()
    for profile in result.profiles:
        print(f"{profile['name']:24s} {profile['description']}")
    if args.json:
        _write_json(args.json, result.to_json())
    return 0


def _cmd_workloads(args) -> int:
    result = api.workloads()
    machines = sorted({machine for entry in result.workloads
                       for machine in entry["supported"]})
    header = f"{'workload':24s} {'class':10s} {'kind':10s} " \
             + " ".join(f"{name:>10s}" for name in machines)
    print(header)
    for entry in result.workloads:
        marker = "*" if entry["name"] == result.default else " "
        support = " ".join(
            f"{'yes' if entry['supported'][name] else 'no':>10s}"
            for name in machines)
        print(f"{marker}{entry['name']:23s} {entry['generator']:10s} "
              f"{entry['kind']:10s} {support}")
    print(f"\n{result.count} workloads; * = default "
          "(select with 'run-workload NAME')")
    if args.json:
        _write_json(args.json, result.to_json())
    return 0


def _cmd_record_trace(args) -> int:
    out = args.out or f"{args.workload}.rprt"
    result = api.record_trace(args.workload, path=out,
                              instructions=args.instructions,
                              seed=_seed(args), machine=args.machine,
                              name=args.name, smoke=args.smoke,
                              register=args.register)
    print(f"recorded:  {result.source} -> {result.path}")
    print(f"machine:   {result.machine}  seed: {result.seed}  "
          f"instructions: {result.instructions}")
    print(f"events:    {result.events}  cycles: {result.cycles}")
    print(f"sha256:    {result.file_sha256}")
    if result.registered:
        print(f"registered as workload: {result.workload}")
    if args.json:
        _write_json(args.json, result.to_json())
    return 0


def _cmd_machines(args) -> int:
    result = api.machines()
    for machine in result.machines:
        marker = "*" if machine["default"] else " "
        print(f"{marker} {machine['name']:12s} "
              f"(nominal CPI ~{machine['cpi_nominal']:.1f}) "
              f"{machine['description']}")
    print("\n* = default backend; select with --machine NAME")
    if args.json:
        _write_json(args.json, result.to_json())
    return 0


def _cmd_ubench(args) -> int:
    from repro.report.ubench import render_ubench, ubench_json

    result = api.ubench(group=args.group, mode=args.mode,
                        variant=args.variant, smoke=args.smoke,
                        jobs=_jobs(args), check=args.check,
                        check_instructions=args.check_instructions,
                        seed=_seed(args), machine=args.machine)
    print(render_ubench(list(result.results), result.check))
    if args.json:
        _write_json(args.json, ubench_json(
            list(result.results), result.check, meta={
                "suite": result.suite,
                "kernel_count": result.kernel_count,
                "seed": result.seed,
                "machine": result.machine,
            }))
    if result.failed:
        print(f"inexact kernels: {', '.join(result.failed)}",
              file=sys.stderr)
        return 1
    if result.check_ok is False:
        print("consistency check failed (see table above)",
              file=sys.stderr)
        return 1
    return 0


def _cmd_explore(args) -> int:
    from repro.report.explore import explore_json, render_sensitivity

    store = (args.store or ".explore/store") if args.use_store else None
    if args.points:
        listing = api.explore_points(
            spec=args.spec, axes=args.axis, mode=args.mode,
            instructions=args.instructions, seed=args.seed,
            smoke=args.smoke, store=store, machine=args.machine)
        print(f"spec '{listing.spec}' ({listing.mode}): "
              f"{len(listing.points)} points x "
              f"{listing.workloads} workloads")
        for point in listing.points:
            print(f"  {point['label']:40s} {point['cached']}/"
                  f"{listing.workloads} cached")
        if args.json:
            _write_json(args.json, listing.to_json())
        return 0

    result = api.explore(
        spec=args.spec, axes=args.axis, mode=args.mode,
        instructions=args.instructions, seed=args.seed,
        smoke=args.smoke, store=store, resume=args.resume,
        jobs=_jobs(args), engine=args.engine, machine=args.machine,
        progress=lambda line: print(line, file=sys.stderr))
    print(render_sensitivity(result.report, result.stats))
    if args.json:
        from repro.explore import code_version
        from repro.explore.store import ResultStore

        _write_json(args.json, explore_json(result.sweep, result.report,
                                            meta={
            "spec": result.spec,
            "store": store,
            "store_stats": ResultStore(store).stats()
            if store is not None else None,
            "engine": result.engine,
            "code_version": code_version(),
        }))
    if result.decode_claim_ok is False:
        print("overlapped-decode claim check failed (see above)",
              file=sys.stderr)
        return 1
    return 0


def _cmd_validate(args) -> int:
    from repro.report.validate import render_validate, validate_json

    result = api.validate(instructions=args.instructions,
                          fuzz_cases=args.fuzz,
                          fuzz_instructions=args.fuzz_instructions,
                          seed=_seed(args), smoke=args.smoke,
                          jobs=_jobs(args),
                          engine=args.engine, machine=args.machine,
                          workloads=_workload_list(args.workloads),
                          progress=lambda line: print(line,
                                                      file=sys.stderr))
    print(render_validate(list(result.reports),
                          list(result.fuzz_results)))
    if args.json:
        _write_json(args.json, validate_json(
            list(result.reports), list(result.fuzz_results), meta={
                "instructions": result.instructions,
                "fuzz_cases": result.fuzz_cases,
                "fuzz_instructions": result.fuzz_instructions,
                "seed": result.seed,
                "smoke": result.smoke,
                "machine": result.machine,
            }))
    return 0 if result.ok else 1


def _cmd_refute(args) -> int:
    from repro.report.refute import refute_json, render_refute

    result = api.refute(campaign=args.campaign, smoke=args.smoke,
                        seed=args.seed, jobs=_jobs(args),
                        store=args.store or ".explore/store",
                        self_check=args.self_check, plant=args.plant,
                        progress=lambda line: print(line,
                                                    file=sys.stderr))
    print(render_refute(result.campaign_result, result.planted))
    if args.json:
        _write_json(args.json, refute_json(result.campaign_result,
                                           result.planted))
    return 0 if result.ok else 1


def _cmd_serve(args) -> int:
    import asyncio
    import signal

    from repro.serve import JobServer, ServeConfig
    from repro.serve.canonical import _engine, _machine

    if args.engine is not None:
        _engine(args.engine)        # fail at startup, not per request
    if args.machine is not None:
        _machine(args.machine)      # likewise
    config = ServeConfig(
        host=args.host, port=args.port, queue_size=args.queue_size,
        workers=_jobs(args), rate=args.rate, burst=args.burst,
        store=(args.store or ".explore/store") if args.use_store
        else None,
        engine=args.engine, machine=args.machine,
        job_timeout=args.job_timeout)

    async def run() -> None:
        server = JobServer(config)
        await server.start()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(signum, server.request_drain)
        print(f"repro.serve listening on "
              f"http://{config.host}:{server.port}", flush=True)
        await server.serve_forever()
        print("repro.serve drained and stopped", flush=True)

    asyncio.run(run())
    return 0


def _cmd_submit(args) -> int:
    from repro.serve.canonical import COMMANDS
    from repro.serve.client import ServeClient, ServeError

    cls = COMMANDS.get(args.job_command)
    if cls is None:
        raise api.ApiError(
            f"unknown command {args.job_command!r}; choose from "
            f"{', '.join(sorted(COMMANDS))}")
    params = {}
    for item in args.param:
        name, sep, value = item.partition("=")
        if not sep:
            raise api.ApiError(
                f"--param expects NAME=VALUE, got {item!r}")
        try:
            params[name] = json.loads(value)
        except json.JSONDecodeError:
            params[name] = value
    from dataclasses import fields

    names = {spec.name for spec in fields(cls)}
    for flag in ("seed", "jobs", "engine", "machine"):
        value = getattr(args, flag)
        if value is not None and flag in names and flag not in params:
            params[flag] = value
    if args.smoke and "smoke" in names and "smoke" not in params:
        params["smoke"] = True
    cls.from_payload(params)        # reject bad params before the wire
    client = ServeClient(url=args.url, name=args.client_name)
    try:
        job = client.submit(args.job_command, params, wait=args.wait,
                            timeout=args.timeout)
    except ServeError as exc:
        print(str(exc), file=sys.stderr)
        if exc.retry_after is not None:
            print(f"retry after {exc.retry_after}s", file=sys.stderr)
        return 1
    note = " (cache hit)" if job.get("cached") else ""
    print(f"job {job['id']}: {job['status']}{note}")
    if args.json:
        _write_json(args.json, job)
    return 0


_COMMANDS = {
    "characterize": _cmd_characterize,
    "run-workload": _cmd_run_workload,
    "hotspots": _cmd_hotspots,
    "disasm": _cmd_disasm,
    "figure1": _cmd_figure1,
    "profiles": _cmd_profiles,
    "workloads": _cmd_workloads,
    "record-trace": _cmd_record_trace,
    "machines": _cmd_machines,
    "ubench": _cmd_ubench,
    "explore": _cmd_explore,
    "validate": _cmd_validate,
    "refute": _cmd_refute,
    "serve": _cmd_serve,
    "submit": _cmd_submit,
}


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    handler = _COMMANDS[args.command]
    try:
        if args.obs is not None or args.heartbeat is not None:
            with obs.observe(args.obs, heartbeat=args.heartbeat,
                             label=args.command) as observation:
                code = handler(args)
            for name, path in sorted(observation.outputs.items()):
                print(f"obs: wrote {name}: {path}", file=sys.stderr)
            return code
        return handler(args)
    except api.ApiError as exc:
        print(str(exc), file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
