"""The 11/780 CPU: EBOX, I-Fetch/IB, tracer, faults and the machine."""

from repro.cpu.ebox import EBox, OperandRef
from repro.cpu.faults import (IllegalOperand, MachineHalt, PageFaultTrap,
                              SimulatorError)
from repro.cpu.ibuffer import InstructionBuffer
from repro.cpu.itrace import InstructionTracer, TraceRecord
from repro.cpu.machine import VAX780
from repro.cpu.tracer import Tracer

__all__ = ["EBox", "OperandRef", "IllegalOperand", "MachineHalt",
           "PageFaultTrap", "SimulatorError", "InstructionBuffer",
           "VAX780", "Tracer", "InstructionTracer", "TraceRecord"]
