"""The EBOX: the 11/780's microcoded execution engine.

The EBOX owns the architectural state (general registers, per-mode stack
pointers, PSL) and the micro-level accounting: every cycle it consumes is
charged to a control-store address on the histogram board, stall cycles
are charged to the stalling microinstruction (read/write stalls) or to the
per-context insufficient-bytes dispatch address (IB stalls), and TB misses
microtrap into the miss-service flow exactly as §2.1 describes.

Executors (the per-family execute flows in :mod:`repro.cpu.executors`)
drive the EBOX through a small primitive vocabulary:

* :meth:`cycle` — an autonomous compute microcycle,
* :meth:`read` / :meth:`write` — D-stream references through TB, cache and
  write buffer, with stall accounting,
* :meth:`store` — result store into an evaluated operand (charged to the
  operand's specifier row, as the paper attributes it),
* :meth:`take_branch` — branch-displacement processing plus IB redirect.
"""

from __future__ import annotations

from repro.arch.datatypes import MASKS, SIGN_BITS, is_negative, sign_extend
from repro.arch.opcodes import OperandKind
from repro.arch.registers import PC, SP, KERNEL, PSL
from repro.arch.specifiers import AddressingMode
from repro.cpu.faults import IllegalOperand, PageFaultTrap, SimulatorError
from repro.cpu.ibuffer import InstructionBuffer
from repro.cpu.tracer import Tracer
from repro.ucode import costs
from repro.ucode.map import MicrocodeMap
from repro.ucode.rows import Row
from repro.vm.address import PAGE_BYTES, PAGE_SHIFT
from repro.vm.pagetable import PTE_VALID, PFN_MASK, TranslationNotMapped

_M = AddressingMode
_PAGE_MASK = PAGE_BYTES - 1
_WORD = 0xFFFFFFFF


class OperandRef:
    """An evaluated operand specifier.

    ``kind`` is ``"value"`` (datum already in hand: literal, immediate,
    read result, or a computed address for address-access operands),
    ``"reg"`` (register operand) or ``"mem"`` (memory operand carrying its
    effective address and, for modify access, the datum already read).
    """

    __slots__ = ("kind", "value", "reg", "addr", "size", "write_upc")

    def __init__(self, kind, value=0, reg=0, addr=0, size=4,
                 write_upc=None) -> None:
        self.kind = kind
        self.value = value
        self.reg = reg
        self.addr = addr
        self.size = size
        self.write_upc = write_upc


def expand_short_literal(literal: int, kind: OperandKind) -> int:
    """Expand a 6-bit short literal per the operand's data type."""
    if kind.dtype in ("f", "d"):
        # Floating short literal: 3 exponent bits, 3 fraction bits.
        pattern = ((128 + (literal >> 3)) << 23) | ((literal & 7) << 20)
        return pattern
    return literal


class EBox:
    """Microcode execution engine plus architectural state."""

    def __init__(self, params, mem, tb, translator, umap: MicrocodeMap,
                 board, tracer: Tracer) -> None:
        self.params = params
        self.mem = mem
        self.tb = tb
        self.translator = translator
        self.u = umap
        self.board = board
        self.tracer = tracer
        self.ib = InstructionBuffer(mem, tb, translator, params)
        #: With I-stream prefetch disabled (no-IB machines) decoded
        #: bytes cost nothing per byte: the fetch time is folded into
        #: the per-group execute cycles (params.exec_extra_cycles).
        self._ib_free = not params.ib_prefetch

        #: Hot-loop bindings.  Every one of these objects is created once
        #: and then mutated in place for the life of the machine (the
        #: stats objects reset via ``__init__`` on the same instance, the
        #: maps and sets are cleared in place), so holding direct
        #: references is safe and saves an attribute chain per microcycle.
        self._tb_maps = tb._maps
        self._tb_stats = tb.stats
        self._cache_read = mem.cache.read
        self._cache_stats = mem.cache.stats
        self._cache_resident = mem.cache._resident
        self._cache_block_shift = mem.cache._block_shift
        self._sbi_read = mem.sbi.read_transaction
        self._read_data = mem.read_data
        self._write_data = mem.write_data
        self._cache_write = mem.cache.write
        self._wb_issue = mem.write_buffer.issue
        self._mem_read = mem.memory.read
        self._mem_write = mem.memory.write

        self.registers = [0] * 16
        self.psl = PSL()
        #: Per-access-mode stack pointers (the architectural KSP..USP).
        self.mode_sps = [0, 0, 0, 0]
        self.pc = 0
        self.now = 0
        #: Process control block base (physical), set via MTPR PCBB.
        self.pcb_base = 0
        #: System control block base (physical), set via MTPR SCBB.
        self.scb_base = 0

        self._fused_upc = None
        #: PC to restart at if the current instruction faults.
        self.restart_pc = 0
        #: hooks the machine installs for MTPR/MFPR side effects and the
        #: LDPCTX address-space switch.
        self.mtpr_hook = None
        self.mfpr_hook = None
        self.ldpctx_hook = None

    # ------------------------------------------------------------------
    # time and cycle accounting
    # ------------------------------------------------------------------

    def tick(self, cycles: int, port_free: bool = True) -> None:
        """Advance simulated time; the I-Fetch engine runs in parallel.

        Equivalent, cycle for cycle, to :meth:`tick_reference` — but
        windows where the fill engine is provably idle are fast-forwarded
        in one step instead of being walked a cycle at a time.  The
        engine is idle for a whole window when no fill is in flight and
        none can start (port busy, IB full, or filling blocked on an
        I-stream TB miss / page fault), or while an in-flight fill's
        data has not arrived yet.  On such cycles the per-cycle engine
        does nothing, so skipping them cannot change any count.

        The fill engine itself (:meth:`InstructionBuffer.tick`) is
        inlined here: it runs several times per instruction, and the
        call plus re-resolved attribute chains were the single largest
        interpreter cost in the simulator.
        """
        ib = self.ib
        now = self.now
        pending = ib.pending
        # Whole-window idle preamble: no loop setup for the two most
        # common cases (engine blocked, or a fill not ready until after
        # the window).
        if pending is None:
            if (not port_free or ib.count >= ib.capacity
                    or ib.tb_miss_va is not None
                    or ib.fault_va is not None):
                self.now = now + cycles
                return
        elif pending[0] - now - 1 >= cycles:
            self.now = now + cycles
            return
        while cycles > 0:
            if pending is None:
                if (not port_free or ib.count >= ib.capacity
                        or ib.tb_miss_va is not None
                        or ib.fault_va is not None):
                    now += cycles
                    break
                # The engine issues a reference this cycle.
                now += 1
                cycles -= 1
                va = ib.prefetch_va
                pfn = self._tb_maps[va >> 31].get(va >> 9)
                tbs = self._tb_stats
                if pfn is None:
                    tbs.misses += 1
                    tbs.i_misses += 1
                    ib.tb_miss_va = va
                    # Filling is now blocked for the rest of the window.
                    now += cycles
                    break
                tbs.hits += 1
                pa4 = ((pfn << PAGE_SHIFT) | (va & _PAGE_MASK)) & ~3
                if (pa4 >> self._cache_block_shift) in self._cache_resident:
                    self._cache_stats.read_hits["i"] += 1
                    ib.references += 1
                    if cycles > 0:
                        # Cache hit: the data arrives next cycle, which
                        # is still inside this window — fuse the issue
                        # and delivery cycles into one iteration.
                        now += 1
                        cycles -= 1
                        take = 4 - (va & 3)
                        room = ib.capacity - ib.count
                        if take > room:
                            take = room
                        ib.count += take
                        ib.bytes_delivered += take
                        ib.prefetch_va = (va + take) & _WORD
                    else:
                        pending = ib.pending = (now + 1, va)
                else:
                    self._cache_read(pa4, "i")
                    ib.references += 1
                    pending = ib.pending = (self._sbi_read(now), va)
            else:
                wait = pending[0] - now - 1
                if wait >= cycles:
                    now += cycles
                    break
                if wait > 0:
                    now += wait
                    cycles -= wait
                # Delivery cycle: the data arrives and the IB accepts as
                # many bytes as it has room for.
                now += 1
                cycles -= 1
                va = pending[1]
                take = 4 - (va & 3)
                room = ib.capacity - ib.count
                if take > room:
                    take = room
                ib.count += take
                ib.bytes_delivered += take
                ib.prefetch_va = (va + take) & _WORD
                pending = ib.pending = None
        self.now = now

    def tick_reference(self, cycles: int, port_free: bool = True) -> None:
        """The per-cycle reference loop :meth:`tick` must match.

        Kept as the executable specification of the timing model; the
        fast-forward regression tests run whole programs under both
        implementations and require bit-identical histograms.
        """
        ib_tick = self.ib.tick
        for _ in range(cycles):
            self.now += 1
            ib_tick(self.now, port_free)

    def _cycle_raw(self, upc: int, n: int = 1) -> None:
        """Charge ``n`` compute cycles at ``upc`` (no fusing).

        The histogram increment and :meth:`tick`'s idle-window fast path
        are inlined: this runs several times per instruction and the two
        extra calls were pure interpreter overhead.
        """
        board = self.board
        if board.enabled:
            board.nonstalled[upc] += n
        ib = self.ib
        pending = ib.pending
        now = self.now
        if pending is None:
            if (ib.count >= ib.capacity or ib.tb_miss_va is not None
                    or ib.fault_va is not None):
                self.now = now + n
                return
            if n == 1:
                # Single active cycle: the fill engine's issue step,
                # inline (matches tick()'s issue branch with cycles=1).
                self.now = now + 1
                va = ib.prefetch_va
                pfn = self._tb_maps[va >> 31].get(va >> 9)
                tbs = self._tb_stats
                if pfn is None:
                    tbs.misses += 1
                    tbs.i_misses += 1
                    ib.tb_miss_va = va
                    return
                tbs.hits += 1
                pa4 = ((pfn << PAGE_SHIFT) | (va & _PAGE_MASK)) & ~3
                ib.references += 1
                if (pa4 >> self._cache_block_shift) in self._cache_resident:
                    self._cache_stats.read_hits["i"] += 1
                    ib.pending = (now + 2, va)
                else:
                    self._cache_read(pa4, "i")
                    ib.pending = (self._sbi_read(now + 1), va)
                return
        elif pending[0] - now - 1 >= n:
            self.now = now + n
            return
        elif n == 1:
            # Single cycle with the fill's data due: the delivery step,
            # inline (matches tick()'s delivery branch with cycles=1).
            self.now = now + 1
            va = pending[1]
            take = 4 - (va & 3)
            room = ib.capacity - ib.count
            if take > room:
                take = room
            ib.count += take
            ib.bytes_delivered += take
            ib.prefetch_va = (va + take) & _WORD
            ib.pending = None
            return
        self.tick(n)

    def cycle(self, upc: int, n: int = 1) -> None:
        """Charge execute-flow compute cycles.

        If the literal/register operand optimisation armed a fused cycle,
        the first cycle is charged to the specifier row instead (§5,
        Table 8 remarks).
        """
        if self._fused_upc is not None and n > 0:
            self.board.count(self._fused_upc)
            self._fused_upc = None
            self.tick(1)
            n -= 1
        if n > 0:
            self._cycle_raw(upc, n)

    def arm_fused_cycle(self, upc: int) -> None:
        """Arm the fused first-execute-cycle optimisation."""
        self._fused_upc = upc

    def disarm_fused_cycle(self) -> None:
        """Cancel an unconsumed fused-cycle credit (end of instruction)."""
        self._fused_upc = None

    # ------------------------------------------------------------------
    # translation and the TB-miss microtrap
    # ------------------------------------------------------------------

    def translate(self, va: int, stream: str = "d") -> int:
        """TB-translate ``va``, servicing misses via the microtrap flow."""
        va &= _WORD
        # TB hit (the overwhelmingly common case): the flat VPN map is
        # exactly the associative lookup, counted identically.
        pfn = self._tb_maps[va >> 31].get(va >> 9)
        if pfn is not None:
            self._tb_stats.hits += 1
            return (pfn << PAGE_SHIFT) | (va & _PAGE_MASK)
        while True:
            pfn = self.tb.lookup(va, stream)
            if pfn is not None:
                return (pfn << PAGE_SHIFT) | (va & _PAGE_MASK)
            self.service_tb_miss(va, stream)

    def service_tb_miss(self, va: int, stream: str) -> None:
        """The TB-miss service micro-routine (§4.2).

        One abort cycle (Row.ABORTS) for the microtrap, then the walk,
        a PTE read through the cache (whose stalls are the paper's 3.5
        cycles), and the insert — all in Row.MEM_MGMT.
        """
        u = self.u
        start = self.now
        self._cycle_raw(u.trap_abort)
        self._cycle_raw(u.tbm_entry)
        self._cycle_raw(u.tbm_compute, costs.TBM_WALK_CYCLES)
        try:
            pte_addr = self.translator.pte_address(va)
        except TranslationNotMapped as exc:
            raise SimulatorError(
                f"TB miss on unmapped address {va:#010x}") from exc
        result = self.mem.read_data(pte_addr, 4, self.now)
        self.board.count(u.tbm_pte_read)
        self.tick(1, port_free=False)
        stall = result.stall_cycles
        if stall:
            self.board.count_stall(u.tbm_pte_read, stall)
            self.tick(stall, port_free=False)
        pte = result.value
        if not pte & PTE_VALID:
            self._cycle_raw(u.tbm_insert, 2)
            self.tracer.page_faults += 1
            self.tracer.tb_miss_faults += 1
            raise PageFaultTrap(va, self.restart_pc)
        self.tb.insert(va, pte & PFN_MASK)
        self._cycle_raw(u.tbm_insert, costs.TBM_INSERT_CYCLES)
        self.tracer.note_tb_miss(stream, self.now - start, stall)

    # ------------------------------------------------------------------
    # D-stream references
    # ------------------------------------------------------------------

    def _chunks(self, va: int, size: int):
        """Split an access at page boundaries (frames may not be adjacent)."""
        va &= _WORD
        first = PAGE_BYTES - (va & _PAGE_MASK)
        if size <= first:
            return ((va, size),)
        return ((va, first), ((va + first) & _WORD, size - first))

    def read(self, va: int, size: int, upc: int) -> int:
        """D-stream read of 1-4 bytes, charged at ``upc``."""
        va &= _WORD
        if (va & _PAGE_MASK) + size <= PAGE_BYTES:
            # Single-page access (the overwhelmingly common case).
            pfn = self._tb_maps[va >> 31].get(va >> 9)
            if pfn is not None:
                self._tb_stats.hits += 1
                pa = (pfn << PAGE_SHIFT) | (va & _PAGE_MASK)
            else:
                pa = self.translate(va)
            if (pa + size - 1) >> 2 == pa >> 2:
                # Aligned within one longword: same sequencing as
                # MemorySubsystem.read_data, with no result object.
                board = self.board
                board.count(upc)
                now = self.now
                pending = self.ib.pending
                if self._cache_read(pa & ~3, "d"):
                    # The engine can only deliver during the reference
                    # window (the EBOX holds the port): absorb the whole
                    # window unless a fill's data is due inside it.
                    if pending is None or pending[0] - now >= 2:
                        self.now = now + 1
                    else:
                        self.tick(1, port_free=False)
                    return self._mem_read(pa, size)
                stall = self._sbi_read(now) - now
                if pending is None or pending[0] - now - 1 >= 1 + stall:
                    self.now = now + 1 + stall
                    if stall:
                        board.count_stall(upc, stall)
                else:
                    self.tick(1, port_free=False)
                    if stall:
                        board.count_stall(upc, stall)
                        self.tick(stall, port_free=False)
                return self._mem_read(pa, size)
            result = self._read_data(pa, size, self.now)
            board = self.board
            board.count(upc)
            stall = result.stall_cycles
            if self.ib.pending is None:
                self.now += 1 + stall
                if stall:
                    board.count_stall(upc, stall)
            else:
                self.tick(1, port_free=False)
                if stall:
                    board.count_stall(upc, stall)
                    self.tick(stall, port_free=False)
            if result.physical_refs > 1:
                # Alignment microcode (Row.MEM_MGMT).
                self._cycle_raw(self.u.unaligned_calc,
                                result.physical_refs - 1)
            return result.value
        value = 0
        shift = 0
        for i, (chunk_va, chunk_size) in enumerate(self._chunks(va, size)):
            pa = self.translate(chunk_va, "d")
            result = self._read_data(pa, chunk_size, self.now)
            self.board.count(upc)
            self.tick(1, port_free=False)
            if result.stall_cycles:
                self.board.count_stall(upc, result.stall_cycles)
                self.tick(result.stall_cycles, port_free=False)
            extra_refs = result.physical_refs - 1 + (1 if i else 0)
            if extra_refs:
                self._cycle_raw(self.u.unaligned_calc, extra_refs)
            value |= result.value << shift
            shift += 8 * chunk_size
        return value

    def write(self, va: int, value: int, size: int, upc: int) -> None:
        """D-stream write of 1-4 bytes through the write buffer."""
        va &= _WORD
        if (va & _PAGE_MASK) + size <= PAGE_BYTES:
            pfn = self._tb_maps[va >> 31].get(va >> 9)
            if pfn is not None:
                self._tb_stats.hits += 1
                pa = (pfn << PAGE_SHIFT) | (va & _PAGE_MASK)
            else:
                pa = self.translate(va)
            if (pa + size - 1) >> 2 == pa >> 2:
                # Aligned within one longword: same sequencing as
                # MemorySubsystem.write_data, with no result object.
                self._cache_write(pa & ~3)
                now = self.now
                stall = self._wb_issue(now)
                self._mem_write(pa, value & MASKS[size], size)
                board = self.board
                board.count(upc)
                pending = self.ib.pending
                if pending is None or pending[0] - now - 1 >= 1 + stall:
                    self.now = now + 1 + stall
                    if stall:
                        board.count_stall(upc, stall)
                else:
                    self.tick(1, port_free=False)
                    if stall:
                        board.count_stall(upc, stall)
                        self.tick(stall, port_free=False)
                return
            result = self._write_data(pa, value & MASKS[size], size,
                                      self.now)
            board = self.board
            board.count(upc)
            stall = result.stall_cycles
            if self.ib.pending is None:
                self.now += 1 + stall
                if stall:
                    board.count_stall(upc, stall)
            else:
                self.tick(1, port_free=False)
                if stall:
                    board.count_stall(upc, stall)
                    self.tick(stall, port_free=False)
            if result.physical_refs > 1:
                self._cycle_raw(self.u.unaligned_calc,
                                result.physical_refs - 1)
            return
        shift = 0
        for i, (chunk_va, chunk_size) in enumerate(self._chunks(va, size)):
            pa = self.translate(chunk_va, "d")
            chunk = (value >> shift) & MASKS[chunk_size]
            result = self._write_data(pa, chunk, chunk_size, self.now)
            self.board.count(upc)
            self.tick(1, port_free=False)
            if result.stall_cycles:
                self.board.count_stall(upc, result.stall_cycles)
                self.tick(result.stall_cycles, port_free=False)
            extra_refs = result.physical_refs - 1 + (1 if i else 0)
            if extra_refs:
                self._cycle_raw(self.u.unaligned_calc, extra_refs)
            shift += 8 * chunk_size

    def read_quad(self, va: int, upc: int) -> int:
        """Two-longword read (the EBOX data path is 32 bits wide)."""
        low = self.read(va, 4, upc)
        high = self.read((va + 4) & _WORD, 4, upc)
        return low | (high << 32)

    def write_quad(self, va: int, value: int, upc: int) -> None:
        """Two-longword write."""
        self.write(va, value & _WORD, 4, upc)
        self.write((va + 4) & _WORD, (value >> 32) & _WORD, 4, upc)

    def read_phys(self, pa: int, size: int, upc: int) -> int:
        """Physical read (SCB vectors, PCB) — no translation."""
        result = self.mem.read_data(pa, size, self.now)
        self.board.count(upc)
        self.tick(1, port_free=False)
        if result.stall_cycles:
            self.board.count_stall(upc, result.stall_cycles)
            self.tick(result.stall_cycles, port_free=False)
        return result.value

    def write_phys(self, pa: int, value: int, size: int, upc: int) -> None:
        """Physical write — no translation."""
        result = self.mem.write_data(pa, value, size, self.now)
        self.board.count(upc)
        self.tick(1, port_free=False)
        if result.stall_cycles:
            self.board.count_stall(upc, result.stall_cycles)
            self.tick(result.stall_cycles, port_free=False)

    # ------------------------------------------------------------------
    # instruction buffer consumption
    # ------------------------------------------------------------------

    def ib_take(self, nbytes: int, stall_upc: int) -> None:
        """Consume decoded I-stream bytes, stalling at ``stall_upc``.

        Each stalled cycle executes the per-context insufficient-bytes
        dispatch microinstruction — its execution count *is* the IB-stall
        cycle count (§4.3).

        Stall cycles are charged in batches: while a fill is in flight
        the number of dispatch re-executions until its data arrives is
        known up front, so the histogram increment and the time advance
        are done once per fill rather than once per cycle.  The counts
        are identical to :meth:`ib_take_reference`'s per-cycle loop.
        """
        ib = self.ib
        if ib.count >= nbytes:
            ib.count -= nbytes
            return
        if self._ib_free:
            return
        count = self.board.count
        guard = 0
        while ib.count < nbytes:
            if ib.tb_miss_va is not None:
                va = ib.tb_miss_va
                self.service_tb_miss(va, "i")
                ib.clear_tb_miss()
                continue
            pending = ib.pending
            n = 1
            if pending is not None:
                wait = pending[0] - self.now
                if wait > 1:
                    n = wait
            count(stall_upc, n)
            self.tick(n, port_free=True)
            guard += n
            if guard > 100000:
                raise SimulatorError(
                    f"IB stall livelock waiting for {nbytes} bytes at "
                    f"pc={self.pc:#010x}")
        ib.count -= nbytes

    def ib_take_reference(self, nbytes: int, stall_upc: int) -> None:
        """Per-cycle reference for :meth:`ib_take` (executable spec)."""
        ib = self.ib
        if self._ib_free and ib.count < nbytes:
            return
        guard = 0
        while ib.count < nbytes:
            if ib.tb_miss_va is not None:
                va = ib.tb_miss_va
                self.service_tb_miss(va, "i")
                ib.clear_tb_miss()
                continue
            self.board.count(stall_upc)
            self.tick_reference(1, port_free=True)
            guard += 1
            if guard > 100000:
                raise SimulatorError(
                    f"IB stall livelock waiting for {nbytes} bytes at "
                    f"pc={self.pc:#010x}")
        ib.take(nbytes)

    # ------------------------------------------------------------------
    # operand specifier evaluation
    # ------------------------------------------------------------------

    def _reg_read(self, n: int, size: int, spec, inst) -> int:
        """Read a general register (PC reads yield the updated PC)."""
        if n == PC:
            return (inst.address + spec.end_offset) & _WORD
        if size <= 4:
            return self.registers[n] & MASKS[size]
        return (self.registers[n] & _WORD) | \
            ((self.registers[(n + 1) & 0xF] & _WORD) << 32)

    def reg_write(self, n: int, value: int, size: int) -> None:
        """Write a general register (sub-longword writes merge)."""
        if size >= 8:
            self.registers[n] = value & _WORD
            self.registers[(n + 1) & 0xF] = (value >> 32) & _WORD
        elif size == 4:
            self.registers[n] = value & _WORD
        else:
            mask = MASKS[size]
            self.registers[n] = (self.registers[n] & ~mask & _WORD) | \
                (value & mask)

    def evaluate_specifiers(self, inst) -> list:
        """Evaluate all operand specifiers of ``inst`` in order.

        Charges specifier-row cycles, reads read/modify operands, and
        returns one :class:`OperandRef` per specifier operand.

        The per-specifier work is driven by a compiled *plan* cached on
        the (decode-cached, re-executed) instruction: one closure per
        specifier with the mode/access dispatch, the µPC constants and
        any static addresses resolved at compile time.  Each plan step
        performs exactly the operations of :meth:`_evaluate_one` — the
        executable reference, still used directly for the rare modes —
        so counts and state updates are identical.
        """
        plan = inst.eval_plan
        if plan is None:
            plan = self._compile_plan(inst)
        ib = self.ib
        refs = []
        for nbytes, stall_upc, step in plan:
            if ib.count >= nbytes:
                ib.count -= nbytes
            else:
                self.ib_take(nbytes, stall_upc)
            refs.append(step())
        return refs

    def _compile_plan(self, inst):
        """Compile the per-specifier evaluation plan for ``inst``."""
        plan = []
        kinds = inst.info.specifier_operands
        for position, (spec, kind) in enumerate(zip(inst.specifiers,
                                                    kinds)):
            row = Row.SPEC1 if position == 0 else Row.SPEC26
            plan.append((spec.length, self.u.spec_stall[row],
                         self._compile_one(inst, spec, kind, row)))
        plan = tuple(plan)
        inst.eval_plan = plan
        return plan

    def _compile_one(self, inst, spec, kind, row):
        """One specifier's plan step: a closure matching _evaluate_one.

        Specifier evaluation is the simulator's hottest dispatch: the
        closures bake in the addressing-mode branch, the operand access
        type and size, the specifier-flow µPCs, and — for literals,
        immediates and PC-relative operands — the fully constant result.
        Constant OperandRefs are shared across executions; nothing in
        the execute flows mutates an evaluated operand.  Anything
        unusual (illegal combinations, unknown modes) falls back to the
        reference evaluator so errors surface exactly where they did.
        """
        mode = spec.mode
        access = kind.access
        size = kind.size
        registers = self.registers
        cycle_raw = self._cycle_raw
        read = self.read

        def generic():
            return self._evaluate_one(inst, spec, kind, row)

        if mode is _M.SHORT_LITERAL:
            if access not in ("r", "v"):
                return generic
            ref = OperandRef("value",
                             expand_short_literal(spec.value, kind),
                             0, 0, size)
            return lambda: ref

        if mode is _M.REGISTER:
            if access == "a":
                return generic
            reg = spec.register
            if access == "r":
                if reg == PC:
                    ref = OperandRef(
                        "value", (inst.address + spec.end_offset) & _WORD,
                        0, 0, size)
                    return lambda: ref
                if size <= 4:
                    msk = MASKS[size]

                    def step():
                        return OperandRef("value", registers[reg] & msk,
                                          0, 0, size)
                    return step
                reg2 = (reg + 1) & 0xF

                def step():
                    return OperandRef(
                        "value", (registers[reg] & _WORD)
                        | ((registers[reg2] & _WORD) << 32), 0, 0, size)
                return step
            if access == "m":
                if reg != PC and size <= 4:
                    msk = MASKS[size]

                    def step():
                        return OperandRef("reg", registers[reg] & msk,
                                          reg, 0, size)
                    return step
                return generic

            # Write-only register refs carry no execution-dependent
            # state; share one constant ref like literals.
            ref = OperandRef("reg", 0, reg, 0, size)
            return lambda: ref

        flows = self.u.spec_flows[row]

        if mode is _M.IMMEDIATE:
            if access not in ("r", "v") or mode not in flows:
                return generic
            imm_upc = flows[mode].imm
            ncyc = 1 if size <= 4 else 2
            val = spec.value

            def step():
                cycle_raw(imm_upc, ncyc)
                return OperandRef("value", val, 0, 0, size)
            return step

        if mode not in flows:
            return generic
        flow = flows[mode]

        # -- effective-address closure per mode ---------------------------
        if mode is _M.REGISTER_DEFERRED:
            reg = spec.register

            def addr_fn():
                return registers[reg]
        elif mode is _M.AUTOINCREMENT:
            reg = spec.register

            def addr_fn():
                addr = registers[reg]
                registers[reg] = (addr + size) & _WORD
                return addr
        elif mode is _M.AUTODECREMENT:
            reg = spec.register
            update_upc = flow.update

            def addr_fn():
                addr = (registers[reg] - size) & _WORD
                registers[reg] = addr
                cycle_raw(update_upc)
                return addr
        elif mode is _M.AUTOINC_DEFERRED:
            reg = spec.register
            ptr_upc = flow.ptr

            def addr_fn():
                ptr = registers[reg]
                registers[reg] = (ptr + 4) & _WORD
                return read(ptr, 4, ptr_upc)
        elif mode is _M.ABSOLUTE:
            imm_upc = flow.imm
            const_addr = spec.value

            def addr_fn():
                cycle_raw(imm_upc)
                return const_addr
        elif mode is _M.DISPLACEMENT:
            reg = spec.register
            disp = spec.displacement
            if spec.disp_size > 1:
                calc_upc = flow.calc

                def addr_fn():
                    cycle_raw(calc_upc)
                    return (registers[reg] + disp) & _WORD
            else:
                def addr_fn():
                    return (registers[reg] + disp) & _WORD
        elif mode is _M.DISP_DEFERRED:
            reg = spec.register
            disp = spec.displacement
            need_calc = spec.disp_size > 1
            calc_upc = flow.calc
            update_upc = flow.update
            ptr_upc = flow.ptr

            def addr_fn():
                if need_calc:
                    cycle_raw(calc_upc)
                ptr = (registers[reg] + disp) & _WORD
                cycle_raw(update_upc)  # indirect pointer staging
                return read(ptr, 4, ptr_upc)
        elif mode is _M.RELATIVE:
            const_addr = (inst.address + spec.end_offset
                          + spec.displacement) & _WORD
            if spec.disp_size > 1:
                calc_upc = flow.calc

                def addr_fn():
                    cycle_raw(calc_upc)
                    return const_addr
            else:
                def addr_fn():
                    return const_addr
        elif mode is _M.RELATIVE_DEFERRED:
            const_ptr = (inst.address + spec.end_offset
                         + spec.displacement) & _WORD
            need_calc = spec.disp_size > 1
            calc_upc = flow.calc
            update_upc = flow.update
            ptr_upc = flow.ptr

            def addr_fn():
                if need_calc:
                    cycle_raw(calc_upc)
                cycle_raw(update_upc)
                return read(const_ptr, 4, ptr_upc)
        else:
            return generic

        if spec.indexed:
            base_fn = addr_fn
            xreg = spec.index_register
            index_upc = self.u.index_calc

            def addr_fn():
                addr = base_fn()
                addr = (addr + sign_extend(registers[xreg], 4) * size) \
                    & _WORD
                cycle_raw(index_upc)
                return addr

        # -- access-type closure ------------------------------------------
        if access == "r":
            read_upc = flow.read
            if size <= 4:
                def step():
                    return OperandRef("value",
                                      read(addr_fn(), size, read_upc),
                                      0, 0, size)
            else:
                def step():
                    addr = addr_fn()
                    value = read(addr, 4, read_upc)
                    value |= read((addr + 4) & _WORD, 4, read_upc) << 32
                    return OperandRef("value", value, 0, 0, size)
            return step
        if access == "m":
            read_upc = flow.read
            write_upc = flow.write
            if size <= 4:
                def step():
                    addr = addr_fn()
                    return OperandRef("mem", read(addr, size, read_upc),
                                      0, addr, size, write_upc)
            else:
                def step():
                    addr = addr_fn()
                    value = read(addr, 4, read_upc)
                    value |= read((addr + 4) & _WORD, 4, read_upc) << 32
                    return OperandRef("mem", value, 0, addr, size,
                                      write_upc)
            return step
        if access == "w":
            write_upc = flow.write

            def step():
                return OperandRef("mem", 0, 0, addr_fn(), size, write_upc)
            return step
        if access in ("a", "v"):
            # Address formation for non-scalar data is specifier work
            # (§3.2); deferred modes already paid their pointer read.
            need_calc = mode in (_M.REGISTER_DEFERRED, _M.AUTOINCREMENT,
                                 _M.AUTODECREMENT, _M.DISPLACEMENT,
                                 _M.RELATIVE, _M.ABSOLUTE)
            calc_upc = flow.calc
            if access == "a":
                def step():
                    addr = addr_fn()
                    if need_calc:
                        cycle_raw(calc_upc)
                    return OperandRef("value", addr, 0, 0, size)
                return step
            write_upc = flow.write

            def step():
                addr = addr_fn()
                if need_calc:
                    cycle_raw(calc_upc)
                return OperandRef("mem", 0, 0, addr, size, write_upc)
            return step
        return generic

    def _evaluate_one(self, inst, spec, kind, row) -> OperandRef:
        mode = spec.mode
        access = kind.access
        size = kind.size

        if mode is _M.SHORT_LITERAL:
            if access not in ("r", "v"):
                raise IllegalOperand(
                    f"short literal with access '{access}' in "
                    f"{inst.mnemonic}")
            return OperandRef("value",
                              value=expand_short_literal(spec.value, kind),
                              size=size)

        if mode is _M.REGISTER:
            if access == "a":
                raise IllegalOperand(
                    f"register operand needs an address in {inst.mnemonic}")
            value = 0
            if access in ("r", "m"):
                value = self._reg_read(spec.register, size, spec, inst)
            if access == "r":
                return OperandRef("value", value=value, size=size)
            return OperandRef("reg", value=value, reg=spec.register,
                              size=size)

        flows = self.u.spec_flows[row]

        if mode is _M.IMMEDIATE:
            if access not in ("r", "v"):
                raise IllegalOperand(
                    f"immediate with access '{access}' in {inst.mnemonic}")
            flow = flows[mode]
            self._cycle_raw(flow.imm, 1 if size <= 4 else 2)
            return OperandRef("value", value=spec.value, size=size)

        # -- memory modes: form the effective address ---------------------
        flow = flows[mode]
        if mode is _M.REGISTER_DEFERRED:
            addr = self.registers[spec.register]
        elif mode is _M.AUTOINCREMENT:
            addr = self.registers[spec.register]
            self.registers[spec.register] = (addr + size) & _WORD
        elif mode is _M.AUTODECREMENT:
            addr = (self.registers[spec.register] - size) & _WORD
            self.registers[spec.register] = addr
            self._cycle_raw(flow.update)
        elif mode is _M.AUTOINC_DEFERRED:
            ptr = self.registers[spec.register]
            self.registers[spec.register] = (ptr + 4) & _WORD
            addr = self.read(ptr, 4, flow.ptr)
        elif mode is _M.ABSOLUTE:
            self._cycle_raw(flow.imm)
            addr = spec.value
        elif mode is _M.DISPLACEMENT:
            # Byte displacements fold into the access cycle; word and
            # longword displacements need an assembly cycle first.
            if spec.disp_size > 1:
                self._cycle_raw(flow.calc)
            addr = (self.registers[spec.register] + spec.displacement) \
                & _WORD
        elif mode is _M.DISP_DEFERRED:
            if spec.disp_size > 1:
                self._cycle_raw(flow.calc)
            ptr = (self.registers[spec.register] + spec.displacement) \
                & _WORD
            self._cycle_raw(flow.update)  # indirect pointer staging
            addr = self.read(ptr, 4, flow.ptr)
        elif mode is _M.RELATIVE:
            if spec.disp_size > 1:
                self._cycle_raw(flow.calc)
            addr = (inst.address + spec.end_offset + spec.displacement) \
                & _WORD
        elif mode is _M.RELATIVE_DEFERRED:
            if spec.disp_size > 1:
                self._cycle_raw(flow.calc)
            ptr = (inst.address + spec.end_offset + spec.displacement) \
                & _WORD
            self._cycle_raw(flow.update)
            addr = self.read(ptr, 4, flow.ptr)
        else:
            raise IllegalOperand(f"unhandled mode {mode} in {inst.mnemonic}")

        if spec.indexed:
            # Microcode sharing: index base calculation always reported in
            # SPEC2-6 (paper, Table 8 remarks).
            index = self.registers[spec.index_register]
            addr = (addr + sign_extend(index, 4) * size) & _WORD
            self._cycle_raw(self.u.index_calc)

        if access == "r":
            if size <= 4:
                value = self.read(addr, size, flow.read)
            else:
                value = self.read(addr, 4, flow.read)
                value |= self.read((addr + 4) & _WORD, 4, flow.read) << 32
            return OperandRef("value", value=value, size=size)
        if access == "m":
            value = self.read(addr, min(size, 4), flow.read)
            if size > 4:
                value |= self.read((addr + 4) & _WORD, 4, flow.read) << 32
            return OperandRef("mem", value=value, addr=addr, size=size,
                              write_upc=flow.write)
        if access == "w":
            return OperandRef("mem", addr=addr, size=size,
                              write_upc=flow.write)
        if access in ("a", "v"):
            # Address formation for non-scalar data is specifier work
            # (§3.2); deferred modes already paid their pointer read.
            if mode in (_M.REGISTER_DEFERRED, _M.AUTOINCREMENT,
                        _M.AUTODECREMENT, _M.DISPLACEMENT, _M.RELATIVE,
                        _M.ABSOLUTE):
                self._cycle_raw(flow.calc)
            if access == "a":
                return OperandRef("value", value=addr, size=size)
            return OperandRef("mem", addr=addr, size=size,
                              write_upc=flow.write)
        raise IllegalOperand(f"access '{access}' in {inst.mnemonic}")

    def store(self, ref: OperandRef, value: int) -> None:
        """Store an instruction result into an evaluated operand.

        Register stores are folded into the final execute cycle (no
        charge); memory stores are the specifier-row write the paper
        attributes to operand processing.
        """
        kind = ref.kind
        if kind == "reg":
            if ref.size == 4:
                self.registers[ref.reg] = value & _WORD
            else:
                self.reg_write(ref.reg, value, ref.size)
        elif kind == "mem":
            if ref.size <= 4:
                self.write(ref.addr, value, ref.size, ref.write_upc)
            else:
                self.write(ref.addr, value & _WORD, 4, ref.write_upc)
                self.write((ref.addr + 4) & _WORD, (value >> 32) & _WORD,
                           4, ref.write_upc)
        else:
            raise IllegalOperand("store into a read-only operand")

    # ------------------------------------------------------------------
    # branches
    # ------------------------------------------------------------------

    def consume_branch_displacement(self, inst) -> None:
        """Take the displacement bytes from the IB (taken or not)."""
        kind = inst.info.branch_operand
        nbytes = 1 if kind.dtype == "b" else 2
        self.ib_take(nbytes, self.u.bdisp_stall)

    def take_branch(self, inst, redirect_upc: int) -> int:
        """Branch-taken path: B-DISP target calc + execute-phase redirect.

        Returns the target PC; the IB is flushed and will refill from the
        target (the refill latency surfaces as the next instruction's
        decode IB-stall, which is where the paper says most IB stall
        lives).
        """
        self._cycle_raw(self.u.bdisp_calc)
        self._cycle_raw(redirect_upc)
        target = inst.branch_target()
        self.ib.flush(target)
        return target

    def redirect(self, target: int, redirect_upc: int) -> int:
        """IB redirect without a branch displacement (JMP, RET, CASE...)."""
        self._cycle_raw(redirect_upc)
        target &= _WORD
        self.ib.flush(target)
        return target

    # ------------------------------------------------------------------
    # mode switching and stacks
    # ------------------------------------------------------------------

    def set_mode(self, new_mode: int) -> None:
        """Switch access mode, banking the per-mode stack pointers."""
        current = self.psl.current_mode
        if new_mode == current:
            return
        self.mode_sps[current] = self.registers[SP]
        self.registers[SP] = self.mode_sps[new_mode]
        self.psl.current_mode = new_mode

    def push(self, value: int, upc: int) -> None:
        """Push a longword on the current stack."""
        sp = (self.registers[SP] - 4) & _WORD
        self.registers[SP] = sp
        self.write(sp, value, 4, upc)

    def pop(self, upc: int) -> int:
        """Pop a longword from the current stack."""
        sp = self.registers[SP]
        value = self.read(sp, 4, upc)
        self.registers[SP] = (sp + 4) & _WORD
        return value

    # ------------------------------------------------------------------
    # condition codes
    # ------------------------------------------------------------------

    def set_nz(self, value: int, size: int, v: bool = False,
               keep_c: bool = True) -> None:
        """The common N/Z update (C preserved unless ``keep_c`` is False)."""
        cc = self.psl.cc
        value &= MASKS[size]
        cc.n = (value & SIGN_BITS[size]) != 0
        cc.z = value == 0
        cc.v = v
        if not keep_c:
            cc.c = False
