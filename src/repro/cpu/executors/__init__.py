"""Execute micro-routines, one per microcode family.

Importing this package registers every executor with
:mod:`repro.ucode.registry`; :class:`~repro.ucode.map.MicrocodeMap` then
allocates annotated control-store addresses for each routine's slots.

Executor signature: ``execute(ebox, inst, ops, u) -> next_pc_or_None``
where ``ops`` is the list of evaluated :class:`OperandRef` objects and
``u`` maps the routine's slot names to control-store addresses.
"""

from repro.cpu.executors import simple      # noqa: F401
from repro.cpu.executors import field       # noqa: F401
from repro.cpu.executors import floating    # noqa: F401
from repro.cpu.executors import callret     # noqa: F401
from repro.cpu.executors import system      # noqa: F401
from repro.cpu.executors import string      # noqa: F401
from repro.cpu.executors import decimal     # noqa: F401
