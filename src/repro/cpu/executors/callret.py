"""Execute flows for the CALL/RET group.

The paper's most striking result lives here: despite only 3.22 % of
executions, this group contributes the largest execute-row share of any
group (Table 8) — ~45 cycles per instruction (Table 9), with heavy stack
traffic (Table 5) and the largest write-stall total, "due to the
write-through cache and the one-longword write buffer, which force the
CALL instruction to stall while pushing the caller's state onto the
stack" (§5).

The call frame follows the VAX convention: a mask/PSW longword, then saved
AP, FP, PC, then the registers named by the entry mask.
"""

from __future__ import annotations

from repro.arch.registers import AP, FP, SP
from repro.ucode import costs
from repro.ucode.registry import executor

_WORD = 0xFFFFFFFF


def _mask_registers(mask: int):
    """Register numbers R0-R11 selected by an entry/PUSHR mask."""
    return [n for n in range(12) if mask & (1 << n)]


@executor("CALL", slots={"entry": "C", "mask_read": "R", "work": "C",
                         "push": "W", "finish": "C", "redirect": "C"})
def exec_call(ebox, inst, ops, u):
    calls = inst.mnemonic == "CALLS"
    ebox.tracer.note_branch("CALL", True)
    target = ops[1].value & _WORD
    ebox.cycle(u["entry"], costs.CALL_ENTRY_CYCLES)
    entry_mask = ebox.read(target, 2, u["mask_read"])
    save_regs = _mask_registers(entry_mask)

    if calls:
        # Push the argument count; AP will point at it.
        numarg = ops[0].value & 0xFF
        ebox.cycle(u["work"], costs.CALL_PER_PUSH_CYCLES)
        ebox.push(numarg, u["push"])
        arg_base = ebox.registers[SP]
    else:
        arg_base = ops[0].value & _WORD

    # Push registers named by the entry mask (highest first).
    for reg in reversed(save_regs):
        ebox.cycle(u["work"], costs.CALL_PER_PUSH_CYCLES)
        ebox.push(ebox.registers[reg], u["push"])

    # Push PC, FP, AP and the mask/PSW longword.
    ebox.cycle(u["work"], costs.CALL_PER_PUSH_CYCLES)
    ebox.push(inst.next_pc, u["push"])
    ebox.cycle(u["work"], costs.CALL_PER_PUSH_CYCLES)
    ebox.push(ebox.registers[FP], u["push"])
    ebox.cycle(u["work"], costs.CALL_PER_PUSH_CYCLES)
    ebox.push(ebox.registers[AP], u["push"])
    status = (entry_mask & 0x0FFF) | ((1 if calls else 0) << 13) | \
        (ebox.psl.cc.as_bits() << 16)
    ebox.cycle(u["work"], costs.CALL_PER_PUSH_CYCLES)
    ebox.push(status, u["push"])

    ebox.registers[FP] = ebox.registers[SP]
    ebox.registers[AP] = arg_base
    ebox.psl.cc.set(n=False, z=False, v=False, c=False)
    ebox.cycle(u["finish"], costs.CALL_FINISH_CYCLES)
    return ebox.redirect((target + 2) & _WORD, u["redirect"])


@executor("RET", slots={"entry": "C", "pop": "R", "work": "C",
                        "finish": "C", "redirect": "C"})
def exec_ret(ebox, inst, ops, u):
    ebox.tracer.note_branch("CALL", True)
    ebox.cycle(u["entry"], costs.RET_ENTRY_CYCLES)
    ebox.registers[SP] = ebox.registers[FP]
    status = ebox.pop(u["pop"])
    ebox.cycle(u["work"], costs.RET_PER_POP_CYCLES)
    ebox.registers[AP] = ebox.pop(u["pop"])
    ebox.cycle(u["work"], costs.RET_PER_POP_CYCLES)
    ebox.registers[FP] = ebox.pop(u["pop"])
    ebox.cycle(u["work"], costs.RET_PER_POP_CYCLES)
    return_pc = ebox.pop(u["pop"])

    mask = status & 0x0FFF
    for reg in _mask_registers(mask):
        ebox.cycle(u["work"], costs.RET_PER_POP_CYCLES)
        ebox.registers[reg] = ebox.pop(u["pop"])

    if status & (1 << 13):  # frame made by CALLS: discard the arg list
        numarg = ebox.read(ebox.registers[SP], 4, u["pop"]) & 0xFF
        ebox.registers[SP] = (ebox.registers[SP] + 4 + 4 * numarg) & _WORD
    ebox.psl.cc.load_bits((status >> 16) & 0xF)
    ebox.cycle(u["finish"], costs.RET_FINISH_CYCLES)
    return ebox.redirect(return_pc, u["redirect"])


@executor("PUSHR", slots={"entry": "C", "work": "C", "push": "W"})
def exec_pushr(ebox, inst, ops, u):
    mask = ops[0].value & 0x7FFF
    ebox.cycle(u["entry"], 2)
    for reg in reversed([n for n in range(15) if mask & (1 << n)]):
        ebox.cycle(u["work"], costs.PUSHR_PER_REG_CYCLES)
        ebox.push(ebox.registers[reg], u["push"])
    return None


@executor("POPR", slots={"entry": "C", "work": "C", "pop": "R"})
def exec_popr(ebox, inst, ops, u):
    mask = ops[0].value & 0x7FFF
    ebox.cycle(u["entry"], 2)
    for reg in [n for n in range(15) if mask & (1 << n)]:
        ebox.cycle(u["work"], costs.POPR_PER_REG_CYCLES)
        ebox.registers[reg] = ebox.pop(u["pop"])
    return None
