"""Execute flows for the DECIMAL group: packed-decimal string arithmetic.

Packed decimal stores two digits per byte, most significant digit first,
with the sign in the low nibble of the last byte (0xC positive, 0xD
negative).  An operand is described by a *digit count* and an address; the
byte length is ``digits // 2 + 1``.

These are the rarest instructions in Table 1 (0.03 %) but the second
most expensive per execution (~101 cycles, Table 9): long microcode loops
over the digit bytes.
"""

from __future__ import annotations

from repro.ucode import costs
from repro.ucode.registry import executor

_WORD = 0xFFFFFFFF


def packed_byte_length(digits: int) -> int:
    """Bytes occupied by a packed decimal of ``digits`` digits."""
    return digits // 2 + 1


def _read_packed(ebox, digits, addr, upc, work_upc):
    """Read a packed decimal operand; returns its signed integer value."""
    nbytes = packed_byte_length(digits)
    raw = []
    for i in range(nbytes):
        raw.append(ebox.read((addr + i) & _WORD, 1, upc))
        ebox.cycle(work_upc, costs.DECIMAL_PER_BYTE_COMPUTE)
    value = 0
    for i, byte in enumerate(raw):
        if i == nbytes - 1:
            value = value * 10 + (byte >> 4)
            sign = byte & 0xF
        else:
            value = value * 100 + (byte >> 4) * 10 + (byte & 0xF)
    if sign in (0xD, 0xB):
        value = -value
    return value


def _write_packed(ebox, digits, addr, value, upc, work_upc):
    """Write ``value`` as a packed decimal of ``digits`` digits."""
    nbytes = packed_byte_length(digits)
    negative = value < 0
    magnitude = abs(value) % (10 ** digits)
    digit_list = []
    for _ in range(digits):
        digit_list.append(magnitude % 10)
        magnitude //= 10
    digit_list.reverse()
    # Pad to an even layout: first byte may hold a leading zero digit.
    if digits % 2 == 0:
        digit_list.insert(0, 0)
    out = []
    for i in range(nbytes - 1):
        out.append((digit_list[2 * i] << 4) | digit_list[2 * i + 1])
    out.append((digit_list[-1] << 4) | (0xD if negative else 0xC))
    for i, byte in enumerate(out):
        ebox.write((addr + i) & _WORD, byte, 1, upc)
        ebox.cycle(work_upc, costs.DECIMAL_PER_BYTE_COMPUTE)
    return (-1 if negative else 1) * (abs(value) % (10 ** digits))


def _set_decimal_cc(ebox, value):
    ebox.psl.cc.set(n=value < 0, z=value == 0, v=False, c=False)


@executor("MOVP", slots={"entry": "C", "fetch": "R", "work": "C",
                         "stores": "W", "exit": "C"})
def exec_movp(ebox, inst, ops, u):
    digits = ops[0].value & 0xFFFF
    ebox.cycle(u["entry"], costs.DECIMAL_ENTRY_CYCLES)
    value = _read_packed(ebox, digits, ops[1].value, u["fetch"], u["work"])
    _write_packed(ebox, digits, ops[2].value, value, u["stores"], u["work"])
    ebox.cycle(u["exit"], costs.DECIMAL_EXIT_CYCLES)
    _set_decimal_cc(ebox, value)
    return None


@executor("CMPP", slots={"entry": "C", "fetch": "R", "work": "C",
                         "exit": "C"})
def exec_cmpp(ebox, inst, ops, u):
    digits = ops[0].value & 0xFFFF
    ebox.cycle(u["entry"], costs.DECIMAL_ENTRY_CYCLES)
    a = _read_packed(ebox, digits, ops[1].value, u["fetch"], u["work"])
    b = _read_packed(ebox, digits, ops[2].value, u["fetch"], u["work"])
    ebox.cycle(u["exit"], costs.DECIMAL_EXIT_CYCLES)
    ebox.psl.cc.set(n=a < b, z=a == b, v=False, c=False)
    return None


@executor("ADDP", slots={"entry": "C", "fetch": "R", "work": "C",
                         "stores": "W", "exit": "C"})
def exec_addp(ebox, inst, ops, u):
    subtract = inst.mnemonic.startswith("SUB")
    six_operand = inst.mnemonic.endswith("6")
    ebox.cycle(u["entry"], costs.DECIMAL_ENTRY_CYCLES)
    add_digits = ops[0].value & 0xFFFF
    addend = _read_packed(ebox, add_digits, ops[1].value, u["fetch"],
                          u["work"])
    src_digits = ops[2].value & 0xFFFF
    src = _read_packed(ebox, src_digits, ops[3].value, u["fetch"],
                       u["work"])
    result = src - addend if subtract else src + addend
    if six_operand:
        dst_digits = ops[4].value & 0xFFFF
        dst_addr = ops[5].value
    else:
        dst_digits = src_digits
        dst_addr = ops[3].value
    stored = _write_packed(ebox, dst_digits, dst_addr, result,
                           u["stores"], u["work"])
    ebox.cycle(u["exit"], costs.DECIMAL_EXIT_CYCLES)
    _set_decimal_cc(ebox, stored)
    return None


@executor("CVTLP", slots={"entry": "C", "work": "C", "stores": "W",
                          "exit": "C"})
def exec_cvtlp(ebox, inst, ops, u):
    from repro.arch.datatypes import sign_extend
    value = sign_extend(ops[0].value, 4)
    digits = ops[1].value & 0xFFFF
    ebox.cycle(u["entry"], costs.DECIMAL_ENTRY_CYCLES)
    stored = _write_packed(ebox, digits, ops[2].value, value,
                           u["stores"], u["work"])
    ebox.cycle(u["exit"], costs.DECIMAL_EXIT_CYCLES)
    _set_decimal_cc(ebox, stored)
    return None


@executor("CVTPL", slots={"entry": "C", "fetch": "R", "work": "C",
                          "exit": "C"})
def exec_cvtpl(ebox, inst, ops, u):
    digits = ops[0].value & 0xFFFF
    ebox.cycle(u["entry"], costs.DECIMAL_ENTRY_CYCLES)
    value = _read_packed(ebox, digits, ops[1].value, u["fetch"],
                         u["work"])
    ebox.cycle(u["exit"], costs.DECIMAL_EXIT_CYCLES)
    ebox.store(ops[2], value & _WORD)
    _set_decimal_cc(ebox, value)
    return None
