"""Execute flows for the FIELD group: variable bit fields and bit branches.

Field operands arrive as ``v``-access references: either a register (the
field lives in the register file, no memory traffic) or a memory base
address (the field read/write is charged to this group's execute row, as
Table 5 attributes it).
"""

from __future__ import annotations

from repro.arch.datatypes import sign_extend
from repro.cpu.faults import IllegalOperand
from repro.ucode import costs
from repro.ucode.registry import executor

_WORD = 0xFFFFFFFF


def _field_fetch(ebox, base, pos, size_bits, read_upc):
    """Read ``size_bits`` starting ``pos`` bits past the field base."""
    if size_bits == 0:
        return 0
    if base.kind == "reg":
        if pos + size_bits > 64:
            raise IllegalOperand("register field exceeds two registers")
        word = ebox.registers[base.reg] | \
            (ebox.registers[(base.reg + 1) & 0xF] << 32)
        return (word >> pos) & ((1 << size_bits) - 1)
    byte0 = base.addr + (pos >> 3)
    bit = pos & 7
    nbytes = (bit + size_bits + 7) >> 3
    word = ebox.read(byte0, min(nbytes, 4), read_upc)
    if nbytes > 4:
        word |= ebox.read(byte0 + 4, nbytes - 4, read_upc) << 32
    return (word >> bit) & ((1 << size_bits) - 1)


def _field_store(ebox, base, pos, size_bits, value, read_upc, write_upc):
    """Read-modify-write ``size_bits`` at the field position."""
    mask = (1 << size_bits) - 1
    value &= mask
    if base.kind == "reg":
        if pos + size_bits > 32:
            raise IllegalOperand("register field store exceeds one register")
        reg = ebox.registers[base.reg]
        ebox.registers[base.reg] = (reg & ~(mask << pos) & _WORD) | \
            (value << pos)
        return
    byte0 = base.addr + (pos >> 3)
    bit = pos & 7
    nbytes = (bit + size_bits + 7) >> 3
    if nbytes > 4:
        raise IllegalOperand("memory field store wider than a longword")
    word = ebox.read(byte0, nbytes, read_upc)
    word = (word & ~(mask << bit)) | (value << bit)
    ebox.write(byte0, word, nbytes, write_upc)


@executor("EXT", slots={"setup": "C", "fread": "R", "shift": "C"})
def exec_ext(ebox, inst, ops, u):
    pos = ops[0].value & _WORD
    size_bits = ops[1].value & 0x3F
    ebox.cycle(u["setup"], costs.FIELD_SETUP_CYCLES)
    raw = _field_fetch(ebox, ops[2], pos, size_bits, u["fread"])
    ebox.cycle(u["shift"], costs.FIELD_SHIFT_CYCLES)
    result = raw
    if inst.mnemonic == "EXTV" and 0 < size_bits < 32 and \
            raw & (1 << (size_bits - 1)):
        result = (raw - (1 << size_bits)) & _WORD
    ebox.store(ops[3], result)
    ebox.set_nz(result, 4)
    return None


@executor("INSV", slots={"setup": "C", "fread": "R", "fwrite": "W",
                         "shift": "C"})
def exec_insv(ebox, inst, ops, u):
    src = ops[0].value & _WORD
    pos = ops[1].value & _WORD
    size_bits = ops[2].value & 0x3F
    ebox.cycle(u["setup"], costs.FIELD_SETUP_CYCLES)
    ebox.cycle(u["shift"], costs.FIELD_SHIFT_CYCLES)
    if size_bits:
        _field_store(ebox, ops[3], pos, size_bits, src,
                     u["fread"], u["fwrite"])
    return None


@executor("CMPV", slots={"setup": "C", "fread": "R", "shift": "C"})
def exec_cmpv(ebox, inst, ops, u):
    pos = ops[0].value & _WORD
    size_bits = ops[1].value & 0x3F
    ebox.cycle(u["setup"], costs.FIELD_SETUP_CYCLES)
    raw = _field_fetch(ebox, ops[2], pos, size_bits, u["fread"])
    ebox.cycle(u["shift"], costs.FIELD_SHIFT_CYCLES)
    if inst.mnemonic == "CMPV" and size_bits and size_bits < 32 and \
            raw & (1 << (size_bits - 1)):
        field = raw - (1 << size_bits)
    else:
        field = raw
    src = sign_extend(ops[3].value, 4)
    cc = ebox.psl.cc
    cc.set(n=field < src, z=field == src, v=False,
           c=(raw & _WORD) < (ops[3].value & _WORD))
    return None


@executor("FF", slots={"setup": "C", "fread": "R", "scan": "C"})
def exec_ff(ebox, inst, ops, u):
    start = ops[0].value & _WORD
    size_bits = ops[1].value & 0x3F
    ebox.cycle(u["setup"], costs.FIELD_SETUP_CYCLES)
    raw = _field_fetch(ebox, ops[2], start, size_bits, u["fread"])
    want_set = inst.mnemonic == "FFS"
    found = -1
    for bit in range(size_bits):
        is_set = bool(raw & (1 << bit))
        if is_set == want_set:
            found = bit
            break
    scanned = (found if found >= 0 else size_bits)
    ebox.cycle(u["scan"], 1 + (scanned >> 3) * costs.FFS_PER_BYTE_CYCLES)
    if found >= 0:
        position = (start + found) & _WORD
        ebox.store(ops[3], position)
        ebox.psl.cc.set(n=False, z=False, v=False, c=False)
    else:
        ebox.store(ops[3], (start + size_bits) & _WORD)
        ebox.psl.cc.set(n=False, z=True, v=False, c=False)
    return None


@executor("BB", slots={"setup": "C", "fread": "R", "fwrite": "W",
                       "redirect": "C"})
def exec_bb(ebox, inst, ops, u):
    mnemonic = inst.mnemonic
    pos = ops[0].value & _WORD
    base = ops[1]
    ebox.cycle(u["setup"], 4)
    bit = _field_fetch(ebox, base, pos, 1, u["fread"])
    branch_on_set = mnemonic[2] == "S"  # BBSx / BBCx
    taken = bool(bit) == branch_on_set
    # Set/clear variants modify the bit after testing; the interlocked
    # forms (BBSSI/BBCCI) spend extra cycles on the bus interlock.
    if len(mnemonic) > 3:
        new_bit = 1 if mnemonic[3] == "S" else 0
        _field_store(ebox, base, pos, 1, new_bit, u["fread"], u["fwrite"])
        if mnemonic.endswith("I"):
            ebox.cycle(u["setup"], 2)
    ebox.tracer.note_branch("BB", taken)
    if taken:
        return ebox.take_branch(inst, u["redirect"])
    return None
