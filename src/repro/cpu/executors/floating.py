"""Execute flows for the FLOAT group.

Table 1 places integer multiply/divide in this group alongside the F and D
floating formats.  All of the paper's machines had the Floating Point
Accelerator (§2.2), so the cycle budgets in :mod:`repro.ucode.costs` model
FPA-assisted execution.

F_floating values travel as 32-bit patterns and are converted to Python
floats for arithmetic; D_floating is approximated by its first longword
(same layout as F with 32 extra fraction bits we do not carry).
"""

from __future__ import annotations

from repro.arch.datatypes import (MASKS, f_float_decode, f_float_encode,
                                  sign_extend)
from repro.ucode import costs
from repro.ucode.registry import executor

_WORD = 0xFFFFFFFF


def _f(pattern: int) -> float:
    return f_float_decode(pattern & _WORD)


def _fpat(value: float) -> int:
    return f_float_encode(value)


def _d(pattern: int) -> float:
    # D_floating: first longword has the F layout; low fraction ignored.
    return f_float_decode(pattern & _WORD)


def _dpat(value: float) -> int:
    return f_float_encode(value)  # high longword; low fraction zero


def _set_float_cc(ebox, value: float) -> None:
    ebox.psl.cc.set(n=value < 0, z=value == 0, v=False, c=False)


@executor("FADDSUB", slots={"prep": "C", "fpa": "C"})
def exec_faddsub(ebox, inst, ops, u):
    a = _f(ops[0].value)
    b = _f(ops[1].value)
    result = b - a if inst.mnemonic.startswith("SUB") else b + a
    ebox.cycle(u["prep"])
    ebox.cycle(u["fpa"], costs.FADD_CYCLES - 1)
    ebox.store(ops[-1], _fpat(result))
    _set_float_cc(ebox, result)
    return None


@executor("FMULDIV", slots={"prep": "C", "fpa": "C"})
def exec_fmuldiv(ebox, inst, ops, u):
    a = _f(ops[0].value)
    b = _f(ops[1].value)
    divide = inst.mnemonic.startswith("DIV")
    ebox.cycle(u["prep"])
    ebox.cycle(u["fpa"],
               (costs.FDIV_CYCLES if divide else costs.FMUL_CYCLES) - 1)
    if divide:
        result = b / a if a != 0 else 0.0  # reserved-operand fault unmodeled
    else:
        result = b * a
    ebox.store(ops[-1], _fpat(result))
    _set_float_cc(ebox, result)
    return None


@executor("FCVT", slots={"prep": "C", "fpa": "C"})
def exec_fcvt(ebox, inst, ops, u):
    ebox.cycle(u["prep"])
    ebox.cycle(u["fpa"], costs.FCVT_CYCLES - 1)
    mnemonic = inst.mnemonic
    if mnemonic in ("CVTFB", "CVTFW", "CVTFL", "CVTRFL"):
        # float -> integer (CVTRFL rounds; the others truncate).
        real = _f(ops[0].value)
        value = int(real + (0.5 if real >= 0 else -0.5)) \
            if mnemonic == "CVTRFL" else int(real)
        size = inst.info.operands[1].size
        ebox.store(ops[1], value & MASKS[size])
        ebox.set_nz(value & MASKS[size], size)
    else:  # CVTBF / CVTWF / CVTLF: integer -> float
        size = inst.info.operands[0].size
        value = float(sign_extend(ops[0].value, size))
        ebox.store(ops[1], _fpat(value))
        _set_float_cc(ebox, value)
    return None


@executor("DCMP", slots={"exec": "C"})
def exec_dcmp(ebox, inst, ops, u):
    a = _d(ops[0].value)
    ebox.cycle(u["exec"], 4)
    if inst.mnemonic == "TSTD":
        _set_float_cc(ebox, a)
    else:
        b = _d(ops[1].value)
        ebox.psl.cc.set(n=a < b, z=a == b, v=False, c=False)
    return None


@executor("DCVT", slots={"prep": "C", "fpa": "C"})
def exec_dcvt(ebox, inst, ops, u):
    ebox.cycle(u["prep"])
    ebox.cycle(u["fpa"], costs.FCVT_CYCLES + 1)
    mnemonic = inst.mnemonic
    if mnemonic == "CVTFD":
        ebox.store(ops[1], _dpat(_f(ops[0].value)))
        _set_float_cc(ebox, _f(ops[0].value))
    elif mnemonic == "CVTDF":
        ebox.store(ops[1], _fpat(_d(ops[0].value)))
        _set_float_cc(ebox, _d(ops[0].value))
    elif mnemonic == "CVTDL":
        value = int(_d(ops[0].value))
        ebox.store(ops[1], value & _WORD)
        ebox.set_nz(value & _WORD, 4)
    else:  # CVTLD
        value = float(sign_extend(ops[0].value, 4))
        ebox.store(ops[1], _dpat(value))
        _set_float_cc(ebox, value)
    return None


@executor("FMOV", slots={"exec": "C"})
def exec_fmov(ebox, inst, ops, u):
    value = _f(ops[0].value)
    if inst.mnemonic == "MNEGF":
        value = -value
    ebox.cycle(u["exec"], 3)
    ebox.store(ops[1], _fpat(value))
    _set_float_cc(ebox, value)
    return None


@executor("FCMP", slots={"exec": "C"})
def exec_fcmp(ebox, inst, ops, u):
    a = _f(ops[0].value)
    ebox.cycle(u["exec"], 3)
    if inst.mnemonic == "TSTF":
        _set_float_cc(ebox, a)
    else:
        b = _f(ops[1].value)
        ebox.psl.cc.set(n=a < b, z=a == b, v=False, c=False)
    return None


@executor("DADDSUB", slots={"prep": "C", "fpa": "C"})
def exec_daddsub(ebox, inst, ops, u):
    a = _d(ops[0].value)
    b = _d(ops[1].value)
    result = b - a if inst.mnemonic.startswith("SUB") else b + a
    ebox.cycle(u["prep"])
    ebox.cycle(u["fpa"], costs.DADD_CYCLES - 1)
    ebox.store(ops[-1], _dpat(result))
    _set_float_cc(ebox, result)
    return None


@executor("DMULDIV", slots={"prep": "C", "fpa": "C"})
def exec_dmuldiv(ebox, inst, ops, u):
    a = _d(ops[0].value)
    b = _d(ops[1].value)
    divide = inst.mnemonic.startswith("DIV")
    ebox.cycle(u["prep"])
    ebox.cycle(u["fpa"], costs.DMUL_CYCLES + (4 if divide else -1))
    if divide:
        result = b / a if a != 0 else 0.0
    else:
        result = b * a
    ebox.store(ops[-1], _dpat(result))
    _set_float_cc(ebox, result)
    return None


@executor("DMOV", slots={"exec": "C"})
def exec_dmov(ebox, inst, ops, u):
    ebox.cycle(u["exec"], 3)
    if inst.mnemonic == "MNEGD":
        real = -_d(ops[0].value)
        value = _dpat(real)
    else:  # MOVD: move the pattern unchanged
        value = ops[0].value & MASKS[8]
        real = _d(value)
    ebox.store(ops[1], value)
    _set_float_cc(ebox, real)
    return None


@executor("MULDIV_INT", slots={"prep": "C", "loop": "C"})
def exec_muldiv_int(ebox, inst, ops, u):
    size = inst.info.operands[0].size
    a = sign_extend(ops[0].value, size)
    b = sign_extend(ops[1].value, size)
    divide = inst.mnemonic.startswith("DIV")
    ebox.cycle(u["prep"])
    ebox.cycle(u["loop"],
               (costs.DIVL_CYCLES if divide else costs.MULL_CYCLES) - 1)
    bound = 1 << (8 * size - 1)
    if divide:
        if a == 0:
            result, v = 0, True  # divide-by-zero fault unmodeled
        else:
            result = int(b / a)  # VAX truncates toward zero
            v = not -bound <= result < bound
    else:
        result = a * b
        v = not -bound <= result < bound
    ebox.store(ops[-1], result & MASKS[size])
    ebox.set_nz(result & MASKS[size], size, v=v)
    return None


@executor("EMUL", slots={"prep": "C", "loop": "C"})
def exec_emul(ebox, inst, ops, u):
    product = sign_extend(ops[0].value, 4) * sign_extend(ops[1].value, 4) \
        + sign_extend(ops[2].value, 4)
    ebox.cycle(u["prep"])
    ebox.cycle(u["loop"], costs.EMUL_CYCLES - 1)
    ebox.store(ops[3], product & MASKS[8])
    ebox.set_nz(product & MASKS[8], 8)
    return None


@executor("EDIV", slots={"prep": "C", "loop": "C"})
def exec_ediv(ebox, inst, ops, u):
    divisor = sign_extend(ops[0].value, 4)
    dividend = sign_extend(ops[1].value, 8)
    ebox.cycle(u["prep"])
    ebox.cycle(u["loop"], costs.EDIV_CYCLES - 1)
    if divisor == 0:
        quotient, remainder, v = 0, 0, True
    else:
        quotient = int(dividend / divisor)
        remainder = dividend - quotient * divisor
        v = not -(1 << 31) <= quotient < (1 << 31)
    ebox.store(ops[2], quotient & _WORD)
    ebox.store(ops[3], remainder & _WORD)
    ebox.set_nz(quotient & _WORD, 4, v=v)
    return None
