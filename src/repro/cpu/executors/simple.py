"""Execute flows for the SIMPLE group: moves, integer ALU, branches.

The paper's headline observation about this group (Table 9): the average
simple instruction needs only a little over one cycle of execute-phase
computation — the cost of a VAX instruction is mostly elsewhere.
"""

from __future__ import annotations

from repro.arch.datatypes import (MASKS, add_with_flags, is_negative,
                                  sign_extend, sub_with_flags)
from repro.ucode.registry import executor

_WORD = 0xFFFFFFFF


def _value(ref, size):
    return ref.value & MASKS[size]


# ---------------------------------------------------------------------------
# moves and conversions
# ---------------------------------------------------------------------------

@executor("MOV", slots={"exec": "C"})
def exec_mov(ebox, inst, ops, u):
    size = inst.info.operands[0].size
    value = _value(ops[0], size)
    ebox.cycle(u["exec"])
    ebox.store(ops[1], value)
    ebox.set_nz(value, size)
    return None


@executor("MOVQ", slots={"exec": "C"})
def exec_movq(ebox, inst, ops, u):
    value = ops[0].value & MASKS[8]
    ebox.cycle(u["exec"], 2)
    ebox.store(ops[1], value)
    ebox.set_nz(value, 8)
    return None


@executor("MOVZ", slots={"exec": "C"})
def exec_movz(ebox, inst, ops, u):
    src_size = inst.info.operands[0].size
    value = _value(ops[0], src_size)
    ebox.cycle(u["exec"])
    ebox.store(ops[1], value)
    ebox.set_nz(value, inst.info.operands[1].size)
    return None


@executor("CVT_INT", slots={"exec": "C"})
def exec_cvt_int(ebox, inst, ops, u):
    src_size = inst.info.operands[0].size
    dst_size = inst.info.operands[1].size
    signed = sign_extend(ops[0].value, src_size)
    result = signed & MASKS[dst_size]
    ebox.cycle(u["exec"])
    ebox.store(ops[1], result)
    overflow = not (-(1 << (8 * dst_size - 1)) <= signed
                    < (1 << (8 * dst_size - 1)))
    ebox.set_nz(result, dst_size, v=overflow)
    return None


@executor("MCOM", slots={"exec": "C"})
def exec_mcom(ebox, inst, ops, u):
    size = inst.info.operands[0].size
    result = ~ops[0].value & MASKS[size]
    ebox.cycle(u["exec"])
    ebox.store(ops[1], result)
    ebox.set_nz(result, size)
    return None


@executor("MNEG", slots={"exec": "C"})
def exec_mneg(ebox, inst, ops, u):
    size = inst.info.operands[0].size
    result, n, z, v, c = sub_with_flags(0, ops[0].value, size)
    ebox.cycle(u["exec"])
    ebox.store(ops[1], result)
    ebox.psl.cc.set(n=n, z=z, v=v, c=c)
    return None


@executor("CLR", slots={"exec": "C"})
def exec_clr(ebox, inst, ops, u):
    size = inst.info.operands[0].size
    ebox.cycle(u["exec"])
    ebox.store(ops[0], 0)
    ebox.set_nz(0, size)
    return None


@executor("CLRQ", slots={"exec": "C"})
def exec_clrq(ebox, inst, ops, u):
    ebox.cycle(u["exec"], 2)
    ebox.store(ops[0], 0)
    ebox.set_nz(0, 8)
    return None


@executor("MOVA", slots={"exec": "C"})
def exec_mova(ebox, inst, ops, u):
    addr = ops[0].value & _WORD
    ebox.cycle(u["exec"])
    ebox.store(ops[1], addr)
    ebox.set_nz(addr, 4)
    return None


@executor("PUSHA", slots={"exec": "C", "push": "W"})
def exec_pusha(ebox, inst, ops, u):
    addr = ops[0].value & _WORD
    ebox.cycle(u["exec"])
    ebox.push(addr, u["push"])
    ebox.set_nz(addr, 4)
    return None


@executor("PUSHL", slots={"exec": "C", "push": "W"})
def exec_pushl(ebox, inst, ops, u):
    value = ops[0].value & _WORD
    ebox.cycle(u["exec"])
    ebox.push(value, u["push"])
    ebox.set_nz(value, 4)
    return None


# ---------------------------------------------------------------------------
# integer arithmetic and logic
# ---------------------------------------------------------------------------

@executor("ADDSUB", slots={"alu": "C"})
def exec_addsub(ebox, inst, ops, u):
    # ADD and SUB share microcode; hardware sets the ALU control from the
    # opcode (paper §3.1) — which is why the µPC method cannot tell them
    # apart and we dispatch on the mnemonic here.
    size = inst.info.operands[0].size
    subtract = inst.mnemonic.startswith("SUB")
    a = ops[0].value
    b = ops[1].value
    if subtract:
        result, n, z, v, c = sub_with_flags(b, a, size)
    else:
        result, n, z, v, c = add_with_flags(b, a, size)
    ebox.cycle(u["alu"])
    ebox.store(ops[-1], result)
    ebox.psl.cc.set(n=n, z=z, v=v, c=c)
    return None


@executor("INCDEC", slots={"alu": "C"})
def exec_incdec(ebox, inst, ops, u):
    size = inst.info.operands[0].size
    if inst.mnemonic.startswith("INC"):
        result, n, z, v, c = add_with_flags(ops[0].value, 1, size)
    else:
        result, n, z, v, c = sub_with_flags(ops[0].value, 1, size)
    ebox.cycle(u["alu"])
    ebox.store(ops[0], result)
    ebox.psl.cc.set(n=n, z=z, v=v, c=c)
    return None


@executor("ADWC", slots={"alu": "C"})
def exec_adwc(ebox, inst, ops, u):
    carry = 1 if ebox.psl.cc.c else 0
    if inst.mnemonic == "ADWC":
        result, n, z, v, c = add_with_flags(ops[1].value, ops[0].value, 4,
                                            carry_in=carry)
    else:  # SBWC
        result, n, z, v, c = sub_with_flags(ops[1].value, ops[0].value, 4,
                                            borrow_in=carry)
    ebox.cycle(u["alu"])
    ebox.store(ops[1], result)
    ebox.psl.cc.set(n=n, z=z, v=v, c=c)
    return None


@executor("ADAWI", slots={"alu": "C", "interlock": "C"})
def exec_adawi(ebox, inst, ops, u):
    # Add aligned word, interlocked: the bus interlock costs extra cycles.
    result, n, z, v, c = add_with_flags(ops[1].value, ops[0].value, 2)
    ebox.cycle(u["alu"])
    ebox.cycle(u["interlock"], 2)
    ebox.store(ops[1], result)
    ebox.psl.cc.set(n=n, z=z, v=v, c=c)
    return None


@executor("PSW", slots={"exec": "C"})
def exec_psw(ebox, inst, ops, u):
    # BISPSW/BICPSW operate on the PSW image (condition codes and trap
    # enables; only the low byte is modeled meaningfully).
    mask = ops[0].value & 0xFF
    ebox.cycle(u["exec"], 2)
    image = ebox.psl.cc.as_bits() | ebox.psl.trap_enables
    if inst.mnemonic == "BISPSW":
        image |= mask
    else:
        image &= ~mask
    ebox.psl.cc.load_bits(image & 0xF)
    ebox.psl.trap_enables = image & 0xF0
    return None


@executor("INDEX", slots={"setup": "C", "check": "C", "mul": "C"})
def exec_index(ebox, inst, ops, u):
    # INDEX: subscript range check and scaled accumulation for array
    # address arithmetic (used by COBOL/PL/I bounds-checked code).
    subscript = sign_extend(ops[0].value, 4)
    low = sign_extend(ops[1].value, 4)
    high = sign_extend(ops[2].value, 4)
    size = sign_extend(ops[3].value, 4)
    indexin = sign_extend(ops[4].value, 4)
    ebox.cycle(u["setup"], 2)
    ebox.cycle(u["check"], 2)
    in_range = low <= subscript <= high
    ebox.cycle(u["mul"], 8)  # the multiply loop
    result = (indexin + subscript) * size
    ebox.store(ops[5], result & _WORD)
    ebox.set_nz(result & _WORD, 4, v=not in_range)
    return None


@executor("ASHQ", slots={"setup": "C", "shift": "C"})
def exec_ashq(ebox, inst, ops, u):
    count = sign_extend(ops[0].value, 1)
    src = sign_extend(ops[1].value, 8)
    ebox.cycle(u["setup"])
    ebox.cycle(u["shift"], 4)
    if count >= 0:
        result = (src << min(count, 64)) & MASKS[8]
    else:
        result = (src >> min(-count, 64)) & MASKS[8]
    ebox.store(ops[2], result)
    ebox.set_nz(result, 8)
    return None


@executor("ASH", slots={"setup": "C", "shift": "C"})
def exec_ash(ebox, inst, ops, u):
    count = sign_extend(ops[0].value, 1)
    src = sign_extend(ops[1].value, 4)
    ebox.cycle(u["setup"])
    ebox.cycle(u["shift"], 2)
    if count >= 0:
        result = (src << min(count, 32)) & _WORD
    else:
        result = (src >> min(-count, 32)) & _WORD
    ebox.store(ops[2], result)
    ebox.set_nz(result, 4)
    return None


@executor("ROT", slots={"setup": "C", "shift": "C"})
def exec_rot(ebox, inst, ops, u):
    count = sign_extend(ops[0].value, 1) % 32
    src = ops[1].value & _WORD
    ebox.cycle(u["setup"])
    ebox.cycle(u["shift"])
    result = ((src << count) | (src >> (32 - count))) & _WORD if count \
        else src
    ebox.store(ops[2], result)
    ebox.set_nz(result, 4)
    return None


@executor("LOGICAL", slots={"alu": "C"})
def exec_logical(ebox, inst, ops, u):
    size = inst.info.operands[0].size
    mnemonic = inst.mnemonic
    a = ops[0].value & MASKS[size]
    b = ops[1].value & MASKS[size]
    if mnemonic.startswith("BIS"):
        result = a | b
    elif mnemonic.startswith("BIC"):
        result = b & ~a & MASKS[size]
    else:  # XOR
        result = a ^ b
    ebox.cycle(u["alu"])
    ebox.store(ops[-1], result)
    ebox.set_nz(result, size)
    return None


@executor("BIT", slots={"alu": "C"})
def exec_bit(ebox, inst, ops, u):
    size = inst.info.operands[0].size
    result = ops[0].value & ops[1].value & MASKS[size]
    ebox.cycle(u["alu"])
    ebox.set_nz(result, size)
    return None


@executor("CMP", slots={"alu": "C"})
def exec_cmp(ebox, inst, ops, u):
    size = inst.info.operands[0].size
    _, n, z, v, c = sub_with_flags(ops[0].value, ops[1].value, size)
    ebox.cycle(u["alu"])
    # CMP clears V.
    ebox.psl.cc.set(n=n, z=z, v=False, c=c)
    return None


@executor("TST", slots={"alu": "C"})
def exec_tst(ebox, inst, ops, u):
    size = inst.info.operands[0].size
    ebox.cycle(u["alu"])
    ebox.set_nz(ops[0].value & MASKS[size], size, keep_c=False)
    return None


@executor("NOP", slots={"exec": "C"})
def exec_nop(ebox, inst, ops, u):
    ebox.cycle(u["exec"])
    return None


# ---------------------------------------------------------------------------
# branches
# ---------------------------------------------------------------------------

def _cc_conditions():
    return {
        "BRB": lambda cc: True,
        "BRW": lambda cc: True,
        "BNEQ": lambda cc: not cc.z,
        "BEQL": lambda cc: cc.z,
        "BGTR": lambda cc: not (cc.n or cc.z),
        "BLEQ": lambda cc: cc.n or cc.z,
        "BGEQ": lambda cc: not cc.n,
        "BLSS": lambda cc: cc.n,
        "BGTRU": lambda cc: not (cc.c or cc.z),
        "BLEQU": lambda cc: cc.c or cc.z,
        "BVC": lambda cc: not cc.v,
        "BVS": lambda cc: cc.v,
        "BCC": lambda cc: not cc.c,
        "BCS": lambda cc: cc.c,
    }


_CONDITIONS = _cc_conditions()


@executor("BCOND", slots={"test": "C", "redirect": "C"})
def exec_bcond(ebox, inst, ops, u):
    taken = _CONDITIONS[inst.mnemonic](ebox.psl.cc)
    ebox.tracer.note_branch("BCOND", taken)
    ebox.cycle(u["test"])
    if taken:
        return ebox.take_branch(inst, u["redirect"])
    return None


@executor("JMP", slots={"setup": "C", "redirect": "C"})
def exec_jmp(ebox, inst, ops, u):
    ebox.tracer.note_branch("JMP", True)
    ebox.cycle(u["setup"])
    return ebox.redirect(ops[0].value, u["redirect"])


@executor("BSB", slots={"setup": "C", "push": "W", "redirect": "C"})
def exec_bsb(ebox, inst, ops, u):
    ebox.tracer.note_branch("BSB", True)
    ebox.cycle(u["setup"])
    ebox.push(inst.next_pc, u["push"])
    return ebox.take_branch(inst, u["redirect"])


@executor("JSB", slots={"setup": "C", "push": "W", "redirect": "C"})
def exec_jsb(ebox, inst, ops, u):
    ebox.tracer.note_branch("BSB", True)  # shares Table 2's subroutine row
    ebox.cycle(u["setup"])
    ebox.push(inst.next_pc, u["push"])
    return ebox.redirect(ops[0].value, u["redirect"])


@executor("RSB", slots={"setup": "C", "pop": "R", "redirect": "C"})
def exec_rsb(ebox, inst, ops, u):
    ebox.tracer.note_branch("BSB", True)
    ebox.cycle(u["setup"])
    target = ebox.pop(u["pop"])
    return ebox.redirect(target, u["redirect"])


@executor("CASE", slots={"setup": "C", "table": "R", "redirect": "C"})
def exec_case(ebox, inst, ops, u):
    size = inst.info.operands[0].size
    selector = sign_extend(ops[0].value, size)
    base = sign_extend(ops[1].value, size)
    limit = sign_extend(ops[2].value, size)
    index = selector - base
    table_len = 2 * (limit + 1)
    table_base = (inst.address + inst.length - table_len) & _WORD
    ebox.cycle(u["setup"], 2)
    ebox.tracer.note_branch("CASE", True)
    if 0 <= index <= limit:
        disp = sign_extend(ebox.read(table_base + 2 * index, 2,
                                     u["table"]), 2)
        target = (table_base + disp) & _WORD
    else:
        target = inst.next_pc
    _, n, z, v, c = sub_with_flags(selector & MASKS[size],
                                   limit & MASKS[size], size)
    ebox.psl.cc.set(n=n, z=z, v=False, c=c)
    return ebox.redirect(target, u["redirect"])


@executor("AOB", slots={"alu": "C", "redirect": "C"})
def exec_aob(ebox, inst, ops, u):
    limit = sign_extend(ops[0].value, 4)
    index, n, z, v, c = add_with_flags(ops[1].value, 1, 4)
    ebox.cycle(u["alu"])
    ebox.store(ops[1], index)
    ebox.psl.cc.set(n=n, z=z, v=v)
    signed = sign_extend(index, 4)
    taken = signed < limit if inst.mnemonic == "AOBLSS" else signed <= limit
    ebox.tracer.note_branch("LOOP", taken)
    if taken:
        return ebox.take_branch(inst, u["redirect"])
    return None


@executor("SOB", slots={"alu": "C", "redirect": "C"})
def exec_sob(ebox, inst, ops, u):
    index, n, z, v, c = sub_with_flags(ops[0].value, 1, 4)
    ebox.cycle(u["alu"])
    ebox.store(ops[0], index)
    ebox.psl.cc.set(n=n, z=z, v=v)
    signed = sign_extend(index, 4)
    taken = signed >= 0 if inst.mnemonic == "SOBGEQ" else signed > 0
    ebox.tracer.note_branch("LOOP", taken)
    if taken:
        return ebox.take_branch(inst, u["redirect"])
    return None


@executor("ACB", slots={"alu": "C", "redirect": "C"})
def exec_acb(ebox, inst, ops, u):
    size = inst.info.operands[0].size
    limit = sign_extend(ops[0].value, size)
    add = sign_extend(ops[1].value, size)
    index, n, z, v, c = add_with_flags(ops[2].value, add & MASKS[size], size)
    ebox.cycle(u["alu"], 2)
    ebox.store(ops[2], index)
    ebox.psl.cc.set(n=n, z=z, v=v)
    signed = sign_extend(index, size)
    taken = signed <= limit if add >= 0 else signed >= limit
    ebox.tracer.note_branch("LOOP", taken)
    if taken:
        return ebox.take_branch(inst, u["redirect"])
    return None


@executor("BLB", slots={"test": "C", "redirect": "C"})
def exec_blb(ebox, inst, ops, u):
    bit = ops[0].value & 1
    taken = bool(bit) if inst.mnemonic == "BLBS" else not bit
    ebox.tracer.note_branch("BLB", taken)
    ebox.cycle(u["test"])
    if taken:
        return ebox.take_branch(inst, u["redirect"])
    return None
