"""Execute flows for the CHARACTER group.

The average character instruction in the paper reads and writes 9-11
longwords (Table 9 discussion) and runs for ~117 cycles.  The MOVC flow
honours the microcoding trick §4.3 describes: data is moved a longword at
a time with the write placed every sixth cycle, so character moves incur
almost no write stall.

Architectural register side effects follow the VAX definitions (R0-R5
are consumed by these instructions).
"""

from __future__ import annotations

from repro.ucode import costs
from repro.ucode.registry import executor

_WORD = 0xFFFFFFFF


def _set_string_registers(ebox, values: dict) -> None:
    for reg, value in values.items():
        ebox.registers[reg] = value & _WORD


@executor("MOVC", slots={"entry": "C", "fetch": "R", "work": "C",
                         "stores": "W", "exit": "C"})
def exec_movc(ebox, inst, ops, u):
    if inst.mnemonic == "MOVC3":
        length = ops[0].value & 0xFFFF
        src = ops[1].value & _WORD
        fill = 0
        src_len = length
        dst_len = length
        dst = ops[2].value & _WORD
    else:  # MOVC5
        src_len = ops[0].value & 0xFFFF
        src = ops[1].value & _WORD
        fill = ops[2].value & 0xFF
        dst_len = ops[3].value & 0xFFFF
        dst = ops[4].value & _WORD

    ebox.cycle(u["entry"], costs.MOVC_ENTRY_CYCLES)
    moved = min(src_len, dst_len)
    # Longword-at-a-time body: 1 read + 4 computes + 1 write = 6-cycle
    # period, exactly one write-buffer recycle time.
    full, tail = divmod(moved, 4)
    src_pos, dst_pos = src, dst
    for _ in range(full):
        word = ebox.read(src_pos, 4, u["fetch"])
        ebox.cycle(u["work"], costs.MOVC_PER_LONGWORD_COMPUTE)
        ebox.write(dst_pos, word, 4, u["stores"])
        src_pos = (src_pos + 4) & _WORD
        dst_pos = (dst_pos + 4) & _WORD
    for _ in range(tail):
        byte = ebox.read(src_pos, 1, u["fetch"])
        ebox.cycle(u["work"], costs.MOVC_PER_TAIL_BYTE_COMPUTE)
        ebox.write(dst_pos, byte, 1, u["stores"])
        src_pos = (src_pos + 1) & _WORD
        dst_pos = (dst_pos + 1) & _WORD
    # MOVC5 fill of the destination remainder.
    for _ in range(max(0, dst_len - moved)):
        ebox.cycle(u["work"], costs.MOVC_PER_TAIL_BYTE_COMPUTE)
        ebox.write(dst_pos, fill, 1, u["stores"])
        dst_pos = (dst_pos + 1) & _WORD
    ebox.cycle(u["exit"], costs.MOVC_EXIT_CYCLES)

    remainder = max(0, src_len - moved)
    _set_string_registers(ebox, {0: remainder,
                                 1: src_pos if remainder == 0
                                 else (src + moved),
                                 2: 0, 3: dst_pos, 4: 0, 5: 0})
    ebox.psl.cc.set(n=src_len < dst_len, z=src_len == dst_len, v=False,
                    c=src_len < dst_len)
    return None


@executor("CMPC", slots={"entry": "C", "fetch": "R", "work": "C",
                         "exit": "C"})
def exec_cmpc(ebox, inst, ops, u):
    if inst.mnemonic == "CMPC3":
        len1 = len2 = ops[0].value & 0xFFFF
        addr1 = ops[1].value & _WORD
        addr2 = ops[2].value & _WORD
        fill = 0
    else:  # CMPC5
        len1 = ops[0].value & 0xFFFF
        addr1 = ops[1].value & _WORD
        fill = ops[2].value & 0xFF
        len2 = ops[3].value & 0xFFFF
        addr2 = ops[4].value & _WORD

    ebox.cycle(u["entry"], 3)
    n = max(len1, len2)
    i = 0
    b1 = b2 = 0
    while i < n:
        b1 = ebox.read(addr1 + i, 1, u["fetch"]) if i < len1 else fill
        b2 = ebox.read(addr2 + i, 1, u["fetch"]) if i < len2 else fill
        ebox.cycle(u["work"], costs.CMPC_PER_LONGWORD_COMPUTE)
        if b1 != b2:
            break
        i += 1
    ebox.cycle(u["exit"], 2)
    _set_string_registers(
        ebox, {0: max(0, len1 - i), 1: addr1 + min(i, len1),
               2: max(0, len2 - i), 3: addr2 + min(i, len2)})
    ebox.psl.cc.set(n=b1 < b2, z=b1 == b2 and i >= n, v=False, c=b1 < b2)
    return None


@executor("LOCC", slots={"entry": "C", "fetch": "R", "work": "C",
                         "exit": "C"})
def exec_locc(ebox, inst, ops, u):
    char = ops[0].value & 0xFF
    length = ops[1].value & 0xFFFF
    addr = ops[2].value & _WORD
    skip = inst.mnemonic == "SKPC"
    ebox.cycle(u["entry"], 2)
    found_at = -1
    scanned = 0
    # Byte scan with longword-grain fetches.
    for offset in range(0, length, 4):
        chunk_len = min(4, length - offset)
        word = ebox.read(addr + offset, chunk_len, u["fetch"])
        ebox.cycle(u["work"], costs.LOCC_PER_LONGWORD_COMPUTE)
        for b in range(chunk_len):
            byte = (word >> (8 * b)) & 0xFF
            scanned = offset + b
            matched = (byte == char) if not skip else (byte != char)
            if matched:
                found_at = scanned
                break
        if found_at >= 0:
            break
    ebox.cycle(u["exit"], 2)
    if found_at >= 0:
        remaining = length - found_at
        _set_string_registers(ebox, {0: remaining, 1: addr + found_at})
        ebox.psl.cc.set(n=False, z=False, v=False, c=False)
    else:
        _set_string_registers(ebox, {0: 0, 1: addr + length})
        ebox.psl.cc.set(n=False, z=True, v=False, c=False)
    return None


@executor("SCANC", slots={"entry": "C", "fetch": "R", "table": "R",
                          "work": "C", "exit": "C"})
def exec_scanc(ebox, inst, ops, u):
    length = ops[0].value & 0xFFFF
    addr = ops[1].value & _WORD
    table = ops[2].value & _WORD
    mask = ops[3].value & 0xFF
    span = inst.mnemonic == "SPANC"
    ebox.cycle(u["entry"], 2)
    found_at = -1
    for i in range(length):
        byte = ebox.read(addr + i, 1, u["fetch"])
        entry = ebox.read(table + byte, 1, u["table"])
        ebox.cycle(u["work"], costs.SCANC_PER_BYTE_COMPUTE)
        hit = bool(entry & mask)
        if (hit and not span) or (not hit and span):
            found_at = i
            break
    ebox.cycle(u["exit"], 2)
    if found_at >= 0:
        _set_string_registers(ebox, {0: length - found_at,
                                     1: addr + found_at, 2: 0, 3: table})
        ebox.psl.cc.set(n=False, z=False, v=False, c=False)
    else:
        _set_string_registers(ebox, {0: 0, 1: addr + length, 2: 0,
                                     3: table})
        ebox.psl.cc.set(n=False, z=True, v=False, c=False)
    return None


@executor("MOVTC", slots={"entry": "C", "fetch": "R", "table": "R",
                          "work": "C", "stores": "W", "exit": "C"})
def exec_movtc(ebox, inst, ops, u):
    """Move translated characters: each source byte indexes a 256-byte
    translation table; the result goes to the destination."""
    src_len = ops[0].value & 0xFFFF
    src = ops[1].value & _WORD
    fill = ops[2].value & 0xFF
    table = ops[3].value & _WORD
    dst_len = ops[4].value & 0xFFFF
    dst = ops[5].value & _WORD
    ebox.cycle(u["entry"], costs.MOVC_ENTRY_CYCLES)
    moved = min(src_len, dst_len)
    for i in range(moved):
        byte = ebox.read(src + i, 1, u["fetch"])
        translated = ebox.read(table + byte, 1, u["table"])
        ebox.cycle(u["work"], 2)
        ebox.write(dst + i, translated, 1, u["stores"])
    for i in range(moved, dst_len):
        ebox.cycle(u["work"])
        ebox.write(dst + i, fill, 1, u["stores"])
    ebox.cycle(u["exit"], costs.MOVC_EXIT_CYCLES)
    _set_string_registers(ebox, {0: max(0, src_len - moved),
                                 1: src + moved, 2: 0, 3: table,
                                 4: 0, 5: dst + dst_len})
    ebox.psl.cc.set(n=src_len < dst_len, z=src_len == dst_len,
                    v=False, c=src_len < dst_len)
    return None
