"""Execute flows for the SYSTEM group.

System-service requests (CHMx) and returns (REI), context switching
(SVPCTX/LDPCTX), queue manipulation, protection probes and internal
processor register access.  These are rare (2.11 % in Table 1) but
individually heavy, and the executive's behaviour (Table 7 headways)
depends on them.

Stack protocol: CHMx and interrupt delivery push PSL then PC on the
kernel stack; REI pops PC then PSL.  SVPCTX pops the interrupted PC/PSL
off the kernel stack into the PCB; LDPCTX pushes the new process's PC/PSL
back so the following REI resumes it — the real VMS context-switch dance.
"""

from __future__ import annotations

from repro.arch.registers import AP, FP, KERNEL, SP
from repro.cpu.faults import MachineHalt, SimulatorError
from repro.ucode import costs
from repro.ucode.registry import executor

_WORD = 0xFFFFFFFF

#: SCB offsets of the change-mode vectors.
CHM_VECTOR_OFFSET = {"CHMK": 0x40, "CHME": 0x44, "CHMS": 0x48,
                     "CHMU": 0x4C}
#: Target mode for each CHM variant.
CHM_TARGET_MODE = {"CHMK": 0, "CHME": 1, "CHMS": 2, "CHMU": 3}

#: Simplified PCB layout, longword indices.
PCB_R0 = 0            # R0-R11 at indices 0-11
PCB_AP = 12
PCB_FP = 13
PCB_USP = 14
PCB_PC = 15
PCB_PSL = 16
PCB_KSP = 17


@executor("CHM", slots={"entry": "C", "vector": "R", "push": "W",
                        "finish": "C", "redirect": "C"})
def exec_chm(ebox, inst, ops, u):
    code = ops[0].value & 0xFFFF
    mnemonic = inst.mnemonic
    target_mode = CHM_TARGET_MODE[mnemonic]
    ebox.cycle(u["entry"], 7)
    psl_image = ebox.psl.as_long()
    ebox.psl.previous_mode = ebox.psl.current_mode
    # Mode can only increase in privilege via CHM.
    if target_mode < ebox.psl.current_mode:
        ebox.set_mode(target_mode)
    handler = ebox.read_phys(ebox.scb_base + CHM_VECTOR_OFFSET[mnemonic],
                             4, u["vector"])
    ebox.push(psl_image, u["push"])
    ebox.cycle(u["entry"])
    ebox.push(inst.next_pc, u["push"])
    ebox.cycle(u["entry"])
    ebox.push(code, u["push"])
    ebox.cycle(u["finish"], 7)
    ebox.tracer.note_branch("CHM", True)
    return ebox.redirect(handler & _WORD, u["redirect"])


@executor("REI", slots={"entry": "C", "pop": "R", "finish": "C",
                        "redirect": "C"})
def exec_rei(ebox, inst, ops, u):
    ebox.cycle(u["entry"], 6)
    new_pc = ebox.pop(u["pop"])
    new_psl = ebox.pop(u["pop"])
    new_mode = (new_psl >> 24) & 3
    if new_mode < ebox.psl.current_mode:
        raise SimulatorError("REI to a more privileged mode")
    ebox.set_mode(new_mode)
    ebox.psl.load_long(new_psl)
    ebox.cycle(u["finish"], 7)
    ebox.tracer.note_branch("REI", True)
    return ebox.redirect(new_pc, u["redirect"])


@executor("SVPCTX", slots={"entry": "C", "save": "W", "work": "C",
                           "pop": "R"})
def exec_svpctx(ebox, inst, ops, u):
    if ebox.psl.current_mode != KERNEL:
        raise SimulatorError("SVPCTX outside kernel mode")
    pcb = ebox.pcb_base
    ebox.cycle(u["entry"], costs.SVPCTX_ENTRY_CYCLES)
    for i in range(12):
        ebox.cycle(u["work"])
        ebox.write_phys(pcb + 4 * i, ebox.registers[i], 4, u["save"])
    ebox.cycle(u["work"])
    ebox.write_phys(pcb + 4 * PCB_AP, ebox.registers[AP], 4, u["save"])
    ebox.cycle(u["work"])
    ebox.write_phys(pcb + 4 * PCB_FP, ebox.registers[FP], 4, u["save"])
    ebox.cycle(u["work"])
    ebox.write_phys(pcb + 4 * PCB_USP, ebox.mode_sps[3], 4, u["save"])
    # Pop the interrupted PC/PSL off the kernel stack into the PCB.
    saved_pc = ebox.pop(u["pop"])
    saved_psl = ebox.pop(u["pop"])
    ebox.write_phys(pcb + 4 * PCB_PC, saved_pc, 4, u["save"])
    ebox.write_phys(pcb + 4 * PCB_PSL, saved_psl, 4, u["save"])
    # Bank the (now clean) kernel stack pointer.
    ebox.write_phys(pcb + 4 * PCB_KSP, ebox.registers[SP], 4, u["save"])
    return None


@executor("LDPCTX", slots={"entry": "C", "load": "R", "work": "C",
                           "push": "W"})
def exec_ldpctx(ebox, inst, ops, u):
    if ebox.psl.current_mode != KERNEL:
        raise SimulatorError("LDPCTX outside kernel mode")
    pcb = ebox.pcb_base
    ebox.cycle(u["entry"], costs.LDPCTX_ENTRY_CYCLES)
    for i in range(12):
        ebox.cycle(u["work"])
        ebox.registers[i] = ebox.read_phys(pcb + 4 * i, 4, u["load"])
    ebox.cycle(u["work"])
    ebox.registers[AP] = ebox.read_phys(pcb + 4 * PCB_AP, 4, u["load"])
    ebox.cycle(u["work"])
    ebox.registers[FP] = ebox.read_phys(pcb + 4 * PCB_FP, 4, u["load"])
    ebox.cycle(u["work"])
    ebox.mode_sps[3] = ebox.read_phys(pcb + 4 * PCB_USP, 4, u["load"])
    saved_pc = ebox.read_phys(pcb + 4 * PCB_PC, 4, u["load"])
    saved_psl = ebox.read_phys(pcb + 4 * PCB_PSL, 4, u["load"])
    # Install the new address space and flush process translations.
    if ebox.ldpctx_hook is not None:
        ebox.ldpctx_hook(pcb)
    ebox.tb.invalidate_process_half()
    ebox.tracer.context_switches += 1
    # Switch to the new process's kernel stack, then push PC/PSL for the
    # REI that completes the switch.
    ebox.registers[SP] = ebox.read_phys(pcb + 4 * PCB_KSP, 4, u["load"])
    ebox.push(saved_psl, u["push"])
    ebox.push(saved_pc, u["push"])
    ebox.cycle(u["work"], 2)
    return None


@executor("PROBE", slots={"check": "C"})
def exec_probe(ebox, inst, ops, u):
    # All mapped addresses are accessible in this model (no protection
    # fields); PROBER/PROBEW set Z when the access would *fail*.
    ebox.cycle(u["check"], 4)
    ebox.psl.cc.set(n=False, z=False, v=False)
    return None


@executor("INSQUE", slots={"entry": "C", "link": "R", "relink": "W",
                           "finish": "C"})
def exec_insque(ebox, inst, ops, u):
    entry = ops[0].value & _WORD
    pred = ops[1].value & _WORD
    ebox.cycle(u["entry"], 2)
    succ = ebox.read(pred, 4, u["link"])
    ebox.write(entry, succ, 4, u["relink"])         # entry.flink
    ebox.cycle(u["entry"])
    ebox.write(entry + 4, pred, 4, u["relink"])     # entry.blink
    ebox.cycle(u["entry"])
    ebox.write(pred, entry, 4, u["relink"])         # pred.flink
    ebox.cycle(u["entry"])
    ebox.write(succ + 4, entry, 4, u["relink"])     # succ.blink
    ebox.cycle(u["finish"], 2)
    # Z set when the entry was inserted into an empty queue.
    ebox.psl.cc.set(n=False, z=succ == pred, v=False, c=False)
    return None


@executor("REMQUE", slots={"entry": "C", "link": "R", "relink": "W",
                           "finish": "C"})
def exec_remque(ebox, inst, ops, u):
    entry = ops[0].value & _WORD
    ebox.cycle(u["entry"], 2)
    flink = ebox.read(entry, 4, u["link"])
    blink = ebox.read(entry + 4, 4, u["link"])
    ebox.write(blink, flink, 4, u["relink"])        # pred.flink
    ebox.cycle(u["entry"])
    ebox.write(flink + 4, blink, 4, u["relink"])    # succ.blink
    ebox.cycle(u["finish"], 2)
    ebox.store(ops[1], entry)
    # Z set when the queue is now empty.
    ebox.psl.cc.set(n=False, z=flink == blink, v=False, c=False)
    return None


@executor("MTPR", slots={"op": "C"})
def exec_mtpr(ebox, inst, ops, u):
    if ebox.psl.current_mode != KERNEL:
        raise SimulatorError("MTPR outside kernel mode")
    value = ops[0].value & _WORD
    regnum = ops[1].value & 0xFF
    ebox.cycle(u["op"], 5)
    if ebox.mtpr_hook is None:
        raise SimulatorError("no MTPR hook installed")
    ebox.mtpr_hook(regnum, value)
    return None


@executor("MFPR", slots={"op": "C"})
def exec_mfpr(ebox, inst, ops, u):
    if ebox.psl.current_mode != KERNEL:
        raise SimulatorError("MFPR outside kernel mode")
    regnum = ops[0].value & 0xFF
    ebox.cycle(u["op"], 5)
    if ebox.mfpr_hook is None:
        raise SimulatorError("no MFPR hook installed")
    value = ebox.mfpr_hook(regnum) & _WORD
    ebox.store(ops[1], value)
    return None


@executor("HALT", slots={"op": "C"})
def exec_halt(ebox, inst, ops, u):
    if ebox.psl.current_mode != KERNEL:
        raise SimulatorError("HALT outside kernel mode")
    ebox.cycle(u["op"])
    raise MachineHalt()
