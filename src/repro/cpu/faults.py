"""Control-transfer exceptions used inside the CPU model.

These are Python exceptions, not architectural state: they unwind the
current instruction so the machine can run the architectural response
(exception microflow, kernel handler dispatch, or simulation stop).
"""

from __future__ import annotations


class SimulatorError(Exception):
    """An internal inconsistency in the simulation (a bug, not a VAX event)."""


class MachineHalt(Exception):
    """Raised by the HALT executor; stops :meth:`VAX780.run`."""


class IllegalOperand(SimulatorError):
    """An operand/addressing-mode combination this subset does not allow."""


class UnsupportedInstructionError(SimulatorError):
    """An instruction outside the selected machine's implemented subset.

    Subset-VAX backends (the MicroVAX 78032) omit whole executor
    families; dispatching one is a configuration error of the workload,
    not an architectural event, so it unwinds the run.
    """

    def __init__(self, mnemonic: str, family: str, machine: str) -> None:
        super().__init__(
            f"{mnemonic} (family {family}) is not implemented on "
            f"machine {machine!r}")
        self.mnemonic = mnemonic
        self.family = family
        self.machine = machine


class PageFaultTrap(Exception):
    """A translation-valid fault to be delivered to the kernel.

    Carries the faulting virtual address and the PC of the instruction to
    restart after the kernel makes the page resident.
    """

    def __init__(self, va: int, restart_pc: int) -> None:
        super().__init__(f"page fault at {va:#010x}")
        self.va = va
        self.restart_pc = restart_pc
