"""The I-Fetch stage and its 8-byte Instruction Buffer (IB).

The IB makes a cache reference whenever at least one byte is empty,
fetching the aligned longword containing the next I-stream address; when
the data arrives (possibly much later on a cache miss) the IB accepts as
many bytes as it then has room for (§4.1).  Because it may re-reference a
longword it only partially accepted, the IB averages well under four bytes
per reference — the paper measured ~2.2 references per instruction
delivering ~1.7 bytes each, and this model reproduces that mechanism
directly rather than assuming the numbers.

I-stream references translate through the TB.  An I-stream TB miss does
not trap immediately: a flag is set and filling stops; the EBOX services
the miss only when it actually runs out of IB bytes (§2.1).

The IB has one outstanding cache reference; the fill port loses to the
EBOX on cycles where the EBOX itself references memory.
"""

from __future__ import annotations

from repro.vm.address import PAGE_SHIFT


class InstructionBuffer:
    """IB state plus the autonomous I-Fetch fill engine."""

    def __init__(self, mem, tb, translator, params) -> None:
        self._mem = mem
        self._tb = tb
        self._translator = translator
        # A machine without a prefetching I-Fetch engine (ib_prefetch
        # False) has zero capacity: the fill engine is permanently idle
        # (count >= capacity holds at 0) and the EBOX treats decoded
        # bytes as free (see EBox._ib_free).
        self.capacity = params.ib_bytes if params.ib_prefetch else 0
        self.count = 0
        self.prefetch_va = 0
        #: in-flight fill: (ready_cycle, fetch_va) or None.
        self.pending = None
        #: VA whose I-stream translation missed the TB; filling is blocked
        #: until the EBOX services it.
        self.tb_miss_va = None
        #: VA whose I-stream page is not resident.
        self.fault_va = None
        # statistics (the paper's §4.1 events)
        self.references = 0
        self.bytes_delivered = 0
        self.flushes = 0

    def reset_stats(self) -> None:
        """Zero reference statistics."""
        self.references = 0
        self.bytes_delivered = 0
        self.flushes = 0

    def flush(self, target_va: int) -> None:
        """Redirect the I-stream (taken branch / REI / context switch)."""
        self.count = 0
        self.pending = None
        self.prefetch_va = target_va & 0xFFFFFFFF
        self.tb_miss_va = None
        self.fault_va = None
        self.flushes += 1

    def clear_tb_miss(self) -> None:
        """Resume filling after the EBOX serviced an I-stream TB miss."""
        self.tb_miss_va = None

    def tick(self, now: int, port_free: bool) -> None:
        """Advance the fill engine by one cycle ending at ``now``.

        ``port_free`` is False on cycles where the EBOX referenced memory
        (the EBOX wins the cache port).
        """
        if self.pending is not None:
            ready, va = self.pending
            if ready <= now:
                take = 4 - (va & 3)
                room = self.capacity - self.count
                if take > room:
                    take = room
                self.count += take
                self.bytes_delivered += take
                self.prefetch_va = (va + take) & 0xFFFFFFFF
                self.pending = None
            return
        if not port_free or self.count >= self.capacity:
            return
        if self.tb_miss_va is not None or self.fault_va is not None:
            return
        va = self.prefetch_va
        pfn = self._tb.lookup(va, stream="i")
        if pfn is None:
            self.tb_miss_va = va
            return
        pa = (pfn << PAGE_SHIFT) | (va & (1 << PAGE_SHIFT) - 1)
        ready = self._mem.ifetch(pa & ~3, now)
        self.references += 1
        self.pending = (ready, va)

    def take(self, nbytes: int) -> None:
        """Consume decoded bytes (caller has ensured availability)."""
        if nbytes > self.count:
            raise AssertionError(
                f"IB underflow: take {nbytes} with {self.count} available")
        self.count -= nbytes
