"""Instruction tracing: watch the simulated machine execute.

The paper's instrument deliberately *cannot* see individual instructions
(§2.2 lists this among the method's disadvantages: "the analysis produces
only average behavior characterizations").  This module is the modern
luxury the 1984 authors lacked: an optional per-instruction trace with
disassembly, cycle deltas and stall classification — invaluable for
debugging execute flows and for teaching.

Tracing hooks the machine's boundary hook and reads the cycle counter
around each step; it does not perturb simulated timing.
"""

from __future__ import annotations

from repro.arch.disasm import format_instruction


class TraceRecord:
    """One executed instruction."""

    __slots__ = ("index", "pc", "text", "mnemonic", "cycles", "mode")

    def __init__(self, index, pc, text, mnemonic, cycles, mode) -> None:
        self.index = index
        self.pc = pc
        self.text = text
        self.mnemonic = mnemonic
        self.cycles = cycles
        self.mode = mode

    def __str__(self) -> str:
        mode = "K" if self.mode == 0 else "U" if self.mode == 3 else "?"
        return (f"{self.index:6d}  {self.pc:08X} {mode}  "
                f"{self.cycles:3d}cy  {self.text}")


class InstructionTracer:
    """Collects :class:`TraceRecord` objects while attached."""

    def __init__(self, machine, limit: int = 10000,
                 sink=None) -> None:
        self.machine = machine
        self.limit = limit
        self.sink = sink           #: optional callable(record)
        self.records: list = []
        self._attached = False
        self._prev_hook = None
        self._pending = None       # (index, pc, text, mnemonic, cycles0)
        self._count = 0

    # -- lifecycle ---------------------------------------------------------

    def attach(self) -> None:
        """Install the boundary hook (chains any existing hook)."""
        if self._attached:
            return
        self._prev_hook = self.machine.boundary_hook
        self.machine.boundary_hook = self._on_boundary
        self._attached = True

    def detach(self) -> None:
        """Remove the hook and flush the final pending record."""
        if not self._attached:
            return
        self._flush()
        self.machine.boundary_hook = self._prev_hook
        self._attached = False

    def __enter__(self) -> "InstructionTracer":
        self.attach()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.detach()
        return False

    # -- hook ---------------------------------------------------------------

    def _on_boundary(self, machine) -> None:
        if self._prev_hook is not None:
            self._prev_hook(machine)
        self._flush()
        if self._count >= self.limit:
            return
        pc = machine.ebox.pc
        try:
            inst = machine._decode(pc)
            text = format_instruction(inst)
            mnemonic = inst.mnemonic
        except Exception:
            text, mnemonic = "(undecodable)", "?"
        self._pending = (self._count, pc, text, mnemonic,
                         machine.cycles, machine.ebox.psl.current_mode)
        self._count += 1

    def _flush(self) -> None:
        if self._pending is None:
            return
        index, pc, text, mnemonic, cycles0, mode = self._pending
        record = TraceRecord(index, pc, text, mnemonic,
                             self.machine.cycles - cycles0, mode)
        self._pending = None
        self.records.append(record)
        if self.sink is not None:
            self.sink(record)

    # -- queries --------------------------------------------------------------

    def render(self, last: int = None) -> str:
        """The trace as text (optionally only the last N records)."""
        records = self.records if last is None else self.records[-last:]
        return "\n".join(str(r) for r in records)

    def cycles_by_mnemonic(self) -> dict:
        """Aggregate cycle totals per mnemonic (a quick profile)."""
        totals: dict = {}
        for record in self.records:
            totals[record.mnemonic] = totals.get(record.mnemonic, 0) \
                + record.cycles
        return totals
