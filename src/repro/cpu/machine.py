"""The VAX-11/780 machine model: Figure 1 of the paper, wired together.

A :class:`VAX780` owns the CPU pipeline (I-Fetch + IB, I-Decode, EBOX),
the memory subsystem (TB, cache, write buffer, SBI, memory), the µPC
histogram board, the ground-truth tracer, and the devices/interrupt
machinery the executive hangs off.

The per-instruction loop in :meth:`VAX780.step` follows §2.1: one
non-overlapped I-Decode cycle dispatched through the family's IRD address,
operand specifier processing, branch-displacement handling, then the
execute flow — with interrupt delivery checked at instruction boundaries
and page faults unwinding to the architectural exception flow.
"""

from __future__ import annotations

from repro.arch.decode import decode_instruction
from repro.arch.groups import OpcodeGroup
from repro.arch.registers import KERNEL, SP
from repro.arch.specifiers import AddressingMode
from repro.cpu import prs
from repro.cpu.ebox import EBox
from repro.cpu.faults import (MachineHalt, PageFaultTrap, SimulatorError,
                              UnsupportedInstructionError)
from repro.cpu.tracer import Tracer
from repro.mem.subsystem import MemorySubsystem
from repro.monitor.histogram import HistogramBoard
from repro.params import MachineParams, VAX780 as VAX780_PARAMS
from repro.ucode import costs
from repro.ucode.controlstore import ControlStore
from repro.ucode.map import MicrocodeMap
from repro.ucode.registry import EXECUTORS
from repro.ucode.rows import Row
from repro.vm.address import PAGE_SHIFT, S0, S0_BASE, is_system_space, make_va
from repro.vm.pagetable import (PTE_VALID, PageFault, RegionTable,
                                Translator)
from repro.vm.tb import TranslationBuffer

# Import for side effects: registers every execute flow.
import repro.cpu.executors  # noqa: F401

_WORD = 0xFFFFFFFF

#: SCB offsets (subset of the architectural system control block).
SCB_MACHINE_CHECK = 0x04
SCB_PAGE_FAULT = 0x24
SCB_CHMK = 0x40
SCB_SOFTWARE_BASE = 0x80   # software interrupt level n vectors at 0x80+4n
SCB_CLOCK = 0xC0
SCB_TERMINAL = 0xF8

#: Families eligible for the literal/register-operand first-cycle fusion
#: (paper, Table 8 remarks: SIMPLE and FIELD groups only, and only the
#: short register-to-register style flows).
_FUSABLE_FAMILIES = frozenset({
    "MOV", "MOVZ", "MCOM", "MNEG", "CVT_INT", "ADDSUB", "INCDEC",
    "LOGICAL", "BIT", "CMP", "TST", "EXT",
})

_REG_OR_LITERAL = (AddressingMode.REGISTER, AddressingMode.SHORT_LITERAL)


class PendingInterrupt:
    """One posted hardware interrupt.

    The machine keeps posted interrupts sorted by ascending IPL (ties in
    posting order), so selection reads the tail instead of scanning and
    delivery deletes by index instead of ``list.remove``.
    """

    __slots__ = ("ipl", "scb_offset")

    def __init__(self, ipl: int, scb_offset: int) -> None:
        self.ipl = ipl
        self.scb_offset = scb_offset


class VAX780:
    """The complete simulated machine."""

    def __init__(self, params: MachineParams = VAX780_PARAMS,
                 name: str = "vax780") -> None:
        self.params = params
        #: Registry name of the machine backend these params model (the
        #: timing policy is entirely params-driven; the name labels
        #: reports and unsupported-instruction errors).
        self.name = name
        self.store = ControlStore()
        self.umap = MicrocodeMap(self.store)
        self.mem = MemorySubsystem(params)
        self.tb = TranslationBuffer(params.tb_entries, params.tb_ways)
        self.board = HistogramBoard()
        self.tracer = Tracer()

        # The S0 page table lives at the top of physical memory, one PTE
        # per physical page (see DESIGN.md on the single-level model).
        npages = params.memory_bytes >> PAGE_SHIFT
        table_bytes = 4 * npages
        self.s0_table_pa = params.memory_bytes - table_bytes
        self.s0_table = RegionTable(self.s0_table_pa, npages)
        self.translator = Translator(self.mem.memory, self.s0_table)

        self.ebox = EBox(params, self.mem, self.tb, self.translator,
                         self.umap, self.board, self.tracer)
        self.ebox.mtpr_hook = self._mtpr
        self.ebox.mfpr_hook = self._mfpr
        self.ebox.ldpctx_hook = self._ldpctx

        #: Bound (executor function, slot map) per family — the hot path
        #: avoids registry lookups.
        self._dispatch = {
            family: (spec.func, self.umap.exec_flows[family])
            for family, spec in EXECUTORS.items()
        }
        self._decode_cache = {}
        self._patched_families = frozenset(params.patched_families)
        self._overlapped_decode = params.overlapped_decode
        for family in params.unsupported_families:
            if family not in EXECUTORS:
                raise ValueError(
                    f"unsupported_families names unknown executor "
                    f"family {family!r}")
        self._unsupported = frozenset(params.unsupported_families)
        for group_name, _ in params.exec_extra_cycles:
            if group_name not in OpcodeGroup.__members__:
                raise ValueError(
                    f"exec_extra_cycles names unknown opcode group "
                    f"{group_name!r}; choose from "
                    f"{', '.join(OpcodeGroup.__members__)}")
        self._exec_extra_by_group = dict(params.exec_extra_cycles)
        self._ird_stall = self.umap.ird_stall
        self._bdisp_stall = self.umap.bdisp_stall
        #: True when the previous instruction changed the PC (pipeline
        #: restart: the decode cycle cannot be hidden).
        self._pc_changed = True

        self.scb_base = 0
        self.iccs = 0
        self.sisr = 0          # software interrupt summary register
        self._hw_pending = []  # posted hardware interrupts
        self.devices = []      # objects with poll(machine)
        #: earliest cycle any device could be due; polls are skipped
        #: until then (devices expose ``next_fire``; one without it is
        #: simply polled every step).
        self._device_due = 0
        self._spaces_by_pcb = {}
        self.halted = False
        #: optional executive hook called at every instruction boundary.
        self.boundary_hook = None
        #: pluggable processor-register handlers (the executive installs
        #: its scheduler interface here): regnum -> callable.
        self.pr_mtpr_hooks = {}
        self.pr_mfpr_hooks = {}

    # ------------------------------------------------------------------
    # configuration helpers
    # ------------------------------------------------------------------

    @property
    def cycles(self) -> int:
        """Total elapsed EBOX cycles (200 ns each)."""
        return self.ebox.now

    def map_s0_identity(self, npages=None) -> None:
        """Identity-map the first ``npages`` of S0 onto physical frames."""
        if npages is None:
            npages = self.params.memory_bytes >> PAGE_SHIFT
        # One bulk image write: byte-identical to npages map_page calls.
        self.mem.load_image(
            self.s0_table.base_pa,
            b"".join((PTE_VALID | page).to_bytes(4, "little")
                     for page in range(npages)))

    def register_address_space(self, pcb_base: int, space) -> None:
        """Associate a PCB physical base with a process address space."""
        self._spaces_by_pcb[pcb_base] = space

    def load_s0_image(self, image) -> None:
        """Load an image assembled in S0 space (identity physical layout)."""
        if not is_system_space(image.base):
            raise SimulatorError(
                f"image base {image.base:#x} is not in S0 space")
        self.mem.load_image(image.base - S0_BASE, image.data)

    def boot(self, image, stack_va: int = None) -> None:
        """Map S0, load a kernel-mode image, and point the PC at its entry.

        Suitable for bare-metal style tests and examples; the executive in
        :mod:`repro.osim` performs a richer boot on top of this.
        """
        self.map_s0_identity()
        self.load_s0_image(image)
        self.ebox.psl.current_mode = KERNEL
        if stack_va is None:
            stack_va = image.base - 0x100
        self.ebox.registers[SP] = stack_va
        self.ebox.pc = image.entry
        self.ebox.ib.flush(image.entry)

    # ------------------------------------------------------------------
    # instruction decode (architectural; timing flows through the IB)
    # ------------------------------------------------------------------

    def _decode(self, va: int):
        if va & 0x80000000:  # is_system_space, inlined for the hot path
            key = va
        else:
            space = self.translator.current_space
            key = (va, space.asid if space is not None else -1)
        inst = self._decode_cache.get(key)
        if inst is not None:
            return inst
        translate = self.translator.translate
        read_byte = self.mem.memory.read_byte

        def fetch(addr):
            return read_byte(translate(addr & _WORD))

        inst = decode_instruction(fetch, va)
        self._decode_cache[key] = inst
        return inst

    def invalidate_decode_cache(self) -> None:
        """Drop cached decodes (after loading new code over old)."""
        self._decode_cache.clear()

    # ------------------------------------------------------------------
    # interrupts and exceptions
    # ------------------------------------------------------------------

    def post_interrupt(self, ipl: int, scb_offset: int) -> None:
        """Post a hardware interrupt at ``ipl`` with an SCB vector.

        Insertion keeps ``_hw_pending`` sorted by ascending IPL, equal
        IPLs in posting order (the queue is nearly always empty or one
        deep, so the tail scan is effectively O(1)).
        """
        lst = self._hw_pending
        i = len(lst)
        while i > 0 and lst[i - 1].ipl > ipl:
            i -= 1
        lst.insert(i, PendingInterrupt(ipl, scb_offset))

    def _select_interrupt(self):
        """Highest-priority deliverable interrupt, or None.

        With the queue sorted, the winner — the earliest-posted among the
        maximum-IPL entries — is the head of the tail run of equal IPLs.
        """
        current_ipl = self.ebox.psl.ipl
        lst = self._hw_pending
        if lst:
            top_ipl = lst[-1].ipl
            if top_ipl > current_ipl:
                i = len(lst) - 1
                while i > 0 and lst[i - 1].ipl == top_ipl:
                    i -= 1
                return lst[i]
        if self.sisr:
            level = self.sisr.bit_length() - 1
            if level > current_ipl:
                return PendingInterrupt(level,
                                        SCB_SOFTWARE_BASE + 4 * level)
        return None

    def _deliver_interrupt(self, pending: PendingInterrupt) -> None:
        e, u = self.ebox, self.umap
        self.tracer.interrupts += 1
        # Hardware interrupts live in the sorted queue; find the entry by
        # identity from the tail (it can only sit in the >=-IPL run) and
        # delete it by index.  Anything else is a software interrupt.
        lst = self._hw_pending
        i = len(lst) - 1
        while i >= 0 and lst[i].ipl >= pending.ipl:
            if lst[i] is pending:
                break
            i -= 1
        if i >= 0 and lst[i] is pending:
            del lst[i]
        else:
            self.sisr &= ~(1 << pending.ipl)
        e._cycle_raw(u.irq_entry)
        e._cycle_raw(u.irq_grant, costs.IRQ_GRANT_CYCLES)
        psl_image = e.psl.as_long()
        e.psl.previous_mode = e.psl.current_mode
        e.set_mode(KERNEL)
        handler = e.read_phys(self.scb_base + pending.scb_offset, 4,
                              u.irq_vector_read)
        e.push(psl_image, u.irq_push_psl)
        e.push(e.pc, u.irq_push_pc)
        e.psl.ipl = pending.ipl
        e.pc = handler & _WORD
        e.ib.flush(e.pc)
        # The redirect restarts the pipeline: the next decode cannot
        # have overlapped the interrupted flow.
        self._pc_changed = True

    def _deliver_exception(self, fault: PageFaultTrap) -> None:
        e, u = self.ebox, self.umap
        self.tracer.exceptions += 1
        e._cycle_raw(u.exc_entry, costs.EXC_SETUP_CYCLES)
        psl_image = e.psl.as_long()
        e.psl.previous_mode = e.psl.current_mode
        e.set_mode(KERNEL)
        handler = e.read_phys(self.scb_base + SCB_PAGE_FAULT, 4,
                              u.irq_vector_read)
        e.push(psl_image, u.exc_push_psl)
        e.push(fault.restart_pc, u.exc_push_pc)
        e.push(fault.va, u.exc_push_param)
        e.pc = handler & _WORD
        e.ib.flush(e.pc)
        self._pc_changed = True

    # ------------------------------------------------------------------
    # MTPR / MFPR / LDPCTX hooks
    # ------------------------------------------------------------------

    def _mtpr(self, regnum: int, value: int) -> None:
        e = self.ebox
        hook = self.pr_mtpr_hooks.get(regnum)
        if hook is not None:
            hook(value)
        elif regnum == prs.PR_SIRR:
            self.sisr |= 1 << (value & 0xF)
            self.tracer.software_interrupt_requests += 1
        elif regnum == prs.PR_SISR:
            self.sisr = value & 0xFFFE
        elif regnum == prs.PR_IPL:
            e.psl.ipl = value & 0x1F
        elif regnum == prs.PR_PCBB:
            e.pcb_base = value
        elif regnum == prs.PR_SCBB:
            self.scb_base = value
            e.scb_base = value
        elif regnum == prs.PR_TBIA:
            self.tb.invalidate_all()
        elif regnum == prs.PR_TBIS:
            self.tb.invalidate_va(value)
        elif regnum == prs.PR_ICCS:
            self.iccs = value
        elif regnum == prs.PR_KSP:
            e.mode_sps[0] = value
        elif regnum == prs.PR_USP:
            e.mode_sps[3] = value
        elif regnum == prs.PR_PFFIX:
            # Simulator hook standing in for VMS's PTE rewrite: make the
            # page containing ``value`` resident (see DESIGN.md).
            self.translator.set_valid(value, True)
        else:
            raise SimulatorError(f"MTPR to unimplemented register {regnum}")

    def _mfpr(self, regnum: int) -> int:
        e = self.ebox
        hook = self.pr_mfpr_hooks.get(regnum)
        if hook is not None:
            return hook()
        if regnum == prs.PR_IPL:
            return e.psl.ipl
        if regnum == prs.PR_SISR:
            return self.sisr
        if regnum == prs.PR_PCBB:
            return e.pcb_base
        if regnum == prs.PR_SCBB:
            return self.scb_base
        if regnum == prs.PR_ICCS:
            return self.iccs
        if regnum == prs.PR_KSP:
            return e.mode_sps[0]
        if regnum == prs.PR_USP:
            return e.mode_sps[3]
        raise SimulatorError(f"MFPR from unimplemented register {regnum}")

    def _ldpctx(self, pcb_base: int) -> None:
        space = self._spaces_by_pcb.get(pcb_base)
        if space is not None:
            self.translator.set_space(space)

    # ------------------------------------------------------------------
    # the instruction loop
    # ------------------------------------------------------------------

    def step(self) -> None:
        """Execute one instruction (plus any interrupt delivered first)."""
        if self.boundary_hook is not None:
            self.boundary_hook(self)
        e = self.ebox
        if e.now >= self._device_due:
            devices = self.devices
            if devices:
                due = 1 << 62
                for device in devices:
                    device.poll(self)
                    nf = getattr(device, "next_fire", 0)
                    if nf < due:
                        due = nf
                self._device_due = due
        if self._hw_pending or self.sisr:
            pending = self._select_interrupt()
            if pending is not None:
                self._deliver_interrupt(pending)

        pc = e.pc
        e.restart_pc = pc
        saved_registers = list(e.registers)
        if pc & 0x80000000:
            inst = self._decode_cache.get(pc)
        else:
            space = self.translator.current_space
            inst = self._decode_cache.get(
                (pc, space.asid if space is not None else -1))
        if inst is None:
            try:
                inst = self._decode(pc)
            except PageFault as fault:
                self.tracer.page_faults += 1
                self._deliver_exception(PageFaultTrap(fault.va, pc))
                return

        hot = inst.exec_info
        if hot is None:
            hot = self._compile_step_info(inst)
        ird_upc, patched, br_nbytes, func, slots, extra = hot
        try:
            ib = e.ib
            if ib.count >= 1:
                ib.count -= 1
            else:
                e.ib_take(1, self._ird_stall)
            # The decode counters share the histogram board's gate so
            # they stay 1:1 with the histogram's IRD dispatch counts.
            tracer = self.tracer
            if self._pc_changed:
                if tracer.enabled:
                    tracer.decode_dispatches += 1
                    tracer.pc_change_dispatches += 1
                e._cycle_raw(ird_upc)
            elif self._overlapped_decode:
                # 11/750-style overlap: the decode happened under the
                # previous instruction's execution.  The dispatch is
                # still counted (it is how the analysis counts
                # instructions) but costs no EBOX cycle — on such a
                # machine the histogram's decode counts are event
                # counts, not cycle counts.
                if tracer.enabled:
                    tracer.decode_dispatches += 1
                    tracer.overlapped_decodes += 1
                self.board.count(ird_upc)
            else:
                if tracer.enabled:
                    tracer.decode_dispatches += 1
                e._cycle_raw(ird_upc)
            if patched:
                e._cycle_raw(self.umap.patch_abort)
            plan = inst.eval_plan
            ops = [] if plan == () else e.evaluate_specifiers(inst)
            if br_nbytes:
                e.ib_take(br_nbytes, self._bdisp_stall)
            fused = inst.fused_upc
            if fused is None:
                fused = self._compute_fused_upc(inst)
            if fused is not False:
                e._fused_upc = fused
            if extra is not None:
                # Per-group base-cycle surcharge of a slower microcoded
                # backend, charged to the family's first compute slot so
                # it lands in the group's execute row.
                e._cycle_raw(extra[0], extra[1])
            next_pc = func(e, inst, ops, slots)
            e._fused_upc = None
            self._pc_changed = next_pc is not None
            e.pc = inst.next_pc if next_pc is None else next_pc
            self.tracer.note_instruction(inst)
        except PageFaultTrap as fault:
            e.disarm_fused_cycle()
            e.registers[:] = saved_registers
            self.tracer.instruction_aborts += 1
            self._deliver_exception(fault)
        except MachineHalt:
            self.tracer.note_instruction(inst)
            self.halted = True

    def _compile_step_info(self, inst):
        """Per-instruction dispatch constants, cached on the instruction.

        (IRD µPC, patched-family flag, branch-displacement byte count,
        execute function, µPC slot map, extra-cycle charge) — everything
        :meth:`step` would otherwise re-derive from the opcode info on
        every execution.  Subset machines reject their unimplemented
        families here, before any cycle of the instruction is charged.
        """
        info = inst.info
        family = info.family
        if family in self._unsupported:
            raise UnsupportedInstructionError(inst.mnemonic, family,
                                              self.name)
        branch = info.branch_operand
        br_nbytes = 0 if branch is None else (1 if branch.dtype == "b"
                                              else 2)
        func, slots = self._dispatch[family]
        extra = None
        n = self._exec_extra_by_group.get(info.group.name, 0)
        if n:
            for slot_name, code in EXECUTORS[family].slots.items():
                if code == "C" and slot_name != "redirect":
                    extra = (slots[slot_name], n)
                    break
        hot = (self.umap.ird[family], family in self._patched_families,
               br_nbytes, func, slots, extra)
        inst.exec_info = hot
        return hot

    def _compute_fused_upc(self, inst):
        """Fused-first-execute-cycle µPC for ``inst`` (cached on it).

        Returns the µPC when the literal/register operand optimisation
        applies, else False (None marks "not yet computed").
        """
        fused = False
        if inst.info.family in _FUSABLE_FAMILIES and inst.specifiers and \
                all(spec.mode in _REG_OR_LITERAL
                    for spec in inst.specifiers):
            row = Row.SPEC1 if len(inst.specifiers) == 1 else Row.SPEC26
            fused = self.umap.spec_fused[row]
        inst.fused_upc = fused
        return fused

    def run(self, max_instructions: int = None) -> int:
        """Run until HALT (or the instruction budget); returns steps done."""
        executed = 0
        while not self.halted:
            if max_instructions is not None and executed >= max_instructions:
                break
            self.step()
            executed += 1
        return executed

    # ------------------------------------------------------------------
    # structure (Figure 1)
    # ------------------------------------------------------------------

    def component_graph(self):
        """The block-diagram topology of Figure 1 as (nodes, edges)."""
        nodes = ["I-Fetch", "Instruction Buffer", "I-Decode", "EBOX",
                 "Translation Buffer", "Cache", "Write Buffer", "SBI",
                 "Memory"]
        edges = [
            ("I-Fetch", "Instruction Buffer"),
            ("Instruction Buffer", "I-Decode"),
            ("I-Decode", "EBOX"),
            ("EBOX", "Translation Buffer"),
            ("I-Fetch", "Translation Buffer"),
            ("Translation Buffer", "Cache"),
            ("EBOX", "Write Buffer"),
            ("Write Buffer", "SBI"),
            ("Cache", "SBI"),
            ("SBI", "Memory"),
        ]
        return nodes, edges
