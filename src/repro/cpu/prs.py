"""Processor register numbers for MTPR/MFPR.

A subset of the architectural internal processor registers, plus one
simulator-specific register (PR_PFFIX) the modeled executive uses to mark
a faulted page resident — the real VMS writes the PTE directly; see
DESIGN.md for this documented model hook.
"""

from __future__ import annotations

PR_KSP = 0        # kernel stack pointer
PR_USP = 3        # user stack pointer
PR_PCBB = 16      # process control block base (physical)
PR_SCBB = 17      # system control block base (physical)
PR_IPL = 18       # interrupt priority level
PR_SIRR = 20      # software interrupt request (write level 1-15)
PR_SISR = 21      # software interrupt summary (bitmask)
PR_ICCS = 24      # interval clock control/status
PR_TBIA = 57      # TB invalidate all
PR_TBIS = 58      # TB invalidate single (by VA)
PR_PFFIX = 63     # simulator hook: make the page containing VA resident

PR_NAMES = {
    PR_KSP: "KSP", PR_USP: "USP", PR_PCBB: "PCBB", PR_SCBB: "SCBB",
    PR_IPL: "IPL", PR_SIRR: "SIRR", PR_SISR: "SISR", PR_ICCS: "ICCS",
    PR_TBIA: "TBIA", PR_TBIS: "TBIS", PR_PFFIX: "PFFIX",
}
