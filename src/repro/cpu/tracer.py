"""Ground-truth architectural event tracer.

The µPC histogram is the *paper's* measurement path, and everything in the
Tables 1-9 benchmarks flows from it.  But the paper also leans on a second
instrument — its companion cache study — for events the histogram cannot
see (I-stream references, cache misses).  The tracer is this simulator's
equivalent second instrument: exact counts maintained by the simulation
itself, used for the §4 event benchmarks and to validate histogram-derived
numbers in tests.

The tracer honours the same measurement gate as the histogram board, so
Null-process activity is excluded from both instruments identically.
"""

from __future__ import annotations

from collections import Counter


class Tracer:
    """Exact event counters, gated alongside the histogram board.

    Per-instruction counts are *deferred*: :meth:`note_instruction` only
    bumps a pending-execution count keyed by the (cached, re-executed)
    Instruction object, and the dozen-odd Counter updates each execution
    implies are replayed in bulk the first time any derived counter is
    read.  ``instructions`` itself stays a live attribute because the
    executive's run loop polls it every step.
    """

    def __init__(self) -> None:
        self.enabled = True
        #: cycles spent with the gate closed (Null-process windows); see
        #: :meth:`gate`.  ``_gated_off_at`` is the cycle the open window
        #: started, or None while enabled.
        self.gated_off_cycles = 0
        self._gated_off_at = None
        self.instructions = 0
        #: pending executions awaiting the bulk replay: inst -> count.
        self._pending = {}
        self._opcode_counts = Counter()     # mnemonic -> executions
        self._family_counts = Counter()     # family -> executions
        self._group_counts = Counter()      # OpcodeGroup -> executions
        self.branches_executed = Counter()  # family -> count
        self.branches_taken = Counter()     # family -> count
        self._specifier_modes = Counter()   # (position, mode) -> count
        self._indexed_specifiers = 0
        self._specifiers = 0
        self._branch_displacements = 0
        self._branch_disp_bytes = 0
        self._instruction_bytes = 0
        #: IRD dispatches, split by whether the previous instruction (or
        #: an interrupt/exception) changed the PC.  §5: a machine with
        #: overlapped decode (the 11/750) saves one cycle on each
        #: non-PC-changing dispatch; ``overlapped_decodes`` counts the
        #: dispatches where this model actually skipped the cycle.
        self.decode_dispatches = 0
        self.pc_change_dispatches = 0
        self.overlapped_decodes = 0
        self.interrupts = 0
        self.software_interrupt_requests = 0
        self.exceptions = 0
        self.context_switches = 0
        self.tb_miss_services = Counter()  # "i"/"d" -> count
        self.tb_miss_cycles = 0
        self.tb_miss_stall_cycles = 0
        self.page_faults = 0
        #: TB-miss services that found an invalid PTE and faulted instead
        #: of completing (``tb_miss_services`` counts completions only).
        self.tb_miss_faults = 0
        #: instructions dispatched but unwound by a page fault; the
        #: restart re-dispatches, so ``decode_dispatches`` equals
        #: ``instructions + instruction_aborts``.
        self.instruction_aborts = 0

    def gate(self, enabled: bool, now: int) -> None:
        """Open or close the measurement gate at cycle ``now``.

        Closed-gate time accumulates in ``gated_off_cycles``, so the
        cycle-conservation law (histogram total == measured cycles)
        stays exact across Null-process windows.  Idempotent: repeated
        opens/closes at the same state are no-ops.
        """
        if enabled:
            if self._gated_off_at is not None:
                self.gated_off_cycles += now - self._gated_off_at
                self._gated_off_at = None
        elif self._gated_off_at is None:
            self._gated_off_at = now
        self.enabled = enabled

    def settle_gate(self, now: int) -> None:
        """Fold any open closed-gate window into the accumulator.

        Called at capture points so ``gated_off_cycles`` is complete
        through ``now`` even if the machine stopped inside a Null
        window; the gate state itself is unchanged.
        """
        if self._gated_off_at is not None:
            self.gated_off_cycles += now - self._gated_off_at
            self._gated_off_at = now

    def note_instruction(self, inst) -> None:
        """Record one completed instruction (deferred; see class docs)."""
        if not self.enabled:
            return
        self.instructions += 1
        pending = self._pending
        n = pending.get(inst)
        pending[inst] = 1 if n is None else n + 1

    def _flush(self) -> None:
        """Replay pending executions into the per-instruction counters."""
        if not self._pending:
            return
        opcodes = self._opcode_counts
        families = self._family_counts
        groups = self._group_counts
        modes = self._specifier_modes
        for inst, n in self._pending.items():
            rec = inst.trace_rec
            if rec is None:
                rec = self._build_record(inst)
            (mnemonic, family, group, length, nspec, mode_keys, n_indexed,
             disp_bytes) = rec
            opcodes[mnemonic] += n
            families[family] += n
            groups[group] += n
            self._instruction_bytes += length * n
            self._specifiers += nspec * n
            for key in mode_keys:
                modes[key] += n
            if n_indexed:
                self._indexed_specifiers += n_indexed * n
            if disp_bytes:
                self._branch_displacements += n
                self._branch_disp_bytes += disp_bytes * n
        self._pending.clear()

    # Derived counters: reading any of them replays the pending log first.

    @property
    def opcode_counts(self):
        """mnemonic -> executions."""
        self._flush()
        return self._opcode_counts

    @property
    def family_counts(self):
        """family -> executions."""
        self._flush()
        return self._family_counts

    @property
    def group_counts(self):
        """OpcodeGroup -> executions."""
        self._flush()
        return self._group_counts

    @property
    def specifier_modes(self):
        """(position, mode) -> count."""
        self._flush()
        return self._specifier_modes

    @property
    def specifiers(self):
        """Total operand specifiers processed."""
        self._flush()
        return self._specifiers

    @property
    def indexed_specifiers(self):
        """Specifiers carrying an index prefix."""
        self._flush()
        return self._indexed_specifiers

    @property
    def branch_displacements(self):
        """Branch-displacement operands processed."""
        self._flush()
        return self._branch_displacements

    @property
    def branch_disp_bytes(self):
        """Total branch-displacement bytes."""
        self._flush()
        return self._branch_disp_bytes

    @property
    def instruction_bytes(self):
        """Total encoded instruction bytes executed."""
        self._flush()
        return self._instruction_bytes

    @staticmethod
    def _build_record(inst):
        """Precompute an instruction's tracer contribution (cached)."""
        info = inst.info
        mode_keys = tuple(
            ("spec1" if position == 0 else "spec26", spec.mode)
            for position, spec in enumerate(inst.specifiers))
        n_indexed = sum(1 for spec in inst.specifiers if spec.indexed)
        disp_bytes = 0
        if inst.branch_displacement is not None:
            disp_bytes = 1 if info.branch_operand.dtype == "b" else 2
        rec = (info.mnemonic, info.family, info.group, inst.length,
               len(inst.specifiers), mode_keys, n_indexed, disp_bytes)
        inst.trace_rec = rec
        return rec

    def note_branch(self, family: str, taken: bool) -> None:
        """Record a PC-changing instruction outcome."""
        if not self.enabled:
            return
        self.branches_executed[family] += 1
        if taken:
            self.branches_taken[family] += 1

    def note_tb_miss(self, stream: str, cycles: int, stall: int) -> None:
        """Record one TB miss service (cycles include stall)."""
        if not self.enabled:
            return
        self.tb_miss_services[stream] += 1
        self.tb_miss_cycles += cycles
        self.tb_miss_stall_cycles += stall

    def per_instruction(self, count: int) -> float:
        """Convenience: ``count`` per traced instruction."""
        if self.instructions == 0:
            return 0.0
        return count / self.instructions
