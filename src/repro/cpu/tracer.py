"""Ground-truth architectural event tracer.

The µPC histogram is the *paper's* measurement path, and everything in the
Tables 1-9 benchmarks flows from it.  But the paper also leans on a second
instrument — its companion cache study — for events the histogram cannot
see (I-stream references, cache misses).  The tracer is this simulator's
equivalent second instrument: exact counts maintained by the simulation
itself, used for the §4 event benchmarks and to validate histogram-derived
numbers in tests.

The tracer honours the same measurement gate as the histogram board, so
Null-process activity is excluded from both instruments identically.
"""

from __future__ import annotations

from collections import Counter


class Tracer:
    """Exact event counters, gated alongside the histogram board."""

    def __init__(self) -> None:
        self.enabled = True
        self.instructions = 0
        self.opcode_counts = Counter()     # mnemonic -> executions
        self.family_counts = Counter()     # family -> executions
        self.group_counts = Counter()      # OpcodeGroup -> executions
        self.branches_executed = Counter()  # family -> count
        self.branches_taken = Counter()     # family -> count
        self.specifier_modes = Counter()    # (position, mode) -> count
        self.indexed_specifiers = 0
        self.specifiers = 0
        self.branch_displacements = 0
        self.branch_disp_bytes = 0
        self.instruction_bytes = 0
        self.interrupts = 0
        self.software_interrupt_requests = 0
        self.exceptions = 0
        self.context_switches = 0
        self.tb_miss_services = Counter()  # "i"/"d" -> count
        self.tb_miss_cycles = 0
        self.tb_miss_stall_cycles = 0
        self.page_faults = 0

    def note_instruction(self, inst) -> None:
        """Record one completed instruction."""
        if not self.enabled:
            return
        info = inst.info
        self.instructions += 1
        self.opcode_counts[info.mnemonic] += 1
        self.family_counts[info.family] += 1
        self.group_counts[info.group] += 1
        self.instruction_bytes += inst.length
        nspec = len(inst.specifiers)
        self.specifiers += nspec
        for position, spec in enumerate(inst.specifiers):
            bucket = "spec1" if position == 0 else "spec26"
            self.specifier_modes[(bucket, spec.mode)] += 1
            if spec.indexed:
                self.indexed_specifiers += 1
        if inst.branch_displacement is not None:
            self.branch_displacements += 1
            kind = info.branch_operand
            self.branch_disp_bytes += 1 if kind.dtype == "b" else 2

    def note_branch(self, family: str, taken: bool) -> None:
        """Record a PC-changing instruction outcome."""
        if not self.enabled:
            return
        self.branches_executed[family] += 1
        if taken:
            self.branches_taken[family] += 1

    def note_tb_miss(self, stream: str, cycles: int, stall: int) -> None:
        """Record one TB miss service (cycles include stall)."""
        if not self.enabled:
            return
        self.tb_miss_services[stream] += 1
        self.tb_miss_cycles += cycles
        self.tb_miss_stall_cycles += stall

    def per_instruction(self, count: int) -> float:
        """Convenience: ``count`` per traced instruction."""
        if self.instructions == 0:
            return 0.0
        return count / self.instructions
