"""repro.explore: design-space exploration for the simulated 11/780.

The paper's §5 costs out engineering changes on paper; this package
actually runs them.  A declarative :class:`SweepSpec` names axes over
:class:`~repro.params.MachineParams` fields (plus seed/instructions),
the sharded runner simulates every point across worker processes, a
content-addressed :class:`ResultStore` makes re-runs and interrupted
sweeps incremental, and the sensitivity module reduces it all to
§5-style tables — including the exact check of the 11/750's
overlapped-decode saving.

    from repro.explore import PAPER_SENSITIVITY, ResultStore, run_sweep
    from repro.explore.sensitivity import sensitivity

    store = ResultStore(".explore/store")
    result = run_sweep(PAPER_SENSITIVITY, store=store, jobs=4)
    report = sensitivity(result)
"""

from repro.explore.space import (Axis, PAPER_SENSITIVITY, Point, SMOKE,
                                 SPECS, SpaceError, SweepSpec, parse_axis,
                                 valid_axes)
from repro.explore.store import ResultStore, code_version, result_key
from repro.explore.runner import SweepResult, compose, run_sweep
from repro.explore.sensitivity import (axis_table, decode_claim,
                                       point_metrics, sensitivity)

__all__ = ["Axis", "PAPER_SENSITIVITY", "Point", "SMOKE", "SPECS",
           "SpaceError", "SweepSpec", "parse_axis", "valid_axes",
           "ResultStore", "code_version", "result_key", "SweepResult",
           "compose", "run_sweep", "axis_table", "decode_claim",
           "point_metrics", "sensitivity"]
