"""Sharded execution of design-space sweeps.

A sweep is a bag of independent (point × workload) simulations — the
same embarrassing parallelism as the composite experiments — so the
runner fans tasks out over :func:`repro.workloads.parallel.run_tasks`
(which brings bounded per-task retry and in-process fallback when the
pool dies) in shards, persisting each shard to the
:class:`~repro.explore.store.ResultStore` as it lands.  An interrupted
sweep therefore loses at most one shard, and a re-run simulates only
what the store has never seen.

Each simulation is *exactly* the code path of
:func:`repro.workloads.engine.run_workload` — fresh machine,
executive boot, measured run — so the default-params point is
bit-identical to the standard composite (a contract the tests pin).

``engine="batch"`` routes the outstanding tasks through the lockstep
batch engine (:mod:`repro.batch`) instead of the process pool: tasks
that differ only in budget fuse onto shared machines, so an
``instructions``-axis sweep costs one run of the longest point.
Records are bit-identical either way (the store key does not encode
the engine), and ``engine="auto"`` picks batch exactly when some tasks
actually fuse.
"""

from __future__ import annotations

import time

from repro import obs
from repro.analysis.measurement import Measurement
from repro.explore.space import SpaceError, SweepSpec
from repro.explore.store import ResultStore, code_version, result_key
from repro.obs import metrics
from repro.workloads.parallel import run_tasks
from repro.workloads.registry import WorkloadError, get_workload

#: Simulations performed by this process since import (tests use this
#: to assert that a warm store performs zero new simulations).
SIMULATIONS = 0


def _record(measurement, workload: str, instructions: int,
            seed: int, overrides: dict,
            machine: str = "vax780") -> dict:
    """Shape one run into the compact store record."""
    import hashlib

    from repro.analysis.reduction import Reduction
    from repro.explore.store import SCHEMA
    from repro.ucode.rows import COLUMN_ORDER, ROW_ORDER

    hist = measurement.histogram
    digest = hashlib.sha256()
    digest.update(hist.nonstalled.tobytes())
    digest.update(hist.stalled.tobytes())
    red = Reduction(hist)
    cells = {}
    for row in ROW_ORDER:
        for col in COLUMN_ORDER:
            cycles = red.cells[(row, col)]
            if cycles:
                cells.setdefault(row.name, {})[col.name] = cycles
    tracer = measurement.tracer
    mem = measurement.memory
    return {
        # The schema/code pair is already part of the key; repeating it
        # inside the record lets ResultStore.stats() break a store down
        # by version without re-deriving keys.
        "schema": SCHEMA,
        "code": code_version(),
        "workload": workload,
        "instructions": instructions,
        "seed": seed,
        "machine": machine,
        "overrides": dict(overrides),
        "cycles": measurement.cycles,
        "instructions_measured": red.instructions,
        "histogram": {
            "nonstalled_total": sum(hist.nonstalled),
            "stalled_total": sum(hist.stalled),
            "sha256": digest.hexdigest(),
        },
        "cells": cells,
        "decode": {
            "dispatches": tracer.decode_dispatches,
            "pc_change_dispatches": tracer.pc_change_dispatches,
            "overlapped_decodes": tracer.overlapped_decodes,
        },
        "memory": {
            "cache_read_misses_i": mem.cache_read_misses["i"],
            "cache_read_misses_d": mem.cache_read_misses["d"],
            "tb_misses": mem.tb_misses,
            "write_stall_cycles": mem.write_stall_cycles,
            "writes": mem.writes,
        },
    }


def _simulate_task(task) -> dict:
    """Worker entry point (top-level, so it pickles): one simulation."""
    global SIMULATIONS
    workload, instructions, seed, overrides, machine_name = task
    overrides = dict(overrides)

    from repro.machines.registry import get_machine
    from repro.osim.executive import Executive

    spec = get_machine(machine_name)
    profile = get_workload(workload).profile
    machine = spec.build(spec.params.with_overrides(**overrides))
    executive = Executive(machine, spec.adapt_profile(profile),
                          seed=seed)
    executive.boot()
    executive.run(instructions)
    measurement = Measurement.capture(workload, machine)
    SIMULATIONS += 1
    metrics.counter("explore.simulations").inc()
    return _record(measurement, workload, instructions, seed, overrides,
                   machine=machine_name)


class SweepResult:
    """Everything one sweep run produced."""

    def __init__(self, spec: SweepSpec, points: list, stats: dict) -> None:
        self.spec = spec
        self.points = points
        self.stats = stats

    def point(self, **overrides) -> dict:
        """The point result matching exactly the given overrides.

        The special ``seed``/``instructions`` axes are matched against
        the point's own fields; everything else against its
        MachineParams overrides.  No arguments selects the baseline.
        """
        seed = overrides.pop("seed", self.spec.seed)
        instructions = overrides.pop("instructions",
                                     self.spec.instructions)
        wanted = tuple(sorted(overrides.items()))
        for entry in self.points:
            point = entry["point"]
            if point.overrides == wanted and point.seed == seed \
                    and point.instructions == instructions:
                return entry
        return None


def compose(records) -> dict:
    """Sum per-workload records into a point composite (like §2.2)."""
    records = list(records)
    out = {
        "cycles": 0, "instructions_measured": 0,
        "histogram": {"nonstalled_total": 0, "stalled_total": 0},
        "cells": {},
        "decode": {"dispatches": 0, "pc_change_dispatches": 0,
                   "overlapped_decodes": 0},
        "memory": {},
    }
    for record in records:
        out["cycles"] += record["cycles"]
        out["instructions_measured"] += record["instructions_measured"]
        for key in ("nonstalled_total", "stalled_total"):
            out["histogram"][key] += record["histogram"][key]
        for row, cols in record["cells"].items():
            target = out["cells"].setdefault(row, {})
            for col, cycles in cols.items():
                target[col] = target.get(col, 0) + cycles
        for key, value in record["decode"].items():
            out["decode"][key] += value
        for key, value in record["memory"].items():
            out["memory"][key] = out["memory"].get(key, 0) + value
    return out


def _run_batch(spec, todo, points, records, store, progress) -> None:
    """Simulate the outstanding tasks through the lockstep batch engine.

    Each task becomes one lane; lanes differing only in budget fuse
    onto shared machines (see :mod:`repro.batch.lanes`).  Results are
    persisted as each lane's boundary is captured, so an interrupted
    sweep keeps every lane that completed.  A failed lane raises the
    scalar engine's RuntimeError verbatim, exactly as the serial path
    would have propagated it.
    """
    from repro.batch import BatchRunner, LaneSpec, plan_cohorts

    lanes = []
    for index, workload, _key in todo:
        point = points[index]
        lanes.append(LaneSpec(workload, point.instructions, point.seed,
                              point.overrides))
    landed = {"lanes": 0}
    started = time.monotonic()

    def on_result(lane, result):
        global SIMULATIONS
        if result.error is not None:
            raise RuntimeError(result.error)
        index, workload, key = todo[lane]
        point = points[index]
        record = _record(result.measurement, workload,
                         point.instructions, point.seed,
                         dict(point.overrides), machine=point.machine)
        records[key] = record
        if store is not None:
            store.put(key, record)
        SIMULATIONS += 1
        metrics.counter("explore.simulations").inc()
        obs.emit("sweep_point_completed", spec=spec.name,
                 label=point.label(), workload=workload,
                 cycles=record["cycles"])
        landed["lanes"] += 1
        if progress is not None:
            elapsed = time.monotonic() - started
            progress(f"batch: {landed['lanes']}/{len(todo)} lanes "
                     f"captured elapsed {elapsed:.1f}s")

    runner = BatchRunner(lanes, on_result=on_result)
    if progress is not None:
        fused = len(lanes) - len(runner.cohorts)
        progress(f"batch: {len(lanes)} lanes in "
                 f"{len(runner.cohorts)} cohorts ({fused} fused)")
    runner.run()


def _batch_fuses(todo, points) -> bool:
    """Whether any outstanding tasks would share a machine."""
    keys = [(workload, points[index].seed, points[index].overrides)
            for index, workload, _key in todo]
    return len(set(keys)) < len(keys)


def _all_default_machine(todo, points) -> bool:
    """Whether every outstanding task runs on the default backend.

    The lockstep batch engine shares one 780 timing model across
    lanes, so any non-default point forces the scalar path (mirroring
    ``run_standard_experiments``).
    """
    from repro.machines.registry import DEFAULT_MACHINE

    return all(points[index].machine == DEFAULT_MACHINE
               for index, _workload, _key in todo)


def run_sweep(spec: SweepSpec, store: ResultStore = None, jobs: int = None,
              resume: bool = True, retries: int = 1,
              progress=None, engine: str = "scalar") -> SweepResult:
    """Run ``spec``, reusing stored results, and return every point.

    ``resume=False`` re-simulates every point (the store is still
    updated).  ``progress`` is an optional ``callable(str)`` fed
    shard-by-shard status lines with an ETA.  ``engine`` selects the
    execution engine: ``scalar`` (the pool-sharded per-task path),
    ``batch`` (the in-process lockstep engine), or ``auto`` (batch
    when tasks fuse, scalar otherwise); results are bit-identical.
    """
    from repro.batch import validate_engine

    global SIMULATIONS
    engine = validate_engine(engine)
    code = code_version()
    tasks = []          # (point_index, workload, key)
    points = spec.points()
    # Eager support check across every (machine, workload) pair the
    # sweep will touch — a machine axis can put a workload on a backend
    # that refuses it, and that should fail before the first shard.
    for machine_name in {point.machine for point in points}:
        for workload in spec.workloads:
            try:
                get_workload(workload).check_machine(machine_name)
            except WorkloadError as exc:
                raise SpaceError(str(exc)) from exc
    for index, point in enumerate(points):
        params = point.params()
        for workload in spec.workloads:
            key = result_key(params, workload, point.instructions,
                             point.seed, code=code,
                             machine=point.machine)
            tasks.append((index, workload, key))

    records = {}        # key -> record
    todo = []
    for index, workload, key in tasks:
        if key in records:
            continue
        record = store.get(key) if (store is not None and resume) else None
        if record is not None:
            records[key] = record
        elif not any(key == k for _, _, k in todo):
            todo.append((index, workload, key))
    cached = len(set(k for _, _, k in tasks)) - len(todo)
    metrics.counter("explore.resumed_points").inc(cached)
    if not _all_default_machine(todo, points):
        engine = "scalar"
    elif engine == "auto":
        engine = "batch" if _batch_fuses(todo, points) else "scalar"
    started = time.monotonic()
    obs.emit("sweep_started", spec=spec.name, points=len(points),
             workloads=len(spec.workloads), simulations=len(todo),
             cached=cached, engine=engine)

    if engine == "batch" and todo:
        _run_batch(spec, todo, points, records, store, progress)
    elif todo:
        # Shard the outstanding work so each shard's results are
        # persisted before the next starts: an interrupted sweep loses
        # at most one shard, and progress/ETA lines have something real
        # to report.
        from repro.workloads.parallel import default_jobs
        effective_jobs = jobs if jobs is not None else default_jobs()
        shard_size = max(1, 2 * effective_jobs)
        shards = [todo[i:i + shard_size]
                  for i in range(0, len(todo), shard_size)]
        simulated = 0
        for number, shard in enumerate(shards, start=1):
            payloads = []
            for index, workload, key in shard:
                point = points[index]
                payloads.append((workload, point.instructions,
                                 point.seed, point.overrides,
                                 point.machine))
            results = run_tasks(_simulate_task, payloads, jobs=jobs,
                                retries=retries)
            for (index, workload, key), record in zip(shard, results):
                records[key] = record
                if store is not None:
                    store.put(key, record)
                obs.emit("sweep_point_completed", spec=spec.name,
                         label=points[index].label(), workload=workload,
                         cycles=record["cycles"])
            simulated += len(shard)
            if effective_jobs > 1 and len(payloads) > 1:
                # The pool's workers simulated on our behalf (the
                # in-process path already counted itself inside
                # ``_simulate_task``).
                SIMULATIONS += len(shard)
            if progress is not None:
                elapsed = time.monotonic() - started
                remaining = len(todo) - simulated
                eta = elapsed / simulated * remaining if simulated \
                    else 0.0
                progress(f"shard {number}/{len(shards)}: "
                         f"{simulated}/{len(todo)} simulations "
                         f"({cached} cached) elapsed {elapsed:.1f}s "
                         f"eta {eta:.1f}s")

    out_points = []
    for index, point in enumerate(points):
        params = point.params()
        by_workload = {}
        for workload in spec.workloads:
            key = result_key(params, workload, point.instructions,
                             point.seed, code=code,
                             machine=point.machine)
            by_workload[workload] = records[key]
        out_points.append({
            "point": point,
            "label": point.label(),
            "records": by_workload,
            "composite": compose(by_workload.values()),
        })
    stats = {"points": len(points), "workloads": len(spec.workloads),
             "tasks": len(tasks), "simulated": len(todo),
             "cached": cached, "engine": engine,
             "seconds": round(time.monotonic() - started, 3)}
    obs.emit("sweep_finished", spec=spec.name, **stats)
    return SweepResult(spec, out_points, stats)
