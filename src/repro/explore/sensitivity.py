"""Paper-style sensitivity analysis over sweep results.

§5 of the paper walks through "where performance may be improved, and
where it may not": stall cycles, decode overlap, IB fills.  This module
turns a :class:`~repro.explore.runner.SweepResult` into that section's
tables — per-axis rows of CPI and read/write/IB stall cycles per
instruction — plus a quantitative reproduction of §5's overlapped-decode
estimate: "saving the non-overlapped I-Decode cycle could save one
cycle on each non-PC-changing instruction.  (The later VAX model 11/750
did exactly this.)"
"""

from __future__ import annotations

from repro.explore.space import VAX780
from repro.ucode.rows import Column

#: Stall/reference columns reported per instruction in the axis tables.
_COLUMNS = (Column.READ, Column.RSTALL, Column.WRITE, Column.WSTALL,
            Column.IBSTALL)


def point_metrics(entry: dict) -> dict:
    """Headline metrics of one point's composite record.

    ``cpi`` counts cycles the machine actually spent: in overlapped-
    decode configurations the histogram's decode counts are event
    counts (see the machine model), so the overlapped dispatches are
    backed out of the classified total.
    """
    composite = entry["composite"]
    instructions = composite["instructions_measured"] or 1
    classified = sum(cycles for cols in composite["cells"].values()
                     for cycles in cols.values())
    decode = composite["decode"]
    spent = classified - decode["overlapped_decodes"]
    metrics = {
        "label": entry["label"],
        "instructions": composite["instructions_measured"],
        "classified_cycles": classified,
        "machine_cycles": composite["cycles"],
        "cpi": spent / instructions,
        "decode_cycles_per_instruction":
            (decode["dispatches"] - decode["overlapped_decodes"])
            / (decode["dispatches"] or 1),
    }
    for column in _COLUMNS:
        total = sum(cols.get(column.name, 0)
                    for cols in composite["cells"].values())
        metrics[column.name.lower() + "_per_instruction"] = \
            total / instructions
    return metrics


def axis_table(result, axis) -> dict:
    """One axis's sensitivity rows, in the axis's value order."""
    rows = []
    for value in axis.values:
        if axis.name not in ("seed", "instructions") \
                and value == getattr(VAX780, axis.name):
            entry = result.point()
        else:
            entry = result.point(**{axis.name: value})
        if entry is None:
            continue
        metrics = point_metrics(entry)
        metrics["value"] = value
        metrics["is_default"] = entry["point"].overrides == ()
        rows.append(metrics)
    return {"axis": axis.name, "rows": rows}


def decode_claim(result) -> dict:
    """§5's overlapped-decode estimate, checked exactly.

    Within the ``overlapped_decode=True`` run, two independently
    maintained counters must agree: the dispatches whose decode cycle
    was actually skipped, and the dispatches that no PC change
    preceded.  Their equality — plus the decode-cycle accounting
    against the baseline run — is the paper's "one cycle per
    non-PC-changing instruction", made exact.
    """
    baseline = result.point()
    overlapped = result.point(overlapped_decode=True)
    if baseline is None or overlapped is None:
        return None
    base_d = baseline["composite"]["decode"]
    over_d = overlapped["composite"]["decode"]
    non_pc = over_d["dispatches"] - over_d["pc_change_dispatches"]
    saved = over_d["overlapped_decodes"]
    base_cycles = base_d["dispatches"] - base_d["overlapped_decodes"]
    over_cycles = over_d["dispatches"] - over_d["overlapped_decodes"]
    instructions = overlapped["composite"]["instructions_measured"] or 1
    return {
        "baseline_decode_cycles": base_cycles,
        "overlapped_decode_cycles": over_cycles,
        "overlapped_dispatches": over_d["dispatches"],
        "non_pc_changing_dispatches": non_pc,
        "cycles_saved": saved,
        "cycles_saved_per_instruction": saved / instructions,
        "baseline_cpi": point_metrics(baseline)["cpi"],
        "overlapped_cpi": point_metrics(overlapped)["cpi"],
        # §5, exactly: every skipped decode cycle is a non-PC-changing
        # dispatch, and no non-PC-changing dispatch paid for decode.
        "ok": saved == non_pc and saved > 0
            and over_cycles == over_d["pc_change_dispatches"],
    }


def sensitivity(result) -> dict:
    """The full report: one table per axis plus the §5 decode claim."""
    return {
        "spec": result.spec.name,
        "mode": result.spec.mode,
        "instructions": result.spec.instructions,
        "seed": result.spec.seed,
        "workloads": list(result.spec.workloads),
        "axes": [axis_table(result, axis) for axis in result.spec.axes],
        "decode_claim": decode_claim(result),
        "baseline": point_metrics(result.point())
        if result.point() is not None else None,
    }
