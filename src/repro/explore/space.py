"""Declarative sweep specifications over the 11/780's design space.

The paper's §5 costs out engineering changes to the 11/780 on paper —
overlapped decode, fewer stall cycles, fatter IB fills.  A
:class:`SweepSpec` names those what-ifs declaratively: each
:class:`Axis` ranges over one :class:`~repro.params.MachineParams`
field (or over the special ``seed``/``instructions`` axes), and the
spec enumerates concrete simulation :class:`Point`\\ s either
one-factor-at-a-time (the paper's style: vary one thing against the
stock machine) or as a full Cartesian grid.

Every enumerated point is validated eagerly — axis names must be real
parameter fields and each point's :class:`MachineParams` must pass the
geometry checks — so a sweep fails before the first simulation, not
hours into it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product

from repro.machines.registry import (DEFAULT_MACHINE, MachineError,
                                     get_machine, machine_names,
                                     validate_machine)
from repro.params import MachineParams, VAX780
from repro.workloads.registry import (WORKLOADS, find_workload,
                                      paper_workload_names)


class SpaceError(ValueError):
    """An invalid axis name, axis value, or enumerated point."""


#: Axes that parameterize the experiment rather than the machine
#: configuration: the rng seed, the measurement budget, and the machine
#: *backend* (a registry name selecting a whole baseline, against which
#: the parameter axes then apply as overrides).
SPECIAL_AXES = ("seed", "instructions", "machine")

#: The workload selection axis: not a per-point override but a sweep
#: *population* — ``workload=a,b,c`` on the command line replaces the
#: spec's workload set (the facade pops it into ``workloads=``).
WORKLOAD_AXIS = "workload"


def valid_axes() -> tuple:
    """All legal axis names: MachineParams fields plus the special axes."""
    return MachineParams.field_names() + SPECIAL_AXES + (WORKLOAD_AXIS,)


def _check_axis_name(name: str) -> None:
    if name not in valid_axes():
        raise SpaceError(
            f"unknown axis {name!r}; valid axes: "
            f"{', '.join(valid_axes())}")


@dataclass(frozen=True)
class Axis:
    """One named dimension of a sweep and the values it takes."""

    name: str
    values: tuple

    def __post_init__(self) -> None:
        _check_axis_name(self.name)
        object.__setattr__(self, "values", tuple(self.values))
        if not self.values:
            raise SpaceError(f"axis {self.name!r} has no values")
        if len(set(self.values)) != len(self.values):
            raise SpaceError(
                f"axis {self.name!r} repeats a value: {self.values}")


@dataclass(frozen=True)
class Point:
    """One concrete simulation configuration of a sweep.

    ``overrides`` is a sorted tuple of (axis, value) pairs relative to
    the stock machine and the spec's instructions/seed, so equal points
    hash equal and the one-factor-at-a-time baseline is shared between
    axes for free.
    """

    overrides: tuple
    instructions: int
    seed: int
    machine: str = DEFAULT_MACHINE

    @property
    def param_overrides(self) -> dict:
        """The MachineParams-field subset of the overrides."""
        return {name: value for name, value in self.overrides
                if name not in SPECIAL_AXES}

    def params(self) -> MachineParams:
        """The machine configuration this point simulates."""
        base = get_machine(self.machine).params
        return base.with_overrides(**self.param_overrides)

    def label(self) -> str:
        """Human-readable point name, e.g. ``cache_bytes=4096``."""
        parts = []
        if self.machine != DEFAULT_MACHINE:
            parts.append(f"machine={self.machine}")
        parts.extend(f"{name}={value}" for name, value in self.overrides)
        return ",".join(parts) if parts else "baseline"


def _point(overrides: dict, instructions: int, seed: int,
           machine: str = DEFAULT_MACHINE) -> Point:
    instructions = overrides.pop("instructions", instructions)
    seed = overrides.pop("seed", seed)
    machine = overrides.pop("machine", machine)
    try:
        machine = validate_machine(machine)
    except MachineError as exc:
        raise SpaceError(str(exc)) from exc
    # An override equal to the machine's stock value IS that machine's
    # baseline; dropping it makes the shared one-factor-at-a-time
    # baseline point compare equal.
    base = get_machine(machine).params
    overrides = {name: value for name, value in overrides.items()
                 if getattr(base, name) != value}
    point = Point(tuple(sorted(overrides.items())), instructions, seed,
                  machine)
    try:
        point.params()
    except ValueError as exc:
        raise SpaceError(f"invalid point {point.label()}: {exc}") from exc
    return point


@dataclass(frozen=True)
class SweepSpec:
    """A named design-space sweep: axes, enumeration mode, workloads."""

    name: str
    axes: tuple
    #: ``ofat`` (one-factor-at-a-time, the paper's §5 style) or
    #: ``cartesian`` (the full grid).
    mode: str = "ofat"
    instructions: int = 20_000
    seed: int = 1984
    workloads: tuple = field(
        default_factory=paper_workload_names)
    #: The baseline backend every point starts from (a ``machine`` axis
    #: still overrides it point by point).
    machine: str = DEFAULT_MACHINE

    def __post_init__(self) -> None:
        object.__setattr__(self, "axes", tuple(self.axes))
        object.__setattr__(self, "workloads", tuple(self.workloads))
        try:
            object.__setattr__(self, "machine",
                               validate_machine(self.machine))
        except MachineError as exc:
            raise SpaceError(str(exc)) from exc
        if self.mode not in ("ofat", "cartesian"):
            raise SpaceError(
                f"unknown mode {self.mode!r}; use 'ofat' or 'cartesian'")
        seen = set()
        for axis in self.axes:
            if axis.name == WORKLOAD_AXIS:
                raise SpaceError(
                    "the workload axis selects the sweep's workload "
                    "population, not a per-point override; pass "
                    "workloads=(...) instead")
            if axis.name in seen:
                raise SpaceError(f"duplicate axis {axis.name!r}")
            seen.add(axis.name)
        for workload in self.workloads:
            spec = WORKLOADS.get(workload)
            if spec is None:
                raise SpaceError(
                    f"unknown workload {workload!r}; valid workloads: "
                    f"{', '.join(WORKLOADS)}")
            if spec.trace is not None:
                # Pool workers resolve names against the import-time
                # registry, where a runtime-ingested trace does not
                # exist — and a replay is pinned to one budget anyway.
                raise SpaceError(
                    f"trace workload {workload!r} cannot be swept; "
                    "sweep its source generator workload instead")
        if not self.workloads:
            raise SpaceError("spec selects no workloads")
        # Enumerate eagerly so a bad point fails at construction.
        self.points()

    def points(self) -> list:
        """All concrete points, deduplicated, baseline first."""
        baseline = _point({}, self.instructions, self.seed, self.machine)
        points = [baseline]
        seen = {baseline}
        if self.mode == "ofat":
            candidates = ({axis.name: value}
                          for axis in self.axes for value in axis.values)
        else:
            candidates = (dict(zip([a.name for a in self.axes], combo))
                          for combo in product(
                              *[a.values for a in self.axes]))
        for overrides in candidates:
            point = _point(overrides, self.instructions, self.seed,
                           self.machine)
            if point not in seen:
                seen.add(point)
                points.append(point)
        return points


def parse_axis(text: str) -> Axis:
    """Parse a CLI axis spec like ``cache_bytes=4096,8192,16384``.

    Values are coerced to the field's type: integers for the counts and
    sizes, ``true/false/on/off/1/0`` for booleans.  The ``machine``
    axis takes registered machine names, validated eagerly.
    """
    name, sep, values_text = text.partition("=")
    name = name.strip()
    _check_axis_name(name)
    if not sep or not values_text.strip():
        raise SpaceError(
            f"axis {text!r} has no values; expected name=v1,v2,...")
    if name == WORKLOAD_AXIS:
        values = []
        for part in values_text.split(","):
            part = part.strip()
            spec = find_workload(part)
            if spec is None:
                raise SpaceError(
                    f"axis 'workload': {part!r} is not a registered "
                    f"workload; choose from {', '.join(WORKLOADS)}")
            if spec.trace is not None:
                raise SpaceError(
                    f"axis 'workload': trace workload {spec.name!r} "
                    "cannot be swept; sweep its source generator "
                    "workload instead")
            values.append(spec.name)
        return Axis(name, tuple(values))
    if name == "machine":
        values = []
        for part in values_text.split(","):
            part = part.strip()
            try:
                values.append(validate_machine(part))
            except MachineError as exc:
                raise SpaceError(
                    f"axis 'machine': {part!r} is not a registered "
                    f"machine; choose from "
                    f"{', '.join(machine_names())}") from exc
        return Axis(name, tuple(values))
    if name in SPECIAL_AXES:
        kind = int
    else:
        kind = type(getattr(VAX780, name))
    values = []
    for part in values_text.split(","):
        part = part.strip()
        if kind is bool:
            lowered = part.lower()
            if lowered in ("true", "on", "1", "yes"):
                values.append(True)
            elif lowered in ("false", "off", "0", "no"):
                values.append(False)
            else:
                raise SpaceError(
                    f"axis {name!r}: {part!r} is not a boolean")
        elif kind is int:
            try:
                values.append(int(part, 0))
            except ValueError:
                raise SpaceError(
                    f"axis {name!r}: {part!r} is not an integer") from None
        else:
            raise SpaceError(
                f"axis {name!r} ({kind.__name__}) cannot be swept "
                "from the command line")
    return Axis(name, tuple(values))


#: §5's engineering what-ifs, one factor at a time against the stock
#: 11/780: cache size, TB size, write-buffer recycle, read-miss
#: penalty, and the 11/750's overlapped decode.
PAPER_SENSITIVITY = SweepSpec(
    name="paper-sensitivity",
    axes=(
        Axis("cache_bytes", (4 * 1024, 8 * 1024, 16 * 1024)),
        Axis("tb_entries", (64, 128, 256)),
        Axis("write_recycle", (4, 6, 8)),
        Axis("read_miss_penalty", (4, 6, 8)),
        Axis("overlapped_decode", (False, True)),
    ),
    mode="ofat",
    instructions=20_000,
)

#: A tiny fixed sweep for CI and the perf harness: two machine axes
#: (one of them the §5 decode claim) at smoke-test instruction counts.
SMOKE = SweepSpec(
    name="smoke",
    axes=(
        Axis("cache_bytes", (4 * 1024, 8 * 1024)),
        Axis("overlapped_decode", (False, True)),
    ),
    mode="ofat",
    instructions=1_500,
)

#: Named specs addressable from the CLI.
SPECS = {spec.name: spec for spec in (PAPER_SENSITIVITY, SMOKE)}
