"""Content-addressed on-disk store for design-space results.

Every simulated point is stored under a key derived from everything
that determines its outcome: the full :class:`MachineParams`, the
workload name, the instruction budget, the seed, and a digest of the
simulator's own source (the *code version*).  Re-running a sweep
therefore only simulates points the store has never seen — interrupted
sweeps resume for free, and a simulator change silently invalidates
every stale result instead of serving it.

Records are small JSON summaries (cycle counts, histogram totals and
digest, the Table 8 reduction cells, decode/stall counters) rather than
raw histograms: the reduction is linear, so per-workload cells sum into
per-point composites exactly as the paper sums its five histograms.
Writes are atomic (temp file + rename), so a killed sweep never leaves
a truncated record behind.
"""

from __future__ import annotations

import functools
import hashlib
import json
import os
import tempfile
import warnings
from dataclasses import asdict
from pathlib import Path

from repro.obs import metrics
from repro.params import MachineParams

#: Bump when the record layout changes; part of every key.
#: 2: keys and records carry the machine backend name.
SCHEMA = 2


#: Package prefixes and modules excluded from the code-version digest:
#: they observe or present results without shaping them.  Everything
#: else — notably the cycle model and the lockstep batch engine
#: (``batch/``), whose bugs would change stored records — is hashed.
#: ``refute/`` only *reads* simulations (its planted perturbations are
#: installed per-run behind a context manager and never write through
#: a store), so it is excluded like the other observers.
_UNHASHED = (("explore/", "report/", "validate/", "obs/", "serve/",
              "refute/"),
             ("cli.py", "api.py"))


def hashed_paths() -> tuple:
    """Relative source paths the code version digests, sorted.

    Exposed so tests can pin coverage: a result-shaping module (the
    batch engine, say) silently dropping out of the digest would serve
    stale records after the very bug class the digest guards against.
    """
    import repro

    root = Path(repro.__file__).parent
    prefixes, names = _UNHASHED
    return tuple(
        path.relative_to(root).as_posix()
        for path in sorted(root.rglob("*.py"))
        if not (path.relative_to(root).as_posix().startswith(prefixes)
                or path.relative_to(root).as_posix() in names))


@functools.lru_cache(maxsize=1)
def code_version() -> str:
    """Digest of the simulator source that determines stored results.

    Hashes every module of the ``repro`` package except the explore
    subsystem itself, the validation checks, the observability layer,
    the report renderers, the job server, the API facade and the CLI —
    those observe or present results without shaping them, so iterating
    on them keeps a warm store warm.  (The serve layer's own
    canonicalization changes are guarded separately by its
    ``SERVE_SCHEMA`` key component.)  The batch execution engine IS
    hashed: its fused runs produce the stored records, so a
    batch-engine change must invalidate them.
    """
    import repro

    root = Path(repro.__file__).parent
    digest = hashlib.sha256()
    for rel in hashed_paths():
        digest.update(rel.encode())
        digest.update(b"\0")
        digest.update((root / rel).read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()[:16]


def result_key(params: MachineParams, workload: str, instructions: int,
               seed: int, code: str = None,
               machine: str = "vax780") -> str:
    """The content address of one (params, workload, seed) simulation.

    ``machine`` names the backend (see :mod:`repro.machines`): two
    machines can share identical params yet adapt the workload profile
    differently, so the name is part of the address.
    """
    payload = {
        "schema": SCHEMA,
        "code": code_version() if code is None else code,
        "workload": workload,
        "instructions": instructions,
        "seed": seed,
        "machine": machine,
        "params": {name: (list(value) if isinstance(value, tuple)
                          else value)
                   for name, value in asdict(params).items()},
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


class ResultStore:
    """A directory of content-addressed result records.

    Layout: ``<root>/objects/<key[:2]>/<key>.json``.  ``hits`` and
    ``misses`` count lookups since construction, so callers (and the
    warm-store tests) can see exactly how much simulation a sweep
    skipped.
    """

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> Path:
        return self.root / "objects" / key[:2] / f"{key}.json"

    def get(self, key: str):
        """The stored record for ``key``, or None.

        A missing file is an ordinary miss; a file that exists but does
        not parse (truncated by a crash before atomic writes, bit rot,
        hand editing) is a miss that warns *and quarantines* — the file
        is renamed to ``<key>.json.corrupt`` so a poisoned entry is
        re-read (and re-warned about) at most once instead of on every
        subsequent lookup, and the next successful simulation can
        re-populate the key.  Quarantined files are left on disk for
        post-mortem inspection; :meth:`stats` counts them.
        """
        path = self._path(key)
        try:
            with open(path) as handle:
                record = json.load(handle)
        except FileNotFoundError:
            self.misses += 1
            metrics.counter("explore.store.misses").inc()
            return None
        except (OSError, json.JSONDecodeError) as exc:
            quarantined = self._quarantine(path)
            warnings.warn(
                f"discarding unreadable store entry {path}: {exc}"
                + (f" (quarantined as {quarantined.name})"
                   if quarantined else ""), stacklevel=2)
            self.misses += 1
            metrics.counter("explore.store.misses").inc()
            return None
        self.hits += 1
        metrics.counter("explore.store.hits").inc()
        return record

    def _quarantine(self, path: Path):
        """Move an unreadable entry aside; None if the rename failed."""
        target = path.with_name(path.name + ".corrupt")
        try:
            os.replace(path, target)
        except OSError:
            return None
        metrics.counter("explore.store.quarantined").inc()
        return target

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def put(self, key: str, record: dict) -> None:
        """Atomically persist ``record`` under ``key``."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(record, handle, sort_keys=True)
                handle.write("\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
            metrics.counter("explore.store.writes").inc()
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __len__(self) -> int:
        objects = self.root / "objects"
        if not objects.is_dir():
            return 0
        return sum(1 for _ in objects.glob("*/*.json"))

    def stats(self) -> dict:
        """Inventory of the store: entries, bytes, version breakdown.

        ``versions`` buckets entries by the ``schema``/``code`` fields
        recorded inside each record (records predating those fields
        land in the ``"schema=? code=?"`` bucket); ``machines`` buckets
        them by backend (records predating the machine field count as
        ``vax780``, the only backend that existed); ``workloads`` buckets
        them by workload name (composite-level serve records count as
        ``composite``); ``quarantined``
        counts entries :meth:`get` moved aside as unreadable.  Reads
        every record, so this is a reporting call (``repro explore
        --json``, the serve ``/metrics`` endpoint), not a hot-path one.
        """
        entries = 0
        size = 0
        quarantined = 0
        versions: dict = {}
        machines: dict = {}
        workloads: dict = {}
        objects = self.root / "objects"
        if objects.is_dir():
            for path in sorted(objects.glob("*/*")):
                if path.name.endswith(".corrupt"):
                    quarantined += 1
                    continue
                if path.suffix != ".json":
                    continue
                try:
                    text = path.read_text()
                    stat = path.stat()
                except OSError:
                    continue
                entries += 1
                size += stat.st_size
                try:
                    record = json.loads(text)
                except json.JSONDecodeError:
                    label = "unreadable"
                    machine = "unreadable"
                    workload = "unreadable"
                else:
                    label = (f"schema={record.get('schema', '?')} "
                             f"code={record.get('code', '?')}")
                    workload = record.get("workload")
                    if workload is None:
                        # Serve records name it inside the canonical
                        # params ("workload", or "profile" before
                        # SERVE_SCHEMA 3).
                        params = record.get("params")
                        if isinstance(params, dict):
                            workload = params.get("workload") \
                                or params.get("profile")
                    workload = workload or "composite"
                    machine = record.get("machine")
                    if machine is None:
                        # Serve records carry it inside the canonical
                        # params; sweep records predating the field
                        # can only be the 780.
                        params = record.get("params")
                        machine = (params or {}).get("machine") \
                            if isinstance(params, dict) else None
                        machine = machine or "vax780"
                versions[label] = versions.get(label, 0) + 1
                machines[machine] = machines.get(machine, 0) + 1
                workloads[workload] = workloads.get(workload, 0) + 1
        return {"entries": entries, "bytes": size,
                "quarantined": quarantined, "versions": versions,
                "machines": machines, "workloads": workloads}
