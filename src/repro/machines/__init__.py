"""repro.machines: selectable machine backends and the analytical tier.

The registry (:mod:`repro.machines.registry`) names the available
timing backends — the paper's VAX-11/780 and the MicroVAX 78032 subset
machine — and the analytical tier (:mod:`repro.machines.analytical`)
generalizes the microbenchmark busy-cycle model to whole workloads for
instant CPI estimates, validated against the full simulator.
"""

from repro.machines.analytical import (CALIBRATION_ANCHORS, ERROR_BOUND,
                                       EXTRAPOLATION_BOUND,
                                       EXTRAPOLATION_WINDOW,
                                       TRANSIENT_BOUND,
                                       AnalyticalError, CpiEstimate,
                                       WorkloadMix, calibrate,
                                       check_estimate, kernel_mix)
from repro.machines.registry import (DEFAULT_MACHINE, MACHINES,
                                     MachineError, MachineSpec,
                                     get_machine, machine_names,
                                     validate_machine)

__all__ = ["AnalyticalError", "CALIBRATION_ANCHORS", "CpiEstimate",
           "DEFAULT_MACHINE", "ERROR_BOUND", "EXTRAPOLATION_BOUND",
           "EXTRAPOLATION_WINDOW", "TRANSIENT_BOUND",
           "MACHINES", "MachineError", "MachineSpec", "WorkloadMix",
           "calibrate", "check_estimate", "get_machine",
           "kernel_mix", "machine_names", "validate_machine"]
