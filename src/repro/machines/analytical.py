"""Analytical CPI tier: workload estimates without full simulation.

The microbenchmark model (:mod:`repro.ubench.model`) predicts busy
cycles *exactly*, but only for straight-line kernels whose data
dependencies are fixed by construction.  Whole workloads add what no
static model can see: cold-start TB and cache transients, bursty
string/decimal phases, interrupt arrivals.  This module generalizes
the busy-cycle model to workloads with a grey-box calibration:

1. Run the real simulator at a handful of *anchor* budgets (the runs
   go through the memoised workload engine, so anything else that
   needs them shares the cost).
2. Record every Table-8 cell — each (row, column) cycle count — at
   each anchor.  The cumulative cell counts between anchors form a
   piecewise-linear model of cost versus instruction budget; the
   changing slopes capture the cold-start transient, the TB-capacity
   knee of a narrow-TB machine, and the drifting phase mix that defeat
   any single-rate model.
3. Estimate: CPI at any budget inside the calibrated envelope is a
   per-cell interpolation — instant, and carrying the full
   Table-8-style decomposition (rows x stall columns) plus a
   Table-1-style group mix.  Outside the envelope the edge segment's
   slope extends — *explicitly*: the estimate comes back flagged
   ``extrapolated`` under the widened :data:`EXTRAPOLATION_BOUND`,
   and only inside the honor window (:attr:`WorkloadMix.window`);
   beyond it :meth:`WorkloadMix.estimate` raises rather than return a
   number no recorded bound covers.

:func:`kernel_mix` closes the loop with the microbenchmark tier: a
mix built from a kernel is *purely analytical* (no simulation — its
single anchor comes from :func:`repro.ubench.model.predict_kernel`),
and agrees with the ubench model exactly at every copy count;
``tests/machines/test_analytical.py`` pins both that exactness and
the whole-workload error bounds against the simulator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.machines.registry import get_machine

#: Default calibration anchors: five budgets straddling the
#: characterize default (60k), spaced so no interpolation gap exceeds
#: 20k instructions.  Deliberately offset from the budgets anything
#: validates at, so an estimate is never a free lookup of its target.
CALIBRATION_ANCHORS = (10_000, 30_000, 50_000, 70_000, 90_000)

#: Documented per-workload relative error bound of the analytical CPI
#: against a full simulation inside the calibrated envelope.  Recorded
#: from the five paper workloads x both machines (see MACHINES.json);
#: ``tests/machines/test_analytical.py`` holds every workload to it.
ERROR_BOUND = 0.05

#: Documented bound for *extrapolated* estimates — budgets outside the
#: anchor envelope but inside the honor window below.  Recorded from
#: the refute campaign's edge probes (see EXPERIMENTS.md): the worst
#: observed rel err at the window edges is ~0.13, so 0.15 holds with
#: margin while 1.25x already shows ~0.17 failures just beyond it.
EXTRAPOLATION_BOUND = 0.15

#: Extrapolation honor window, as fractions of the first/last anchor:
#: budgets in [0.75 * anchors[0], 1.25 * anchors[-1]] extrapolate with
#: the widened bound; beyond that no bound can be honored and
#: :meth:`WorkloadMix.estimate` refuses rather than guessing.
EXTRAPOLATION_WINDOW = (0.75, 1.25)

#: Documented bound inside the *cold-start segment* — budgets strictly
#: between the first two anchors.  The cache/TB warmup transient makes
#: the cumulative cycle curve concave there, so the linear chord
#: systematically underpredicts; the refute campaign surfaced interior
#: violations up to rel err 0.117 at the segment midpoint (1k/3k
#: anchors, timesharing workloads — see EXPERIMENTS.md) where every
#: later segment honors :data:`ERROR_BOUND`.  0.15 holds the observed
#: worst case with margin and matches the extrapolation bound: both
#: regimes share the same cause, an unamortized transient.
TRANSIENT_BOUND = 0.15


class AnalyticalError(Exception):
    """A mix that cannot be calibrated or estimated."""


@dataclass(frozen=True)
class CpiEstimate:
    """One analytical estimate: total cycles plus the decomposition."""

    workload: str
    machine: str
    instructions: int
    cycles: float
    cpi: float
    #: row name -> estimated cycles per instruction (Table-8 rows).
    row_totals: dict
    #: column name -> estimated cycles per instruction (busy + stalls).
    column_totals: dict
    #: True when the budget fell outside the anchor envelope and the
    #: edge segment's slope was extended (documented degraded accuracy).
    extrapolated: bool = False
    #: True when the budget fell inside the cold-start segment (between
    #: the first two anchors), where the warmup transient degrades the
    #: linear interpolation (see :data:`TRANSIENT_BOUND`).
    transient: bool = False
    #: The relative error bound this estimate is held to:
    #: :data:`ERROR_BOUND` in the amortized envelope,
    #: :data:`TRANSIENT_BOUND` in the cold-start segment,
    #: :data:`EXTRAPOLATION_BOUND` when extrapolated, 0.0 for exact
    #: single-anchor (kernel) mixes.
    error_bound: float = ERROR_BOUND

    def to_json(self) -> dict:
        return {
            "workload": self.workload, "machine": self.machine,
            "instructions": self.instructions,
            "cycles": round(self.cycles, 3), "cpi": round(self.cpi, 6),
            "extrapolated": self.extrapolated,
            "transient": self.transient,
            "error_bound": self.error_bound,
            "rows": {name: round(value, 6)
                     for name, value in sorted(self.row_totals.items())},
            "columns": {name: round(value, 6)
                        for name, value
                        in sorted(self.column_totals.items())},
        }


def _interpolate(anchors, counts, n):
    """Piecewise-linear cumulative count at budget ``n``.

    The implicit origin (0 instructions, 0 cycles) starts the first
    segment; past the last anchor the final segment's slope continues.
    """
    points = ((0, 0.0),) + tuple(zip(anchors, counts))
    for (n1, c1), (n2, c2) in zip(points, points[1:]):
        if n <= n2:
            return c1 + (c2 - c1) * (n - n1) / (n2 - n1)
    (n1, c1), (n2, c2) = points[-2], points[-1]
    return c2 + (c2 - c1) * (n - n2) / (n2 - n1)


@dataclass(frozen=True)
class WorkloadMix:
    """A calibrated workload on one machine: the fitted cell model.

    ``cells`` holds ``(row, column, counts)`` tuples — the cumulative
    cycle count of one Table-8 cell at each anchor budget.
    ``group_mix`` is the Table-1-style share of instructions per
    opcode group at the largest anchor.
    """

    workload: str
    machine: str
    anchors: tuple
    cells: tuple
    group_mix: tuple

    @property
    def steady_cpi(self) -> float:
        """Cycles per instruction over the last calibrated segment."""
        points = (0,) + self.anchors
        span = points[-1] - points[-2]
        return sum((counts[-1] - (counts[-2] if len(counts) > 1 else 0))
                   for _, _, counts in self.cells) / span

    @property
    def envelope(self) -> tuple:
        """The budget range the mix interpolates inside."""
        return (self.anchors[0], self.anchors[-1])

    @property
    def window(self) -> tuple:
        """The budget range estimates are honored inside at all.

        The envelope widened by :data:`EXTRAPOLATION_WINDOW`; outside
        it :meth:`estimate` raises instead of returning a number no
        recorded bound covers.  Single-anchor (kernel) mixes are exact
        linear models, so their window is unbounded.
        """
        if len(self.anchors) < 2:
            return (1, None)
        low, high = EXTRAPOLATION_WINDOW
        return (max(1, math.ceil(self.anchors[0] * low)),
                math.floor(self.anchors[-1] * high))

    def estimate(self, instructions: int,
                 extrapolate: bool = True) -> CpiEstimate:
        """Predicted cycles and decomposition at ``instructions``.

        Budgets inside the anchor envelope interpolate under
        :data:`ERROR_BOUND` — except strictly between the first two
        anchors, the *cold-start segment*, where the warmup transient
        degrades the chord and the estimate comes back flagged
        ``transient`` under :data:`TRANSIENT_BOUND`.  Budgets outside
        the envelope but inside
        :attr:`window` extend the edge segment's slope and come back
        flagged ``extrapolated`` under the widened
        :data:`EXTRAPOLATION_BOUND` (or raise, with
        ``extrapolate=False``).  Budgets outside the window always
        raise: no recorded bound covers them, so the caller must
        recalibrate with anchors that do.
        """
        if instructions <= 0:
            raise AnalyticalError(
                f"estimate needs a positive budget, got {instructions}")
        exact = len(self.anchors) < 2
        extrapolated = not exact and not (
            self.anchors[0] <= instructions <= self.anchors[-1])
        transient = not exact and not extrapolated \
            and self.anchors[0] < instructions < self.anchors[1]
        if extrapolated:
            low, high = self.window
            if not low <= instructions <= high:
                raise AnalyticalError(
                    f"budget {instructions} is outside the honored "
                    f"window [{low}, {high}] of the "
                    f"{self.workload}/{self.machine} calibration "
                    f"(anchors {self.anchors}); recalibrate with "
                    f"anchors that straddle it")
            if not extrapolate:
                raise AnalyticalError(
                    f"budget {instructions} is outside the calibrated "
                    f"envelope {self.envelope} and extrapolation was "
                    f"declined")
        rows: dict = {}
        cols: dict = {}
        total = 0.0
        for row, col, counts in self.cells:
            cycles = max(0.0, _interpolate(self.anchors, counts,
                                           instructions))
            total += cycles
            rows[row] = rows.get(row, 0.0) + cycles / instructions
            cols[col] = cols.get(col, 0.0) + cycles / instructions
        bound = 0.0 if exact else (
            EXTRAPOLATION_BOUND if extrapolated
            else TRANSIENT_BOUND if transient else ERROR_BOUND)
        return CpiEstimate(self.workload, self.machine, instructions,
                           total, total / instructions, rows, cols,
                           extrapolated=extrapolated,
                           transient=transient, error_bound=bound)

    def to_json(self) -> dict:
        return {
            "workload": self.workload, "machine": self.machine,
            "anchors": list(self.anchors),
            "steady_cpi": round(self.steady_cpi, 6),
            "group_mix": {name: round(share, 6)
                          for name, share in self.group_mix},
        }


def _reduction(measurement):
    from repro.analysis.reduction import Reduction

    return Reduction(measurement.histogram)


def _profile(profile):
    from repro.workloads.registry import WorkloadError, get_workload

    if not isinstance(profile, str):
        return profile
    try:
        spec = get_workload(profile)
    except WorkloadError:
        raise AnalyticalError(
            f"unknown workload profile {profile!r}") from None
    if spec.trace is not None:
        raise AnalyticalError(
            f"workload {profile!r} is trace-backed; the analytical "
            "tier calibrates generator profiles only (its anchor runs "
            "need budgets the recording does not carry)")
    return spec.profile


def calibrate(profile, machine: str = None,
              anchors: tuple = CALIBRATION_ANCHORS,
              seed: int = 1984) -> WorkloadMix:
    """Fit a :class:`WorkloadMix` from simulator runs at the anchors.

    ``profile`` is a :class:`~repro.workloads.profiles.MixProfile` (or
    a standard profile's name); the anchor runs go through the
    memoised workload engine, so repeated calibrations — and anything
    else at those budgets — are free after the first.
    """
    from repro.workloads import engine as _engines
    from repro.workloads.registry import WORKLOADS

    profile = _profile(profile)
    machine = get_machine(machine).name
    anchors = tuple(sorted(anchors))
    if not anchors or anchors[0] <= 0 or len(set(anchors)) < 2:
        raise AnalyticalError(
            f"calibration needs at least two distinct positive anchor "
            f"budgets, got {anchors!r}")
    # Registered profiles run by name (the registry is the front door
    # now); ad-hoc MixProfiles — fuzz variants, explore perturbations —
    # still pass through as objects.
    spec = WORKLOADS.get(profile.name)
    workload = profile.name if spec is not None \
        and spec.profile is profile else profile
    reds = [_reduction(_engines.run_workload(workload, n, seed=seed,
                                             machine=machine))
            for n in anchors]
    keys = sorted({key for red in reds for key in red.cells
                   if red.cells[key]},
                  key=lambda key: (key[0].name, key[1].name))
    cells = tuple(
        (row.name, col.name,
         tuple(float(red.cells.get((row, col), 0)) for red in reds))
        for row, col in keys)
    last = reds[-1]
    total = last.instructions or 1
    group_mix = tuple(
        (group.name, last.group_instructions[group] / total)
        for group in sorted(last.group_instructions,
                            key=lambda g: g.name)
        if last.group_instructions[group])
    return WorkloadMix(profile.name, machine, anchors, cells, group_mix)


def kernel_mix(kernel, machine: str = None) -> WorkloadMix:
    """A purely analytical mix for one microbenchmark kernel.

    No simulation: the single anchor comes straight from
    :func:`repro.ubench.model.predict_kernel` with the machine's
    params, so ``kernel_mix(k, m).estimate(c * k.ipc).cycles`` equals
    the ubench model's predicted busy total for ``c`` copies, exactly.
    """
    from repro.arch.opcodes import opcode
    from repro.ubench import model

    spec = get_machine(machine)
    predicted = model.predict_kernel(kernel, spec.params)
    ipc = kernel.ipc
    cells = tuple((bucket, "COMPUTE", (float(predicted[bucket]),))
                  for bucket in model.BUCKETS if predicted[bucket])
    groups: dict = {}
    for instr in kernel.instrs:
        name = opcode(instr.mnemonic).group.name
        groups[name] = groups.get(name, 0) + 1
    group_mix = tuple((name, count / len(kernel.instrs))
                      for name, count in sorted(groups.items()))
    return WorkloadMix(kernel.name, spec.name, (ipc,), cells, group_mix)


def check_estimate(mix: WorkloadMix, instructions: int,
                   seed: int = 1984) -> dict:
    """Confront an analytical estimate with a full simulation.

    Returns the estimate, the simulated CPI, and their relative error —
    the quantity MACHINES.json records per workload and the test suite
    bounds by the estimate's own ``error_bound``
    (:data:`ERROR_BOUND` interpolated, :data:`EXTRAPOLATION_BOUND`
    extrapolated).
    """
    from repro.workloads import engine as _engines

    profile = _profile(mix.workload)
    estimate = mix.estimate(instructions)
    red = _reduction(_engines.run_workload(
        profile, instructions, seed=seed, machine=mix.machine))
    sim_cpi = red.cycles_per_instruction()
    rel_err = abs(estimate.cpi - sim_cpi) / sim_cpi if sim_cpi else 0.0
    return {
        "workload": mix.workload, "machine": mix.machine,
        "instructions": instructions,
        "analytical_cpi": round(estimate.cpi, 6),
        "simulated_cpi": round(sim_cpi, 6),
        "rel_err": round(rel_err, 6),
        "error_bound": estimate.error_bound,
        "extrapolated": estimate.extrapolated,
        "transient": estimate.transient,
        "ok": rel_err <= estimate.error_bound,
        "estimate": estimate,
    }
