"""Analytical CPI tier: workload estimates without full simulation.

The microbenchmark model (:mod:`repro.ubench.model`) predicts busy
cycles *exactly*, but only for straight-line kernels whose data
dependencies are fixed by construction.  Whole workloads add what no
static model can see: cold-start TB and cache transients, bursty
string/decimal phases, interrupt arrivals.  This module generalizes
the busy-cycle model to workloads with a grey-box calibration:

1. Run the real simulator at a handful of *anchor* budgets (the runs
   go through the memoised workload engine, so anything else that
   needs them shares the cost).
2. Record every Table-8 cell — each (row, column) cycle count — at
   each anchor.  The cumulative cell counts between anchors form a
   piecewise-linear model of cost versus instruction budget; the
   changing slopes capture the cold-start transient, the TB-capacity
   knee of a narrow-TB machine, and the drifting phase mix that defeat
   any single-rate model.
3. Estimate: CPI at any budget inside the calibrated envelope is a
   per-cell interpolation — instant, and carrying the full
   Table-8-style decomposition (rows x stall columns) plus a
   Table-1-style group mix.  Beyond the last anchor the last
   segment's slope extrapolates (documented as degraded accuracy).

:func:`kernel_mix` closes the loop with the microbenchmark tier: a
mix built from a kernel is *purely analytical* (no simulation — its
single anchor comes from :func:`repro.ubench.model.predict_kernel`),
and agrees with the ubench model exactly at every copy count;
``tests/machines/test_analytical.py`` pins both that exactness and
the whole-workload error bounds against the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machines.registry import get_machine

#: Default calibration anchors: five budgets straddling the
#: characterize default (60k), spaced so no interpolation gap exceeds
#: 20k instructions.  Deliberately offset from the budgets anything
#: validates at, so an estimate is never a free lookup of its target.
CALIBRATION_ANCHORS = (10_000, 30_000, 50_000, 70_000, 90_000)

#: Documented per-workload relative error bound of the analytical CPI
#: against a full simulation inside the calibrated envelope.  Recorded
#: from the five paper workloads x both machines (see MACHINES.json);
#: ``tests/machines/test_analytical.py`` holds every workload to it.
ERROR_BOUND = 0.05


class AnalyticalError(Exception):
    """A mix that cannot be calibrated or estimated."""


@dataclass(frozen=True)
class CpiEstimate:
    """One analytical estimate: total cycles plus the decomposition."""

    workload: str
    machine: str
    instructions: int
    cycles: float
    cpi: float
    #: row name -> estimated cycles per instruction (Table-8 rows).
    row_totals: dict
    #: column name -> estimated cycles per instruction (busy + stalls).
    column_totals: dict

    def to_json(self) -> dict:
        return {
            "workload": self.workload, "machine": self.machine,
            "instructions": self.instructions,
            "cycles": round(self.cycles, 3), "cpi": round(self.cpi, 6),
            "rows": {name: round(value, 6)
                     for name, value in sorted(self.row_totals.items())},
            "columns": {name: round(value, 6)
                        for name, value
                        in sorted(self.column_totals.items())},
        }


def _interpolate(anchors, counts, n):
    """Piecewise-linear cumulative count at budget ``n``.

    The implicit origin (0 instructions, 0 cycles) starts the first
    segment; past the last anchor the final segment's slope continues.
    """
    points = ((0, 0.0),) + tuple(zip(anchors, counts))
    for (n1, c1), (n2, c2) in zip(points, points[1:]):
        if n <= n2:
            return c1 + (c2 - c1) * (n - n1) / (n2 - n1)
    (n1, c1), (n2, c2) = points[-2], points[-1]
    return c2 + (c2 - c1) * (n - n2) / (n2 - n1)


@dataclass(frozen=True)
class WorkloadMix:
    """A calibrated workload on one machine: the fitted cell model.

    ``cells`` holds ``(row, column, counts)`` tuples — the cumulative
    cycle count of one Table-8 cell at each anchor budget.
    ``group_mix`` is the Table-1-style share of instructions per
    opcode group at the largest anchor.
    """

    workload: str
    machine: str
    anchors: tuple
    cells: tuple
    group_mix: tuple

    @property
    def steady_cpi(self) -> float:
        """Cycles per instruction over the last calibrated segment."""
        points = (0,) + self.anchors
        span = points[-1] - points[-2]
        return sum((counts[-1] - (counts[-2] if len(counts) > 1 else 0))
                   for _, _, counts in self.cells) / span

    @property
    def envelope(self) -> tuple:
        """The budget range the mix interpolates inside."""
        return (self.anchors[0], self.anchors[-1])

    def estimate(self, instructions: int) -> CpiEstimate:
        """Predicted cycles and decomposition at ``instructions``."""
        if instructions <= 0:
            raise AnalyticalError(
                f"estimate needs a positive budget, got {instructions}")
        rows: dict = {}
        cols: dict = {}
        total = 0.0
        for row, col, counts in self.cells:
            cycles = max(0.0, _interpolate(self.anchors, counts,
                                           instructions))
            total += cycles
            rows[row] = rows.get(row, 0.0) + cycles / instructions
            cols[col] = cols.get(col, 0.0) + cycles / instructions
        return CpiEstimate(self.workload, self.machine, instructions,
                           total, total / instructions, rows, cols)

    def to_json(self) -> dict:
        return {
            "workload": self.workload, "machine": self.machine,
            "anchors": list(self.anchors),
            "steady_cpi": round(self.steady_cpi, 6),
            "group_mix": {name: round(share, 6)
                          for name, share in self.group_mix},
        }


def _reduction(measurement):
    from repro.analysis.reduction import Reduction

    return Reduction(measurement.histogram)


def _profile(profile):
    from repro.workloads.profiles import STANDARD_PROFILES

    if not isinstance(profile, str):
        return profile
    for candidate in STANDARD_PROFILES:
        if candidate.name == profile:
            return candidate
    raise AnalyticalError(f"unknown workload profile {profile!r}")


def calibrate(profile, machine: str = None,
              anchors: tuple = CALIBRATION_ANCHORS,
              seed: int = 1984) -> WorkloadMix:
    """Fit a :class:`WorkloadMix` from simulator runs at the anchors.

    ``profile`` is a :class:`~repro.workloads.profiles.MixProfile` (or
    a standard profile's name); the anchor runs go through the
    memoised workload engine, so repeated calibrations — and anything
    else at those budgets — are free after the first.
    """
    from repro.workloads import engine as _engines

    profile = _profile(profile)
    machine = get_machine(machine).name
    anchors = tuple(sorted(anchors))
    if not anchors or anchors[0] <= 0 or len(set(anchors)) < 2:
        raise AnalyticalError(
            f"calibration needs at least two distinct positive anchor "
            f"budgets, got {anchors!r}")
    reds = [_reduction(_engines.run_workload(profile, n, seed=seed,
                                             machine=machine))
            for n in anchors]
    keys = sorted({key for red in reds for key in red.cells
                   if red.cells[key]},
                  key=lambda key: (key[0].name, key[1].name))
    cells = tuple(
        (row.name, col.name,
         tuple(float(red.cells.get((row, col), 0)) for red in reds))
        for row, col in keys)
    last = reds[-1]
    total = last.instructions or 1
    group_mix = tuple(
        (group.name, last.group_instructions[group] / total)
        for group in sorted(last.group_instructions,
                            key=lambda g: g.name)
        if last.group_instructions[group])
    return WorkloadMix(profile.name, machine, anchors, cells, group_mix)


def kernel_mix(kernel, machine: str = None) -> WorkloadMix:
    """A purely analytical mix for one microbenchmark kernel.

    No simulation: the single anchor comes straight from
    :func:`repro.ubench.model.predict_kernel` with the machine's
    params, so ``kernel_mix(k, m).estimate(c * k.ipc).cycles`` equals
    the ubench model's predicted busy total for ``c`` copies, exactly.
    """
    from repro.arch.opcodes import opcode
    from repro.ubench import model

    spec = get_machine(machine)
    predicted = model.predict_kernel(kernel, spec.params)
    ipc = kernel.ipc
    cells = tuple((bucket, "COMPUTE", (float(predicted[bucket]),))
                  for bucket in model.BUCKETS if predicted[bucket])
    groups: dict = {}
    for instr in kernel.instrs:
        name = opcode(instr.mnemonic).group.name
        groups[name] = groups.get(name, 0) + 1
    group_mix = tuple((name, count / len(kernel.instrs))
                      for name, count in sorted(groups.items()))
    return WorkloadMix(kernel.name, spec.name, (ipc,), cells, group_mix)


def check_estimate(mix: WorkloadMix, instructions: int,
                   seed: int = 1984) -> dict:
    """Confront an analytical estimate with a full simulation.

    Returns the estimate, the simulated CPI, and their relative error —
    the quantity MACHINES.json records per workload and the test suite
    bounds by :data:`ERROR_BOUND`.
    """
    from repro.workloads import engine as _engines

    profile = _profile(mix.workload)
    estimate = mix.estimate(instructions)
    red = _reduction(_engines.run_workload(
        profile, instructions, seed=seed, machine=mix.machine))
    sim_cpi = red.cycles_per_instruction()
    rel_err = abs(estimate.cpi - sim_cpi) / sim_cpi if sim_cpi else 0.0
    return {
        "workload": mix.workload, "machine": mix.machine,
        "instructions": instructions,
        "analytical_cpi": round(estimate.cpi, 6),
        "simulated_cpi": round(sim_cpi, 6),
        "rel_err": round(rel_err, 6),
        "ok": rel_err <= ERROR_BOUND,
        "estimate": estimate,
    }
