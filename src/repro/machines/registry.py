"""The machine registry: named, selectable timing backends.

A :class:`MachineSpec` binds a machine name to everything that makes it
a distinct backend: its :class:`~repro.params.MachineParams` defaults
(the timing policy is entirely params-driven — the simulator core in
:mod:`repro.cpu` consults the params rather than forking per machine),
the executor families it implements, and the workload-profile
adaptation a subset machine needs (a generator must not emit
instructions the machine refuses).

Two machines ship:

``vax780``
    The paper's machine — the existing simulator, bit-identical to the
    pre-registry code path.

``uvax78032``
    The MicroVAX 78032 single-chip subset VAX (the grey-box exemplar in
    SNIPPETS.md, nominal CPI ~5.5): no autonomous I-Fetch/IB engine
    (fetch time folds into per-group base cycles), no overlapped
    decode, no microcode patches, a narrow TB, local memory with a
    short miss penalty instead of an SBI, per-group extra base cycles,
    and no packed-decimal or non-MOVC character microcode.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.params import MachineParams, VAX780 as VAX780_PARAMS


class MachineError(ValueError):
    """An unknown machine name (callers map this to their error type)."""


@dataclass(frozen=True)
class MachineSpec:
    """One registered machine backend."""

    name: str
    description: str
    params: MachineParams
    #: (field, value) pairs applied to every workload profile so the
    #: generator never emits an instruction the machine refuses.
    profile_overrides: tuple = ()
    #: Headline CPI from the literature, for report labels.
    cpi_nominal: float = 0.0

    def build(self, params: MachineParams = None):
        """A fresh simulator for this machine (optionally overridden).

        ``params`` defaults to the spec's own; an explorer sweeping an
        axis passes ``spec.params.with_overrides(...)`` instead.
        """
        from repro.cpu.machine import VAX780

        return VAX780(self.params if params is None else params,
                      name=self.name)

    def adapt_profile(self, profile):
        """``profile`` restricted to this machine's instruction subset."""
        if not self.profile_overrides:
            return profile
        return replace(profile, **dict(self.profile_overrides))

    @property
    def subset(self) -> bool:
        """Whether the machine implements only a subset of the ISA."""
        return bool(self.params.unsupported_families)


#: The 78032's per-group base-cycle surcharge (grey-box calibrated —
#: see EXPERIMENTS.md): the longer microflows of the single-chip
#: datapath, folded into the execute rows per instruction group.
#: Calibrated so the five-workload composite at the characterize
#: default budget lands at the chip's published ~5.5 CPI.
_UVAX_EXTRA_CYCLES = (
    ("FIELD", 1),
    ("FLOAT", 2),
    ("CALLRET", 2),
    ("SYSTEM", 2),
    ("CHARACTER", 2),
)

#: Executor families outside the 78032's base microcode: all packed
#: decimal, and every character-string family except the MOVC forms.
_UVAX_UNSUPPORTED = (
    "CMPC", "LOCC", "SCANC", "MOVTC",
    "MOVP", "CMPP", "ADDP", "CVTLP", "CVTPL",
)

UVAX78032_PARAMS = MachineParams(
    # On-chip there is no SBI and no backing cache: a two-block store
    # stands in for the chip's longword buffers, and local memory
    # answers within the access cycle (no separate stall penalty —
    # the chip's slower datapath shows up in exec_extra_cycles
    # instead).
    cache_bytes=16,
    read_miss_penalty=0,
    write_recycle=0,
    tb_entries=64,
    overlapped_decode=False,
    patched_families=(),
    ib_prefetch=False,
    exec_extra_cycles=_UVAX_EXTRA_CYCLES,
    unsupported_families=_UVAX_UNSUPPORTED,
)

MACHINES = {
    "vax780": MachineSpec(
        name="vax780",
        description="VAX-11/780: the paper's machine "
                    "(prefetching IB, 8 KB cache, SBI memory)",
        params=VAX780_PARAMS,
        cpi_nominal=10.6,
    ),
    "uvax78032": MachineSpec(
        name="uvax78032",
        description="MicroVAX 78032: single-chip subset VAX "
                    "(no IB engine, narrow TB, local memory)",
        params=UVAX78032_PARAMS,
        profile_overrides=(
            ("decimal_ops", 0.0),
            ("char_opcodes", ("MOVC3", "MOVC5")),
        ),
        cpi_nominal=5.5,
    ),
}

#: The default backend everywhere a machine is not named.
DEFAULT_MACHINE = "vax780"


def machine_names() -> tuple:
    """Registered machine names, in registration order."""
    return tuple(MACHINES)


def validate_machine(name) -> str:
    """Resolve a machine argument; ``None`` means the default.

    Unknown names raise :class:`MachineError` listing the registry —
    the same pre-validation contract as engines and sweep axes.
    """
    if name is None:
        return DEFAULT_MACHINE
    if name not in MACHINES:
        raise MachineError(
            f"unknown machine {name!r}; choose from "
            f"{', '.join(MACHINES)}")
    return name


def get_machine(name) -> MachineSpec:
    """The :class:`MachineSpec` for ``name`` (``None`` = default)."""
    return MACHINES[validate_machine(name)]
