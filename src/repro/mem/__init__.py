"""Memory subsystem: physical memory, cache, write buffer and SBI."""

from repro.mem.cache import Cache, CacheStats, D_STREAM, I_STREAM
from repro.mem.physmem import MemoryError780, PhysicalMemory
from repro.mem.sbi import SBI
from repro.mem.subsystem import AccessResult, MemorySubsystem
from repro.mem.writebuffer import WriteBuffer

__all__ = ["Cache", "CacheStats", "D_STREAM", "I_STREAM", "MemoryError780",
           "PhysicalMemory", "SBI", "AccessResult", "MemorySubsystem",
           "WriteBuffer"]
