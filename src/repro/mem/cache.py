"""The 11/780 data/instruction cache timing model.

An 8 KB, two-way set-associative, write-through, no-write-allocate cache
with 8-byte blocks and random replacement (per Clark's companion cache
study, reference [2] of the paper).  Both the EBOX D-stream and the
I-Fetch unit reference it.

Only *tags* are modeled: write-through means physical memory always holds
current data, so the cache's sole job in this simulator is deciding hit
versus miss.  Statistics are kept per stream so the §4 event benchmarks
can report I-stream and D-stream miss rates separately.
"""

from __future__ import annotations

import random

#: Stream tags for statistics.
D_STREAM = "d"
I_STREAM = "i"


class CacheStats:
    """Hit/miss counters per stream, plus write statistics."""

    __slots__ = ("read_hits", "read_misses", "write_hits", "write_misses")

    def __init__(self) -> None:
        self.read_hits = {D_STREAM: 0, I_STREAM: 0}
        self.read_misses = {D_STREAM: 0, I_STREAM: 0}
        self.write_hits = 0
        self.write_misses = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.__init__()

    def read_miss_rate(self, stream: str) -> float:
        """Fraction of reads from ``stream`` that missed."""
        total = self.read_hits[stream] + self.read_misses[stream]
        if total == 0:
            return 0.0
        return self.read_misses[stream] / total


class Cache:
    """Set-associative tag store with random replacement."""

    def __init__(self, size_bytes: int, ways: int, block_bytes: int,
                 seed: int = 780) -> None:
        if size_bytes % (ways * block_bytes):
            raise ValueError("cache size must be a multiple of ways * block")
        self.block_bytes = block_bytes
        self.ways = ways
        self.sets = size_bytes // (ways * block_bytes)
        self._block_shift = block_bytes.bit_length() - 1
        if 1 << self._block_shift != block_bytes:
            raise ValueError("block size must be a power of two")
        self._set_mask = self.sets - 1
        if self.sets & self._set_mask:
            raise ValueError("set count must be a power of two")
        #: tag arrays: _tags[way][set]; -1 means invalid.
        self._tags = [[-1] * self.sets for _ in range(ways)]
        self._tag_shift = self.sets.bit_length() - 1
        #: Flat mirror of the tag store: the set of resident block
        #: numbers.  A read hit has no effect on the tag arrays
        #: (replacement is random, drawn only on a miss), so membership
        #: here is exactly an associative hit; every mutation updates
        #: both structures.
        self._resident = set()
        self._rng = random.Random(seed)
        self.stats = CacheStats()

    def invalidate(self) -> None:
        """Flush the whole cache (power-up or explicit flush)."""
        for way in self._tags:
            for i in range(self.sets):
                way[i] = -1
        self._resident.clear()

    def _locate(self, paddr: int):
        block = paddr >> self._block_shift
        index = block & self._set_mask
        tag = block >> self._tag_shift
        return index, tag

    def read(self, paddr: int, stream: str) -> bool:
        """Look up a read; allocate on miss.  Returns True on hit."""
        block = paddr >> self._block_shift
        stats = self.stats
        if block in self._resident:
            stats.read_hits[stream] += 1
            return True
        stats.read_misses[stream] += 1
        index = block & self._set_mask
        victim_way = self._tags[self._rng.randrange(self.ways)]
        old_tag = victim_way[index]
        if old_tag != -1:
            self._resident.discard((old_tag << self._tag_shift) | index)
        victim_way[index] = block >> self._tag_shift
        self._resident.add(block)
        return False

    def write(self, paddr: int) -> bool:
        """Look up a write.  Write-through, no-write-allocate: the tag
        store is unchanged on a miss (§2.1: "if the write access misses,
        the cache is not updated").  Returns True on hit."""
        if (paddr >> self._block_shift) in self._resident:
            self.stats.write_hits += 1
            return True
        self.stats.write_misses += 1
        return False

    def probe(self, paddr: int) -> bool:
        """Non-allocating lookup (no statistics), for tests and analysis."""
        index, tag = self._locate(paddr)
        return any(way[index] == tag for way in self._tags)
