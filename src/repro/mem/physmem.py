"""Physical memory: a flat little-endian byte store.

Because the 780's cache is write-through, memory always holds the current
value of every location; the cache model (:mod:`repro.mem.cache`) only
tracks *timing* state (tags), and all data reads and writes land here.
"""

from __future__ import annotations


class MemoryError780(Exception):
    """Raised for accesses outside the configured physical memory."""


class PhysicalMemory:
    """A flat physical memory of ``size`` bytes."""

    def __init__(self, size: int) -> None:
        self.size = size
        self._data = bytearray(size)

    def load_image(self, base: int, data: bytes) -> None:
        """Copy an assembled image (or any bytes) into memory at ``base``."""
        end = base + len(data)
        if end > self.size:
            raise MemoryError780(
                f"image [{base:#x}, {end:#x}) exceeds memory size "
                f"{self.size:#x}")
        self._data[base:end] = data

    def read_byte(self, addr: int) -> int:
        """Read one byte."""
        if addr >= self.size:
            raise MemoryError780(f"read past end of memory: {addr:#x}")
        return self._data[addr]

    def read(self, addr: int, size: int) -> int:
        """Read ``size`` bytes little-endian as an unsigned integer."""
        if addr + size > self.size:
            raise MemoryError780(f"read past end of memory: {addr:#x}")
        return int.from_bytes(self._data[addr:addr + size], "little")

    def write(self, addr: int, value: int, size: int) -> None:
        """Write ``size`` bytes little-endian."""
        if addr + size > self.size:
            raise MemoryError780(f"write past end of memory: {addr:#x}")
        self._data[addr:addr + size] = (value & ((1 << (8 * size)) - 1)) \
            .to_bytes(size, "little")

    def read_block(self, addr: int, size: int) -> bytes:
        """Read a raw byte range (used by tests and the loader)."""
        return bytes(self._data[addr:addr + size])
