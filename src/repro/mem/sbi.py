"""The Synchronous Backplane Interconnect (SBI) timing model.

Cache read misses and buffered writes travel over the SBI to memory.  The
model serialises transactions: a new transaction starts no earlier than
the completion of the previous one, so an EBOX read miss issued while an
I-stream fill or a buffered write is in flight stalls for longer than the
6-cycle simplest case — exactly the "concurrent memory activity of other
types" caveat of §4.3.
"""

from __future__ import annotations


class SBI:
    """Serialised bus with a busy-until horizon measured in cycles."""

    def __init__(self, read_cycles: int, write_cycles: int) -> None:
        self.read_cycles = read_cycles
        self.write_cycles = write_cycles
        self.busy_until = 0
        self.read_transactions = 0
        self.write_transactions = 0

    def reset_stats(self) -> None:
        """Zero the transaction counters (bus state is preserved)."""
        self.read_transactions = 0
        self.write_transactions = 0

    def read_transaction(self, now: int) -> int:
        """Start a memory read at ``now``; return the data-ready cycle."""
        start = now if now > self.busy_until else self.busy_until
        ready = start + self.read_cycles
        self.busy_until = ready
        self.read_transactions += 1
        return ready

    def write_transaction(self, now: int) -> int:
        """Start a memory write at ``now``; return its completion cycle."""
        start = now if now > self.busy_until else self.busy_until
        done = start + self.write_cycles
        self.busy_until = done
        self.write_transactions += 1
        return done
