"""The composed 11/780 memory subsystem: cache + write buffer + SBI.

The CPU sees three operations, matching Figure 1's structure:

* :meth:`MemorySubsystem.read_data` — an EBOX D-stream read of up to one
  longword.  Hits cost nothing beyond the read microcycle; misses stall
  the EBOX until the SBI delivers the block.  Accesses that straddle an
  aligned longword take two physical references (§3.3.1).
* :meth:`MemorySubsystem.write_data` — an EBOX write through the
  write buffer; stalls only when the buffer is still draining.
* :meth:`MemorySubsystem.ifetch` — an I-Fetch longword read on behalf of
  the instruction buffer.  Never stalls the EBOX directly; returns the
  cycle at which the bytes arrive so the IB model can raise IB stalls.

All data lives in :class:`~repro.mem.physmem.PhysicalMemory`; the cache is
a pure timing structure (write-through keeps memory current).
"""

from __future__ import annotations

from repro.mem.cache import Cache, D_STREAM, I_STREAM
from repro.mem.physmem import PhysicalMemory
from repro.mem.sbi import SBI
from repro.mem.writebuffer import WriteBuffer
from repro.params import MachineParams


class AccessResult:
    """Outcome of a data-stream access.

    Attributes:
        value: datum read (0 for writes).
        stall_cycles: EBOX stall cycles charged to the accessing µPC.
        physical_refs: number of physical references made (2 for an
            access that straddles an aligned longword).
        missed: True if any physical reference missed the cache.
    """

    __slots__ = ("value", "stall_cycles", "physical_refs", "missed")

    def __init__(self, value: int, stall_cycles: int, physical_refs: int,
                 missed: bool) -> None:
        self.value = value
        self.stall_cycles = stall_cycles
        self.physical_refs = physical_refs
        self.missed = missed


class MemorySubsystem:
    """Cache, write buffer, SBI and physical memory, wired as in Figure 1."""

    def __init__(self, params: MachineParams) -> None:
        self.params = params
        self.memory = PhysicalMemory(params.memory_bytes)
        self.cache = Cache(params.cache_bytes, params.cache_ways,
                           params.cache_block_bytes)
        self.sbi = SBI(read_cycles=params.read_miss_penalty,
                       write_cycles=params.write_recycle)
        self.write_buffer = WriteBuffer(self.sbi,
                                        depth=params.write_buffer_depth)
        #: D-stream reads/writes that needed two physical references.
        self.unaligned_reads = 0
        self.unaligned_writes = 0

    # -- EBOX data stream ---------------------------------------------------

    def read_data(self, paddr: int, size: int, now: int) -> AccessResult:
        """EBOX read of ``size`` (1, 2 or 4) bytes at physical ``paddr``."""
        first = paddr >> 2
        last = (paddr + size - 1) >> 2
        if first == last:
            # Aligned within one longword: one reference, and on a cache
            # hit no stall — the overwhelmingly common case.
            if self.cache.read(paddr & ~3, D_STREAM):
                return AccessResult(self.memory.read(paddr, size), 0, 1,
                                    False)
            ready = self.sbi.read_transaction(now)
            return AccessResult(self.memory.read(paddr, size),
                                ready - now, 1, True)
        refs = last - first + 1
        self.unaligned_reads += 1
        stall = 0
        missed = False
        when = now
        for lw in range(first, last + 1):
            if not self.cache.read(lw << 2, D_STREAM):
                ready = self.sbi.read_transaction(when)
                stall += ready - when
                when = ready
                missed = True
            else:
                when += 1
        value = self.memory.read(paddr, size)
        return AccessResult(value, stall, refs, missed)

    def write_data(self, paddr: int, value: int, size: int,
                   now: int) -> AccessResult:
        """EBOX write of ``size`` bytes through the write buffer."""
        first = paddr >> 2
        last = (paddr + size - 1) >> 2
        if first == last:
            self.cache.write(paddr & ~3)
            stall = self.write_buffer.issue(now)
            self.memory.write(paddr, value, size)
            return AccessResult(0, stall, 1, False)
        refs = last - first + 1
        self.unaligned_writes += 1
        stall = 0
        when = now
        for lw in range(first, last + 1):
            self.cache.write(lw << 2)
            stall += self.write_buffer.issue(when)
            when = now + stall + 1
        self.memory.write(paddr, value, size)
        return AccessResult(0, stall, refs, False)

    # -- I-stream ------------------------------------------------------------

    def ifetch(self, paddr: int, now: int) -> int:
        """I-Fetch aligned-longword read; returns the data-ready cycle."""
        if self.cache.read(paddr & ~3, I_STREAM):
            return now + 1
        return self.sbi.read_transaction(now)

    # -- untimed access for loaders, the kernel model and tests ---------------

    def load_image(self, base: int, data: bytes) -> None:
        """Copy bytes into physical memory without touching timing state."""
        self.memory.load_image(base, data)

    def debug_read(self, paddr: int, size: int) -> int:
        """Untimed physical read."""
        return self.memory.read(paddr, size)

    def debug_write(self, paddr: int, value: int, size: int) -> None:
        """Untimed physical write."""
        self.memory.write(paddr, value, size)

    def reset_stats(self) -> None:
        """Zero all statistics (cache, SBI, write buffer, alignment)."""
        self.cache.stats.reset()
        self.sbi.reset_stats()
        self.write_buffer.reset_stats()
        self.unaligned_reads = 0
        self.unaligned_writes = 0
