"""The 11/780's one-longword write buffer.

Data writes are write-through: the EBOX deposits the datum in a 4-byte
buffer in one cycle and continues; the buffer drains to memory over the
SBI.  A write issued while the previous one is still draining stalls the
EBOX until the buffer frees — the *write stall* of §2.1/§4.3.  In the
simplest case the recycle time is 6 cycles.
"""

from __future__ import annotations

from repro.mem.sbi import SBI


class WriteBuffer:
    """Models buffer occupancy; depth 1 matches the real machine."""

    def __init__(self, sbi: SBI, depth: int = 1) -> None:
        self._sbi = sbi
        self.depth = depth
        #: completion cycles of in-flight buffered writes, oldest first.
        self._in_flight: list = []
        self.writes = 0
        self.stall_cycles = 0

    def reset_stats(self) -> None:
        """Zero the statistics counters."""
        self.writes = 0
        self.stall_cycles = 0

    def issue(self, now: int) -> int:
        """Issue a write at cycle ``now``; return EBOX stall cycles.

        The EBOX spends one (non-stalled) cycle initiating the write; the
        returned value is the number of *additional* stalled cycles spent
        waiting for buffer space.
        """
        inflight = self._in_flight
        n = len(inflight)
        i = 0
        while i < n and inflight[i] <= now:
            i += 1
        if i:
            del inflight[:i]
            n -= i
        stall = 0
        if n >= self.depth:
            free_at = inflight[n - self.depth]
            stall = free_at - now
            now = free_at
            i = 0
            while i < n and inflight[i] <= now:
                i += 1
            if i:
                del inflight[:i]
        done = self._sbi.write_transaction(now)
        inflight.append(done)
        self.writes += 1
        self.stall_cycles += stall
        return stall
