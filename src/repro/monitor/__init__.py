"""The µPC histogram monitor: board, Unibus interface, sessions."""

from repro.monitor.histogram import Histogram, HistogramBoard
from repro.monitor.session import (CounterSaturation, MeasurementSession)
from repro.monitor.unibus import (CSR_CLEAR, CSR_RUN, CSR_SELECT_STALL,
                                  UnibusHistogramInterface)

__all__ = ["Histogram", "HistogramBoard", "CSR_CLEAR", "CSR_RUN",
           "CSR_SELECT_STALL", "UnibusHistogramInterface",
           "CounterSaturation", "MeasurementSession"]
