"""The µPC histogram board (the paper's novel instrument, §2.2).

A general-purpose histogram count board with 16,000-odd addressable count
locations, incremented at microcode execution rate.  The board keeps *two*
sets of counts (§4.3): one for non-stalled microinstructions and one for
read-/write-stalled cycles, so that the non-stalled count at address X is
the number of successful executions of the microinstruction at X while the
stalled count at X is the number of cycles that microinstruction spent
stalled.

IB-stall cycles are not a separate count set: the decode hardware
dispatches to a distinct "insufficient bytes" microaddress, and the number
of executions of *that* microinstruction is the IB-stall cycle count — the
board just sees them as ordinary executions (§4.3).

The board is passive: counting has no effect on simulated time.
"""

from __future__ import annotations

import operator
from array import array

from repro.ucode.controlstore import CONTROL_STORE_SIZE

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the toolchain
    _np = None


class Histogram:
    """An immutable-ish snapshot of the two count sets.

    Snapshots support addition, which is how the paper's *composite*
    workload is formed: "the sum of the five µPC histograms" (§2.2).
    The count sets are ``array('q')`` (signed 64-bit, like the board's
    count locations) so that summation and totals run at C speed; the
    live :class:`HistogramBoard` keeps plain lists, which are faster for
    the single-bucket increments the µPC lines drive.
    """

    __slots__ = ("nonstalled", "stalled")

    def __init__(self, nonstalled, stalled) -> None:
        self.nonstalled = array("q", nonstalled)
        self.stalled = array("q", stalled)

    def __add__(self, other: "Histogram") -> "Histogram":
        if len(self.nonstalled) != len(other.nonstalled):
            raise ValueError("cannot sum histograms of different sizes")
        if _np is not None:
            out = Histogram.__new__(Histogram)
            ns = _np.frombuffer(self.nonstalled, dtype=_np.int64) \
                + _np.frombuffer(other.nonstalled, dtype=_np.int64)
            st = _np.frombuffer(self.stalled, dtype=_np.int64) \
                + _np.frombuffer(other.stalled, dtype=_np.int64)
            nsa = array("q")
            nsa.frombytes(ns.tobytes())
            sta = array("q")
            sta.frombytes(st.tobytes())
            out.nonstalled = nsa
            out.stalled = sta
            return out
        return Histogram(
            map(operator.add, self.nonstalled, other.nonstalled),
            map(operator.add, self.stalled, other.stalled))

    @property
    def size(self) -> int:
        """Number of buckets."""
        return len(self.nonstalled)

    def total_cycles(self) -> int:
        """All counted cycles: executions plus stall cycles."""
        if _np is not None:
            return int(_np.frombuffer(self.nonstalled, dtype=_np.int64)
                       .sum()
                       + _np.frombuffer(self.stalled, dtype=_np.int64)
                       .sum())
        return sum(self.nonstalled) + sum(self.stalled)

    def executions(self, address: int) -> int:
        """Non-stalled count at ``address``."""
        return self.nonstalled[address]

    def stall_cycles(self, address: int) -> int:
        """Stalled count at ``address``."""
        return self.stalled[address]


class HistogramBoard:
    """The live count board attached to the processor's µPC lines."""

    def __init__(self, size: int = CONTROL_STORE_SIZE) -> None:
        self.size = size
        self.nonstalled = [0] * size
        self.stalled = [0] * size
        #: Counting gate.  The measurement session clears this while the
        #: Null process runs, reproducing the paper's exclusion of Null.
        self.enabled = True

    def count(self, address: int, n: int = 1) -> None:
        """Record ``n`` non-stalled executions at ``address``."""
        if self.enabled:
            self.nonstalled[address] += n

    def count_stall(self, address: int, cycles: int) -> None:
        """Record ``cycles`` stalled cycles at ``address``."""
        if self.enabled and cycles:
            self.stalled[address] += cycles

    def clear(self) -> None:
        """Zero both count sets (Unibus clear command)."""
        for i in range(self.size):
            self.nonstalled[i] = 0
            self.stalled[i] = 0

    def snapshot(self) -> Histogram:
        """Read out both count sets."""
        return Histogram(self.nonstalled, self.stalled)
