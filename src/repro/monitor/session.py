"""Measurement sessions: the workflow the original experimenters ran.

A :class:`MeasurementSession` drives the histogram board through its
Unibus interface the way the 1984 data-collection software did — clear,
start, (run the workload), stop, read out — and produces the
:class:`~repro.analysis.measurement.Measurement` the analysis consumes.

The paper notes the counters could absorb "1 to 2 hours of heavy
processing"; the session models that capacity limit and reports
saturation rather than silently wrapping.
"""

from __future__ import annotations

from repro import obs
from repro.analysis.measurement import (Measurement, MemoryStats,
                                        TracerStats)
from repro.monitor.histogram import Histogram
from repro.monitor.unibus import CSR_CLEAR, CSR_RUN, UnibusHistogramInterface

#: Counter width of the board (modeled; generous for simulated runs).
COUNTER_LIMIT = 1 << 32


class CounterSaturation(Exception):
    """A histogram bucket exceeded the board's counter capacity."""


class MeasurementSession:
    """Start/stop/readout lifecycle around one measured run."""

    def __init__(self, machine, name: str = "session") -> None:
        self.machine = machine
        self.name = name
        self.interface = UnibusHistogramInterface(machine.board)
        self._running = False
        self._start_cycles = 0

    def start(self) -> None:
        """Clear the counters and open the measurement gate."""
        self.interface.write_csr(CSR_CLEAR | CSR_RUN)
        self.machine.tracer.__init__()
        self.machine.mem.reset_stats()
        self.machine.tb.stats.reset()
        self.machine.ebox.ib.reset_stats()
        self._start_cycles = self.machine.cycles
        self._running = True
        obs.emit("measurement_started", name=self.name,
                 cycles=self._start_cycles)

    def stop(self) -> Measurement:
        """Close the gate, read the board out, and capture everything."""
        if not self._running:
            raise RuntimeError(
                f"measurement session {self.name!r} was not started: "
                "call start() (or use the session as a context manager) "
                "before stop()")
        self.interface.write_csr(0)
        self._running = False
        self.machine.tracer.settle_gate(self.machine.cycles)
        nonstalled = self.interface.read_all(stalled=False)
        stalled = self.interface.read_all(stalled=True)
        for count in nonstalled + stalled:
            if count >= COUNTER_LIMIT:
                raise CounterSaturation(
                    f"a histogram counter saturated at {count}")
        histogram = Histogram(nonstalled, stalled)
        measurement = Measurement(self.name, histogram,
                                  TracerStats(self.machine.tracer),
                                  MemoryStats(self.machine),
                                  self.machine.cycles - self._start_cycles)
        obs.emit("measurement_finished", name=self.name,
                 cycles=measurement.cycles)
        return measurement

    def __enter__(self) -> "MeasurementSession":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._running and exc_type is None:
            self.result = self.stop()
        elif self._running:
            self.interface.write_csr(0)
            self._running = False
        return False
