"""Unibus device interface to the histogram board.

The real board was a Unibus device: Unibus commands start and stop data
collection, clear the counters, and read the buckets out (§2.2) —
conveniently installed on the measured 11/780 itself.  This module models
that register-level interface: a control/status register plus an
address/data window for readout.  It exists for fidelity (and so the
measurement-session code drives the board the way the original software
did); simulation code may also use the board object directly.
"""

from __future__ import annotations

from repro.monitor.histogram import HistogramBoard

#: CSR bit assignments.
CSR_RUN = 0x0001      # counting enabled
CSR_CLEAR = 0x0002    # write-1-to-clear, self-clearing
CSR_SELECT_STALL = 0x0004  # readout window selects the stalled count set


class UnibusHistogramInterface:
    """Register-level access to a :class:`HistogramBoard`."""

    def __init__(self, board: HistogramBoard) -> None:
        self.board = board
        self._csr = 0
        self._address = 0

    # -- control/status register -----------------------------------------

    def write_csr(self, value: int) -> None:
        """Write the CSR: RUN gates counting, CLEAR zeroes the counts."""
        if value & CSR_CLEAR:
            self.board.clear()
        self._csr = value & (CSR_RUN | CSR_SELECT_STALL)
        self.board.enabled = bool(value & CSR_RUN)

    def read_csr(self) -> int:
        """Read back the CSR."""
        return self._csr | (CSR_RUN if self.board.enabled else 0)

    # -- bucket readout ----------------------------------------------------

    def write_address(self, address: int) -> None:
        """Select the bucket for the next data read."""
        if not 0 <= address < self.board.size:
            raise ValueError(f"bucket address out of range: {address}")
        self._address = address

    def read_data(self) -> int:
        """Read the selected bucket from the selected count set."""
        if self._csr & CSR_SELECT_STALL:
            return self.board.stalled[self._address]
        return self.board.nonstalled[self._address]

    def read_all(self, stalled: bool = False):
        """Block read of a whole count set (the data-reduction path)."""
        return list(self.board.stalled if stalled else self.board.nonstalled)
