"""repro.obs: run-time observability for the reproduction itself.

The paper's µPC histogram board watches the *machine* without
perturbing it; this package applies the same discipline to the
*reproduction* — a long characterization, sweep, microbenchmark or fuzz
campaign becomes observable while it runs, with contractually zero
effect on what it counts (``tests/obs`` pins an observed composite to
the same 2,082,708 cycles as an unobserved one).

Three instruments, one lifecycle:

* a process-wide **metrics registry** (:mod:`repro.obs.metrics`) every
  subsystem registers counters/gauges/timers into, snapshot-able at any
  time and merged across pool workers;
* a structured **event tracer** (:mod:`repro.obs.events`) streaming
  JSONL lifecycle events, with an adaptive instruction-boundary
  progress sampler and a heartbeat thread;
* **exporters** (:mod:`repro.obs.export`) that shape the stream into a
  Chrome/Perfetto trace, a Table-8 cycle flamegraph, and plain-text
  liveness lines.

Usage — the CLI's ``--obs DIR [--heartbeat SECS]`` does exactly this::

    from repro import api, obs

    with obs.observe("out/", heartbeat=10, label="characterize"):
        result = api.characterize(instructions=60_000)
    # out/ now holds events.jsonl, trace.json, metrics.json,
    # flamegraph.collapsed

Library code reports through the module-level :func:`emit`, which is a
cheap no-op unless an observation is active, so instrumented hot-ish
paths cost one attribute test when nobody is watching.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.obs import metrics
from repro.obs.events import EventTracer, Heartbeat, ProgressSampler
from repro.obs.export import chrome_trace, flamegraph, heartbeat_line

__all__ = ["Observation", "observe", "active", "emit", "metrics",
           "EventTracer", "Heartbeat", "ProgressSampler",
           "chrome_trace", "flamegraph", "heartbeat_line"]

#: The active observation, or None.  One at a time: observations nest
#: by saving/restoring, but emit() only sees the innermost.
_ACTIVE = None


class Observation:
    """One observed run: an event stream, the registry, exporters.

    Entering the context activates module-level :func:`emit` routing
    and the heartbeat; leaving it writes ``metrics.json``,
    ``trace.json`` and ``flamegraph.collapsed`` next to the live
    ``events.jsonl`` (when a directory was given) and deactivates.
    """

    def __init__(self, directory=None, heartbeat: float = None,
                 label: str = "run", clock=time.monotonic) -> None:
        self.label = label
        self.dir = Path(directory) if directory is not None else None
        if self.dir is not None:
            self.dir.mkdir(parents=True, exist_ok=True)
        #: A fresh registry scoped in for the observation's duration, so
        #: ``metrics.json`` describes *this* run, not the whole process.
        self.registry = metrics.MetricsRegistry()
        self.tracer = EventTracer(
            path=self.dir / "events.jsonl" if self.dir else None,
            clock=clock)
        self.heartbeat = Heartbeat(heartbeat, self, clock=clock) \
            if heartbeat else None
        self.outputs = {}
        self._flame_source = None
        self._prev_active = None
        self._registry_scope = None
        self._closed = False

    # -- event/metric surface -----------------------------------------

    @property
    def elapsed(self) -> float:
        return self.tracer.elapsed

    def emit(self, event: str, **fields) -> dict:
        return self.tracer.emit(event, **fields)

    def record_measurement(self, measurement) -> None:
        """Nominate a measurement as the flamegraph source.

        Called as results land (each workload, then the composite); the
        last call wins, so a characterize run flamegraphs its
        composite.
        """
        self._flame_source = measurement

    # -- lifecycle -----------------------------------------------------

    def __enter__(self) -> "Observation":
        global _ACTIVE
        self._prev_active = _ACTIVE
        _ACTIVE = self
        self._registry_scope = metrics.scoped_registry(self.registry)
        self._registry_scope.__enter__()
        self.emit("observation_opened", label=self.label)
        if self.heartbeat is not None:
            self.heartbeat.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        global _ACTIVE
        _ACTIVE = self._prev_active
        if self._registry_scope is not None:
            self._registry_scope.__exit__(None, None, None)
            self._registry_scope = None
        self.close(error=None if exc_type is None else repr(exc))
        return False

    def close(self, error: str = None) -> dict:
        """Stop the heartbeat, write the exports, close the stream.

        Returns {artifact name -> path} for everything written.
        """
        if self._closed:
            return self.outputs
        self._closed = True
        if self.heartbeat is not None:
            self.heartbeat.stop()
        self.emit("observation_closed", label=self.label,
                  seconds=round(self.elapsed, 6),
                  **({"error": error} if error else {}))
        if self.dir is not None:
            self.outputs["events"] = str(self.dir / "events.jsonl")
            self.outputs["metrics"] = self._write_json(
                "metrics.json",
                {"label": self.label,
                 "elapsed_seconds": round(self.elapsed, 6),
                 "metrics": self.registry.snapshot()})
            self.outputs["trace"] = self._write_json(
                "trace.json", chrome_trace(self.tracer.events))
            if self._flame_source is not None:
                path = self.dir / "flamegraph.collapsed"
                with open(path, "w") as handle:
                    for line in flamegraph(self._flame_source):
                        handle.write(line + "\n")
                self.outputs["flamegraph"] = str(path)
        self.tracer.close()
        return self.outputs

    def _write_json(self, name: str, doc: dict) -> str:
        path = self.dir / name
        with open(path, "w") as handle:
            json.dump(doc, handle, indent=1, sort_keys=True)
            handle.write("\n")
        return str(path)


def observe(directory=None, heartbeat: float = None,
            label: str = "run") -> Observation:
    """An :class:`Observation` ready to be entered as a context."""
    return Observation(directory, heartbeat=heartbeat, label=label)


def active() -> Observation:
    """The currently active observation, or None."""
    return _ACTIVE


def emit(event: str, **fields) -> None:
    """Emit an event to the active observation; no-op when inactive."""
    if _ACTIVE is not None:
        _ACTIVE.emit(event, **fields)


def record_measurement(measurement) -> None:
    """Nominate the flamegraph source on the active observation."""
    if _ACTIVE is not None:
        _ACTIVE.record_measurement(measurement)
