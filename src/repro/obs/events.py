"""Structured run-lifecycle event tracing (JSONL) at bounded overhead.

An :class:`EventTracer` appends one JSON object per line to
``events.jsonl`` as the run progresses — run/workload boundaries, pool
tasks, sweep points, fuzz divergences, paranoid-law violations — and
keeps a bounded in-memory copy for the Chrome-trace exporter.  Events
carry a monotonic ``ts`` (seconds since the observation opened), so the
stream is ordered by construction and a crashed run still leaves a
readable prefix on disk.

Per-*instruction* visibility comes from :class:`ProgressSampler`, which
chains onto the machine's instruction-boundary hook exactly like
``--paranoid``'s :class:`~repro.validate.paranoid.ParanoidMonitor` and
reuses its adaptive-interval trick: the sampler times its own emissions
against the simulation time between them and widens the interval until
the overhead fraction drops under budget.  The sampler only *reads*
counters, so an observed run stays bit-identical to an unobserved one.

:class:`Heartbeat` is the human half: a daemon thread that prints one
plain-text progress line per interval, built from the metrics registry,
so a multi-minute sweep is never silent.
"""

from __future__ import annotations

import json
import sys
import threading
import time

#: In-memory events retained for the exporters; the JSONL file is
#: unbounded, the buffer is not.  Past the cap, events still stream to
#: disk and ``dropped`` counts what the in-memory trace lost.
BUFFER_LIMIT = 200_000

#: Interval bounds for the adaptive progress sampler (instructions).
_MIN_INTERVAL = 256
_MAX_INTERVAL = 1 << 20


class EventTracer:
    """Ordered structured events, streamed to JSONL and buffered."""

    def __init__(self, path=None, clock=time.monotonic) -> None:
        self._clock = clock
        self._t0 = clock()
        self._lock = threading.Lock()
        self._handle = open(path, "w") if path is not None else None
        self.events = []
        self.dropped = 0

    @property
    def elapsed(self) -> float:
        """Seconds since the tracer opened."""
        return self._clock() - self._t0

    def emit(self, event: str, **fields) -> dict:
        """Record one event; returns the record (with its ``ts``)."""
        record = {"ts": round(self._clock() - self._t0, 6),
                  "event": event}
        record.update(fields)
        with self._lock:
            if len(self.events) < BUFFER_LIMIT:
                self.events.append(record)
            else:
                self.dropped += 1
            if self._handle is not None:
                json.dump(record, self._handle, sort_keys=True)
                self._handle.write("\n")
        return record

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                if self.dropped:
                    json.dump({"ts": round(self._clock() - self._t0, 6),
                               "event": "buffer_truncated",
                               "dropped": self.dropped},
                              self._handle, sort_keys=True)
                    self._handle.write("\n")
                self._handle.close()
                self._handle = None


class ProgressSampler:
    """Instruction-boundary progress events with bounded overhead.

    Chains onto ``machine.boundary_hook`` (preserving any hook already
    installed — the executive's scheduler and ``--paranoid``'s monitor
    both live there too) and, every *interval* instructions, emits a
    ``progress`` event and refreshes the per-workload gauges the
    heartbeat reads.  The interval widens/narrows exactly like the
    paranoid monitor's so emission time stays under ``overhead`` of the
    simulation time between samples.
    """

    def __init__(self, machine, observation, label: str,
                 interval: int = 1024, overhead: float = 0.01) -> None:
        self.machine = machine
        self.observation = observation
        self.label = label
        self.interval = max(_MIN_INTERVAL, interval)
        self.overhead = overhead
        self.samples = 0
        self._countdown = self.interval
        self._prev_hook = None
        self._installed = False
        self._last_sample_ended = None

    def install(self) -> "ProgressSampler":
        if self._installed:
            return self
        self._prev_hook = self.machine.boundary_hook
        self.machine.boundary_hook = self._on_boundary
        self._installed = True
        return self

    def uninstall(self) -> None:
        if not self._installed:
            return
        self.machine.boundary_hook = self._prev_hook
        self._prev_hook = None
        self._installed = False

    def __enter__(self) -> "ProgressSampler":
        return self.install()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.uninstall()
        return False

    def sample_now(self) -> None:
        """Emit one progress event from the machine's live counters."""
        machine = self.machine
        self.samples += 1
        instructions = machine.tracer.instructions
        cycles = machine.cycles
        self.observation.emit("progress", workload=self.label,
                              instructions=instructions, cycles=cycles)
        from repro.obs import metrics
        metrics.gauge(f"run.{self.label}.instructions").set(instructions)
        metrics.gauge(f"run.{self.label}.cycles").set(cycles)

    def _on_boundary(self, machine) -> None:
        if self._prev_hook is not None:
            self._prev_hook(machine)
        self._countdown -= 1
        if self._countdown > 0:
            return
        started = time.perf_counter()
        self.sample_now()
        ended = time.perf_counter()
        if self._last_sample_ended is not None:
            spent = ended - started
            between = started - self._last_sample_ended
            budget = self.overhead * between
            if spent > budget and self.interval < _MAX_INTERVAL:
                self.interval = min(_MAX_INTERVAL, self.interval * 2)
            elif spent < budget / 4 and self.interval > _MIN_INTERVAL:
                self.interval = max(_MIN_INTERVAL, self.interval // 2)
        self._last_sample_ended = ended
        self._countdown = self.interval


def _stderr_write(text: str) -> None:
    # Resolved at call time so pytest's capture (and redirections)
    # see the heartbeat.
    sys.stderr.write(text)
    sys.stderr.flush()


class Heartbeat:
    """A liveness line every ``interval`` seconds, from a thread.

    The beat logic itself is pure (:meth:`maybe_beat` takes a clock
    reading), so the interval contract is testable without sleeping;
    :meth:`start` wraps it in a daemon thread driven by
    ``Event.wait(interval)``.
    """

    def __init__(self, interval: float, observation,
                 write=_stderr_write, clock=time.monotonic) -> None:
        if interval <= 0:
            raise ValueError(f"heartbeat interval must be positive, "
                             f"got {interval!r}")
        self.interval = interval
        self.observation = observation
        self.write = write
        self.clock = clock
        self.beats = 0
        self._last = clock()
        self._stop = threading.Event()
        self._thread = None

    def beat(self) -> str:
        """Emit one heartbeat line unconditionally."""
        from repro.obs.export import heartbeat_line
        line = heartbeat_line(self.observation.registry.snapshot(),
                              self.observation.elapsed,
                              label=self.observation.label)
        self.beats += 1
        self.write(line + "\n")
        self.observation.emit("heartbeat", line=line)
        return line

    def maybe_beat(self, now: float = None) -> bool:
        """Beat only if a full interval has elapsed since the last."""
        if now is None:
            now = self.clock()
        if now - self._last < self.interval:
            return False
        self._last = now
        self.beat()
        return True

    def start(self) -> "Heartbeat":
        if self._thread is not None:
            return self
        self._stop.clear()

        def run():
            while not self._stop.wait(self.interval):
                self.maybe_beat()

        self._thread = threading.Thread(target=run, name="obs-heartbeat",
                                        daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None
