"""Exporters: Chrome-trace timeline, cycle flamegraph, heartbeat line.

Three views of one observed run:

* :func:`chrome_trace` — the lifecycle event stream as a Chrome trace
  (``chrome://tracing`` / https://ui.perfetto.dev): run, workload and
  measurement phases as duration slices on the main lane, pool tasks as
  slices on one lane per worker process, everything else as instants.
* :func:`flamegraph` — the Table-8-style attribution of every counted
  machine cycle as collapsed stacks
  (``stage;group;cycle-kind count``), the input format of
  ``flamegraph.pl`` and https://speedscope.app: decode → specifier →
  execute-by-group → stall-kind, exactly the paper's decomposition but
  zoomable.
* :func:`heartbeat_line` — one plain-text liveness line from a metrics
  snapshot.
"""

from __future__ import annotations

from repro.ucode.rows import COLUMN_ORDER, Column, ROW_ORDER, Row

#: Stack frames for each Table 8 row (stage, then group for executes).
_ROW_FRAMES = {
    Row.DECODE: ("decode",),
    Row.SPEC1: ("specifier", "spec1"),
    Row.SPEC26: ("specifier", "spec2-6"),
    Row.BDISP: ("specifier", "bdisp"),
    Row.EX_SIMPLE: ("execute", "simple"),
    Row.EX_FIELD: ("execute", "field"),
    Row.EX_FLOAT: ("execute", "float"),
    Row.EX_CALLRET: ("execute", "call-ret"),
    Row.EX_SYSTEM: ("execute", "system"),
    Row.EX_CHARACTER: ("execute", "character"),
    Row.EX_DECIMAL: ("execute", "decimal"),
    Row.INT_EXCEPT: ("overhead", "int-except"),
    Row.MEM_MGMT: ("overhead", "mem-mgmt"),
    Row.ABORTS: ("overhead", "aborts"),
}

#: Leaf frame for each Table 8 column (the cycle/stall kind).
_COLUMN_FRAMES = {
    Column.COMPUTE: "compute",
    Column.READ: "read",
    Column.RSTALL: "read-stall",
    Column.WRITE: "write",
    Column.WSTALL: "write-stall",
    Column.IBSTALL: "ib-stall",
}


def flamegraph(measurement) -> list:
    """Collapsed-stack lines attributing every counted cycle.

    The sum of the counts equals the measurement's classified cycle
    total (the histogram's busy + stall cycles), so the flamegraph is
    the same exact accounting as Table 8 — just hierarchical.
    """
    from repro.analysis.reduction import Reduction

    red = Reduction(measurement.histogram)
    root = measurement.name.replace(" ", "-").replace(";", "-")
    lines = []
    for row in ROW_ORDER:
        for col in COLUMN_ORDER:
            cycles = red.cells[(row, col)]
            if not cycles:
                continue
            frames = (root,) + _ROW_FRAMES[row] + (_COLUMN_FRAMES[col],)
            lines.append(f"{';'.join(frames)} {cycles}")
    return lines


# -- Chrome trace -------------------------------------------------------

#: Events that open/close a duration slice, matched by a key field.
_SPAN_KEY_FIELDS = ("workload", "name", "command", "label", "spec")

_US = 1_000_000


def _span_key(record: dict) -> tuple:
    for field in _SPAN_KEY_FIELDS:
        value = record.get(field)
        if value is not None:
            return (record["event"].rsplit("_", 1)[0], str(value))
    return (record["event"].rsplit("_", 1)[0], "")


def chrome_trace(events) -> dict:
    """Shape an event stream into the Chrome trace-event format.

    ``*_started``/``*_finished`` pairs become complete ("X") slices on
    the main lane; ``task_finished`` events (pool tasks report their
    duration and worker pid when they land) become slices on a
    per-worker lane; every other event becomes an instant ("i").  The
    returned ``traceEvents`` are sorted by ``ts``, so timestamps are
    monotonically ordered — a property the tests pin, since Perfetto
    tolerates disorder but humans debugging a trace should not have to.
    """
    trace = []
    open_spans = {}
    worker_lanes = {}
    last_ts = 0.0
    for record in events:
        ts = record["ts"]
        last_ts = max(last_ts, ts)
        event = record["event"]
        args = {k: v for k, v in record.items()
                if k not in ("ts", "event")}
        if event == "task_finished" and "seconds" in record:
            worker = record.get("worker", "?")
            lane = worker_lanes.setdefault(worker,
                                           100 + len(worker_lanes))
            start = max(0.0, ts - record["seconds"])
            trace.append({"name": record.get("label", "task"),
                          "cat": "pool", "ph": "X",
                          "ts": round(start * _US, 3),
                          "dur": round((ts - start) * _US, 3),
                          "pid": 1, "tid": lane, "args": args})
        elif event.endswith("_started"):
            open_spans.setdefault(_span_key(record), []).append(record)
        elif event.endswith("_finished") and \
                open_spans.get(_span_key(record)):
            begun = open_spans[_span_key(record)].pop()
            name = _span_key(record)[1] or _span_key(record)[0]
            trace.append({"name": name,
                          "cat": _span_key(record)[0], "ph": "X",
                          "ts": round(begun["ts"] * _US, 3),
                          "dur": round((ts - begun["ts"]) * _US, 3),
                          "pid": 1, "tid": 0, "args": args})
        else:
            trace.append({"name": event, "cat": "event", "ph": "i",
                          "s": "t", "ts": round(ts * _US, 3),
                          "pid": 1, "tid": 0, "args": args})
    # Close anything a crash (or a caller) left open at the last ts.
    for spans in open_spans.values():
        for begun in spans:
            key = _span_key(begun)
            trace.append({"name": key[1] or key[0], "cat": key[0],
                          "ph": "X", "ts": round(begun["ts"] * _US, 3),
                          "dur": round(max(0.0, last_ts - begun["ts"])
                                       * _US, 3),
                          "pid": 1, "tid": 0,
                          "args": {"unclosed": True}})
    trace.sort(key=lambda e: e["ts"])

    meta = [{"name": "process_name", "ph": "M", "pid": 1, "ts": 0,
             "args": {"name": "repro-vax780"}},
            {"name": "thread_name", "ph": "M", "pid": 1, "tid": 0,
             "ts": 0, "args": {"name": "main"}}]
    for worker, lane in sorted(worker_lanes.items(),
                               key=lambda item: item[1]):
        meta.append({"name": "thread_name", "ph": "M", "pid": 1,
                     "tid": lane, "ts": 0,
                     "args": {"name": f"worker-{worker}"}})
    return {"traceEvents": meta + trace, "displayTimeUnit": "ms"}


# -- heartbeat ----------------------------------------------------------

#: counter name -> short heartbeat field label, in display order.
_PULSE_COUNTERS = (
    ("workloads.runs", "workloads"),
    ("workloads.cycles", "cycles"),
    ("explore.simulations", "sims"),
    ("explore.store.hits", "store-hits"),
    ("ubench.kernels", "kernels"),
    ("validate.fuzz_cases", "fuzz"),
    ("validate.divergences", "DIVERGED"),
    ("parallel.tasks", "pool-tasks"),
)


def heartbeat_line(snapshot: dict, elapsed: float,
                   label: str = "run") -> str:
    """One liveness line: elapsed time plus whatever is moving."""
    parts = [f"[obs +{elapsed:.1f}s {label}]"]
    for name, short in _PULSE_COUNTERS:
        entry = snapshot.get(name)
        if entry and entry.get("value"):
            parts.append(f"{short}={entry['value']:,}")
    in_flight = sum(entry["value"] for name, entry in snapshot.items()
                    if name.startswith("run.")
                    and name.endswith(".instructions")
                    and entry.get("kind") == "gauge")
    if in_flight:
        parts.append(f"instr~{in_flight:,}")
    if len(parts) == 1:
        parts.append("warming up")
    return " ".join(parts)
