"""Process-wide metrics registry: counters, gauges, timers.

The paper's histogram board counts *machine* cycles; this registry
counts the *reproduction's own* activity — workloads simulated, store
hits, kernels measured, fuzz cases run — so a long campaign is
observable while it runs rather than only after it finishes.

Design constraints, in order:

* **Passive.**  Nothing here may perturb a simulation; metrics are
  updated at workload/kernel/point granularity, never per cycle.
* **Mergeable.**  The composite experiments fan out over worker
  processes (:mod:`repro.workloads.parallel`); each worker captures its
  updates as a snapshot *delta* under :func:`scoped_registry` and the
  parent folds the deltas back in with :meth:`MetricsRegistry.merge`.
  Every merge rule is associative and commutative (counters and timer
  totals add, gauge aggregation is ``max`` or ``sum``, timer min/max
  take min/max), so the merged totals are deterministic regardless of
  worker scheduling — ``tests/obs/test_metrics.py`` holds the algebra
  to that.
* **Snapshot-able.**  :meth:`MetricsRegistry.snapshot` returns a plain
  JSON-able dict at any time; the heartbeat and the ``metrics.json``
  exporter both read it without stopping anything.
"""

from __future__ import annotations

import math
import threading
import time
from contextlib import contextmanager


class MetricsError(Exception):
    """A metric was re-registered under a conflicting type."""


class Counter:
    """A monotonically increasing count.  Merge rule: add."""

    kind = "counter"
    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def to_snapshot(self) -> dict:
        return {"kind": self.kind, "value": self.value}


class Gauge:
    """A level (latest magnitude).  Merge rule: ``max`` or ``sum``.

    ``last`` would be the conventional gauge merge, but across pool
    workers it is scheduling-dependent; restricting the aggregation to
    associative, commutative rules keeps merged snapshots deterministic.
    """

    kind = "gauge"
    __slots__ = ("name", "value", "agg")

    def __init__(self, name: str, agg: str = "max") -> None:
        if agg not in ("max", "sum"):
            raise MetricsError(
                f"gauge {name!r}: aggregation must be 'max' or 'sum', "
                f"got {agg!r}")
        self.name = name
        self.agg = agg
        self.value = 0

    def set(self, value) -> None:
        self.value = value

    def to_snapshot(self) -> dict:
        return {"kind": self.kind, "value": self.value, "agg": self.agg}


class Timer:
    """Accumulated wall-clock observations (count/total/min/max).

    Merge rule: counts and totals add; min/max take min/max.
    """

    kind = "timer"
    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = 0.0

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        if seconds < self.min:
            self.min = seconds
        if seconds > self.max:
            self.max = seconds

    @contextmanager
    def time(self):
        started = time.perf_counter()
        try:
            yield self
        finally:
            self.observe(time.perf_counter() - started)

    def to_snapshot(self) -> dict:
        return {"kind": self.kind, "count": self.count,
                "total": round(self.total, 6),
                "min": round(self.min, 6) if self.count else None,
                "max": round(self.max, 6)}


_KINDS = {cls.kind: cls for cls in (Counter, Gauge, Timer)}


class MetricsRegistry:
    """A named bag of metrics with deterministic snapshot/merge."""

    def __init__(self) -> None:
        self._metrics = {}
        self._lock = threading.Lock()

    def _get(self, name: str, cls, **kwargs):
        metric = self._metrics.get(name)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(name)
                if metric is None:
                    metric = cls(name, **kwargs)
                    self._metrics[name] = metric
        if not isinstance(metric, cls):
            raise MetricsError(
                f"metric {name!r} is a {metric.kind}, not a {cls.kind}")
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str, agg: str = "max") -> Gauge:
        gauge = self._get(name, Gauge, agg=agg)
        if gauge.agg != agg:
            raise MetricsError(
                f"gauge {name!r} already registered with agg="
                f"{gauge.agg!r}, not {agg!r}")
        return gauge

    def timer(self, name: str) -> Timer:
        return self._get(name, Timer)

    def snapshot(self) -> dict:
        """Plain JSON-able view: name -> {kind, ...fields}, name-sorted."""
        with self._lock:
            items = sorted(self._metrics.items())
        return {name: metric.to_snapshot() for name, metric in items}

    def merge(self, snapshot: dict) -> None:
        """Fold a snapshot (e.g. a worker's delta) into this registry."""
        for name in sorted(snapshot):
            entry = snapshot[name]
            kind = entry.get("kind")
            if kind == "counter":
                self.counter(name).inc(entry["value"])
            elif kind == "gauge":
                gauge = self.gauge(name, agg=entry.get("agg", "max"))
                if gauge.agg == "sum":
                    gauge.value += entry["value"]
                else:
                    gauge.value = max(gauge.value, entry["value"])
            elif kind == "timer":
                timer = self.timer(name)
                timer.count += entry["count"]
                timer.total += entry["total"]
                if entry["min"] is not None and entry["min"] < timer.min:
                    timer.min = entry["min"]
                if entry["max"] > timer.max:
                    timer.max = entry["max"]
            else:
                raise MetricsError(
                    f"cannot merge metric {name!r} of unknown kind "
                    f"{kind!r}")

    def clear(self) -> None:
        with self._lock:
            self._metrics.clear()


def merge_snapshots(*snapshots: dict) -> dict:
    """Pure merge of snapshot dicts (the algebra the tests exercise)."""
    out = MetricsRegistry()
    for snapshot in snapshots:
        out.merge(snapshot)
    return out.snapshot()


#: The process-wide default registry.  Subsystems reach it through
#: :func:`registry` so that :func:`scoped_registry` can swap in a fresh
#: one inside pool workers (capturing their updates as a delta).
_DEFAULT = MetricsRegistry()
_CURRENT = _DEFAULT


def registry() -> MetricsRegistry:
    """The currently active registry (process-wide unless scoped)."""
    return _CURRENT


def counter(name: str) -> Counter:
    return _CURRENT.counter(name)


def gauge(name: str, agg: str = "max") -> Gauge:
    return _CURRENT.gauge(name, agg=agg)


def timer(name: str) -> Timer:
    return _CURRENT.timer(name)


@contextmanager
def scoped_registry(reg: MetricsRegistry = None):
    """Swap a fresh registry in for the duration of the block.

    Pool workers run each task under a scope so the task's updates come
    back to the parent as ``reg.snapshot()`` — a delta that merges
    deterministically, instead of a shared mutable registry racing
    across processes (which cannot exist) or double counting on the
    in-process fallback path (which can).
    """
    global _CURRENT
    if reg is None:
        reg = MetricsRegistry()
    previous = _CURRENT
    _CURRENT = reg
    try:
        yield reg
    finally:
        _CURRENT = previous
