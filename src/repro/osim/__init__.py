"""The modeled VMS-like executive: kernel code, scheduler, devices."""

from repro.osim.devices import IntervalClock, TerminalMux
from repro.osim.executive import Executive
from repro.osim.kernelgen import KernelImage, build_kernel
from repro.osim.process import BLOCKED, READY, RUNNING, Process
from repro.osim.scheduler import Scheduler

__all__ = ["IntervalClock", "TerminalMux", "Executive", "KernelImage",
           "build_kernel", "BLOCKED", "READY", "RUNNING", "Process",
           "Scheduler"]
