"""Interrupting devices: the interval clock and the RTE terminal lines.

The paper's workloads were paced by real user terminals (live machines)
or by the Remote Terminal Emulator's canned scripts (§2.2).  Here a
terminal multiplexer device delivers character interrupts at a
profile-controlled aggregate rate, and the interval clock ticks at a
fixed period; together they produce the interrupt headway Table 7
reports.
"""

from __future__ import annotations

import random

#: Interrupt priority levels (architectural conventions).
IPL_CLOCK = 24
IPL_TERMINAL = 20


class IntervalClock:
    """The 11/780 interval clock: periodic interrupts at IPL 24."""

    def __init__(self, period_cycles: int, scb_offset: int) -> None:
        self.period = period_cycles
        self.scb_offset = scb_offset
        self.next_fire = period_cycles
        self.ticks = 0

    def poll(self, machine) -> None:
        """Post a clock interrupt when the period elapses."""
        now = machine.ebox.now
        if now < self.next_fire:
            return
        if any(p.scb_offset == self.scb_offset
               for p in machine._hw_pending):
            self.next_fire = now + self.period
            return
        machine.post_interrupt(IPL_CLOCK, self.scb_offset)
        self.ticks += 1
        self.next_fire = now + self.period


class TerminalMux:
    """Aggregate terminal-character interrupts (the RTE's users typing).

    Inter-arrival times are exponential-ish around the profile's mean so
    that interrupt timing is irregular, as real keystroke/output traffic
    is.
    """

    def __init__(self, mean_period_cycles: int, scb_offset: int,
                 seed: int = 1140) -> None:
        self.mean_period = mean_period_cycles
        self.scb_offset = scb_offset
        self._rng = random.Random(seed)
        self.next_fire = self._draw()
        self.characters = 0

    def _draw(self) -> int:
        return max(200, int(self._rng.expovariate(1.0 / self.mean_period)))

    def poll(self, machine) -> None:
        """Post a character interrupt when the next arrival is due."""
        now = machine.ebox.now
        if now < self.next_fire:
            return
        if any(p.scb_offset == self.scb_offset
               for p in machine._hw_pending):
            self.next_fire = now + self._draw()
            return
        machine.post_interrupt(IPL_TERMINAL, self.scb_offset)
        self.characters += 1
        self.next_fire = now + self._draw()
