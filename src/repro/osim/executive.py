"""The executive: builds a bootable system around a workload profile.

An :class:`Executive` lays out physical memory (SCB, kernel code and data,
kernel stacks, PCBs, page tables, user frames), generates the kernel and
one user program per process, installs devices and scheduler hooks, boots
through the kernel's own VAX boot sequence, and runs a measurement window.

Physical layout (all below the S0 page table at the top of memory)::

    0x08000  kernel data (queues, scalars)          [identity S0]
    0x10000  kernel code                            [identity S0]
    0x20000  SCB (vector table)
    0x28000  kernel stacks, one page per process    [identity S0]
    0x38000  PCBs, 256 bytes each
    0x40000  process page tables (P0 + P1 per process)
    0x100000 user page frames (bump-allocated)
"""

from __future__ import annotations

import struct

from repro.arch.registers import KERNEL, SP, USER
from repro.cpu.machine import (SCB_CHMK, SCB_CLOCK, SCB_PAGE_FAULT,
                               SCB_SOFTWARE_BASE, SCB_TERMINAL, VAX780)
from repro.cpu.executors.system import (PCB_AP, PCB_FP, PCB_KSP, PCB_PC,
                                        PCB_PSL, PCB_USP)
from repro.osim import kernelgen
from repro.osim.devices import IntervalClock, TerminalMux
from repro.osim.kernelgen import (KDATA_VA, PR_BLOCK, PR_NEXTPCB,
                                  PR_QUANTUM, PR_TTYAST, SOFTINT_AST,
                                  SOFTINT_RESCHED, build_kernel,
                                  initial_kernel_data)
from repro.osim.process import Process
from repro.osim.scheduler import Scheduler
from repro.vm.address import (P1_BASE, PAGE_BYTES, PAGE_SHIFT, S0_BASE)
from repro.vm.pagetable import AddressSpace, RegionTable
from repro.workloads.codegen import ProgramGenerator
from repro.workloads.profiles import MixProfile

_WORD = 0xFFFFFFFF

# physical layout constants
KDATA_PA = 0x8000
KCODE_PA = 0x10000
SCB_PA = 0x20000
KSTACK_PA = 0x28000
PCB_PA = 0x38000
PTBL_PA = 0x40000
FRAMES_PA = 0x100000

#: bytes reserved per process page-table slot (P0 then P1).
PTBL_SLOT = 0x4000
P1_TABLE_OFFSET = 0x3000
#: user stack: 32 pages at the bottom of P1.
USER_STACK_PAGES = 32


class Executive:
    """A booted VMS-like system running one workload profile."""

    def __init__(self, machine: VAX780, profile: MixProfile,
                 seed: int = 1984) -> None:
        self.machine = machine
        self.profile = profile
        self.seed = seed
        self.processes = []
        self._frame_cursor = FRAMES_PA >> PAGE_SHIFT

        machine.map_s0_identity()
        self._load_kernel()
        self._build_null_process()
        self.scheduler = Scheduler(
            machine, self.null_process,
            quantum_ticks=profile.quantum_ticks,
            io_block_cycles=profile.io_block_cycles,
            seed=seed + 17)
        self._install_hooks()
        self._build_processes()
        self._install_devices()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def _load_kernel(self) -> None:
        m = self.machine
        self.kernel = build_kernel(scb_pa=SCB_PA, seed=self.seed)
        m.mem.load_image(KCODE_PA, self.kernel.code)
        m.mem.load_image(KDATA_PA, initial_kernel_data(self.seed + 1))
        # SCB vectors.
        handlers = self.kernel.handlers
        for offset, name in (
                (SCB_PAGE_FAULT, "page_fault"),
                (SCB_CHMK, "chmk"),
                (SCB_CLOCK, "clock"),
                (SCB_TERMINAL, "terminal"),
                (SCB_SOFTWARE_BASE + 4 * SOFTINT_AST, "ast"),
                (SCB_SOFTWARE_BASE + 4 * SOFTINT_RESCHED, "resched")):
            m.mem.debug_write(SCB_PA + offset, handlers[name], 4)

    def _build_null_process(self) -> None:
        m = self.machine
        pcb = PCB_PA  # slot 0
        kstack_top = S0_BASE + KSTACK_PA + 0xF00
        space = AddressSpace(asid=0, p0=RegionTable(PTBL_PA, 0),
                             p1=RegionTable(PTBL_PA + P1_TABLE_OFFSET, 0))
        self.null_process = Process("null", 0, space, pcb, kstack_top)
        self.null_process.is_null = True
        self._init_pcb(pcb, registers={}, pc=self.kernel.null_entry,
                       psl_mode=KERNEL, usp=0, ksp=kstack_top)
        m.register_address_space(pcb, space)

    def _build_processes(self) -> None:
        for index in range(self.profile.processes):
            self._build_process(index + 1)

    def _alloc_frame(self) -> int:
        frame = self._frame_cursor
        self._frame_cursor += 1
        limit = self.machine.s0_table_pa >> PAGE_SHIFT
        if frame >= limit:
            raise MemoryError("out of user page frames")
        return frame

    def _build_process(self, asid: int) -> None:
        m = self.machine
        generator = ProgramGenerator(self.profile,
                                     seed=self.seed * 1000 + asid)
        program = generator.generate()

        p0_pages = (program.string_base
                    + self.profile.string_kb * 1024) >> PAGE_SHIFT
        p0_table = RegionTable(PTBL_PA + (asid - 1 + 1) * PTBL_SLOT,
                               p0_pages + 1)
        p1_table = RegionTable(p0_table.base_pa + P1_TABLE_OFFSET,
                               USER_STACK_PAGES)
        space = AddressSpace(asid=asid, p0=p0_table, p1=p1_table)

        # Map and fill P0 (code + data + strings) and P1 (stack).
        previous = m.translator.current_space
        m.translator.set_space(space)
        for page in range(p0_table.length):
            m.translator.map_page(page << PAGE_SHIFT, self._alloc_frame())
        for page in range(p1_table.length):
            m.translator.map_page(P1_BASE + (page << PAGE_SHIFT),
                                  self._alloc_frame())
        self._copy_in(space, program.code_base, program.code)
        self._copy_in(space, program.data_base, program.data_init)
        self._copy_in(space, program.string_base, program.string_init)
        m.translator.set_space(previous)

        pcb = PCB_PA + 0x100 * asid
        kstack_top = S0_BASE + KSTACK_PA + 0x1000 * asid + 0xF00
        usp = P1_BASE + (USER_STACK_PAGES << PAGE_SHIFT) - 64
        self._init_pcb(
            pcb,
            registers={10: program.string_base, 11: program.data_base,
                       PCB_AP: usp, PCB_FP: usp},
            pc=program.entry, psl_mode=USER, usp=usp, ksp=kstack_top)
        m.register_address_space(pcb, space)

        process = Process(f"{self.profile.name}-p{asid}", asid, space,
                          pcb, kstack_top, program)
        self.processes.append(process)
        self.scheduler.add_process(process)

    def _copy_in(self, space, va: int, data: bytes) -> None:
        """Copy bytes into a process's mapped pages (untimed)."""
        m = self.machine
        offset = 0
        while offset < len(data):
            pa = m.translator.translate(va + offset)
            chunk = min(len(data) - offset,
                        PAGE_BYTES - ((va + offset) & (PAGE_BYTES - 1)))
            m.mem.load_image(pa, data[offset:offset + chunk])
            offset += chunk

    def _init_pcb(self, pcb_pa: int, registers: dict, pc: int,
                  psl_mode: int, usp: int, ksp: int) -> None:
        m = self.machine
        image = [0] * 18
        for reg, value in registers.items():
            image[reg] = value
        image[PCB_USP] = usp
        image[PCB_PC] = pc
        image[PCB_PSL] = (psl_mode & 3) << 24
        image[PCB_KSP] = ksp
        for i, value in enumerate(image):
            m.mem.debug_write(pcb_pa + 4 * i, value & _WORD, 4)

    def _install_hooks(self) -> None:
        m = self.machine
        sched = self.scheduler
        m.pr_mfpr_hooks[PR_NEXTPCB] = sched.next_pcb
        m.pr_mfpr_hooks[PR_QUANTUM] = sched.quantum_expired
        m.pr_mfpr_hooks[PR_TTYAST] = sched.tty_ast_due
        m.pr_mtpr_hooks[PR_BLOCK] = sched.block_current

    def _install_devices(self) -> None:
        m = self.machine
        self.clock = IntervalClock(self.profile.clock_period_cycles,
                                   SCB_CLOCK)
        self.terminal = TerminalMux(self.profile.terminal_period_cycles,
                                    SCB_TERMINAL, seed=self.seed + 9)
        m.devices.append(self.clock)
        m.devices.append(self.terminal)

    # ------------------------------------------------------------------
    # boot and run
    # ------------------------------------------------------------------

    def boot(self) -> None:
        """Point the machine at the kernel's boot sequence."""
        m = self.machine
        e = m.ebox
        e.psl.current_mode = KERNEL
        e.psl.ipl = 31
        boot_stack = S0_BASE + KSTACK_PA + 0xFF0
        e.registers[SP] = boot_stack
        e.mode_sps[KERNEL] = boot_stack
        # The boot REI needs a PC/PSL pair; the LDPCTX before it pushes
        # the first process's.  Boot runs with interrupts masked.
        e.pc = self.kernel.boot_entry
        e.ib.flush(e.pc)

    def run(self, measured_instructions: int,
            cycle_limit: int = None) -> None:
        """Run until the tracer has seen ``measured_instructions``."""
        m = self.machine
        tracer = m.tracer
        ebox = m.ebox
        step = m.step
        if cycle_limit is None:
            cycle_limit = measured_instructions * 400
        while tracer.instructions < measured_instructions:
            if m.halted:
                raise RuntimeError("machine halted during workload run")
            if ebox.now > cycle_limit:
                raise RuntimeError(
                    f"cycle limit hit: {tracer.instructions} of "
                    f"{measured_instructions} instructions measured")
            step()
