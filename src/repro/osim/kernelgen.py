"""Kernel code generation: the VMS-like executive's VAX code.

Everything the measured instruction stream sees of the kernel is real VAX
code generated here and executed by the simulator: the boot sequence, the
CHMK system-service dispatcher and its services, the page-fault handler,
the clock and terminal interrupt handlers, the AST-delivery software
interrupt, the rescheduling software interrupt (SVPCTX / LDPCTX / REI),
and the Null process' branch-to-self loop.

Scheduling *policy* is consulted through pseudo processor registers
(PR_NEXTPCB and friends); see :mod:`repro.osim.scheduler`.

Handlers preserve user state: interrupt handlers bracket their work with
PUSHR/POPR of the registers they touch (contributing, as in VMS, to the
CALL/RET group's multi-register push/pop traffic), and the rescheduler
runs SVPCTX before doing anything else.
"""

from __future__ import annotations

import random
import struct
from dataclasses import dataclass

from repro.arch import encode as enc
from repro.asm.program import ProgramBuilder
from repro.vm.address import S0_BASE

#: pseudo processor registers backed by the Python scheduler.
PR_NEXTPCB = 200
PR_BLOCK = 201
PR_QUANTUM = 202
PR_TTYAST = 203

# architectural registers used below
from repro.cpu.prs import PR_SCBB, PR_ICCS, PR_PCBB, PR_SIRR, PR_PFFIX

#: Kernel virtual layout (identity-mapped S0).
KDATA_VA = S0_BASE + 0x8000
KCODE_VA = S0_BASE + 0x10000

#: kernel-data offsets for the private queue sites of each handler.
KQUEUE_HEADS = 0x100      # 16 bytes per head
KQUEUE_ENTRIES = 0x200    # 16 bytes per entry
KSCALARS = 0x400          # scratch longwords for kernel work
KSCALAR_BYTES = 0x1C00

#: PUSHR/POPR mask used by interrupt handlers (r0-r5).
HANDLER_SAVE_MASK = 0x003F

#: software interrupt levels used by the executive.
SOFTINT_AST = 2
SOFTINT_RESCHED = 3


@dataclass
class KernelImage:
    """The assembled kernel and the entry points the executive needs."""

    code: bytes
    base: int
    boot_entry: int
    null_entry: int
    handlers: dict  #: name -> VA (for SCB vector initialisation)


def _pr(value: int):
    """Processor-register-number operand (immediate; they exceed 63)."""
    return enc.immediate(value)


class _KernelWork:
    """Emits kernel-flavoured filler work (r0-r5, absolute operands)."""

    def __init__(self, seed: int) -> None:
        self._rng = random.Random(seed)
        self._labels = 0

    def _scalar(self):
        # Displacement off r5, the kernel-data base register every
        # handler establishes (VMS-style R-based static addressing).
        offset = KSCALARS + 4 * self._rng.randrange(KSCALAR_BYTES // 4)
        return enc.displacement(5, offset)

    def emit_base(self, b: ProgramBuilder) -> None:
        """Load the kernel-data base register (r5)."""
        b.emit("MOVL", enc.immediate(KDATA_VA), enc.register(5))

    def emit(self, b: ProgramBuilder, n: int, label_prefix: str) -> None:
        """Emit ``n`` kernel work items into ``b``."""
        rng = self._rng
        for i in range(n):
            roll = rng.random()
            if roll < 0.30:
                b.emit("MOVL", self._scalar(), enc.register(rng.randrange(4)))
            elif roll < 0.45:
                b.emit("MOVL", enc.register(rng.randrange(4)),
                       self._scalar())
            elif roll < 0.58:
                b.emit(rng.choice(("ADDL2", "SUBL2", "BISL2", "BICL2")),
                       enc.register(rng.randrange(4)), self._scalar())
            elif roll < 0.68:
                if rng.random() < 0.5:
                    b.emit("TSTL", self._scalar())
                else:
                    b.emit(rng.choice(("CMPL", "BITL")), self._scalar(),
                           enc.register(2))
            elif roll < 0.76:
                b.emit("EXTZV", enc.literal(rng.randrange(8)),
                       enc.literal(rng.choice((2, 4, 8))),
                       self._scalar(), enc.register(rng.randrange(4)))
            elif roll < 0.84:
                self._labels += 1
                skip = f"{label_prefix}_k{self._labels}"
                b.emit("TSTL", self._scalar())
                b.branch(rng.choice(("BNEQ", "BEQL", "BGEQ")), skip)
                b.emit("INCL", enc.register(3))
                b.label(skip)
            elif roll < 0.92:
                if rng.random() < 0.7:
                    b.emit(rng.choice(("MOVZWL", "MCOML")), self._scalar(),
                           enc.register(rng.randrange(4)))
                else:
                    b.emit(rng.choice(("INCL", "DECL")), self._scalar())
            else:
                b.emit(rng.choice(("PROBER", "PROBEW")), enc.literal(0),
                       enc.literal(4), self._scalar())

    def emit_queue_pair(self, b: ProgramBuilder, site: int) -> None:
        """A private INSQUE/REMQUE pair on kernel queue ``site``."""
        head = enc.displacement(5, KQUEUE_HEADS + 16 * site)
        entry = enc.displacement(5, KQUEUE_ENTRIES + 16 * site)
        b.emit("INSQUE", entry, head)
        b.emit("REMQUE", entry, enc.register(0))


def build_kernel(scb_pa: int, seed: int = 780) -> KernelImage:
    """Generate and assemble the kernel image at KCODE_VA."""
    b = ProgramBuilder()
    work = _KernelWork(seed)
    handlers = {}

    def mark(name: str) -> None:
        b.label(name)
        handlers[name] = KCODE_VA + b.offset

    # -- boot ------------------------------------------------------------
    mark("boot")
    b.emit("MTPR", enc.immediate(scb_pa), _pr(PR_SCBB))
    b.emit("MTPR", enc.literal(1), _pr(PR_ICCS))
    b.emit("MFPR", _pr(PR_NEXTPCB), enc.register(0))
    b.emit("MTPR", enc.register(0), _pr(PR_PCBB))
    b.emit("LDPCTX")
    b.emit("REI")

    # -- Null process: branch-to-self awaiting an interrupt (§2.2) --------
    mark("null")
    b.branch("BRB", "null")

    # -- page-fault handler ------------------------------------------------
    mark("page_fault")
    b.emit("MOVL", enc.autoincrement(14), enc.register(0))  # fault VA
    work.emit_base(b)
    work.emit(b, 4, "pf")
    b.emit("MTPR", enc.register(0), _pr(PR_PFFIX))
    b.emit("REI")

    # -- CHMK system-service dispatcher --------------------------------------
    mark("chmk")
    b.emit("MOVL", enc.autoincrement(14), enc.register(0))  # service code
    work.emit_base(b)
    work.emit(b, 2, "chmk")
    b.case("CASEL", enc.register(0), enc.literal(0), enc.literal(3),
           ["svc_null", "svc_compute", "svc_qio", "svc_queue"])
    b.emit("REI")  # out-of-range service code

    b.label("svc_null")
    work.emit(b, 6, "svc0")
    b.emit("REI")

    b.label("svc_compute")
    work.emit(b, 20, "svc1")
    work.emit_queue_pair(b, 0)
    work.emit(b, 6, "svc1b")
    b.emit("REI")

    b.label("svc_qio")
    work.emit(b, 10, "svc2")
    work.emit_queue_pair(b, 1)
    b.emit("MTPR", enc.literal(0), _pr(PR_BLOCK))
    b.emit("MTPR", enc.literal(SOFTINT_RESCHED), _pr(PR_SIRR))
    work.emit(b, 4, "svc2b")
    b.emit("REI")

    b.label("svc_queue")
    work.emit_queue_pair(b, 2)
    work.emit(b, 8, "svc3")
    b.emit("REI")

    # -- clock interrupt -------------------------------------------------------
    mark("clock")
    b.emit("PUSHR", enc.literal(HANDLER_SAVE_MASK))
    work.emit_base(b)
    work.emit(b, 5, "clk")
    b.emit("MTPR", enc.literal(1), _pr(PR_ICCS))
    b.emit("MFPR", _pr(PR_QUANTUM), enc.register(0))
    b.emit("TSTL", enc.register(0))
    b.branch("BEQL", "clock_done")
    b.emit("MTPR", enc.literal(SOFTINT_RESCHED), _pr(PR_SIRR))
    b.label("clock_done")
    work.emit(b, 3, "clk2")
    b.emit("POPR", enc.literal(HANDLER_SAVE_MASK))
    b.emit("REI")

    # -- terminal interrupt ------------------------------------------------------
    mark("terminal")
    b.emit("PUSHR", enc.literal(HANDLER_SAVE_MASK))
    work.emit_base(b)
    work.emit(b, 5, "tty")
    work.emit_queue_pair(b, 3)
    b.emit("MFPR", _pr(PR_TTYAST), enc.register(0))
    b.emit("TSTL", enc.register(0))
    b.branch("BEQL", "tty_done")
    b.emit("MTPR", enc.literal(SOFTINT_AST), _pr(PR_SIRR))
    b.label("tty_done")
    work.emit(b, 3, "tty2")
    b.emit("POPR", enc.literal(HANDLER_SAVE_MASK))
    b.emit("REI")

    # -- AST delivery (software interrupt level 2) ---------------------------------
    mark("ast")
    b.emit("PUSHR", enc.literal(HANDLER_SAVE_MASK))
    work.emit_base(b)
    work.emit(b, 12, "ast")
    work.emit_queue_pair(b, 4)
    b.emit("POPR", enc.literal(HANDLER_SAVE_MASK))
    b.emit("REI")

    # -- rescheduling (software interrupt level 3) ----------------------------------
    mark("resched")
    b.emit("SVPCTX")
    work.emit_base(b)
    work.emit_queue_pair(b, 5)
    work.emit(b, 4, "sched")
    b.emit("MFPR", _pr(PR_NEXTPCB), enc.register(0))
    b.emit("MTPR", enc.register(0), _pr(PR_PCBB))
    b.emit("LDPCTX")
    b.emit("REI")

    image = b.assemble(KCODE_VA)
    return KernelImage(code=image.data, base=KCODE_VA,
                       boot_entry=handlers["boot"],
                       null_entry=handlers["null"], handlers=handlers)


def initial_kernel_data(seed: int = 781) -> bytes:
    """Initial contents of the kernel data area (queues + scalars)."""
    rng = random.Random(seed)
    out = bytearray(rng.randbytes(KSCALARS + KSCALAR_BYTES))
    for site in range(8):
        head_va = KDATA_VA + KQUEUE_HEADS + 16 * site
        offset = KQUEUE_HEADS + 16 * site
        out[offset:offset + 4] = struct.pack("<I", head_va)
        out[offset + 4:offset + 8] = struct.pack("<I", head_va)
    return bytes(out)
