"""Process objects for the modeled executive."""

from __future__ import annotations

#: Process scheduling states.
READY = "ready"
RUNNING = "running"
BLOCKED = "blocked"


class Process:
    """One simulated timesharing process.

    Carries the identifiers the executive and scheduler need: the address
    space, the physical PCB base that LDPCTX/SVPCTX use, the kernel-stack
    virtual address, and the scheduling state.
    """

    def __init__(self, name: str, asid: int, space, pcb_base: int,
                 kernel_stack_top: int, program=None) -> None:
        self.name = name
        self.asid = asid
        self.space = space
        self.pcb_base = pcb_base
        self.kernel_stack_top = kernel_stack_top
        self.program = program
        self.state = READY
        self.wake_cycle = 0
        self.is_null = False

    def __repr__(self) -> str:
        return f"Process({self.name}, asid={self.asid}, {self.state})"
