"""The executive's scheduling policy (the Python half of the kernel).

The *mechanism* of a context switch is VAX code — the rescheduling
software-interrupt handler executes SVPCTX / MTPR PCBB / LDPCTX / REI on
the simulated machine.  The *policy* (who runs next, who is blocked, when
the quantum expires) lives here and is consulted by that handler through
pseudo processor registers (PR_NEXTPCB, PR_BLOCK, PR_QUANTUM); see
DESIGN.md on this division.

The scheduler also implements the paper's Null-process exclusion: when no
process is ready it selects the Null process and gates the histogram
board and tracer off, exactly as §2.2 excludes Null from measurement.
"""

from __future__ import annotations

import random

from repro.osim.process import BLOCKED, READY, RUNNING, Process


class Scheduler:
    """Round-robin scheduler with blocking and quantum expiry."""

    def __init__(self, machine, null_process: Process,
                 quantum_ticks: int = 2, io_block_cycles: int = 12000,
                 seed: int = 7) -> None:
        self.machine = machine
        self.null_process = null_process
        self.quantum_ticks = quantum_ticks
        self.io_block_cycles = io_block_cycles
        self.processes: list = []
        self.current: Process = null_process
        self._ticks_used = 0
        self._rng = random.Random(seed)
        #: AST pacing for the terminal handler: every Nth char posts one.
        self.ast_interval = 4
        self._tty_chars = 0

    def add_process(self, process: Process) -> None:
        """Register a schedulable process."""
        self.processes.append(process)

    # -- pseudo-PR handlers ------------------------------------------------

    def next_pcb(self) -> int:
        """PR_NEXTPCB: pick the next process; returns its PCB base.

        True round-robin: the run order rotates, so every ready process
        gets a turn (always picking the first ready process in a fixed
        order would starve the tail of the queue).
        """
        self._wake(self.machine.cycles)
        if self.current.state == RUNNING and not self.current.is_null:
            self.current.state = READY
        chosen = None
        for process in self.processes:
            if process.state == READY:
                chosen = process
                break
        if chosen is not None:
            # Rotate the chosen process to the back of the queue.
            self.processes.remove(chosen)
            self.processes.append(chosen)
        else:
            chosen = self.null_process
        chosen.state = RUNNING
        self.current = chosen
        self._ticks_used = 0
        self._gate(not chosen.is_null)
        return chosen.pcb_base

    def block_current(self, hint: int) -> None:
        """PR_BLOCK: current process enters an I/O wait."""
        if self.current.is_null:
            return
        jitter = self._rng.randrange(self.io_block_cycles // 2)
        self.current.state = BLOCKED
        self.current.wake_cycle = (self.machine.cycles
                                   + self.io_block_cycles + jitter + hint)

    def quantum_expired(self) -> int:
        """PR_QUANTUM: consulted by the clock interrupt handler."""
        self._wake(self.machine.cycles)
        self._ticks_used += 1
        someone_ready = any(p.state == READY for p in self.processes)
        if self.current.is_null:
            return 1 if someone_ready else 0
        if self.current.state == BLOCKED:
            return 1
        if self._ticks_used >= self.quantum_ticks and someone_ready:
            return 1
        return 0

    def tty_ast_due(self) -> int:
        """PR_TTYAST: the terminal handler posts an AST every Nth char."""
        self._tty_chars += 1
        return 1 if self._tty_chars % self.ast_interval == 0 else 0

    # -- internals ------------------------------------------------------------

    def _wake(self, now: int) -> None:
        for process in self.processes:
            if process.state == BLOCKED and process.wake_cycle <= now:
                process.state = READY

    def _gate(self, enabled: bool) -> None:
        machine = self.machine
        machine.board.enabled = enabled
        machine.tracer.gate(enabled, machine.cycles)
