"""Machine-wide configuration for the simulated VAX-11/780.

The defaults reproduce the 11/780 as described by the paper (§2.1) and its
companion cache/TB studies: a 200 ns microcycle, an 8 KB two-way
write-through cache with 8-byte blocks, a one-longword (4-byte) write
buffer that recycles in 6 cycles, a 6-cycle read-miss penalty in the
simplest case, an 8-byte instruction buffer, and a 128-entry two-way
translation buffer split into system and process halves.

Benchmarks that ablate an implementation choice (cache size, TB size,
write-buffer depth...) construct a modified :class:`MachineParams` instead
of monkey-patching the machine.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace


def _is_pow2(n: int) -> bool:
    return n > 0 and not (n & (n - 1))


@dataclass(frozen=True)
class MachineParams:
    """Implementation parameters of the simulated 11/780.

    Construction validates the geometry: sizes must be positive, the
    cache and TB must divide evenly into their ways and blocks, and the
    derived set counts must be powers of two (both structures index by
    address bits, not modulo).  Inconsistent configurations raise
    :class:`ValueError` with the offending numbers instead of silently
    mis-deriving ``cache_sets``/``tb_sets_per_half``.
    """

    #: EBOX microinstruction time in nanoseconds (the paper's cycle).
    cycle_ns: int = 200

    #: Physical memory size in bytes (the paper's machines had 8 MB).
    memory_bytes: int = 8 * 1024 * 1024

    # -- data cache ------------------------------------------------------
    cache_bytes: int = 8 * 1024
    cache_ways: int = 2
    cache_block_bytes: int = 8
    #: Cycles an EBOX read stalls on a cache miss with an idle SBI (§4.3).
    read_miss_penalty: int = 6

    # -- write path ------------------------------------------------------
    #: Write-buffer recycle time: a write stalls if issued fewer than this
    #: many cycles after the previous write (§2.1, §4.3).
    write_recycle: int = 6
    #: Number of outstanding buffered writes (the 780 has one longword).
    write_buffer_depth: int = 1

    # -- instruction buffer ----------------------------------------------
    ib_bytes: int = 8
    #: Bytes delivered to the IB per successful I-stream cache read.
    ib_fill_bytes: int = 4

    # -- translation buffer ----------------------------------------------
    tb_entries: int = 128
    tb_ways: int = 2
    #: Page size of the VAX architecture.
    page_bytes: int = 512

    # -- decode overlap (§5: "saving the non-overlapped I-Decode cycle
    # -- could save one cycle on each non-PC-changing instruction.  (The
    # -- later VAX model 11/750 did exactly this.)") ------------------------
    #: When True, the machine models the 11/750-style improvement: the
    #: decode cycle overlaps the previous instruction's execution except
    #: after a PC change (which restarts the pipeline).
    overlapped_decode: bool = False

    # -- microcode patches -------------------------------------------------
    #: Microcode families carrying a field-installed patch.  The 11/780
    #: takes one abort cycle per executed patched microword (§5's Aborts
    #: row: "one for each microcode trap and one for each microcode
    #: patch"); the measured machines ran patched microcode.
    patched_families: tuple = ("ADDSUB", "CALL", "CHM", "MOVC")

    # -- timing policy (machine backends) ---------------------------------
    #: When False the machine has no autonomous I-Fetch/IB engine (the
    #: MicroVAX-class single-chip implementations fetch I-stream bytes as
    #: part of decode): decoded bytes cost nothing per byte and the fetch
    #: time is folded into the per-group execute cycles instead
    #: (``exec_extra_cycles``).  The 11/780 keeps the prefetching IB.
    ib_prefetch: bool = True

    #: Extra execute-flow compute cycles per instruction, by opcode group:
    #: ``((group_name, cycles), ...)`` with names from
    #: :class:`repro.arch.groups.OpcodeGroup` members.  This is the
    #: per-category base-cycle table of a slower microcoded
    #: implementation, layered on the 780 flows rather than forking them.
    exec_extra_cycles: tuple = ()

    #: Executor families the machine does not implement (subset-VAX
    #: backends).  Executing one raises
    #: :class:`repro.cpu.faults.UnsupportedInstructionError`.
    unsupported_families: tuple = ()

    def __post_init__(self) -> None:
        positive = ("cycle_ns", "memory_bytes", "cache_bytes",
                    "cache_ways", "cache_block_bytes", "write_buffer_depth",
                    "ib_bytes", "ib_fill_bytes", "tb_entries", "tb_ways",
                    "page_bytes")
        for name in positive:
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool) \
                    or value < 1:
                raise ValueError(
                    f"{name} must be a positive integer, got {value!r}")
        for name in ("read_miss_penalty", "write_recycle"):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool) \
                    or value < 0:
                raise ValueError(
                    f"{name} must be a non-negative integer, got {value!r}")
        row = self.cache_ways * self.cache_block_bytes
        if self.cache_bytes % row:
            raise ValueError(
                f"cache_bytes={self.cache_bytes} is not divisible by "
                f"cache_ways*cache_block_bytes={row}")
        if not _is_pow2(self.cache_bytes // row):
            raise ValueError(
                f"cache geometry {self.cache_bytes}B/{self.cache_ways}-way/"
                f"{self.cache_block_bytes}B-block implies "
                f"{self.cache_bytes // row} sets, which is not a power "
                "of two (the cache indexes by address bits)")
        if self.tb_entries % (2 * self.tb_ways):
            raise ValueError(
                f"tb_entries={self.tb_entries} is not divisible by "
                f"2*tb_ways={2 * self.tb_ways} (the TB is split into "
                "system and process halves)")
        if not _is_pow2(self.tb_entries // (2 * self.tb_ways)):
            raise ValueError(
                f"tb_entries={self.tb_entries}, tb_ways={self.tb_ways} "
                f"imply {self.tb_entries // (2 * self.tb_ways)} sets per "
                "half, which is not a power of two")
        if not _is_pow2(self.page_bytes):
            raise ValueError(
                f"page_bytes must be a power of two, got {self.page_bytes}")
        if self.ib_fill_bytes > self.ib_bytes:
            raise ValueError(
                f"ib_fill_bytes={self.ib_fill_bytes} exceeds "
                f"ib_bytes={self.ib_bytes}")
        if not isinstance(self.ib_prefetch, bool):
            raise ValueError(
                f"ib_prefetch must be a bool, got {self.ib_prefetch!r}")
        for entry in self.exec_extra_cycles:
            ok = (isinstance(entry, tuple) and len(entry) == 2
                  and isinstance(entry[0], str)
                  and isinstance(entry[1], int)
                  and not isinstance(entry[1], bool) and entry[1] >= 0)
            if not ok:
                raise ValueError(
                    "exec_extra_cycles entries must be (group_name, "
                    f"non-negative cycles) pairs, got {entry!r}")
        seen = [name for name, _ in self.exec_extra_cycles]
        if len(seen) != len(set(seen)):
            raise ValueError(
                f"exec_extra_cycles names duplicate a group: {seen}")
        for family in self.unsupported_families:
            if not isinstance(family, str):
                raise ValueError(
                    "unsupported_families entries must be family name "
                    f"strings, got {family!r}")

    def with_overrides(self, **kwargs) -> "MachineParams":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)

    @classmethod
    def field_names(cls) -> tuple:
        """All parameter field names, in declaration order."""
        return tuple(f.name for f in fields(cls))

    @property
    def cache_sets(self) -> int:
        """Number of cache sets implied by size, ways and block size."""
        return self.cache_bytes // (self.cache_block_bytes * self.cache_ways)

    @property
    def tb_sets_per_half(self) -> int:
        """TB sets in each of the system/process halves."""
        return self.tb_entries // (2 * self.tb_ways)


#: The stock 11/780 configuration used by all paper reproductions.
VAX780 = MachineParams()
