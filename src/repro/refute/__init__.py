"""repro.refute — the assumption-refutation loop.

A declarative registry of every quantitative assumption the
reproduction rests on (:mod:`repro.refute.assumptions`), a campaign
planner that sweeps the configuration space hunting for violations and
shrinks each one to a minimal reproducer
(:mod:`repro.refute.planner`), and a set of planted timing-rule bugs
(:mod:`repro.refute.perturb`) the self-check campaign must catch —
proof the loop can actually fire.
"""

from repro.refute.assumptions import (ASSUMPTIONS, ASSUMPTIONS_BY_NAME,
                                      Assumption, ProbePoint,
                                      shrink_measurement)
from repro.refute.perturb import (PERTURBATIONS, Perturbation,
                                  perturbation, perturbation_names)
from repro.refute.planner import (CAMPAIGNS, REFUTATIONS_SCHEMA,
                                  CampaignResult, CampaignSpec,
                                  RefuteError, run_campaign,
                                  run_self_check)

__all__ = [
    "ASSUMPTIONS", "ASSUMPTIONS_BY_NAME", "Assumption", "ProbePoint",
    "shrink_measurement",
    "PERTURBATIONS", "Perturbation", "perturbation",
    "perturbation_names",
    "CAMPAIGNS", "REFUTATIONS_SCHEMA", "CampaignResult", "CampaignSpec",
    "RefuteError", "run_campaign", "run_self_check",
]
