"""The declarative assumption registry and its probe/shrink machinery.

Every quantitative claim this reproduction rests on is written down
here as an :class:`Assumption` — a named contract with a documented
bound — together with the code that *probes* it at a concrete
:class:`ProbePoint` and *shrinks* a violation to a minimal reproducer:

* ``conservation-laws`` — the 24 exact accounting laws of
  :mod:`repro.validate.invariants` hold on every measurement.
* ``capability-invariants`` — cross-machine feature laws: a machine
  (or override point) without the IB engine never references the IB,
  one without overlapped decode never overlaps a decode.
* ``analytical-cpi-bound`` — the analytical tier's CPI estimate stays
  within its recorded error bound of a full simulation (5% in the
  amortized envelope, 15% in the cold-start segment and the
  documented extrapolation window).
* ``ubench-exactness`` — every microbenchmark kernel's measured busy
  cycles equal the model's prediction exactly, and reconcile.
* ``fastpath-reference-identity`` — the optimised EBOX is bit-identical
  to the per-cycle reference spec on seeded random workloads.
* ``batch-scalar-identity`` — the lockstep batch engine is
  bit-identical to independent scalar runs at every capture boundary.

Violations are plain dicts (JSON-able end to end) so probe tasks can
cross process boundaries and the campaign report can be committed.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.machines.analytical import WorkloadMix


@dataclass(frozen=True)
class Assumption:
    """One named contract the campaign tries to refute."""

    name: str
    #: How the planner probes it: ``measurement`` (needs a full
    #: simulated Measurement per point), ``analytical`` (store-backed
    #: sweep records), ``ubench`` (the kernel suite), or
    #: ``differential`` (the lockstep fuzzers).
    kind: str
    description: str
    #: Human-readable statement of the bound a violation crosses.
    bound: str


ASSUMPTIONS = (
    Assumption(
        name="conservation-laws", kind="measurement",
        description="the exact accounting laws of repro.validate hold "
                    "on every measurement",
        bound="every law exact (== / <=), zero tolerance"),
    Assumption(
        name="capability-invariants", kind="measurement",
        description="absent machine features leave zero trace: no IB "
                    "references or IB stalls without the fill engine, "
                    "no overlapped decodes without the feature",
        bound="feature counters exactly zero"),
    Assumption(
        name="analytical-cpi-bound", kind="analytical",
        description="the analytical CPI tier matches a full simulation "
                    "within its recorded error bound",
        bound="rel err <= 0.05 amortized, <= 0.15 in the cold-start "
              "segment or extrapolated"),
    Assumption(
        name="ubench-exactness", kind="ubench",
        description="every microbenchmark kernel measures exactly its "
                    "predicted busy cycles and reconciles",
        bound="busy delta exactly zero, overhead fully accounted"),
    Assumption(
        name="fastpath-reference-identity", kind="differential",
        description="the optimised EBOX is bit-identical to the "
                    "per-cycle reference spec",
        bound="architectural state and histograms identical"),
    Assumption(
        name="batch-scalar-identity", kind="differential",
        description="the lockstep batch engine is bit-identical to "
                    "independent scalar runs at every capture boundary",
        bound="every measurement observable identical"),
)

ASSUMPTIONS_BY_NAME = {a.name: a for a in ASSUMPTIONS}


@dataclass(frozen=True)
class ProbePoint:
    """One concrete place an assumption is probed.

    ``workload`` is ``None`` for probes that do not run a workload (the
    ubench suite, the differential fuzzers).  ``overrides`` is a sorted
    tuple of MachineParams (field, value) pairs, exactly the explore
    subsystem's convention.
    """

    machine: str
    instructions: int
    seed: int
    workload: str = None
    overrides: tuple = ()

    def label(self) -> str:
        parts = [self.workload or "-", self.machine,
                 f"n={self.instructions}", f"seed={self.seed}"]
        parts += [f"{name}={value}" for name, value in self.overrides]
        return " ".join(parts)

    def to_json(self) -> dict:
        return {"workload": self.workload, "machine": self.machine,
                "instructions": self.instructions, "seed": self.seed,
                "overrides": {name: value
                              for name, value in self.overrides}}


def _json_value(value):
    """Coerce an observed/predicted value into something JSON-able."""
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    if isinstance(value, (tuple, list)):
        return [_json_value(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _json_value(item)
                for key, item in value.items()}
    return repr(value)


def violation(assumption: str, point: ProbePoint, field: str,
              observed, predicted, note: str = "",
              reproducer: dict = None) -> dict:
    """One refutation record: the witness and its evidence."""
    delta = None
    if isinstance(observed, (int, float)) \
            and isinstance(predicted, (int, float)) \
            and not isinstance(observed, bool) \
            and not isinstance(predicted, bool):
        delta = round(observed - predicted, 9)
    return {"assumption": assumption, "point": point.to_json(),
            "label": point.label(), "field": field,
            "observed": _json_value(observed),
            "predicted": _json_value(predicted), "delta": delta,
            "note": note, "reproducer": reproducer}


# -- measurement probes --------------------------------------------------


def effective_params(point: ProbePoint):
    """The MachineParams the point actually simulates with."""
    from repro.machines.registry import get_machine

    base = get_machine(point.machine).params
    return base.with_overrides(**dict(point.overrides))


def simulate_point(point: ProbePoint, plant: str = None):
    """Fresh, direct simulation of one probe point.

    Deliberately bypasses the workload engine's process-wide memo (and
    any store): probe points carry params overrides the memo key does
    not encode, and a *planted* run must never poison a cache another
    caller could hit.
    """
    from repro.analysis.measurement import Measurement
    from repro.machines.registry import get_machine
    from repro.osim.executive import Executive
    from repro.refute.perturb import perturbation
    from repro.workloads.registry import get_workload

    spec = get_machine(point.machine)
    profile = get_workload(point.workload).profile
    with perturbation(plant):
        machine = spec.build(effective_params(point))
        executive = Executive(machine, spec.adapt_profile(profile),
                              seed=point.seed)
        executive.boot()
        executive.run(point.instructions)
        return Measurement.capture(point.workload, machine)


def probe_conservation(point: ProbePoint, measurement) -> dict:
    """Evaluate the exact conservation laws at one point.

    The machine-capability laws are handled by ``capability-invariants``
    (they need the point's *effective* params, not the registry's), so
    the report here runs the unconditional laws only.
    """
    from repro.validate import check_measurement

    report = check_measurement(measurement, machine=None)
    violations = [
        violation("conservation-laws", point, check.name, check.actual,
                  check.expected,
                  note=f"{check.note} (relation {check.relation})")
        for check in report.failures()]
    return {"assumption": "conservation-laws", "point": point.to_json(),
            "label": point.label(), "checks": len(report.checks),
            "ok": not violations,
            "margin": 0.0 if violations else 1.0,
            "violations": violations}


def probe_capability(point: ProbePoint, measurement) -> dict:
    """Feature laws against the point's *effective* params.

    This is what covers the cross-machine invariants — "the 78032
    never overlaps decode" — and their override-point generalisations
    ("a 780 swept to ``overlapped_decode=False`` never overlaps one
    either"), which the registry-keyed laws in
    :func:`repro.validate.check_measurement` cannot see.
    """
    from repro.analysis.reduction import Reduction
    from repro.ucode.rows import Column

    params = effective_params(point)
    checks = []
    if not params.ib_prefetch:
        checks.append(("ib-references", measurement.memory.ib_references,
                       "no IB fill engine, no IB references"))
        checks.append(
            ("ib-stall-cycles",
             Reduction(measurement.histogram).column_total(Column.IBSTALL),
             "no IB fill engine, no IB-stall cycles"))
    if not params.overlapped_decode:
        checks.append(("overlapped-decodes",
                       measurement.tracer.overlapped_decodes,
                       "overlapped decode is absent from this point"))
    violations = [
        violation("capability-invariants", point, field, actual, 0,
                  note=note)
        for field, actual, note in checks if actual != 0]
    return {"assumption": "capability-invariants",
            "point": point.to_json(), "label": point.label(),
            "checks": len(checks), "ok": not violations,
            "margin": 0.0 if violations else 1.0,
            "violations": violations}


MEASUREMENT_PROBES = {
    "conservation-laws": probe_conservation,
    "capability-invariants": probe_capability,
}


def shrink_measurement(assumption: str, point: ProbePoint,
                       plant: str = None, limit: int = 20) -> dict:
    """Bisect the instruction budget to the smallest failing one.

    Accounting skew persists once introduced (the deterministic run at
    a smaller budget is a prefix of the larger one), so failure is
    monotone in the budget and a binary search finds the minimum; the
    returned reproducer carries the violations re-observed *at* the
    minimal budget, so the evidence matches the reproducer exactly.
    ``limit`` bounds the simulations spent (the search needs at most
    ``log2(budget)`` of them).
    """
    probe = MEASUREMENT_PROBES[assumption]

    def failing(n):
        small = replace(point, instructions=n)
        result = probe(small, simulate_point(small, plant=plant))
        return None if result["ok"] else result

    steps = 0
    lo, hi = 1, point.instructions
    best = None
    while lo < hi and steps < limit:
        mid = (lo + hi) // 2
        steps += 1
        result = failing(mid)
        if result is None:
            lo = mid + 1
        else:
            hi = mid
            best = result
    if best is None or best["point"]["instructions"] != hi:
        steps += 1
        best = failing(hi)
    if best is None:
        # Non-monotone failure (should not happen for accounting skew);
        # fall back to the original budget as its own reproducer.
        steps += 1
        best = failing(point.instructions)
        hi = point.instructions
    return {"kind": "budget-bisection", "assumption": assumption,
            "workload": point.workload, "machine": point.machine,
            "seed": point.seed, "instructions": hi,
            "overrides": {name: value
                          for name, value in point.overrides},
            "simulations": steps,
            "violations": best["violations"] if best else []}


# -- analytical probes ---------------------------------------------------


def mix_from_records(workload: str, machine: str, anchors: tuple,
                     records: dict) -> WorkloadMix:
    """Build a :class:`WorkloadMix` from explore-store sweep records.

    ``records`` maps instruction budget -> store record; the records
    carry the full Table-8 ``cells`` reduction, which is exactly what
    :func:`repro.machines.calibrate` derives from a fresh simulation —
    so a calibration rides the store instead of re-simulating.
    """
    anchors = tuple(sorted(anchors))
    keys = sorted({(row, col)
                   for n in anchors
                   for row, cols in records[n]["cells"].items()
                   for col in cols})
    cells = tuple(
        (row, col,
         tuple(float(records[n]["cells"].get(row, {}).get(col, 0))
               for n in anchors))
        for row, col in keys)
    return WorkloadMix(workload, machine, anchors, cells, group_mix=())


def record_cpi(record: dict) -> float:
    """The simulated reduction CPI a store record encodes.

    Sum of the Table-8 cells over measured instructions — the same
    quantity ``check_estimate`` computes from a fresh simulation.
    """
    total = sum(cycles for cols in record["cells"].values()
                for cycles in cols.values())
    return total / record["instructions_measured"]


def probe_analytical(mix: WorkloadMix, point: ProbePoint,
                     simulated_cpi: float) -> dict:
    """Confront one analytical estimate with the simulated ground truth.

    The margin is the headroom to the estimate's own bound (0.0 = at or
    over the bound, 1.0 = a perfect match); the planner refines the
    smallest margins with extra probes nearby.
    """
    estimate = mix.estimate(point.instructions)
    rel_err = abs(estimate.cpi - simulated_cpi) / simulated_cpi \
        if simulated_cpi else 0.0
    bound = estimate.error_bound
    ok = rel_err <= bound
    margin = max(0.0, 1.0 - (rel_err / bound if bound else 1.0))
    violations = []
    if not ok:
        violations.append(violation(
            "analytical-cpi-bound", point, "cpi",
            round(simulated_cpi, 6), round(estimate.cpi, 6),
            note=f"rel err {rel_err:.6f} > bound {bound} "
                 f"(extrapolated={estimate.extrapolated}, "
                 f"transient={estimate.transient})",
            reproducer={
                "kind": "analytical-estimate", "workload": mix.workload,
                "machine": mix.machine, "anchors": list(mix.anchors),
                "seed": point.seed,
                "instructions": point.instructions,
                "analytical_cpi": round(estimate.cpi, 6),
                "simulated_cpi": round(simulated_cpi, 6),
                "rel_err": round(rel_err, 6), "bound": bound,
                "extrapolated": estimate.extrapolated,
                "transient": estimate.transient}))
    return {"assumption": "analytical-cpi-bound",
            "point": point.to_json(), "label": point.label(),
            "checks": 1, "ok": ok, "margin": round(margin, 6),
            "rel_err": round(rel_err, 6), "bound": bound,
            "extrapolated": estimate.extrapolated,
            "transient": estimate.transient,
            "violations": violations}


# -- ubench probes -------------------------------------------------------


def probe_ubench(machine: str, seed: int, jobs: int = 1,
                 plant: str = None) -> dict:
    """Run the smoke kernel suite on one machine; exactness is the law.

    A kernel is its own minimal reproducer — each is a fixed
    straight-line program measured at a fixed copy count — so no
    shrinking pass is needed.
    """
    from repro.refute.perturb import perturbation
    from repro.ubench import runner, suite

    point = ProbePoint(machine=machine, instructions=0, seed=seed,
                       workload=None)
    with perturbation(plant):
        kernels = suite.select(smoke=True, machine=machine)
        # A planted run must stay in-process: pool workers would not
        # inherit the patch under a spawn start method.
        results = runner.run_suite(
            kernels, jobs=1 if plant is not None else jobs,
            machine=machine)
    violations = []
    for result in results:
        if result["exact"] and result["reconciled"]:
            continue
        violations.append(violation(
            "ubench-exactness", point, f"kernel:{result['kernel']}",
            {"exact": result["exact"],
             "reconciled": result["reconciled"],
             "busy_delta": result["busy_delta"]},
            {"exact": True, "reconciled": True, "busy_delta": {}},
            note="measured busy cycles differ from the model's "
                 "prediction",
            reproducer={"kind": "kernel", "kernel": result["kernel"],
                        "machine": machine,
                        "copies": result["measured_copies"],
                        "instructions": result["instructions"]}))
    return {"assumption": "ubench-exactness", "point": point.to_json(),
            "label": f"ubench-smoke {machine}", "checks": len(results),
            "ok": not violations,
            "margin": 0.0 if violations else 1.0,
            "violations": violations}


# -- differential probes -------------------------------------------------


def _profile_overrides(profile) -> dict:
    """The fuzz profile's deltas against its standard base profile."""
    from dataclasses import fields as dc_fields

    from repro.workloads.registry import WORKLOADS

    base = next((spec.profile for spec in WORKLOADS.values()
                 if spec.trace is None
                 and profile.name.endswith(spec.name)), None)
    if base is None:
        return {}
    return {spec.name: _json_value(getattr(profile, spec.name))
            for spec in dc_fields(profile)
            if spec.name != "name"
            and getattr(profile, spec.name) != getattr(base, spec.name)}


def probe_differential(assumption: str, kind: str, count: int,
                       seed: int, instructions: int, jobs: int = 1,
                       plant: str = None, progress=None) -> dict:
    """Fuzz one engine-identity assumption and shrink any divergence.

    ``kind`` selects the fuzz axis (``reference`` or ``batch``); the
    shrinking happens inside :mod:`repro.validate.differential`'s
    workers, so the reproducers here are already minimal (the reference
    axis guarantees a window of at most
    :data:`~repro.validate.differential.WINDOW` instructions).
    """
    from repro.validate.differential import _fuzz_loop

    point = ProbePoint(machine="vax780", instructions=instructions,
                       seed=seed, workload=None)
    results = _fuzz_loop(count, seed, instructions, progress, kind,
                         jobs=jobs, plant=plant)
    violations = []
    for result in results:
        if result["ok"]:
            continue
        reproducer = result["reproducer"]
        divergence = reproducer.divergence
        case = reproducer.case
        violations.append(violation(
            assumption, point, divergence.field, divergence.fast,
            divergence.reference,
            note=f"diverged at boundary {divergence.step} "
                 f"({divergence.instructions} measured)",
            reproducer={
                "kind": f"fuzz-{kind}", "profile": case.profile.name,
                "profile_overrides": _profile_overrides(case.profile),
                "seed": case.seed, "instructions": case.instructions,
                "field": divergence.field, "step": divergence.step,
                "window": [[step, f"{pc:#010x}", mnemonic]
                           for step, pc, mnemonic in divergence.window],
            }))
    return {"assumption": assumption, "point": point.to_json(),
            "label": f"fuzz-{kind} x{count} n={instructions}",
            "checks": len(results), "ok": not violations,
            "margin": 0.0 if violations else 1.0,
            "violations": violations}
