"""Planted timing-rule perturbations for the refutation self-check.

A refutation loop that never fires is indistinguishable from one that
cannot fire.  Each perturbation here is a deliberately wrong one-line
change to a timing rule — the off-by-ones a real regression would
introduce — installed behind a context manager instead of being edited
into the source.  The self-check campaign runs once per plant and must
detect every one, shrink it to a minimal reproducer, and attribute it
to the assumptions named in ``expect``; a plant that slips through
means the loop itself is broken.

Perturbations patch *class* attributes (never instances) and the
context manager restores the originals even on error, so a planted
campaign leaves no trace in the process.  Pool workers apply their
plant inside the worker (the name travels in the task payload), so a
planted run is deterministic regardless of the multiprocessing start
method or ``--jobs``.

This module deliberately imports nothing from :mod:`repro.validate` or
:mod:`repro.refute.assumptions` (the patch targets are imported lazily
inside the installers), so the differential fuzzer can thread plants
through its worker payloads without an import cycle.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass


@dataclass(frozen=True)
class Perturbation:
    """One planted bug: what it breaks and who must catch it."""

    name: str
    description: str
    #: Assumption names that MUST flag this plant for the self-check to
    #: pass.  Other assumptions may also fire (an extra timing cycle
    #: breaks conservation *and* ubench exactness, say); the check only
    #: requires that ``expect`` is a subset of the detectors.
    expect: tuple
    #: Zero-argument installer; returns the undo callable.
    install: object


def _install_ib_take_extra_cycle():
    """Fast-path ``ib_take`` charges one extra, uncounted cycle.

    :class:`~repro.validate.differential.ReferenceEBox` overrides
    ``ib_take``, so only the optimised engine is skewed — the classic
    fast-path-only regression.  The extra ``tick`` advances time
    without a histogram count, so cycle conservation breaks too.
    """
    from repro.cpu.ebox import EBox

    original = EBox.ib_take

    def ib_take(self, nbytes, stall_upc):
        original(self, nbytes, stall_upc)
        self.tick(1)

    EBox.ib_take = ib_take

    def undo():
        EBox.ib_take = original

    return undo


def _install_batch_capture_extra_count():
    """The batch histogram sink inflates one bucket at capture time.

    Only the lockstep batch engine reads through the sink, so scalar
    runs are untouched and the batch↔scalar identity is the one
    contract that can see it.
    """
    from repro.batch.histograms import BatchHistogramSink

    original = BatchHistogramSink.capture

    def capture(self, row, board):
        original(self, row, board)
        self.nonstalled[row][7] += 1
        return self.histogram(row)

    BatchHistogramSink.capture = capture

    def undo():
        BatchHistogramSink.capture = original

    return undo


def _install_stall_charge_dropped():
    """Each board silently drops one cycle from its first stall charge.

    Every engine shares :class:`~repro.monitor.histogram.HistogramBoard`,
    so the batch↔scalar comparison stays clean and the conservation
    laws — histogram busy+stall must equal measured cycles — are the
    contract that must catch it.
    """
    from repro.monitor.histogram import HistogramBoard

    original = HistogramBoard.count_stall

    def count_stall(self, address, cycles):
        if self.enabled and cycles \
                and not getattr(self, "_refute_stall_dropped", False):
            self._refute_stall_dropped = True
            original(self, address, cycles - 1)
            return
        original(self, address, cycles)

    HistogramBoard.count_stall = count_stall

    def undo():
        HistogramBoard.count_stall = original

    return undo


#: name -> Perturbation, in a fixed order (the self-check iterates it).
PERTURBATIONS = {
    plant.name: plant
    for plant in (
        Perturbation(
            name="ib-take-extra-cycle",
            description="fast-path ib_take ticks one extra uncounted "
                        "cycle (fast engine only)",
            expect=("fastpath-reference-identity", "conservation-laws"),
            install=_install_ib_take_extra_cycle),
        Perturbation(
            name="batch-capture-extra-count",
            description="batch histogram sink adds 1 to nonstalled "
                        "bucket 7 at capture (batch engine only)",
            expect=("batch-scalar-identity",),
            install=_install_batch_capture_extra_count),
        Perturbation(
            name="stall-charge-dropped",
            description="each histogram board drops one cycle from its "
                        "first stall charge (every engine equally)",
            expect=("conservation-laws",),
            install=_install_stall_charge_dropped),
    )
}


def perturbation_names() -> tuple:
    """The registered plant names, in self-check order."""
    return tuple(PERTURBATIONS)


@contextmanager
def perturbation(name):
    """Install the named plant for the duration of the block.

    ``None`` is the no-op plant, so call sites can thread an optional
    plant without branching.  Unknown names raise ``ValueError`` before
    anything is patched.
    """
    if name is None:
        yield None
        return
    plant = PERTURBATIONS.get(name)
    if plant is None:
        raise ValueError(
            f"unknown perturbation {name!r}; registered plants: "
            f"{', '.join(PERTURBATIONS)}")
    undo = plant.install()
    try:
        yield plant
    finally:
        undo()
