"""The refutation campaign planner: sweep, probe, refine, shrink.

A campaign walks the (MachineParams × workload × machine × budget ×
seed) space and tries to *refute* every registered assumption
(:mod:`repro.refute.assumptions`):

1. **Analytical phase** — one explore sweep per machine over the
   calibration anchors plus the probe budgets, through the
   content-addressed :class:`~repro.explore.store.ResultStore` (a warm
   store re-probes for free).  Mixes are built from the stored Table-8
   cells and every probe budget's estimate is confronted with the
   stored simulated CPI.  Probes closest to the error bound are then
   **refined**: the lowest-margin (workload, machine) budgets get extra
   probes at the midpoints toward their neighbouring anchors, so the
   campaign spends its extra simulations where the model is weakest.
2. **Measurement phase** — fresh simulations at every (workload,
   machine, variant, budget) point, fanned out over
   :func:`~repro.workloads.parallel.run_tasks` (order-preserving, so
   results are identical at any ``--jobs``), each probed against the
   conservation laws and the capability invariants.
3. **Suite phases** — the ubench smoke suite per machine, and the two
   differential fuzz axes (fast-vs-reference, batch-vs-scalar).
4. **Shrink** — every measurement violation is bisected to its
   smallest failing budget; differential divergences arrive already
   shrunk by the fuzzer's own shrinkers.

A *planted* campaign (``plant=...``) runs with a deliberately
perturbed timing rule installed inside every worker: it skips the
analytical phase and never touches any store or memo cache, so the
perturbation cannot poison results a clean run would reuse.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.machines.registry import DEFAULT_MACHINE
from repro.obs import metrics
from repro.refute.assumptions import (ASSUMPTIONS, ProbePoint,
                                      mix_from_records, probe_analytical,
                                      probe_capability,
                                      probe_conservation,
                                      probe_differential, probe_ubench,
                                      record_cpi, shrink_measurement)
from repro.refute.perturb import PERTURBATIONS

#: Bump when the REFUTATIONS.json layout changes.
REFUTATIONS_SCHEMA = 1

#: Measurement-violation shrinks per assumption per campaign; beyond
#: the cap, violations keep their witness point as the reproducer.
SHRINK_CAP = 4


class RefuteError(ValueError):
    """An invalid campaign or plant name."""


@dataclass(frozen=True)
class CampaignSpec:
    """One declarative refutation campaign."""

    name: str
    workloads: tuple
    machines: tuple
    #: Instruction budgets probed (analytical targets and measurement
    #: points alike); deliberately off every anchor.
    budgets: tuple
    #: Calibration anchors for the analytical phase.
    anchors: tuple
    #: MachineParams override tuples probed on the default machine
    #: (subset machines are probed stock — their parameter space is
    #: the registry's business, not the campaign's).
    variants: tuple = ((),)
    #: Lowest-margin analytical probes refined with midpoint budgets.
    refine: int = 2
    fuzz_cases: int = 4
    batch_cases: int = 2
    #: Measured instructions per differential fuzz case.
    fuzz_budget: int = 300
    seed: int = 1984


STANDARD = CampaignSpec(
    name="standard",
    workloads=("timesharing-research", "timesharing-cpu-dev",
               "rte-educational", "rte-commercial", "rte-scientific"),
    machines=(DEFAULT_MACHINE, "uvax78032"),
    # 2k/4.5k/8k sit inside the anchor envelope, off every anchor;
    # 10.8k exercises the documented extrapolation window (1.2x the
    # last anchor, inside the 1.25x honor limit).
    budgets=(2_000, 4_500, 8_000, 10_800),
    anchors=(1_000, 3_000, 5_000, 7_000, 9_000),
    variants=((),
              (("overlapped_decode", True),),
              (("cache_bytes", 4_096),),
              (("tb_entries", 64),)),
    refine=2,
    fuzz_cases=6,
    batch_cases=3,
    fuzz_budget=300,
)

SMOKE = CampaignSpec(
    name="smoke",
    workloads=("timesharing-research", "rte-commercial"),
    machines=(DEFAULT_MACHINE, "uvax78032"),
    budgets=(900, 1_400),
    anchors=(400, 800, 1_200, 1_600),
    variants=((), (("overlapped_decode", True),)),
    refine=1,
    fuzz_cases=3,
    batch_cases=2,
    fuzz_budget=150,
)

CAMPAIGNS = {spec.name: spec for spec in (STANDARD, SMOKE)}


def _measurement_probe_task(payload) -> dict:
    """Worker entry point (top-level, so it pickles): one probe point.

    Simulates the point fresh (applying the plant, if any, inside this
    process) and evaluates every measurement-kind assumption against
    the one measurement, so the simulation cost is shared.
    """
    workload, machine, instructions, seed, overrides, plant = payload
    from repro.refute.assumptions import simulate_point

    point = ProbePoint(machine=machine, instructions=instructions,
                       seed=seed, workload=workload,
                       overrides=tuple(overrides))
    measurement = simulate_point(point, plant=plant)
    return {"label": point.label(),
            "probes": [probe_conservation(point, measurement),
                       probe_capability(point, measurement)]}


def _refinement_budgets(budget: int, margin_points: tuple,
                        existing: set) -> list:
    """Midpoints between a near-bound budget and its neighbours."""
    below = max((p for p in margin_points if p < budget), default=None)
    above = min((p for p in margin_points if p > budget), default=None)
    mids = []
    for neighbour in (below, above):
        if neighbour is None:
            continue
        mid = (budget + neighbour) // 2
        if mid > 0 and mid not in existing and mid != budget:
            mids.append(mid)
    return sorted(set(mids))


def _analytical_phase(spec, seed, jobs, store, progress,
                      probes, stats) -> None:
    """Sweep, calibrate from the store, probe, refine."""
    from repro.explore import ResultStore, run_sweep
    from repro.explore.space import Axis, SweepSpec

    if store is not None and not isinstance(store, ResultStore):
        store = ResultStore(store)
    all_budgets = tuple(sorted(set(spec.anchors) | set(spec.budgets)))
    mixes = {}           # (workload, machine) -> WorkloadMix
    records = {}         # (workload, machine) -> {budget: record}

    def sweep_into(machine, budgets):
        sweep_spec = SweepSpec(
            name=f"refute-{spec.name}-{machine}",
            axes=(Axis("instructions", tuple(budgets)),),
            mode="ofat", instructions=budgets[-1], seed=seed,
            workloads=spec.workloads, machine=machine)
        sweep = run_sweep(sweep_spec, store=store, jobs=jobs,
                          progress=progress)
        stats["simulations"] += sweep.stats["simulated"]
        stats["cached"] += sweep.stats["cached"]
        for entry in sweep.points:
            budget = entry["point"].instructions
            for workload in spec.workloads:
                records.setdefault((workload, machine), {})[budget] = \
                    entry["records"][workload]

    for machine in spec.machines:
        sweep_into(machine, all_budgets)
        for workload in spec.workloads:
            recs = records[(workload, machine)]
            mixes[(workload, machine)] = mix_from_records(
                workload, machine, spec.anchors, recs)

    def probe_at(workload, machine, budget):
        point = ProbePoint(machine=machine, workload=workload,
                           instructions=budget, seed=seed)
        record = records[(workload, machine)][budget]
        result = probe_analytical(mixes[(workload, machine)], point,
                                  record_cpi(record))
        probes.append(result)
        return result

    first_pass = [(probe_at(workload, machine, budget),
                   workload, machine, budget)
                  for machine in spec.machines
                  for workload in spec.workloads
                  for budget in spec.budgets]

    # Refinement: extra probes at the midpoints around the
    # nearest-to-bound results, worst margin first.
    ranked = sorted(first_pass,
                    key=lambda item: (item[0]["margin"], item[0]["label"]))
    margin_points = tuple(sorted(spec.anchors))
    refined = set()
    for result, workload, machine, budget in ranked[:spec.refine]:
        mids = _refinement_budgets(budget, margin_points,
                                   set(all_budgets) | refined)
        if not mids:
            continue
        refined.update(mids)
        if progress is not None:
            progress(f"refine: {workload} {machine} margin "
                     f"{result['margin']} -> budgets {mids}")
        for machine_name in {machine}:
            sweep_into(machine_name, tuple(mids))
        for mid in mids:
            probe_at(workload, machine, mid)
    stats["refined"] = sorted(refined)


class CampaignResult:
    """Everything one campaign produced, JSON-able end to end."""

    def __init__(self, spec: CampaignSpec, seed: int, plant,
                 probes: list, refutations: list, stats: dict) -> None:
        self.spec = spec
        self.seed = seed
        self.plant = plant
        self.probes = probes
        self.refutations = refutations
        self.stats = stats

    @property
    def ok(self) -> bool:
        """No assumption was refuted (a *clean* campaign's verdict)."""
        return not self.refutations

    def assumptions_summary(self) -> list:
        """Per-assumption rollup: probes, violations, worst margin."""
        rows = []
        for assumption in ASSUMPTIONS:
            mine = [p for p in self.probes
                    if p["assumption"] == assumption.name]
            margins = [p["margin"] for p in mine]
            rows.append({
                "name": assumption.name, "kind": assumption.kind,
                "description": assumption.description,
                "bound": assumption.bound, "probes": len(mine),
                "checks": sum(p["checks"] for p in mine),
                "violations": sum(len(p["violations"]) for p in mine),
                "worst_margin": min(margins) if margins else None,
            })
        return rows

    def margins(self, top: int = 10) -> list:
        """The probes nearest their bounds, nearest first."""
        ranked = sorted(self.probes,
                        key=lambda p: (p["margin"], p["label"]))
        return [{"assumption": p["assumption"], "label": p["label"],
                 "margin": p["margin"]} for p in ranked[:top]]

    def to_json(self) -> dict:
        """The campaign section of REFUTATIONS.json.

        Deliberately carries no wall-clock timing and nothing that
        depends on ``--jobs`` or store warmth, so the same campaign at
        any parallelism serialises byte-identically.
        """
        return {
            "campaign": self.spec.name, "seed": self.seed,
            "plant": self.plant,
            "spec": {
                "workloads": list(self.spec.workloads),
                "machines": list(self.spec.machines),
                "budgets": list(self.spec.budgets),
                "anchors": list(self.spec.anchors),
                "variants": [dict(variant)
                             for variant in self.spec.variants],
                "refine": self.spec.refine,
                "fuzz_cases": self.spec.fuzz_cases,
                "batch_cases": self.spec.batch_cases,
                "fuzz_budget": self.spec.fuzz_budget,
            },
            "assumptions": self.assumptions_summary(),
            "probes": len(self.probes),
            "refined_budgets": self.stats.get("refined", []),
            "margins": self.margins(),
            "refutations": self.refutations,
            "ok": self.ok,
        }


def run_campaign(spec: CampaignSpec, seed: int = None, jobs: int = 1,
                 store=".explore/store", plant: str = None,
                 progress=None) -> CampaignResult:
    """Run one refutation campaign and return every probe and verdict."""
    from repro.workloads.parallel import run_tasks
    from repro.workloads.registry import (WorkloadError, get_workload,
                                          workload_names)

    if plant is not None and plant not in PERTURBATIONS:
        raise RefuteError(
            f"unknown perturbation {plant!r}; registered plants: "
            f"{', '.join(PERTURBATIONS)}")
    # Every workload the campaign names must resolve up front — a typo
    # in a spec should fail here, not hours into the probe fan-out.
    for workload in spec.workloads:
        try:
            wspec = get_workload(workload)
        except WorkloadError:
            raise RefuteError(
                f"campaign {spec.name!r} names unknown workload "
                f"{workload!r}; registered: "
                f"{', '.join(workload_names())}") from None
        if wspec.trace is not None:
            raise RefuteError(
                f"campaign {spec.name!r} names trace-backed workload "
                f"{workload!r}; campaigns probe generator workloads "
                "(probe points vary budgets and params a recording "
                "cannot serve)")
    seed = spec.seed if seed is None else seed
    probes: list = []
    stats = {"simulations": 0, "cached": 0}
    metrics.counter("refute.campaigns").inc()
    obs.emit("refute_campaign_started", campaign=spec.name, seed=seed,
             plant=plant)

    # Phase 1: analytical (store-backed; a planted run skips it — the
    # calibration sweeps ride shared caches a perturbed simulation
    # must never write, and no plant targets the analytical tier).
    if plant is None:
        _analytical_phase(spec, seed, jobs, store, progress, probes,
                          stats)
    else:
        stats["skipped"] = ["analytical-cpi-bound"]

    # Phase 2: measurement probes, fanned out (order-preserving).
    points = []
    for machine in spec.machines:
        variants = spec.variants if machine == DEFAULT_MACHINE else ((),)
        for overrides in variants:
            for workload in spec.workloads:
                for budget in spec.budgets:
                    points.append(ProbePoint(
                        machine=machine, workload=workload,
                        instructions=budget, seed=seed,
                        overrides=tuple(overrides)))
    payloads = [(p.workload, p.machine, p.instructions, p.seed,
                 p.overrides, plant) for p in points]
    if progress is not None:
        progress(f"measurement probes: {len(points)} points")
    outs = run_tasks(_measurement_probe_task, payloads, jobs=jobs)
    stats["simulations"] += len(points)
    for out in outs:
        probes.extend(out["probes"])

    # Phase 3: the ubench suite per machine.
    for machine in spec.machines:
        probes.append(probe_ubench(machine, seed=seed, jobs=jobs,
                                   plant=plant))

    # Phase 4: the two differential axes (780 engines only).
    probes.append(probe_differential(
        "fastpath-reference-identity", "reference", spec.fuzz_cases,
        seed=seed, instructions=spec.fuzz_budget, jobs=jobs,
        plant=plant, progress=progress))
    probes.append(probe_differential(
        "batch-scalar-identity", "batch", spec.batch_cases, seed=seed,
        instructions=spec.fuzz_budget, jobs=jobs, plant=plant,
        progress=progress))

    # Shrink: bisect measurement violations to minimal budgets (the
    # differential reproducers are already minimal).  One bisection
    # per violated (assumption, point), capped per assumption.
    refutations: list = []
    shrunk: dict = {}
    for probe in probes:
        for item in probe["violations"]:
            name = item["assumption"]
            if item["reproducer"] is None \
                    and name in ("conservation-laws",
                                 "capability-invariants") \
                    and shrunk.get(name, 0) < SHRINK_CAP:
                shrunk[name] = shrunk.get(name, 0) + 1
                point = ProbePoint(
                    machine=item["point"]["machine"],
                    workload=item["point"]["workload"],
                    instructions=item["point"]["instructions"],
                    seed=item["point"]["seed"],
                    overrides=tuple(sorted(
                        item["point"]["overrides"].items())))
                if progress is not None:
                    progress(f"shrink: {name} at {item['label']}")
                reproducer = shrink_measurement(name, point,
                                                plant=plant)
                stats["simulations"] += reproducer["simulations"]
                item["reproducer"] = reproducer
            refutations.append(item)
            metrics.counter("refute.refutations").inc()
            obs.emit("refutation", assumption=name,
                     label=item["label"], field=item["field"])

    obs.emit("refute_campaign_finished", campaign=spec.name,
             probes=len(probes), refutations=len(refutations),
             plant=plant)
    return CampaignResult(spec, seed, plant, probes, refutations, stats)


def run_self_check(seed: int = None, jobs: int = 1,
                   progress=None) -> list:
    """Run the smoke campaign once per planted bug; all must be caught.

    Returns one verdict dict per perturbation: which assumptions
    flagged it, whether the ``expect`` set was covered, and the
    smallest reproducer budget the campaign shrank a violation to.
    """
    checks = []
    for plant in PERTURBATIONS.values():
        if progress is not None:
            progress(f"self-check: planting {plant.name}")
        result = run_campaign(CAMPAIGNS["smoke"], seed=seed, jobs=jobs,
                              store=None, plant=plant.name,
                              progress=progress)
        detected_by = sorted({item["assumption"]
                              for item in result.refutations})
        budgets = [item["reproducer"]["instructions"]
                   for item in result.refutations
                   if item["reproducer"] is not None
                   and "instructions" in item["reproducer"]]
        checks.append({
            "perturbation": plant.name,
            "description": plant.description,
            "expect": list(plant.expect),
            "detected_by": detected_by,
            "detected": set(plant.expect) <= set(detected_by),
            "refutations": len(result.refutations),
            "min_reproducer_instructions": min(budgets) if budgets
            else None,
        })
    return checks
