"""Reporting: the paper's reference data, renderers, and comparisons."""

from repro.report import paper
from repro.report.compare import (ShapeReport, dominant_key, same_ordering,
                                  within_factor, within_slack)
from repro.report.format import (render_figure1, render_section4,
                                 render_table1, render_table2,
                                 render_table3, render_table4,
                                 render_table5, render_table6,
                                 render_table7, render_table8,
                                 render_table9)

__all__ = ["paper", "ShapeReport", "dominant_key", "same_ordering",
           "within_factor", "within_slack", "render_figure1",
           "render_section4", "render_table1", "render_table2",
           "render_table3", "render_table4", "render_table5",
           "render_table6", "render_table7", "render_table8",
           "render_table9"]
