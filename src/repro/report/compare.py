"""Paper-vs-measured comparison helpers for tests and benchmarks.

Reproduction targets are *shape* targets (see DESIGN.md): the comparison
helpers express "same ordering", "within a factor", and "within absolute
slack" checks that the table benchmarks assert.
"""

from __future__ import annotations


def within_factor(measured: float, reference: float,
                  factor: float) -> bool:
    """True when measured is within ``factor``x of the reference."""
    if reference == 0:
        return measured == 0
    if measured <= 0:
        return False
    ratio = measured / reference
    return 1.0 / factor <= ratio <= factor


def within_slack(measured: float, reference: float, slack: float) -> bool:
    """True when |measured - reference| <= slack."""
    return abs(measured - reference) <= slack


def same_ordering(measured: dict, reference: dict, keys=None) -> bool:
    """True when both dicts rank ``keys`` identically (descending)."""
    if keys is None:
        keys = list(reference)
    rank_m = sorted(keys, key=lambda k: -measured[k])
    rank_r = sorted(keys, key=lambda k: -reference[k])
    return rank_m == rank_r


def dominant_key(values: dict):
    """The key with the largest value."""
    return max(values, key=values.get)


class ShapeReport:
    """Accumulates pass/fail shape checks for one experiment."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.checks: list = []

    def check(self, label: str, passed: bool, detail: str = "") -> bool:
        """Record one check; returns ``passed`` for chaining."""
        self.checks.append((label, bool(passed), detail))
        return passed

    @property
    def passed(self) -> bool:
        """True when every recorded check passed."""
        return all(ok for _, ok, _ in self.checks)

    def render(self) -> str:
        """Human-readable pass/fail listing."""
        lines = [f"Shape checks for {self.name}:"]
        for label, ok, detail in self.checks:
            status = "PASS" if ok else "FAIL"
            suffix = f"  ({detail})" if detail else ""
            lines.append(f"  [{status}] {label}{suffix}")
        return "\n".join(lines)
