"""Plain-text and JSON rendering of design-space sweeps.

§5-style sensitivity tables over :mod:`repro.explore` results: one
table per axis (CPI and the stall columns per instruction against the
stock 11/780), the overlapped-decode claim check, and the
machine-readable ``EXPLORE.json`` document CI archives.
"""

from __future__ import annotations


def _fmt_value(value) -> str:
    if isinstance(value, bool):
        return "on" if value else "off"
    if isinstance(value, int) and value % 1024 == 0 and value >= 1024:
        return f"{value // 1024}K"
    return str(value)


def render_axis(table: dict) -> str:
    """One axis's sensitivity table."""
    lines = [
        f"EXPLORE - sensitivity to {table['axis']} "
        "(per-instruction cycles; * = stock 11/780)",
        f"{'value':>10s} {'CPI':>7s} {'read':>7s} {'r-stall':>8s} "
        f"{'write':>7s} {'w-stall':>8s} {'ib-stall':>8s} "
        f"{'decode':>7s}",
    ]
    for row in table["rows"]:
        marker = "*" if row["is_default"] else " "
        lines.append(
            f"{_fmt_value(row['value']):>9s}{marker} {row['cpi']:7.2f} "
            f"{row['read_per_instruction']:7.2f} "
            f"{row['rstall_per_instruction']:8.2f} "
            f"{row['write_per_instruction']:7.2f} "
            f"{row['wstall_per_instruction']:8.2f} "
            f"{row['ibstall_per_instruction']:8.2f} "
            f"{row['decode_cycles_per_instruction']:7.2f}")
    return "\n".join(lines)


def render_decode_claim(claim: dict) -> str:
    """The §5 overlapped-decode check, rendered."""
    if claim is None:
        return ""
    lines = [
        "EXPLORE - §5 overlapped decode (\"could save one cycle on "
        "each non-PC-changing instruction\")",
        f"  decode cycles, stock machine:      "
        f"{claim['baseline_decode_cycles']:10d}",
        f"  decode cycles, overlapped decode:  "
        f"{claim['overlapped_decode_cycles']:10d}",
        f"  non-PC-changing dispatches:        "
        f"{claim['non_pc_changing_dispatches']:10d}",
        f"  decode cycles saved:               "
        f"{claim['cycles_saved']:10d}"
        f"  ({claim['cycles_saved_per_instruction']:.3f}/instruction)",
        f"  CPI {claim['baseline_cpi']:.2f} -> "
        f"{claim['overlapped_cpi']:.2f}",
        f"  one cycle per non-PC-changing instruction: "
        f"{'EXACT' if claim['ok'] else 'MISMATCH'}",
    ]
    return "\n".join(lines)


def render_points(result) -> str:
    """The enumerated points and their cache status (``--points``)."""
    lines = [f"EXPLORE - {result.spec.name}: "
             f"{len(result.points)} points x "
             f"{len(result.spec.workloads)} workloads"]
    for entry in result.points:
        composite = entry.get("composite")
        suffix = ""
        if composite is not None:
            n = composite["instructions_measured"] or 1
            classified = sum(c for cols in composite["cells"].values()
                             for c in cols.values())
            spent = classified - composite["decode"]["overlapped_decodes"]
            suffix = f"  CPI {spent / n:.2f}"
        lines.append(f"  {entry['label']}{suffix}")
    return "\n".join(lines)


def render_sensitivity(report: dict, stats: dict = None) -> str:
    """The full sweep report."""
    header = [f"EXPLORE - spec '{report['spec']}' ({report['mode']}), "
              f"{report['instructions']} instructions/workload, "
              f"seed {report['seed']}, "
              f"{len(report['workloads'])} workloads"]
    if stats:
        header.append(
            f"  {stats['points']} points, {stats['tasks']} tasks: "
            f"{stats['simulated']} simulated, {stats['cached']} from "
            f"the store ({stats['seconds']:.1f}s)")
    parts = ["\n".join(header)]
    parts.extend(render_axis(table) for table in report["axes"])
    claim = render_decode_claim(report.get("decode_claim"))
    if claim:
        parts.append(claim)
    return "\n\n".join(parts)


def explore_json(result, report: dict, meta: dict = None) -> dict:
    """Shape a sweep into the machine-readable EXPLORE.json document."""
    points = []
    for entry in result.points:
        point = entry["point"]
        points.append({
            "label": entry["label"],
            "overrides": dict(point.overrides),
            "instructions": point.instructions,
            "seed": point.seed,
            "composite": entry["composite"],
            "workloads": {
                name: {
                    "cycles": record["cycles"],
                    "instructions_measured":
                        record["instructions_measured"],
                    "histogram": record["histogram"],
                }
                for name, record in entry["records"].items()
            },
        })
    return {
        "meta": dict(meta or {}),
        "spec": {
            "name": result.spec.name,
            "mode": result.spec.mode,
            "instructions": result.spec.instructions,
            "seed": result.spec.seed,
            "workloads": list(result.spec.workloads),
            "axes": [{"name": axis.name, "values": list(axis.values)}
                     for axis in result.spec.axes],
        },
        "stats": result.stats,
        "sensitivity": report,
        "points": points,
    }
