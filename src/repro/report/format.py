"""Plain-text rendering of reproduced tables, with paper comparison.

Every renderer takes a table result from :mod:`repro.analysis.tables` and
returns a string laid out like the paper's table, with a "paper" column
beside each measured value where the reference is known.
"""

from __future__ import annotations

from repro.arch.groups import GROUP_ORDER
from repro.report import paper
from repro.ucode.rows import COLUMN_ORDER, ROW_ORDER


def _fmt(value, width=8, digits=3):
    if value is None:
        return " " * (width - 1) + "-"
    return f"{value:{width}.{digits}f}"


def render_table1(result) -> str:
    """Table 1: opcode group frequency."""
    lines = ["TABLE 1 - Opcode Group Frequency (percent)",
             f"{'Group':14s} {'measured':>9s} {'paper':>8s}"]
    for group in GROUP_ORDER:
        name = group.value
        lines.append(f"{name:14s} {result.frequency_percent[group]:9.2f} "
                     f"{paper.TABLE1_FREQUENCY[name]:8.2f}")
    lines.append(f"{'instructions':14s} {result.instructions:9d}")
    return "\n".join(lines)


def render_table2(result) -> str:
    """Table 2: PC-changing instructions."""
    lines = ["TABLE 2 - PC-Changing Instructions",
             f"{'Type':30s} {'%instr':>7s} {'%taken':>7s}   "
             f"{'paper%':>7s} {'ptaken':>7s}"]
    for row in result.rows:
        ref = paper.TABLE2.get(row.label, (None, None))
        lines.append(
            f"{row.label:30s} {row.percent_of_instructions:7.1f} "
            f"{row.percent_taken:7.0f}   {_fmt(ref[0], 7, 1)} "
            f"{_fmt(ref[1], 7, 0)}")
    lines.append(
        f"{'TOTAL':30s} {result.total_percent:7.1f} "
        f"{result.total_taken_percent:7.0f}   "
        f"{paper.TABLE2_TOTAL[0]:7.1f} {paper.TABLE2_TOTAL[1]:7.0f}")
    return "\n".join(lines)


def render_table3(result) -> str:
    """Table 3: specifiers per average instruction."""
    ref = paper.TABLE3
    return "\n".join([
        "TABLE 3 - Specifiers and Branch Displacements per Instruction",
        f"First specifiers      {result.first_specifiers:6.3f}  "
        f"(paper {ref['first_specifiers']:.3f})",
        f"Other specifiers      {result.other_specifiers:6.3f}  "
        f"(paper {ref['other_specifiers']:.3f})",
        f"Branch displacements  {result.branch_displacements:6.3f}  "
        f"(paper {ref['branch_displacements']:.3f})",
    ])


def render_table4(result) -> str:
    """Table 4: operand specifier distribution."""
    lines = ["TABLE 4 - Operand Specifier Distribution (percent)",
             f"{'Mode':18s} {'spec1':>7s} {'spec2-6':>8s} {'total':>7s}"
             f"   {'paper(total)':>12s}"]
    for mode, ref in paper.TABLE4.items():
        lines.append(
            f"{mode:18s} {result.spec1_percent[mode]:7.1f} "
            f"{result.spec26_percent[mode]:8.1f} "
            f"{result.total_percent[mode]:7.1f}   "
            f"{_fmt(ref[2], 12, 1)}")
    lines.append(f"{'Percent indexed':18s} {result.indexed_percent:7.1f}"
                 f"{'':>16s}   {paper.TABLE4_INDEXED_PERCENT:12.1f}")
    return "\n".join(lines)


def render_table5(result) -> str:
    """Table 5: reads/writes per instruction by activity."""
    lines = ["TABLE 5 - D-stream Reads and Writes per Average Instruction",
             f"{'Source':14s} {'reads':>8s} {'writes':>8s}"]
    for label, (reads, writes) in result.rows.items():
        lines.append(f"{label:14s} {reads:8.3f} {writes:8.3f}")
    lines.append(f"{'TOTAL':14s} {result.total_reads:8.3f} "
                 f"{result.total_writes:8.3f}")
    lines.append(f"{'paper TOTAL':14s} {paper.TABLE5_TOTAL_READS:8.3f} "
                 f"{paper.TABLE5_TOTAL_WRITES:8.3f}")
    return "\n".join(lines)


def render_table6(result) -> str:
    """Table 6: estimated instruction size."""
    ref = paper.TABLE6
    return "\n".join([
        "TABLE 6 - Estimated Size of Average Instruction",
        f"Specifiers/instr   {result.specifiers_per_instruction:6.2f}  "
        f"(paper {ref['specifiers_per_instruction']:.2f})",
        f"Avg specifier size {result.avg_specifier_size:6.2f}  "
        f"(paper {ref['avg_specifier_size']:.2f})",
        f"Branch disp bytes  {result.branch_disp_bytes_per_instruction:6.2f}"
        f"  (paper {ref['branch_disp_per_instruction']:.2f})",
        f"TOTAL bytes        {result.total_bytes:6.2f}  "
        f"(paper {ref['total_bytes']:.1f})",
    ])


def render_table7(result) -> str:
    """Table 7: interrupt and context-switch headway."""
    ref = paper.TABLE7
    return "\n".join([
        "TABLE 7 - Interrupt and Context-Switch Headway (instructions)",
        f"Software interrupt requests "
        f"{result.software_interrupt_request_headway:8.0f}  "
        f"(paper {ref['software_interrupt_requests']})",
        f"HW and SW interrupts        "
        f"{result.interrupt_headway:8.0f}  (paper {ref['interrupts']})",
        f"Context switches            "
        f"{result.context_switch_headway:8.0f}  "
        f"(paper {ref['context_switches']})",
    ])


def render_table8(result) -> str:
    """Table 8: the cycles-per-instruction matrix."""
    header = f"{'':12s}" + "".join(f"{col.value:>9s}" for col in COLUMN_ORDER)
    lines = ["TABLE 8 - Average VAX Instruction Timing "
             "(cycles per instruction)",
             header + f"{'Total':>9s}{'paper':>8s}"]
    for row in ROW_ORDER:
        cells = "".join(f"{result.cells[(row, col)]:9.3f}"
                        for col in COLUMN_ORDER)
        ref = paper.TABLE8_ROW_TOTALS.get(row.value)
        lines.append(f"{row.value:12s}{cells}"
                     f"{result.row_totals[row]:9.3f}{_fmt(ref, 8)}")
    col_totals = "".join(f"{result.column_totals[col]:9.3f}"
                         for col in COLUMN_ORDER)
    lines.append(f"{'TOTAL':12s}{col_totals}"
                 f"{result.cycles_per_instruction:9.3f}"
                 f"{paper.CYCLES_PER_INSTRUCTION:8.3f}")
    paper_cols = "".join(
        f"{paper.TABLE8_COLUMN_TOTALS[col.value]:9.3f}"
        for col in COLUMN_ORDER)
    lines.append(f"{'paper TOTAL':12s}{paper_cols}")
    return "\n".join(lines)


def render_table9(result) -> str:
    """Table 9: cycles per instruction within each group."""
    header = f"{'':12s}" + "".join(f"{col.value:>9s}" for col in COLUMN_ORDER)
    lines = ["TABLE 9 - Cycles per Instruction Within Each Group",
             header + f"{'Total':>9s}{'paper':>8s}"]
    for group in GROUP_ORDER:
        cells = "".join(f"{result.cells[(group, col)]:9.2f}"
                        for col in COLUMN_ORDER)
        ref = paper.TABLE9_TOTALS[group.value]
        lines.append(f"{group.value:12s}{cells}"
                     f"{result.totals[group]:9.2f}{_fmt(ref, 8, 2)}")
    return "\n".join(lines)


def render_section4(result) -> str:
    """The §4.1/§4.2 implementation-event summary."""
    ref = paper.SECTION4
    rows = [
        ("IB references / instruction", result.ib_references_per_instruction,
         ref["ib_references_per_instruction"]),
        ("IB bytes / reference", result.ib_bytes_per_reference,
         ref["ib_bytes_per_reference"]),
        ("Cache read misses / instr",
         result.cache_read_misses_per_instruction,
         ref["cache_read_misses_per_instruction"]),
        ("  I-stream", result.cache_i_misses_per_instruction,
         ref["cache_i_misses_per_instruction"]),
        ("  D-stream", result.cache_d_misses_per_instruction,
         ref["cache_d_misses_per_instruction"]),
        ("TB misses / instruction", result.tb_misses_per_instruction,
         ref["tb_misses_per_instruction"]),
        ("  D-stream", result.tb_d_misses_per_instruction,
         ref["tb_d_misses_per_instruction"]),
        ("  I-stream", result.tb_i_misses_per_instruction,
         ref["tb_i_misses_per_instruction"]),
        ("TB service cycles", result.tb_service_cycles,
         ref["tb_service_cycles"]),
        ("  of which read stall", result.tb_service_stall_cycles,
         ref["tb_service_stall_cycles"]),
        ("Unaligned refs / instr", result.unaligned_refs_per_instruction,
         ref["unaligned_refs_per_instruction"]),
    ]
    lines = ["SECTION 4 - Implementation Events",
             f"{'Event':30s} {'measured':>9s} {'paper':>8s}"]
    for label, measured, reference in rows:
        lines.append(f"{label:30s} {measured:9.3f} {reference:8.3f}")
    return "\n".join(lines)


def render_figure1(machine) -> str:
    """Figure 1: the 11/780 block diagram, from the live machine."""
    nodes, edges = machine.component_graph()
    art = r"""
FIGURE 1 - VAX-11/780 Block Diagram (rendered from machine topology)

  +---------+    +--------------------+    +----------+    +-------+
  | I-Fetch |--->| Instruction Buffer |--->| I-Decode |--->| EBOX  |
  +----+----+    +--------------------+    +----------+    +--+-+--+
       |                                                      | |
       |          +--------------------+                      | |
       +--------->| Translation Buffer |<---------------------+ |
                  +---------+----------+        +--------------+
                            |                   v
                            v            +--------------+
                       +---------+       | Write Buffer |
                       |  Cache  |       +-------+------+
                       +----+----+               |
                            |        +-----------+
                            v        v
                       +------------------+
                       |       SBI        |
                       +---------+--------+
                                 |
                                 v
                            +--------+
                            | Memory |
                            +--------+
"""
    listing = "\n".join(f"  {src:20s} -> {dst}" for src, dst in edges)
    return art + "\nComponent connections:\n" + listing + \
        f"\n\nComponents: {', '.join(nodes)}\n"
