"""Cross-machine comparison: the paper's workloads on every backend.

:func:`machines_report` runs the five standard workloads on each
registered machine (:mod:`repro.machines`), decomposes each run's CPI
into the Table-8 stall columns, confronts the analytical tier's
estimate with every simulation, and returns one JSON-able document —
the committed ``MACHINES.json`` at the repository root.  The document
answers the cross-machine questions the paper's methodology was built
for: where the cycles go on each machine, which workloads the 78032's
shorter memory path helps most, and how far the analytical estimates
can be trusted (recorded per-workload error against the simulator).

Regenerate with::

    PYTHONPATH=src python -m repro.report.machines MACHINES.json
"""

from __future__ import annotations

import json

from repro.machines.analytical import (CALIBRATION_ANCHORS, ERROR_BOUND,
                                       calibrate, check_estimate)
from repro.machines.registry import machine_names, get_machine

#: Bump when the MACHINES.json document layout changes.
MACHINES_SCHEMA = 1


def _column_totals(red) -> dict:
    from repro.ucode.rows import COLUMN_ORDER

    n = red.instructions or 1
    return {col.name: round(red.column_total(col) / n, 6)
            for col in COLUMN_ORDER}


def machines_report(instructions: int = 60_000,
                    anchors: tuple = CALIBRATION_ANCHORS,
                    seed: int = 1984, machines: tuple = None,
                    progress=None) -> dict:
    """The cross-machine comparison document (see module docstring)."""
    from repro.analysis.reduction import Reduction
    from repro.workloads import engine as _engines
    from repro.workloads.registry import paper_workloads

    if machines is None:
        machines = machine_names()
    doc = {
        "schema": MACHINES_SCHEMA,
        "instructions": instructions,
        "anchors": list(anchors),
        "seed": seed,
        "error_bound": ERROR_BOUND,
        "machines": {},
        "comparison": {},
    }
    worst = 0.0
    cpis: dict = {}
    for name in machines:
        spec = get_machine(name)
        workloads = {}
        total_cycles = 0
        total_instructions = 0
        for wspec in paper_workloads():
            profile = wspec.profile
            if progress is not None:
                progress(f"machines: {name}/{profile.name}")
            red = Reduction(_engines.run_workload(
                profile.name, instructions, seed=seed,
                machine=name).histogram)
            mix = calibrate(profile.name, name, anchors=anchors,
                            seed=seed)
            check = check_estimate(mix, instructions, seed=seed)
            worst = max(worst, check["rel_err"])
            cpi = red.cycles_per_instruction()
            cpis.setdefault(profile.name, {})[name] = cpi
            total_cycles += red.total_cycles()
            total_instructions += red.instructions
            workloads[profile.name] = {
                "simulated_cpi": round(cpi, 6),
                "analytical_cpi": check["analytical_cpi"],
                "analytical_error": check["rel_err"],
                "analytical_ok": check["ok"],
                "columns": _column_totals(red),
                "steady_cpi": round(mix.steady_cpi, 6),
            }
        doc["machines"][name] = {
            "description": spec.description,
            "cpi_nominal": spec.cpi_nominal,
            "subset": spec.subset,
            "workloads": workloads,
            "composite": {
                "cycles": total_cycles,
                "instructions": total_instructions,
                "cpi": round(total_cycles / (total_instructions or 1),
                             6),
            },
        }
    reference = machines[0]
    for workload, per_machine in cpis.items():
        entry = {name: round(cpi, 6)
                 for name, cpi in per_machine.items()}
        for name, cpi in per_machine.items():
            if name != reference and cpi:
                entry[f"cpi_ratio_{name}"] = round(
                    per_machine[reference] / cpi, 6)
        doc["comparison"][workload] = entry
    doc["analytical_worst_error"] = round(worst, 6)
    doc["analytical_all_ok"] = worst <= ERROR_BOUND
    return doc


def render_machines(doc: dict) -> str:
    """A text table of the cross-machine CPI decomposition."""
    lines = []
    lines.append("MACHINES - Cross-machine CPI decomposition "
                 f"({doc['instructions']} instructions/workload)")
    for name, machine in doc["machines"].items():
        lines.append("")
        lines.append(f"{name}: {machine['description']}")
        header = (f"{'workload':22s} {'sim CPI':>8s} {'analyt':>8s} "
                  f"{'err':>6s}  {'busy':>6s} {'stall':>6s}")
        lines.append(header)
        for wname, row in machine["workloads"].items():
            cols = row["columns"]
            busy = (cols.get("COMPUTE", 0) + cols.get("READ", 0)
                    + cols.get("WRITE", 0))
            stall = (cols.get("RSTALL", 0) + cols.get("WSTALL", 0)
                     + cols.get("IBSTALL", 0))
            lines.append(
                f"{wname:22s} {row['simulated_cpi']:8.3f} "
                f"{row['analytical_cpi']:8.3f} "
                f"{100 * row['analytical_error']:5.1f}%  "
                f"{busy:6.3f} {stall:6.3f}")
        composite = machine["composite"]
        lines.append(f"{'composite':22s} {composite['cpi']:8.3f}   "
                     f"(nominal ~{machine['cpi_nominal']:.1f})")
    lines.append("")
    lines.append(f"analytical worst error: "
                 f"{100 * doc['analytical_worst_error']:.2f}% "
                 f"(bound {100 * doc['error_bound']:.0f}%)")
    return "\n".join(lines)


def main(argv=None) -> int:
    import sys

    argv = sys.argv[1:] if argv is None else argv
    out = argv[0] if argv else "MACHINES.json"

    def progress(line):
        print(line, file=sys.stderr, flush=True)

    doc = machines_report(progress=progress)
    with open(out, "w") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(render_machines(doc))
    print(f"\nwrote {out}")
    return 0 if doc["analytical_all_ok"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
