"""The paper's published numbers, as machine-readable reference data.

Values are transcribed from Emer & Clark (ISCA 1984).  Where the archival
scan is partially illegible (several interior cells of Tables 8 and 9),
the row/column *totals* given in clean text are used and the affected
cells are marked None; EXPERIMENTS.md documents this.
"""

from __future__ import annotations

#: Table 1 — opcode group frequency (percent of instruction executions).
TABLE1_FREQUENCY = {
    "Simple": 83.60,
    "Field": 6.92,
    "Float": 3.62,
    "Call/Ret": 3.22,
    "System": 2.11,
    "Character": 0.43,
    "Decimal": 0.03,
}

#: Table 2 — PC-changing instructions: (percent of all instructions,
#: percent that actually branch).
TABLE2 = {
    "Simple cond., plus BRB, BRW": (19.3, 56.0),
    "Loop branches": (4.1, 91.0),
    "Low-bit tests": (2.0, 41.0),
    "Subroutine call and return": (4.5, 100.0),
    "Unconditional (JMP)": (0.3, 100.0),
    "Case branch (CASEx)": (0.9, 100.0),
    "Bit branches": (4.3, 44.0),
    "Procedure call and return": (2.4, 100.0),
    "System branches (REI)": (0.4, 100.0),
}
TABLE2_TOTAL = (38.5, 67.0)
TABLE2_TAKEN_PERCENT_OF_INSTRUCTIONS = 25.7

#: Table 3 — specifiers and branch displacements per average instruction.
TABLE3 = {
    "first_specifiers": 0.726,
    "other_specifiers": 0.758,
    "branch_displacements": 0.312,
}

#: Table 4 — operand specifier distribution, percent.  The archival copy
#: is legible for the headline modes; None marks unreadable cells.
TABLE4 = {
    "Register": (28.7, 52.6, 41.0),
    "Short literal": (21.1, 10.8, 15.8),
    "Immediate": (3.2, 1.7, 2.4),
    "Displacement": (25.0, None, None),
    "Register deferred": (None, None, None),
    "Autoincrement": (None, None, None),
    "Autodecrement": (None, None, None),
    "Disp. deferred": (None, None, None),
    "Absolute": (None, None, None),
    "Autoinc. deferred": (None, None, None),
}
TABLE4_INDEXED_PERCENT = 6.3

#: Table 5 — D-stream reads/writes per average instruction.  Clean cells
#: only; the totals and the headline observations are unambiguous.
TABLE5_TOTAL_READS = 0.783
TABLE5_TOTAL_WRITES = 0.409
TABLE5_SPEC1_READS = 0.306
TABLE5_SPEC26_READS = 0.148
TABLE5_CALLRET = (0.133, 0.130)  # the largest row, per the paper's text

#: Table 6 — estimated size of the average instruction.
TABLE6 = {
    "opcode_bytes": 1.00,
    "specifiers_per_instruction": 1.48,
    "avg_specifier_size": 1.68,
    "branch_disp_per_instruction": 0.31,
    "total_bytes": 3.8,
}

#: Table 7 — event headways in instructions.
TABLE7 = {
    "software_interrupt_requests": 2539,
    "interrupts": 637,
    "context_switches": 6418,
}

#: Table 8 — cycles per average instruction.  Row totals (legible) plus
#: the fully legible Decode row and column totals.
TABLE8_ROW_TOTALS = {
    "Decode": 1.613,
    "Spec 1": 1.052,
    "Spec 2-6": 1.226,
    "Simple": 0.977,
    "Field": 0.600,
    "Float": 0.302,
    "Call/Ret": 1.458,
    "System": 0.482,
    "Character": 0.506,
    "Decimal": 0.031,
    "Int/Except": 0.071,
    "Mem Mgmt": 0.824,
    "Aborts": 0.127,
}
TABLE8_DECODE_ROW = {"Compute": 1.000, "IB-Stall": 0.613}
TABLE8_COLUMN_TOTALS = {
    "Compute": 7.267,
    "Read": 0.783,
    "R-Stall": 0.964,
    "Write": 0.409,
    "W-Stall": 0.450,
    "IB-Stall": 0.720,
}
CYCLES_PER_INSTRUCTION = 10.593

#: Table 9 — cycles per instruction within each group (execute phase).
TABLE9_TOTALS = {
    "Simple": 1.17,
    "Field": 8.67,
    "Float": 8.33,
    "Call/Ret": 45.25,
    "System": 22.83,
    "Character": 117.04,
    "Decimal": 100.77,
}

#: Section 4 implementation events.
SECTION4 = {
    "ib_references_per_instruction": 2.2,
    "ib_bytes_per_reference": 1.7,
    "avg_instruction_bytes": 3.8,
    "cache_read_misses_per_instruction": 0.28,
    "cache_i_misses_per_instruction": 0.18,
    "cache_d_misses_per_instruction": 0.10,
    "tb_misses_per_instruction": 0.029,
    "tb_d_misses_per_instruction": 0.020,
    "tb_i_misses_per_instruction": 0.009,
    "tb_service_cycles": 21.6,
    "tb_service_stall_cycles": 3.5,
    "unaligned_refs_per_instruction": 0.016,
}

#: Machine facts quoted in §2.
CYCLE_NS = 200
MEMORY_MB = 8
VMS_VERSION = "2.x"
