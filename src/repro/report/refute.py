"""Plain-text and JSON rendering of refutation campaigns.

``refute_json`` shapes a campaign (plus the planted-bug self-check)
into the machine-readable ``REFUTATIONS.json`` document the repo
commits and CI archives.  The document carries *no* wall-clock timing
and nothing that depends on ``--jobs`` or store warmth, so the same
committed-seed campaign regenerates byte-identically on any host at
any parallelism — exactly the property the determinism tests pin.
"""

from __future__ import annotations


def refute_json(result, self_checks=None) -> dict:
    """Shape a refute run into the REFUTATIONS.json document.

    ``result`` is the clean campaign's
    :class:`~repro.refute.planner.CampaignResult`; ``self_checks`` is
    the planted-bug verdict list from
    :func:`~repro.refute.planner.run_self_check` (``None`` when the
    self-check was skipped).
    """
    from repro.explore.store import code_version
    from repro.refute.perturb import PERTURBATIONS
    from repro.refute.planner import REFUTATIONS_SCHEMA

    doc = result.to_json()
    planted = list(self_checks) if self_checks is not None else None
    planted_ok = (all(check["detected"] for check in planted)
                  if planted is not None else None)
    if result.plant is not None:
        # A planted campaign succeeds by *catching* its plant: every
        # assumption that promised to see it must have refuted.
        flagged = {item["assumption"] for item in result.refutations}
        ok = set(PERTURBATIONS[result.plant].expect) <= flagged
    else:
        ok = result.ok and (planted_ok is not False)
    return {
        "schema": REFUTATIONS_SCHEMA,
        "code": code_version(),
        **doc,
        "planted": planted,
        "ok": ok,
    }


def render_refute(result, self_checks=None) -> str:
    """Human-readable campaign summary: rollup, margins, verdicts."""
    lines = [f"REFUTE - campaign '{result.spec.name}' "
             f"seed={result.seed}"
             + (f" plant={result.plant}" if result.plant else ""),
             f"{'assumption':28s} {'kind':12s} {'probes':>6s} "
             f"{'checks':>6s} {'viol':>5s} {'margin':>8s}"]
    for row in result.assumptions_summary():
        margin = ("-" if row["worst_margin"] is None
                  else f"{row['worst_margin']:.4f}")
        lines.append(f"{row['name']:28s} {row['kind']:12s} "
                     f"{row['probes']:6d} {row['checks']:6d} "
                     f"{row['violations']:5d} {margin:>8s}")
    margins = result.margins(top=5)
    if margins:
        lines.append("nearest bounds:")
        lines += [f"  {m['margin']:.4f}  {m['assumption']}  {m['label']}"
                  for m in margins]
    for item in result.refutations:
        lines.append(f"REFUTED {item['assumption']} at {item['label']}:")
        lines.append(f"  {item['field']}: observed {item['observed']!r} "
                     f"predicted {item['predicted']!r}"
                     + (f" (delta {item['delta']})"
                        if item["delta"] is not None else ""))
        if item["note"]:
            lines.append(f"  {item['note']}")
        reproducer = item["reproducer"]
        if reproducer is not None:
            budget = reproducer.get("instructions")
            lines.append(f"  reproducer: {reproducer['kind']}"
                         + (f" at {budget} instruction(s)"
                            if budget is not None else ""))
    if self_checks is not None:
        lines.append("planted-bug self-check:")
        for check in self_checks:
            verdict = "DETECTED" if check["detected"] else "MISSED"
            detected_by = ", ".join(check["detected_by"]) or "nothing"
            lines.append(f"  {verdict} {check['perturbation']}: "
                         f"flagged by {detected_by} "
                         f"({check['refutations']} refutation(s))")
    planted_ok = (self_checks is None
                  or all(c["detected"] for c in self_checks))
    if result.ok and planted_ok:
        verdict = "no assumption refuted"
        if self_checks is not None:
            verdict += (f"; all {len(self_checks)} planted bug(s) "
                        f"caught")
    elif result.plant:
        verdict = (f"{len(result.refutations)} refutation(s) under "
                   f"planted bug '{result.plant}'")
    else:
        verdict = (f"{len(result.refutations)} assumption "
                   f"refutation(s)" if result.refutations
                   else "planted self-check MISSED a bug")
    lines.append(verdict)
    return "\n".join(lines)
