"""Plain-text and JSON rendering of microbenchmark sweeps.

uops.info-style tables over :mod:`repro.ubench` results: the per-kernel
measured-vs-predicted listing (with every non-busy cycle itemized by
cause), per-opcode-group latency summaries, per-specifier-mode costs,
and the composite-consistency rows.  ``ubench_json`` shapes the same
data into the machine-readable ``UBENCH.json`` baseline CI archives.
"""

from __future__ import annotations

from repro.ubench.model import BUCKETS


def _cause_summary(result) -> str:
    parts = [f"{cause}={per_copy:.2f}"
             for cause, per_copy in sorted(
                 result["overhead_per_copy"].items())]
    return " ".join(parts) if parts else "-"


def render_kernels(results) -> str:
    """The main per-kernel table: measured vs. predicted busy cycles."""
    lines = [
        "UBENCH - per-kernel cycles (one copy = "
        "one steady-state iteration)",
        f"{'kernel':20s} {'group':9s} {'mode':24s} {'var':4s} "
        f"{'cyc/copy':>8s} {'busy':>5s} {'pred':>5s} {'ok':>3s}  "
        "overhead/copy (itemized)",
    ]
    for r in results:
        copies = r["measured_copies"]
        busy = sum(r["measured_busy"][b] for b in BUCKETS) / copies
        pred = r["predicted_per_copy"]["total"]
        flag = "=" if r["exact"] else "!"
        lines.append(
            f"{r['kernel']:20s} {r['group']:9s} {r['mode']:24s} "
            f"{r['variant']:4s} {r['cycles_per_copy']:8.2f} "
            f"{busy:5.0f} {pred:5d} {flag:>3s}  {_cause_summary(r)}")
    exact = sum(1 for r in results if r["exact"])
    lines.append(f"{exact}/{len(results)} kernels exact "
                 "(busy cycles == model prediction; '!' rows disagree)")
    return "\n".join(lines)


def render_buckets(results) -> str:
    """Stage-by-stage busy-cycle breakdown per kernel (per copy)."""
    header = " ".join(f"{b:>7s}" for b in BUCKETS)
    lines = ["UBENCH - busy cycles per copy by pipeline stage",
             f"{'kernel':20s} {header} {'total':>7s}"]
    for r in results:
        copies = r["measured_copies"]
        cells = " ".join(
            f"{r['measured_busy'][b] / copies:7.2f}" for b in BUCKETS)
        total = sum(r["measured_busy"][b] for b in BUCKETS) / copies
        lines.append(f"{r['kernel']:20s} {cells} {total:7.2f}")
    return "\n".join(lines)


def render_groups(results) -> str:
    """Per-opcode-group mean latency over the suite's warm kernels."""
    groups = {}
    for r in results:
        if r["variant"] != "warm":
            continue
        groups.setdefault(r["group"], []).append(
            r["cycles_per_instruction"])
    lines = ["UBENCH - mean cycles per instruction by opcode group "
             "(warm kernels)",
             f"{'group':12s} {'kernels':>8s} {'mean':>8s} {'min':>8s} "
             f"{'max':>8s}"]
    for group in sorted(groups):
        values = groups[group]
        lines.append(
            f"{group:12s} {len(values):8d} "
            f"{sum(values) / len(values):8.2f} {min(values):8.2f} "
            f"{max(values):8.2f}")
    return "\n".join(lines)


def render_modes(results) -> str:
    """Specifier-mode cost ladder from the MOVL sweep."""
    rows = [r for r in results
            if r["kernel"].startswith("movl_") and r["variant"] == "warm"]
    if not rows:
        return ""
    base = next((r for r in rows if r["mode"] == "literal"), None)
    lines = ["UBENCH - specifier mode cost (MOVL sweep; delta vs. "
             "short literal)",
             f"{'mode':24s} {'cyc/copy':>9s} {'spec':>5s} {'delta':>6s}"]
    for r in rows:
        copies = r["measured_copies"]
        spec = (r["measured_busy"]["spec"]
                + r["measured_busy"]["fused"]) / copies
        delta = (r["cycles_per_copy"] - base["cycles_per_copy"]) \
            if base else 0.0
        lines.append(f"{r['mode']:24s} {r['cycles_per_copy']:9.2f} "
                     f"{spec:5.1f} {delta:+6.2f}")
    return "\n".join(lines)


def render_consistency(check) -> str:
    """The composite-coherence rows from the consistency pass."""
    lines = [
        "UBENCH - consistency vs. composite execute cycles "
        f"(tolerance {check['tolerance'] * 100:.0f}%)",
        f"{'group':14s} {'instr':>8s} {'measured':>10s} "
        f"{'predicted':>10s} {'err%':>6s} {'modeled%':>9s} {'ok':>3s}",
    ]
    for row in check["rows"]:
        lines.append(
            f"{row['group']:14s} {row['instructions']:8d} "
            f"{row['measured']:10d} {row['predicted']:10d} "
            f"{row['rel_err'] * 100:6.2f} "
            f"{row['modeled_fraction'] * 100:9.1f} "
            f"{'ok' if row['ok'] else 'NO':>3s}")
    lines.append(
        f"composite: {check['instructions']} instructions, "
        f"{check['cycles']} cycles, CPI {check['cpi']:.2f} "
        f"(paper Table 5: {check['paper_cpi']})")
    return "\n".join(lines)


def render_ubench(results, check=None) -> str:
    """Full report: kernel table, stage breakdown, summaries."""
    sections = [render_kernels(results), render_buckets(results),
                render_groups(results)]
    modes = render_modes(results)
    if modes:
        sections.append(modes)
    if check is not None:
        sections.append(render_consistency(check))
    return "\n\n".join(sections)


def ubench_json(results, check=None, meta=None) -> dict:
    """Shape a sweep into the machine-readable UBENCH.json document."""
    doc = {
        "kernels": list(results),
        "exact_kernels": sum(1 for r in results if r["exact"]),
        "total_kernels": len(results),
        "all_exact": all(r["exact"] for r in results),
        "all_reconciled": all(r["reconciled"] for r in results),
    }
    if check is not None:
        doc["consistency"] = check
    if meta:
        doc["meta"] = dict(meta)
    return doc
