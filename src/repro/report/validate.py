"""Plain-text and JSON rendering of validation runs.

A validation run has two halves — the per-workload conservation-law
reports and the differential-fuzz case list — and ``validate_json``
shapes both into the machine-readable ``VALIDATE.json`` document the CI
archives alongside ``UBENCH.json`` and ``EXPLORE.json``.
"""

from __future__ import annotations


def render_invariants(reports) -> str:
    """One row per law per workload, failures spelled out in full."""
    lines = ["VALIDATE - conservation invariants",
             f"{'workload':24s} {'laws':>5s} {'exact':>6s} "
             f"{'bounds':>7s} {'failed':>7s}"]
    for report in reports:
        exact = sum(1 for c in report.checks if c.relation == "==")
        bounds = len(report.checks) - exact
        failed = len(report.failures())
        lines.append(f"{report.name:24s} {len(report.checks):5d} "
                     f"{exact:6d} {bounds:7d} {failed:7d}")
    for report in reports:
        for check in report.failures():
            lines.append(f"  FAIL {report.name}.{check.name}: "
                         f"{check.actual!r} {check.relation} "
                         f"{check.expected!r}"
                         + (f"  ({check.note})" if check.note else ""))
    total_failed = sum(len(r.failures()) for r in reports)
    verdict = "all invariants hold" if total_failed == 0 \
        else f"{total_failed} invariant(s) FAILED"
    lines.append(verdict)
    return "\n".join(lines)


def render_fuzz(results) -> str:
    """The differential-fuzz verdict, with shrunk reproducers."""
    if not results:
        return "VALIDATE - differential fuzz: skipped"
    diverged = [r for r in results if not r["ok"]]
    lines = [f"VALIDATE - differential fuzz: {len(results)} case(s), "
             f"{len(diverged)} divergence(s)"]
    for result in diverged:
        lines.append(result["reproducer"].describe())
    return "\n".join(lines)


def render_validate(reports, fuzz_results) -> str:
    return (render_invariants(reports) + "\n\n"
            + render_fuzz(fuzz_results))


def validate_json(reports, fuzz_results, meta: dict = None) -> dict:
    """Shape a validation run into the VALIDATE.json document."""
    cases = []
    for result in fuzz_results:
        entry = {"label": result["label"], "ok": result["ok"]}
        if result["reproducer"] is not None:
            reproducer = result["reproducer"]
            divergence = reproducer.divergence
            entry["reproducer"] = {
                "instructions": reproducer.case.instructions,
                "seed": reproducer.case.seed,
                "profile": reproducer.case.profile.name,
                "step": divergence.step,
                "field": divergence.field,
                "fast": repr(divergence.fast),
                "reference": repr(divergence.reference),
                "window": [{"step": step, "pc": pc,
                            "mnemonic": mnemonic}
                           for step, pc, mnemonic in divergence.window],
            }
        cases.append(entry)
    doc = {
        "schema": 1,
        "ok": (all(r.ok for r in reports)
               and all(c["ok"] for c in cases)),
        "invariants": [r.to_dict() for r in reports],
        "fuzz": {"cases": cases,
                 "divergences": sum(1 for c in cases if not c["ok"])},
    }
    if meta:
        doc["meta"] = dict(meta)
    return doc
