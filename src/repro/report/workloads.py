"""Workload zoo inventory: every registered workload, characterized.

:func:`workloads_report` walks the workload registry
(:mod:`repro.workloads.registry`), runs each generator workload at a
smoke budget on every machine that supports it, and returns one
JSON-able document — the committed ``WORKLOADS.json`` at the
repository root.  The document is the zoo's catalogue: name, generator
class, kind (paper / generator / trace), required executor families,
per-machine support, and a smoke-budget CPI per supported machine so a
reader can see at a glance which workloads stress what (the thrashers'
CPI towers over the paper five's).

The smoke budget keeps regeneration cheap; the committed numbers are
deterministic (fixed seed, memoised engine) and double as a coarse
regression pin — a cycle-model change shows up as a WORKLOADS.json
diff.

Regenerate with::

    PYTHONPATH=src python -m repro.report.workloads WORKLOADS.json
"""

from __future__ import annotations

import json

#: Bump when the WORKLOADS.json document layout changes.
WORKLOADS_SCHEMA = 1

#: Instructions per (workload, machine) characterization run.
SMOKE_INSTRUCTIONS = 2_000


def workloads_report(instructions: int = SMOKE_INSTRUCTIONS,
                     seed: int = 1984, progress=None) -> dict:
    """The workload inventory document (see module docstring)."""
    from repro.analysis.reduction import Reduction
    from repro.machines import MACHINES
    from repro.workloads import engine as _engines
    from repro.workloads.registry import DEFAULT_WORKLOAD, WORKLOADS

    doc = {
        "schema": WORKLOADS_SCHEMA,
        "instructions": instructions,
        "seed": seed,
        "default": DEFAULT_WORKLOAD,
        "count": len(WORKLOADS),
        "workloads": {},
    }
    for name, spec in WORKLOADS.items():
        entry = {
            "kind": spec.kind,
            "generator": spec.generator,
            "description": spec.description,
            "requires_families": sorted(spec.requires_families),
            "machines": {},
        }
        for machine in MACHINES:
            if not spec.supported_on(machine):
                entry["machines"][machine] = {
                    "supported": False,
                    "refused_families": sorted(
                        spec.refused_families(machine)),
                }
                continue
            if progress is not None:
                progress(f"workloads: {name}/{machine}")
            red = Reduction(_engines.run_workload(
                name, instructions, seed=seed,
                machine=machine).histogram)
            entry["machines"][machine] = {
                "supported": True,
                "cpi": round(red.cycles_per_instruction(), 6),
                "cycles": red.total_cycles(),
            }
        doc["workloads"][name] = entry
    return doc


def render_workloads(doc: dict) -> str:
    """A text table of the registry inventory."""
    machines = sorted({machine
                       for entry in doc["workloads"].values()
                       for machine in entry["machines"]})
    lines = []
    lines.append(f"WORKLOADS - registry inventory "
                 f"({doc['count']} workloads, "
                 f"{doc['instructions']} instructions at seed "
                 f"{doc['seed']})")
    header = f"{'workload':24s} {'class':12s} {'kind':10s}" \
        + "".join(f" {name + ' CPI':>14s}" for name in machines)
    lines.append(header)
    for name, entry in doc["workloads"].items():
        marker = "*" if name == doc["default"] else " "
        cells = ""
        for machine in machines:
            row = entry["machines"].get(machine, {})
            cells += (f" {row['cpi']:14.3f}" if row.get("supported")
                      else f" {'refused':>14s}")
        lines.append(f"{marker}{name:23s} {entry['generator']:12s} "
                     f"{entry['kind']:10s}{cells}")
    lines.append("")
    lines.append("* = default workload; 'refused' = the machine lacks "
                 "a required executor family")
    return "\n".join(lines)


def main(argv=None) -> int:
    import sys

    argv = sys.argv[1:] if argv is None else argv
    out = argv[0] if argv else "WORKLOADS.json"

    def progress(line):
        print(line, file=sys.stderr, flush=True)

    doc = workloads_report(progress=progress)
    with open(out, "w") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(render_workloads(doc))
    print(f"\nwrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
