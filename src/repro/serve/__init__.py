"""repro.serve: simulation-as-a-service over the :mod:`repro.api` facade.

Every other subsystem runs one command and exits; this one turns the
facade into a shared, deduplicating backend.  Clients POST
characterize/ubench/explore/validate jobs to an asyncio HTTP server
(stdlib only — :func:`asyncio.start_server` plus a minimal HTTP/1.1 +
JSON layer, :mod:`repro.serve.protocol`); the server canonicalizes each
request to a content-address key in the style of the explore store
(:mod:`repro.serve.canonical`), so

* **in-flight duplicates coalesce** — identical requests queued or
  running attach to the same job and are answered by one simulation;
* **completed duplicates are cache hits** — results persist in the
  content-addressed :class:`~repro.explore.store.ResultStore`, so any
  later identical request from any client is served without simulating
  (the determinism contracts make the cached document bit-identical to
  a fresh run).

Traffic shaping (:mod:`repro.serve.flow`): a bounded job queue answers
429 + ``Retry-After`` when full (backpressure), and a per-client token
bucket rate-limits submissions.  Execution (:mod:`repro.serve.workers`)
rides :func:`repro.workloads.parallel.run_tasks` — the same bounded
retry and pool-death fallback the sweep runner uses — and co-queued
``engine="auto"`` characterize jobs that differ only in budget fuse
through the lockstep batch engine (:mod:`repro.batch`).  ``SIGTERM``
drains: in-flight jobs finish and persist, new submissions get 503.

Surfaces: ``POST /jobs``, ``GET /jobs/<id>``, ``GET /jobs``,
``GET /metrics`` (queue depth, hit rate, in-flight, worker restarts,
store stats — backed by :mod:`repro.obs` counters), ``GET /healthz``.
``python -m repro serve`` runs it; ``python -m repro submit`` and
:class:`repro.serve.client.ServeClient` talk to it.
"""

from __future__ import annotations

from repro.serve.canonical import (COMMANDS, ServeRequest, parse_request,
                                   request_key)
from repro.serve.client import ServeClient, ServeError
from repro.serve.flow import TokenBucket
from repro.serve.jobs import Job, JobTable
from repro.serve.server import JobServer, ServeConfig

__all__ = ["COMMANDS", "Job", "JobServer", "JobTable", "ServeClient",
           "ServeConfig", "ServeError", "ServeRequest", "TokenBucket",
           "parse_request", "request_key"]
