"""Request canonicalization: one content-address per distinct job.

Every submission is parsed into a frozen request dataclass mirroring
the corresponding :mod:`repro.api` function's signature (defaults
included), validated up front with :class:`~repro.api.ApiError`
messages, and *resolved*: ``smoke`` collapses into the budget it
implies, ``table``/``profile``/``spec`` shorthands expand to their full
forms, an omitted ``engine`` becomes ``"scalar"``.  Two payloads that
differ only in field order, default-vs-explicit values, or shorthand
spelling therefore canonicalize to the same dict — and the same
:func:`request_key`, the serve analogue of the explore store's
:func:`~repro.explore.store.result_key`: a sha256 over the canonical
params plus the command, a serve schema number, and the simulator's
code-version digest (so a simulator change invalidates every cached
service result exactly as it invalidates sweep records).

The key deliberately includes every field that shapes the *result
document* — ``jobs`` and ``engine`` are execution knobs with
bit-identical outcomes, but they appear in the result dataclasses, so
they stay in the key to keep cached documents indistinguishable from
fresh ones.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields

from repro import api
from repro.explore.store import code_version

#: Bump when canonicalization or the served record layout changes;
#: part of every request key.
#: 2: every request carries the machine backend name (default vax780),
#:    so results from different machines can never share a key.
#: 3: workloads resolve through the workload registry — run-workload
#:    canonicalizes to a ``workload`` name (``profile`` is a deprecated
#:    alias), and characterize/validate carry their resolved workload
#:    name lists — so requests over different workload sets can never
#:    share a key.
SERVE_SCHEMA = 3


def _expect(request, name, value, kinds, none_ok=False):
    if value is None and none_ok:
        return
    if isinstance(value, bool) and bool not in (
            kinds if isinstance(kinds, tuple) else (kinds,)):
        raise api.ApiError(
            f"{request.command}: field {name!r} must be "
            f"{_kind_names(kinds)}, got {value!r}")
    if not isinstance(value, kinds):
        raise api.ApiError(
            f"{request.command}: field {name!r} must be "
            f"{_kind_names(kinds)}, got {value!r}")


def _kind_names(kinds) -> str:
    if not isinstance(kinds, tuple):
        kinds = (kinds,)
    return "/".join(k.__name__ for k in kinds)


@dataclass(frozen=True)
class ServeRequest:
    """Base: payload parsing, canonical dict, execution kwargs."""

    @classmethod
    def from_payload(cls, payload) -> "ServeRequest":
        """Build a request from a JSON params dict, strictly.

        Unknown fields raise :class:`~repro.api.ApiError` listing the
        valid ones — the same up-front rejection contract as the
        facade's ``--table``/axis validation.
        """
        if payload is None:
            payload = {}
        if not isinstance(payload, dict):
            raise api.ApiError(
                f"{cls.command}: params must be a JSON object, got "
                f"{type(payload).__name__}")
        names = [spec.name for spec in fields(cls)]
        unknown = sorted(set(payload) - set(names))
        if unknown:
            raise api.ApiError(
                f"{cls.command}: unknown field(s) "
                f"{', '.join(unknown)}; valid fields: "
                f"{', '.join(names)}")
        try:
            request = cls(**payload)
        except TypeError as exc:
            raise api.ApiError(f"{cls.command}: {exc}") from exc
        request.canonical()     # validate eagerly, before any queueing
        return request

    def canonical(self) -> dict:
        raise NotImplementedError

    def exec_kwargs(self) -> dict:
        """Keyword arguments for the facade call this request maps to."""
        raise NotImplementedError

    def fusion_group(self):
        """A grouping label for co-queued jobs that may fuse, or None."""
        return None


@dataclass(frozen=True)
class CharacterizeRequest(ServeRequest):
    command = "characterize"
    instructions: object = None
    seed: int = 1984
    jobs: int = 1
    paranoid: bool = False
    table: object = "all"
    smoke: bool = False
    engine: object = None
    machine: object = None
    workloads: object = None

    def canonical(self) -> dict:
        _expect(self, "instructions", self.instructions, int,
                none_ok=True)
        _expect(self, "seed", self.seed, int)
        _expect(self, "jobs", self.jobs, int)
        _expect(self, "paranoid", self.paranoid, bool)
        _expect(self, "smoke", self.smoke, bool)
        _expect(self, "machine", self.machine, str, none_ok=True)
        engine = _engine(self.engine)
        machine = _machine(self.machine)
        names = _workload_names(self.workloads, machine)
        if self.table in ("all", None):
            keys = list(api.TABLES)
        elif isinstance(self.table, str):
            keys = [self.table]
        else:
            keys = [str(key) for key in self.table]
        for key in keys:
            if key not in api.TABLES:
                raise api.ApiError(
                    f"unknown table {key!r}; choose from "
                    f"{', '.join(api.TABLES)}")
        return {"instructions": _budget(self.instructions, self.smoke),
                "seed": self.seed, "jobs": self.jobs,
                "paranoid": self.paranoid, "table": keys,
                "engine": engine, "machine": machine,
                "workloads": list(names)}

    def exec_kwargs(self) -> dict:
        canonical = self.canonical()
        canonical["table"] = tuple(canonical["table"])
        canonical["workloads"] = tuple(canonical["workloads"])
        return canonical

    def fusion_group(self):
        """Auto-engine jobs differing only in budget share a group.

        The dispatcher runs one group as a single worker task: the
        budgets become fused lanes of one lockstep batch run (see
        :func:`repro.serve.workers.prefuse_characterize`).
        """
        canonical = self.canonical()
        if canonical["engine"] != "auto":
            return None
        from repro.machines import DEFAULT_MACHINE

        if canonical["machine"] != DEFAULT_MACHINE:
            return None         # the lockstep batch engine is 780-only
        del canonical["instructions"]
        return f"{self.command}:" + json.dumps(canonical, sort_keys=True)


@dataclass(frozen=True)
class RunWorkloadRequest(ServeRequest):
    command = "run-workload"
    workload: str = None
    instructions: object = None
    seed: int = 1984
    paranoid: bool = False
    smoke: bool = False
    machine: object = None
    #: Deprecated alias of ``workload`` (pre-registry payloads).
    profile: str = None

    def canonical(self) -> dict:
        _expect(self, "workload", self.workload, str, none_ok=True)
        _expect(self, "profile", self.profile, str, none_ok=True)
        _expect(self, "instructions", self.instructions, int,
                none_ok=True)
        _expect(self, "seed", self.seed, int)
        _expect(self, "paranoid", self.paranoid, bool)
        _expect(self, "smoke", self.smoke, bool)
        _expect(self, "machine", self.machine, str, none_ok=True)
        wanted = self.workload if self.workload is not None \
            else self.profile
        if wanted is None:
            raise api.ApiError(
                f"{self.command}: field 'workload' is required")
        if self.workload is not None and self.profile is not None \
                and self.workload != self.profile:
            raise api.ApiError(
                f"{self.command}: 'workload' and 'profile' (its "
                f"deprecated alias) disagree: {self.workload!r} vs "
                f"{self.profile!r}")
        machine = _machine(self.machine)
        resolved = _resolve_workload(wanted, machine)
        instructions = self.instructions
        seed = self.seed
        if resolved.trace is not None:
            # Replay is pinned to its recording: an omitted budget or
            # default seed canonicalizes to the recorded values.
            if instructions is None and not self.smoke:
                instructions = resolved.trace.instructions
            if seed == 1984:
                seed = resolved.trace.seed
        return {"workload": resolved.name,
                "instructions": _budget(instructions, self.smoke),
                "seed": seed, "paranoid": self.paranoid,
                "machine": machine}

    def exec_kwargs(self) -> dict:
        return self.canonical()


@dataclass(frozen=True)
class UbenchRequest(ServeRequest):
    command = "ubench"
    group: object = None
    mode: object = None
    variant: object = None
    smoke: bool = False
    jobs: int = 1
    check: bool = True
    check_instructions: int = 20_000
    seed: int = 1984
    machine: object = None

    def canonical(self) -> dict:
        from repro.ubench import suite

        for name in ("group", "mode", "variant"):
            _expect(self, name, getattr(self, name), str, none_ok=True)
        _expect(self, "smoke", self.smoke, bool)
        _expect(self, "jobs", self.jobs, int)
        _expect(self, "check", self.check, bool)
        _expect(self, "check_instructions", self.check_instructions, int)
        _expect(self, "seed", self.seed, int)
        _expect(self, "machine", self.machine, str, none_ok=True)
        machine = _machine(self.machine)
        kernels = suite.select(group=self.group, mode=self.mode,
                               variant=self.variant, smoke=self.smoke,
                               machine=machine)
        if not kernels:
            raise api.ApiError(
                f"no kernels match group={self.group!r} "
                f"mode={self.mode!r} variant={self.variant!r} on "
                f"machine {machine!r}; groups: "
                f"{', '.join(suite.groups())}; modes: "
                f"{', '.join(suite.modes())}")
        return {"group": self.group, "mode": self.mode,
                "variant": self.variant, "smoke": self.smoke,
                "jobs": self.jobs, "check": self.check,
                "check_instructions": self.check_instructions,
                "seed": self.seed, "machine": machine}

    def exec_kwargs(self) -> dict:
        return self.canonical()


@dataclass(frozen=True)
class ExploreRequest(ServeRequest):
    command = "explore"
    spec: str = "paper-sensitivity"
    axes: tuple = ()
    mode: object = None
    instructions: object = None
    seed: object = None
    smoke: bool = False
    jobs: int = 1
    engine: object = None
    machine: object = None

    def _spec(self):
        axes = self.axes
        if isinstance(axes, str):
            raise api.ApiError(
                f"{self.command}: field 'axes' must be a list of "
                f"NAME=V1,V2 strings, got {axes!r}")
        return api.explore_spec(self.spec, tuple(axes), self.mode,
                                self.instructions, self.seed, self.smoke,
                                machine=self.machine)

    def canonical(self) -> dict:
        _expect(self, "spec", self.spec, str)
        _expect(self, "mode", self.mode, str, none_ok=True)
        _expect(self, "instructions", self.instructions, int,
                none_ok=True)
        _expect(self, "seed", self.seed, int, none_ok=True)
        _expect(self, "smoke", self.smoke, bool)
        _expect(self, "jobs", self.jobs, int)
        _expect(self, "machine", self.machine, str, none_ok=True)
        resolved = self._spec()
        return {"spec": resolved.name,
                "axes": [[axis.name, list(axis.values)]
                         for axis in resolved.axes],
                "mode": resolved.mode,
                "workloads": list(resolved.workloads),
                "instructions": resolved.instructions,
                "seed": resolved.seed, "jobs": self.jobs,
                "engine": _engine(self.engine),
                "machine": resolved.machine}

    def exec_kwargs(self) -> dict:
        # The sweep spec re-resolves from the original arguments (the
        # canonical spec name may be the synthetic "custom"); the
        # server injects its own store at execution time.
        return {"spec": self.spec, "axes": tuple(self.axes),
                "mode": self.mode, "instructions": self.instructions,
                "seed": self.seed, "smoke": self.smoke,
                "jobs": self.jobs, "engine": _engine(self.engine),
                "machine": self.machine}


@dataclass(frozen=True)
class ValidateRequest(ServeRequest):
    command = "validate"
    instructions: object = None
    fuzz_cases: int = 0
    fuzz_instructions: int = 400
    seed: int = 1984
    smoke: bool = False
    engine: object = None
    machine: object = None
    workloads: object = None

    def canonical(self) -> dict:
        from repro.machines import DEFAULT_MACHINE

        _expect(self, "instructions", self.instructions, int,
                none_ok=True)
        _expect(self, "fuzz_cases", self.fuzz_cases, int)
        _expect(self, "fuzz_instructions", self.fuzz_instructions, int)
        _expect(self, "seed", self.seed, int)
        _expect(self, "smoke", self.smoke, bool)
        _expect(self, "machine", self.machine, str, none_ok=True)
        engine = _engine(self.engine, choices=("scalar", "batch"))
        machine = _machine(self.machine)
        names = _workload_names(self.workloads, machine)
        if machine != DEFAULT_MACHINE and self.fuzz_cases:
            raise api.ApiError(
                f"differential fuzzing validates the {DEFAULT_MACHINE} "
                f"engines; drop fuzz_cases to validate machine "
                f"{machine!r}")
        instructions = self.instructions
        if instructions is None:
            instructions = api.SMOKE_INSTRUCTIONS if self.smoke \
                else 20_000
        fuzz_instructions = self.fuzz_instructions
        if self.smoke:
            fuzz_instructions = min(fuzz_instructions, 200)
        return {"instructions": instructions,
                "fuzz_cases": self.fuzz_cases,
                "fuzz_instructions": fuzz_instructions,
                "seed": self.seed, "smoke": self.smoke,
                "engine": engine, "machine": machine,
                "workloads": list(names)}

    def exec_kwargs(self) -> dict:
        canonical = self.canonical()
        canonical["workloads"] = tuple(canonical["workloads"])
        return canonical


#: command name -> request class, the service's public command surface.
COMMANDS = {
    cls.command: cls
    for cls in (CharacterizeRequest, RunWorkloadRequest, UbenchRequest,
                ExploreRequest, ValidateRequest)
}


def _budget(instructions, smoke: bool) -> int:
    if instructions is not None:
        return instructions
    return api.SMOKE_INSTRUCTIONS if smoke else api.DEFAULT_INSTRUCTIONS


def _engine(value, choices=None) -> str:
    from repro.batch import ENGINES, validate_engine

    try:
        return validate_engine(value, choices or ENGINES)
    except ValueError as exc:
        raise api.ApiError(str(exc)) from exc


def _machine(value) -> str:
    from repro.machines import MachineError, validate_machine

    try:
        return validate_machine(value)
    except MachineError as exc:
        raise api.ApiError(str(exc)) from exc


def _resolve_workload(value, machine: str):
    """Resolve one workload spelling to its registered spec, strictly.

    ``trace:PATH`` references are rejected: they would read (and
    register) server-local files on behalf of a remote client.  A
    trace already registered in the server process resolves by name
    like any other workload.
    """
    if not isinstance(value, str):
        raise api.ApiError(
            f"workload names must be strings, got {value!r}")
    if value.startswith("trace:"):
        raise api.ApiError(
            "trace:PATH references are not accepted over the job "
            "server; register the trace in the server process and "
            "submit its workload name")
    return api._workload(value, machine)


def _workload_names(value, machine: str) -> tuple:
    """Resolve a composite's ``workloads`` field to registered names.

    ``None`` canonicalizes to the paper's five (so an explicit
    spelling of the default collapses to the same request key);
    ``"all"`` to every generator workload the machine supports.
    Trace-backed workloads are rejected — a replay is pinned to one
    budget and cannot join an arbitrary composite.
    """
    from repro.workloads.registry import paper_workload_names

    if value is None:
        return paper_workload_names()
    if value == "all":
        return api._workload_names("all", machine)
    if isinstance(value, str):
        value = [value]
    if not isinstance(value, (list, tuple)):
        raise api.ApiError(
            "field 'workloads' must be a list of workload names, "
            f"a single name, or 'all'; got {value!r}")
    names = []
    for item in value:
        spec = _resolve_workload(item, machine)
        if spec.trace is not None:
            raise api.ApiError(
                f"trace workload {spec.name!r} cannot join a "
                "composite; run it via run-workload")
        if spec.name not in names:
            names.append(spec.name)
    if not names:
        raise api.ApiError("field 'workloads' selects no workloads")
    return tuple(names)


def parse_request(doc, default_engine: str = None,
                  default_machine: str = None) -> ServeRequest:
    """Parse a submission body into a validated request.

    ``doc`` is ``{"command": <name>, "params": {...}}``.
    ``default_engine`` (the server's ``--engine`` flag) fills in the
    ``engine`` field of requests that have one and did not set it —
    ``repro serve --engine auto`` is what turns co-queued budget-only
    characterize jobs into fused batch lanes.  ``default_machine``
    (the server's ``--machine`` flag) likewise fills in an unset
    ``machine`` field, turning the server into a dedicated backend for
    one machine.
    """
    if not isinstance(doc, dict):
        raise api.ApiError("request body must be a JSON object like "
                           '{"command": ..., "params": {...}}')
    extra = sorted(set(doc) - {"command", "params"})
    if extra:
        raise api.ApiError(f"unknown request key(s) {', '.join(extra)};"
                           " expected 'command' and 'params'")
    command = doc.get("command")
    if command not in COMMANDS:
        raise api.ApiError(
            f"unknown command {command!r}; choose from "
            f"{', '.join(sorted(COMMANDS))}")
    cls = COMMANDS[command]
    params = doc.get("params") or {}
    names = {spec.name for spec in fields(cls)}
    if default_engine is not None and isinstance(params, dict) \
            and "engine" in names and params.get("engine") is None:
        params = {**params, "engine": default_engine}
    if default_machine is not None and isinstance(params, dict) \
            and "machine" in names and params.get("machine") is None:
        params = {**params, "machine": default_machine}
    return cls.from_payload(params)


def request_key(request: ServeRequest, code: str = None) -> str:
    """The content address of one canonicalized service request."""
    payload = {
        "schema": SERVE_SCHEMA,
        "code": code_version() if code is None else code,
        "command": request.command,
        "params": request.canonical(),
    }
    canonical = json.dumps(payload, sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()
