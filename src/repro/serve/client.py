"""A tiny stdlib client for the job server.

:class:`ServeClient` speaks the server's one-request-per-connection
HTTP/1.1 subset through :mod:`http.client` — no dependencies, safe to
import anywhere.  ``repro submit`` is a thin CLI wrapper around it, and
the tests and the CI smoke script drive the server with it.

Rejections surface as :class:`ServeError` carrying the HTTP status and
the server's ``Retry-After`` hint, so callers can implement honest
backoff::

    client = ServeClient(port=8080)
    try:
        job = client.submit("characterize", {"smoke": True})
    except ServeError as exc:
        if exc.status == 429:
            time.sleep(exc.retry_after)
"""

from __future__ import annotations

import http.client
import json
import time


class ServeError(RuntimeError):
    """A request the server rejected (or a job that failed)."""

    def __init__(self, message: str, status: int = None,
                 retry_after: int = None, body: dict = None) -> None:
        super().__init__(message)
        self.status = status
        self.retry_after = retry_after
        self.body = body or {}


class ServeClient:
    """Submit jobs and poll the server, synchronously."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8080,
                 url: str = None, name: str = None,
                 timeout: float = 60.0) -> None:
        if url is not None:
            host, port = self._parse_url(url)
        self.host = host
        self.port = port
        self.name = name        #: sent as X-Repro-Client (rate-limit id)
        self.timeout = timeout

    @staticmethod
    def _parse_url(url: str):
        stripped = url.strip().rstrip("/")
        for prefix in ("http://", "https://"):
            if stripped.startswith(prefix):
                stripped = stripped[len(prefix):]
        host, _, port = stripped.partition(":")
        if not host or not port.isdigit():
            raise ServeError(f"cannot parse server url {url!r}; "
                             "expected http://HOST:PORT")
        return host, int(port)

    def _request(self, method: str, target: str, doc=None):
        """One round trip; returns (status, parsed body, headers)."""
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout)
        headers = {"Content-Type": "application/json"}
        if self.name:
            headers["X-Repro-Client"] = self.name
        body = json.dumps(doc).encode() if doc is not None else None
        try:
            connection.request(method, target, body=body,
                               headers=headers)
            response = connection.getresponse()
            raw = response.read()
            try:
                parsed = json.loads(raw) if raw else None
            except json.JSONDecodeError as exc:
                raise ServeError(
                    f"server sent non-JSON body for {method} {target}: "
                    f"{raw[:200]!r}", status=response.status) from exc
            return response.status, parsed, dict(response.getheaders())
        except (ConnectionError, OSError, http.client.HTTPException) \
                as exc:
            raise ServeError(
                f"cannot reach server at {self.host}:{self.port}: "
                f"{exc}") from exc
        finally:
            connection.close()

    def _checked(self, method: str, target: str, doc=None):
        status, body, headers = self._request(method, target, doc)
        if status >= 400:
            retry = headers.get("Retry-After")
            message = (body or {}).get("error", f"HTTP {status}")
            raise ServeError(f"{method} {target} -> {status}: "
                             f"{message}", status=status,
                             retry_after=int(retry) if retry else None,
                             body=body)
        return body

    # -- the service surface -------------------------------------------

    def submit(self, command: str, params: dict = None,
               wait: bool = True, poll: float = 0.05,
               timeout: float = 600.0) -> dict:
        """Submit one job; with ``wait``, block until it finishes.

        Returns the job document.  A job that *fails* raises
        :class:`ServeError` (with ``status=None`` — the submission
        itself was accepted); rejected submissions raise with the HTTP
        status and any ``Retry-After`` hint.
        """
        job = self._checked("POST", "/jobs",
                            {"command": command, "params": params or {}})
        if wait:
            job = self.wait(job["id"], poll=poll, timeout=timeout)
        if job["status"] == "failed":
            raise ServeError(f"job {job['id']} failed: {job['error']}",
                             body=job)
        return job

    def wait(self, job_id: str, poll: float = 0.05,
             timeout: float = 600.0) -> dict:
        """Poll ``/jobs/<id>`` until the job is done or failed."""
        deadline = time.monotonic() + timeout
        while True:
            job = self.job(job_id)
            if job["status"] in ("done", "failed"):
                return job
            if time.monotonic() >= deadline:
                raise ServeError(f"timed out after {timeout}s waiting "
                                 f"for job {job_id} "
                                 f"(status {job['status']})")
            time.sleep(poll)

    def job(self, job_id: str) -> dict:
        return self._checked("GET", f"/jobs/{job_id}")

    def jobs(self) -> list:
        return self._checked("GET", "/jobs")["jobs"]

    def metrics(self) -> dict:
        return self._checked("GET", "/metrics")

    def health(self) -> dict:
        return self._checked("GET", "/healthz")
