"""Traffic shaping for the job server: rate limits and backpressure.

Two mechanisms, both answered with 429 + ``Retry-After``:

* a **token bucket per client** (:class:`TokenBucket` behind
  :class:`RateLimiter`) bounds each client's submission rate —
  ``burst`` tokens refilled at ``rate`` per second, clients identified
  by the ``X-Repro-Client`` header or, failing that, the peer address;
* the **bounded job queue** (owned by the server) pushes back when
  full; :class:`RetryEstimator` turns an EWMA of recent job durations
  and the current depth into an honest ``Retry-After`` hint instead of
  a fixed constant.

Clocks are injectable so the unit tests drive time by hand.
"""

from __future__ import annotations

import math
import time


class TokenBucket:
    """The classic limiter: ``burst`` capacity, ``rate`` tokens/second.

    :meth:`take` returns 0.0 when a token was consumed, else the
    seconds until one will be available (the ``Retry-After`` hint).
    A ``rate`` of 0 never refills — the bucket is a hard cap of
    ``burst`` total requests, and exhausted clients are told to retry
    in :attr:`CAP` seconds.
    """

    #: Retry hint when the bucket can never refill.
    CAP = 3600.0

    __slots__ = ("rate", "burst", "tokens", "updated", "clock")

    def __init__(self, rate: float, burst: int,
                 clock=time.monotonic) -> None:
        if burst < 1:
            raise ValueError(f"burst must be at least 1, got {burst}")
        if rate < 0:
            raise ValueError(f"rate must be >= 0, got {rate}")
        self.rate = rate
        self.burst = burst
        self.tokens = float(burst)
        self.clock = clock
        self.updated = clock()

    def _refill(self) -> None:
        now = self.clock()
        if self.rate > 0:
            self.tokens = min(float(self.burst),
                              self.tokens + (now - self.updated)
                              * self.rate)
        self.updated = now

    def take(self) -> float:
        """Consume one token (0.0) or report the wait in seconds."""
        self._refill()
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return 0.0
        if self.rate <= 0:
            return self.CAP
        return (1.0 - self.tokens) / self.rate


class RateLimiter:
    """Per-client token buckets, pruned so idle clients cost nothing.

    ``rate=None`` disables limiting entirely (every :meth:`take`
    returns 0.0) — the default for a single-tenant local server.
    """

    #: Full buckets beyond this many clients are dropped on insert.
    MAX_CLIENTS = 1024

    def __init__(self, rate, burst: int = 8,
                 clock=time.monotonic) -> None:
        self.rate = rate
        self.burst = burst
        self.clock = clock
        self._buckets: dict = {}

    def take(self, client: str) -> float:
        if self.rate is None:
            return 0.0
        bucket = self._buckets.get(client)
        if bucket is None:
            if len(self._buckets) >= self.MAX_CLIENTS:
                self._prune()
            bucket = TokenBucket(self.rate, self.burst,
                                 clock=self.clock)
            self._buckets[client] = bucket
        return bucket.take()

    def _prune(self) -> None:
        """Drop clients whose buckets have refilled to full (idle)."""
        for client, bucket in list(self._buckets.items()):
            bucket._refill()
            if bucket.tokens >= bucket.burst:
                del self._buckets[client]


class RetryEstimator:
    """Turns queue depth into a ``Retry-After`` hint.

    Tracks an exponentially weighted moving average of completed job
    durations; the hint for a full queue is the time to drain it at
    that average over the configured worker concurrency, clamped to
    [1, :attr:`MAX`] seconds.
    """

    #: Never tell a client to back off longer than this.
    MAX = 120

    __slots__ = ("ewma", "alpha", "workers")

    def __init__(self, workers: int = 1, alpha: float = 0.3,
                 initial: float = 1.0) -> None:
        self.ewma = initial
        self.alpha = alpha
        self.workers = max(1, workers)

    def observe(self, seconds: float) -> None:
        self.ewma += self.alpha * (seconds - self.ewma)

    def retry_after(self, depth: int) -> int:
        estimate = self.ewma * (depth + 1) / self.workers
        return max(1, min(self.MAX, math.ceil(estimate)))
