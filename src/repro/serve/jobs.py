"""Job bookkeeping for the server: one record per distinct request.

A :class:`Job` is the unit clients poll — it carries the canonical
request, the content-address key, lifecycle timestamps, and eventually
the result document (or the error).  The :class:`JobTable` indexes jobs
two ways: by id for ``GET /jobs/<id>``, and by key for in-flight
coalescing (a duplicate submission attaches to the queued/running job
instead of enqueueing a second simulation).  Finished jobs age out of
the id index after ``history`` entries — their results live on in the
content-addressed store, which is the durable half of the service.
"""

from __future__ import annotations

import itertools
import time
from collections import deque

#: Lifecycle states, in order.
QUEUED, RUNNING, DONE, FAILED = "queued", "running", "done", "failed"


class Job:
    """One accepted request and everything that happened to it."""

    __slots__ = ("id", "key", "request", "canonical", "status",
                 "created", "started", "finished", "result", "error",
                 "cached", "coalesced", "attempts", "client",
                 "seconds")

    def __init__(self, job_id: str, key: str, request,
                 client: str = None, clock=time.time) -> None:
        self.id = job_id
        self.key = key
        self.request = request
        self.canonical = request.canonical()
        self.status = QUEUED
        self.created = clock()
        self.started = None
        self.finished = None
        self.result = None       #: the facade result's to_json() doc
        self.error = None
        self.cached = False      #: served from the store, no simulation
        self.coalesced = 0       #: duplicate submissions attached
        self.attempts = 0        #: execution rounds started
        self.client = client
        self.seconds = None      #: execution wall seconds (None: cached)

    @property
    def done(self) -> bool:
        return self.status in (DONE, FAILED)

    def to_json(self) -> dict:
        """The job document clients see (submission and polling)."""
        doc = {
            "id": self.id,
            "key": self.key,
            "command": self.request.command,
            "params": self.canonical,
            "status": self.status,
            "cached": self.cached,
            "coalesced": self.coalesced,
            "created": round(self.created, 6),
        }
        if self.started is not None:
            doc["started"] = round(self.started, 6)
        if self.finished is not None:
            doc["finished"] = round(self.finished, 6)
        if self.seconds is not None:
            doc["seconds"] = round(self.seconds, 6)
        if self.status == DONE:
            doc["result"] = self.result
        if self.status == FAILED:
            doc["error"] = self.error
        return doc


class JobTable:
    """Id and key indexes over the server's jobs, with bounded history.

    ``inflight`` holds exactly the not-yet-finished jobs, keyed by
    content address — the coalescing index.  ``history`` bounds how
    many *finished* jobs stay pollable by id; the store keeps their
    results beyond that.
    """

    def __init__(self, history: int = 512) -> None:
        self.history = history
        self.by_id: dict = {}
        self.inflight: dict = {}          #: key -> Job, not yet done
        self._finished: deque = deque()
        self._ids = itertools.count(1)
        self.submitted = 0

    def new_id(self) -> str:
        return f"j{next(self._ids):06d}"

    def add(self, job: Job) -> None:
        self.by_id[job.id] = job
        self.submitted += 1
        if job.done:
            self._retire(job)
        else:
            self.inflight[job.key] = job

    def get(self, job_id: str):
        return self.by_id.get(job_id)

    def coalesce(self, key: str):
        """The in-flight job this key would duplicate, or None."""
        return self.inflight.get(key)

    def finish(self, job: Job) -> None:
        """Move a job out of the in-flight index and cap history."""
        if self.inflight.get(job.key) is job:
            del self.inflight[job.key]
        self._retire(job)

    def _retire(self, job: Job) -> None:
        self._finished.append(job.id)
        while len(self._finished) > self.history:
            evicted = self._finished.popleft()
            self.by_id.pop(evicted, None)

    def counts(self) -> dict:
        """Job totals by status, for ``/metrics``."""
        counts = {QUEUED: 0, RUNNING: 0, DONE: 0, FAILED: 0}
        for job in self.by_id.values():
            counts[job.status] += 1
        counts["submitted"] = self.submitted
        return counts
