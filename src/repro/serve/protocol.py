"""Minimal HTTP/1.1 + JSON framing over asyncio streams.

Just enough HTTP for the job server: one request per connection
(``Connection: close``), JSON bodies both ways, no chunked encoding, no
keep-alive, no TLS.  The stdlib client (:mod:`http.client`) and plain
``curl`` both speak this subset natively, which keeps
:mod:`repro.serve.client` dependency-free.

The parser is deliberately strict — a malformed request line, header,
or body raises :class:`ProtocolError` and the server answers 400 —
because the server sits behind trusted harnesses (tests, CI, the
submit CLI), not the open internet.
"""

from __future__ import annotations

import json

#: Upper bound on accepted bodies; a characterize payload is < 1 KB,
#: so anything near this is a client bug, not a big job.
MAX_BODY = 1 << 20

#: Reason phrases for every status the server emits.
REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 408: "Request Timeout",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable",
}


class ProtocolError(Exception):
    """A request the HTTP layer could not parse."""


class Request:
    """One parsed HTTP request: method, target, headers, JSON body."""

    __slots__ = ("method", "target", "headers", "body")

    def __init__(self, method: str, target: str, headers: dict,
                 body: bytes) -> None:
        self.method = method
        self.target = target
        self.headers = headers       #: lower-cased name -> value
        self.body = body

    def json(self):
        """The body parsed as JSON (``None`` for an empty body)."""
        if not self.body:
            return None
        try:
            return json.loads(self.body)
        except json.JSONDecodeError as exc:
            raise ProtocolError(f"body is not valid JSON: {exc}") \
                from exc


async def read_request(reader, max_body: int = MAX_BODY) -> Request:
    """Parse one request from an asyncio stream reader.

    Raises :class:`ProtocolError` on anything malformed and
    ``asyncio.IncompleteReadError``/``ConnectionError`` when the peer
    hangs up mid-request (callers treat those as a closed connection,
    not a protocol error).
    """
    line = await reader.readline()
    if not line:
        raise ConnectionResetError("connection closed before request")
    try:
        method, target, version = line.decode("ascii").split()
    except ValueError as exc:
        raise ProtocolError(f"malformed request line {line!r}") from exc
    if not version.startswith("HTTP/1."):
        raise ProtocolError(f"unsupported protocol {version!r}")
    headers = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        try:
            name, _, value = line.decode("ascii").partition(":")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"malformed header {line!r}") from exc
        if not _:
            raise ProtocolError(f"malformed header {line!r}")
        headers[name.strip().lower()] = value.strip()
    length = headers.get("content-length", "0")
    try:
        length = int(length)
    except ValueError as exc:
        raise ProtocolError(f"bad Content-Length {length!r}") from exc
    if length < 0 or length > max_body:
        raise ProtocolError(f"body of {length} bytes out of range "
                            f"(max {max_body})")
    body = await reader.readexactly(length) if length else b""
    return Request(method.upper(), target, headers, body)


def response_bytes(status: int, doc=None, headers: dict = None) -> bytes:
    """One complete HTTP/1.1 response with a JSON body."""
    body = b""
    if doc is not None:
        body = (json.dumps(doc, sort_keys=True) + "\n").encode()
    lines = [f"HTTP/1.1 {status} {REASONS.get(status, 'Unknown')}",
             "Content-Type: application/json",
             f"Content-Length: {len(body)}",
             "Connection: close"]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode() + body
