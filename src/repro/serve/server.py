"""The asyncio job server: queueing, coalescing, caching, drain.

One event loop owns all bookkeeping — submissions, the bounded queue,
the job table — so there are no locks; simulation happens off-loop in
dispatcher *rounds* (``asyncio.to_thread`` →
:func:`repro.workloads.parallel.run_tasks` → :func:`~repro.serve.
workers.run_group`), which is where worker processes, bounded retry
and pool-death fallback live.

Request lifecycle::

    POST /jobs ── draining? ──────────────── 503
         │        rate bucket empty? ─────── 429 + Retry-After
         │        canonicalize (ApiError) ── 400
         │        key in-flight? ─────────── 202, coalesced
         │        key in store? ──────────── 200, cache hit
         │        queue full? ────────────── 429 + Retry-After
         └──────► queued ── dispatcher round ── done/failed
                              └─ result persisted under its key

``SIGTERM`` (or :meth:`JobServer.stop`) drains: new submissions get
503 while queued and running jobs finish and persist, then the server
closes — the CI smoke test sends a real signal and asserts nothing was
lost.  Everything observable rides :mod:`repro.obs`: counters/gauges
for queue depth, hit rate, in-flight and worker restarts feed
``GET /metrics``, and lifecycle events land in the usual JSONL stream
when the CLI wraps the server in ``--obs``.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass

from repro import api, obs
from repro.explore.store import ResultStore, code_version
from repro.obs import metrics
from repro.serve import canonical as _canonical
from repro.serve import protocol
from repro.serve.flow import RateLimiter, RetryEstimator
from repro.serve.jobs import (DONE, FAILED, QUEUED, RUNNING, Job,
                              JobTable)
from repro.serve.workers import run_group
from repro.workloads.parallel import run_tasks


@dataclass
class ServeConfig:
    """Everything ``repro serve`` can tune."""

    host: str = "127.0.0.1"
    port: int = 0                 #: 0 = ephemeral; JobServer.port tells
    queue_size: int = 64          #: bounded job queue (backpressure)
    workers: int = 1              #: worker processes per round (1 = inline)
    rate: float = None            #: per-client submissions/second (None = off)
    burst: int = 8                #: per-client token-bucket capacity
    store: str = ".explore/store"  #: shared result cache (None = off)
    engine: str = None            #: default engine for engine-less requests
    machine: str = None           #: default machine for machine-less requests
    job_timeout: float = None     #: seconds per dispatcher round (None = off)
    job_retries: int = 1          #: re-runs after a round timeout
    round_limit: int = 16         #: max jobs drained into one round
    history: int = 512            #: finished jobs kept pollable by id
    heartbeat_interval: float = 10.0  #: obs heartbeat event cadence


class JobServer:
    """The simulation service; one instance per event loop."""

    def __init__(self, config: ServeConfig = None) -> None:
        self.config = config or ServeConfig()
        self.store = ResultStore(self.config.store) \
            if self.config.store is not None else None
        self.table = JobTable(history=self.config.history)
        self.limiter = RateLimiter(self.config.rate, self.config.burst)
        self.estimator = RetryEstimator(workers=self.config.workers)
        self.draining = False
        self.port = None
        self._queue = None            #: asyncio.Queue, made in start()
        self._gate = None             #: dispatch gate (tests pause it)
        self._stopped = None
        self._server = None
        self._tasks = []
        self._code = None

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> None:
        """Bind, start the dispatcher, return once accepting."""
        self._queue = asyncio.Queue(maxsize=self.config.queue_size)
        self._gate = asyncio.Event()
        self._gate.set()
        self._work = asyncio.Event()
        self._stopped = asyncio.Event()
        self._code = code_version()
        self._server = await asyncio.start_server(
            self._handle, self.config.host, self.config.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._tasks = [asyncio.create_task(self._dispatch(),
                                           name="serve-dispatch"),
                       asyncio.create_task(self._heartbeat(),
                                           name="serve-heartbeat")]
        obs.emit("serve_started", host=self.config.host, port=self.port,
                 queue_size=self.config.queue_size,
                 workers=self.config.workers)

    async def serve_forever(self) -> None:
        """Block until :meth:`stop` (or a drain signal) completes."""
        await self._stopped.wait()

    def request_drain(self) -> None:
        """Signal-handler entry point: drain then stop, asynchronously."""
        asyncio.get_running_loop().create_task(self.stop(drain=True))

    async def stop(self, drain: bool = True) -> None:
        """Stop the server; with ``drain``, finish queued work first."""
        if self.draining:
            await self._stopped.wait()
            return
        self.draining = True
        obs.emit("serve_draining", queued=self._queue.qsize(),
                 inflight=len(self.table.inflight))
        if drain:
            self._gate.set()          # a paused dispatcher still drains
            while self.table.inflight:
                await asyncio.sleep(0.01)
        for task in self._tasks:
            task.cancel()
        self._server.close()
        await self._server.wait_closed()
        obs.emit("serve_stopped", jobs=self.table.submitted)
        self._stopped.set()

    def pause_dispatch(self) -> None:
        """Hold the dispatcher (tests fill the queue deterministically)."""
        self._gate.clear()

    def resume_dispatch(self) -> None:
        self._gate.set()

    # -- dispatcher ----------------------------------------------------

    async def _dispatch(self) -> None:
        while True:
            # Gate first, pop second — while paused (tests filling the
            # queue deterministically) no job ever leaves the queue.
            await self._gate.wait()
            try:
                job = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                self._work.clear()
                await self._work.wait()
                continue
            round_jobs = [job]
            while len(round_jobs) < self.config.round_limit:
                try:
                    round_jobs.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            await self._run_round(round_jobs)

    def _plan_groups(self, round_jobs) -> list:
        """Group co-queued jobs that can fuse; singletons otherwise."""
        groups = []
        fused = {}
        for job in round_jobs:
            label = job.request.fusion_group()
            if label is None:
                groups.append([job])
            elif label in fused:
                fused[label].append(job)
            else:
                group = [job]
                fused[label] = group
                groups.append(group)
        return groups

    def _exec_kwargs(self, job) -> dict:
        kwargs = dict(job.request.exec_kwargs())
        if job.request.command == "explore":
            # Sweeps share the service's store (their per-point records
            # live beside the served documents) — never the default
            # relative path of whatever directory the server runs in.
            kwargs["store"] = self.config.store
        return kwargs

    async def _run_round(self, round_jobs) -> None:
        groups = self._plan_groups(round_jobs)
        tasks = []
        for group in groups:
            for job in group:
                job.status = RUNNING
                job.started = time.time()
                job.attempts += 1
            tasks.append((group[0].request.command,
                          [self._exec_kwargs(job) for job in group]))
        self._refresh_gauges()
        obs.emit("serve_round_started", jobs=len(round_jobs),
                 groups=len(groups),
                 fused=len(round_jobs) - len(groups))
        runner = asyncio.create_task(asyncio.to_thread(
            run_tasks, run_group, tasks, jobs=self.config.workers))
        try:
            if self.config.job_timeout is not None:
                outcomes = await asyncio.wait_for(
                    asyncio.shield(runner),
                    timeout=self.config.job_timeout)
            else:
                outcomes = await runner
        except asyncio.TimeoutError:
            metrics.counter("serve.worker.timeouts").inc()
            # The round's thread cannot be killed; let its results land
            # late (first finish wins — results are deterministic, so
            # either attempt's document is THE document).
            runner.add_done_callback(
                lambda task: self._resolve_late(groups, task))
            await self._requeue_or_fail(groups)
            return
        except Exception as exc:   # run_tasks exhausted its fallbacks
            for group in groups:
                for job in group:
                    self._finish(job, {"ok": False,
                                       "error": f"worker round failed: "
                                                f"{exc!r}"})
            return
        self._resolve(groups, outcomes)

    def _resolve(self, groups, outcomes) -> None:
        for group, envelopes in zip(groups, outcomes):
            for job, envelope in zip(group, envelopes):
                self._finish(job, envelope)

    def _resolve_late(self, groups, task) -> None:
        if task.cancelled() or task.exception() is not None:
            return
        self._resolve(groups, task.result())

    async def _requeue_or_fail(self, groups) -> None:
        for group in groups:
            for job in group:
                if job.done:
                    continue
                if job.attempts <= self.config.job_retries:
                    job.status = QUEUED
                    metrics.counter("serve.jobs.requeued").inc()
                    try:
                        self._queue.put_nowait(job)
                        self._work.set()
                    except asyncio.QueueFull:
                        self._finish(job, {
                            "ok": False,
                            "error": "timed out and queue full on "
                                     "retry"})
                else:
                    self._finish(job, {
                        "ok": False,
                        "error": f"timed out after {job.attempts} "
                                 f"attempt(s) of "
                                 f"{self.config.job_timeout}s"})

    def _finish(self, job, envelope) -> None:
        if job.done:            # a late (timed-out) round already lost
            return
        job.finished = time.time()
        job.seconds = envelope.get("seconds")
        if envelope.get("ok"):
            job.status = DONE
            job.result = envelope["result"]
            if self.store is not None:
                self.store.put(job.key, {
                    "schema": f"serve-{_canonical.SERVE_SCHEMA}",
                    "code": self._code,
                    "command": job.request.command,
                    "params": job.canonical,
                    "result": job.result,
                    "seconds": job.seconds,
                })
        else:
            job.status = FAILED
            job.error = envelope.get("error", "unknown failure")
        if job.seconds:
            self.estimator.observe(job.seconds)
        self.table.finish(job)
        self._refresh_gauges()
        obs.emit("serve_job_finished", id=job.id,
                 command=job.request.command, status=job.status,
                 coalesced=job.coalesced,
                 seconds=job.seconds)

    # -- submission ----------------------------------------------------

    def submit(self, doc, client: str = None):
        """Accept one submission; returns (status, body, headers).

        Pure bookkeeping on the loop thread — the actual simulation
        happens in dispatcher rounds.  Exposed for in-process callers
        (tests, the perf harness); the HTTP POST handler is a thin
        wrapper.
        """
        if self.draining:
            return 503, {"error": "server is draining"}, {}
        wait = self.limiter.take(client or "anonymous")
        if wait > 0:
            metrics.counter("serve.rejected.rate_limited").inc()
            retry = max(1, int(wait + 0.999))
            return (429, {"error": "rate limited",
                          "retry_after": retry},
                    {"Retry-After": str(retry)})
        try:
            request = _canonical.parse_request(
                doc, default_engine=self.config.engine,
                default_machine=self.config.machine)
        except api.ApiError as exc:
            metrics.counter("serve.rejected.invalid").inc()
            return 400, {"error": str(exc)}, {}
        key = _canonical.request_key(request, code=self._code)
        existing = self.table.coalesce(key)
        if existing is not None:
            existing.coalesced += 1
            metrics.counter("serve.coalesced").inc()
            return 202, existing.to_json(), {}
        if self.store is not None:
            record = self.store.get(key)
            if record is not None and "result" in record:
                metrics.counter("serve.cache.hits").inc()
                job = Job(self.table.new_id(), key, request,
                          client=client)
                job.status = DONE
                job.cached = True
                job.result = record["result"]
                job.finished = job.created
                self.table.add(job)
                return 200, job.to_json(), {}
        metrics.counter("serve.cache.misses").inc()
        job = Job(self.table.new_id(), key, request, client=client)
        try:
            self._queue.put_nowait(job)
        except asyncio.QueueFull:
            metrics.counter("serve.rejected.queue_full").inc()
            retry = self.estimator.retry_after(self._queue.qsize())
            return (429, {"error": "queue full",
                          "retry_after": retry},
                    {"Retry-After": str(retry)})
        self._work.set()
        self.table.add(job)
        self._refresh_gauges()
        obs.emit("serve_job_queued", id=job.id, command=request.command,
                 depth=self._queue.qsize())
        return 202, job.to_json(), {}

    # -- metrics -------------------------------------------------------

    def _refresh_gauges(self) -> None:
        metrics.gauge("serve.queue.depth").set(self._queue.qsize())
        metrics.gauge("serve.inflight").set(len(self.table.inflight))

    def metrics_doc(self) -> dict:
        """The ``/metrics`` document: service state + registry."""
        registry = metrics.registry()

        def count(name):
            return registry.counter(name).value

        hits = count("serve.cache.hits")
        misses = count("serve.cache.misses")
        return {
            "queue": {"depth": self._queue.qsize(),
                      "capacity": self.config.queue_size},
            "inflight": len(self.table.inflight),
            "draining": self.draining,
            "jobs": self.table.counts(),
            "cache": {
                "hits": hits, "misses": misses,
                "hit_rate": round(hits / (hits + misses), 4)
                if hits + misses else None,
                "coalesced": count("serve.coalesced"),
            },
            "rejected": {
                "queue_full": count("serve.rejected.queue_full"),
                "rate_limited": count("serve.rejected.rate_limited"),
                "invalid": count("serve.rejected.invalid"),
            },
            "workers": {
                "configured": self.config.workers,
                "executed": count("serve.jobs.executed"),
                "fused_lanes": count("serve.fused_lanes"),
                "pool_restarts": count("parallel.pool_failures"),
                "task_retries": count("parallel.retries"),
                "timeouts": count("serve.worker.timeouts"),
                "requeued": count("serve.jobs.requeued"),
            },
            "store": self.store.stats() if self.store is not None
            else None,
            "metrics": registry.snapshot(),
        }

    async def _heartbeat(self) -> None:
        interval = self.config.heartbeat_interval
        if not interval:
            return
        while True:
            await asyncio.sleep(interval)
            self._refresh_gauges()
            obs.emit("serve_heartbeat", depth=self._queue.qsize(),
                     inflight=len(self.table.inflight),
                     draining=self.draining)

    # -- HTTP ----------------------------------------------------------

    async def _handle(self, reader, writer) -> None:
        try:
            try:
                request = await protocol.read_request(reader)
            except protocol.ProtocolError as exc:
                writer.write(protocol.response_bytes(
                    400, {"error": str(exc)}))
                return
            except (ConnectionError, asyncio.IncompleteReadError):
                return
            status, body, headers = self._route(request, writer)
            writer.write(protocol.response_bytes(status, body, headers))
        except Exception as exc:    # never kill the acceptor
            try:
                writer.write(protocol.response_bytes(
                    500, {"error": f"internal error: "
                                   f"{type(exc).__name__}"}))
            except Exception:
                pass
        finally:
            try:
                await writer.drain()
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _route(self, request, writer):
        method, target = request.method, request.target.rstrip("/")
        if target == "/jobs" and method == "POST":
            try:
                doc = request.json()
            except protocol.ProtocolError as exc:
                return 400, {"error": str(exc)}, {}
            client = request.headers.get("x-repro-client")
            if client is None:
                peer = writer.get_extra_info("peername")
                client = peer[0] if peer else "anonymous"
            return self.submit(doc, client=client)
        if target == "/jobs" and method == "GET":
            return 200, {"jobs": [
                {"id": job.id, "command": job.request.command,
                 "status": job.status}
                for job in self.table.by_id.values()]}, {}
        if target.startswith("/jobs/"):
            if method != "GET":
                return 405, {"error": "use GET"}, {}
            job = self.table.get(target[len("/jobs/"):])
            if job is None:
                return 404, {"error": "no such job (it may have aged "
                                      "out of history)"}, {}
            return 200, job.to_json(), {}
        if target == "/metrics" and method == "GET":
            return 200, self.metrics_doc(), {}
        if target == "/healthz" and method == "GET":
            return 200, {"ok": True, "draining": self.draining,
                         "port": self.port}, {}
        return 404, {"error": f"no route for {method} {target}"}, {}
