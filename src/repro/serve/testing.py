"""Test harness: a :class:`JobServer` on a background event loop.

The server is single-loop by design; tests (and the perf harness) are
synchronous.  :class:`ServerThread` bridges the two — it runs the loop
in a daemon thread, exposes the bound port, and proxies the few
loop-affine operations (pausing the dispatcher, awaiting a drain)
through ``run_coroutine_threadsafe``/``call_soon_threadsafe`` so
callers never touch the loop directly.

Usage::

    with ServerThread(ServeConfig(workers=1)) as handle:
        client = handle.client()
        job = client.submit("characterize", {"smoke": True})
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import threading

from repro.serve.client import ServeClient
from repro.serve.server import JobServer, ServeConfig


class ServerThread:
    """Run a job server on its own loop thread, synchronously driven."""

    def __init__(self, config: ServeConfig = None) -> None:
        self.config = config or ServeConfig()
        self.server = JobServer(self.config)
        self.loop = None
        self._thread = None

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "ServerThread":
        ready = threading.Event()
        failure = []

        def run():
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self.loop = loop
            try:
                loop.run_until_complete(self.server.start())
            except Exception as exc:
                failure.append(exc)
                ready.set()
                return
            ready.set()
            loop.run_forever()
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

        self._thread = threading.Thread(target=run, daemon=True,
                                        name="serve-test-loop")
        self._thread.start()
        if not ready.wait(30):
            raise RuntimeError("server loop did not come up in 30s")
        if failure:
            raise failure[0]
        return self

    def stop(self, drain: bool = True) -> None:
        if self.loop is None or not self._thread.is_alive():
            return
        try:
            self.call(self.server.stop(drain=drain), timeout=120)
        finally:
            self.loop.call_soon_threadsafe(self.loop.stop)
            self._thread.join(30)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop(drain=exc_info[0] is None)

    # -- synchronous proxies -------------------------------------------

    @property
    def port(self) -> int:
        return self.server.port

    def client(self, name: str = None, **kwargs) -> ServeClient:
        return ServeClient(port=self.port, name=name, **kwargs)

    def call(self, coro, timeout: float = 60.0):
        """Run a coroutine on the server loop; return its result."""
        future = asyncio.run_coroutine_threadsafe(coro, self.loop)
        return future.result(timeout)

    def do(self, func, *args, timeout: float = 60.0):
        """Run a plain callable on the loop thread (loop-affine state)."""
        future = concurrent.futures.Future()

        def wrapper():
            try:
                future.set_result(func(*args))
            except BaseException as exc:   # surfaced to the caller
                future.set_exception(exc)

        self.loop.call_soon_threadsafe(wrapper)
        return future.result(timeout)

    def pause_dispatch(self) -> None:
        self.do(self.server.pause_dispatch)

    def resume_dispatch(self) -> None:
        self.do(self.server.resume_dispatch)

    def submit(self, doc: dict, client: str = None):
        """Submit on the loop thread, bypassing HTTP (unit tests)."""
        return self.do(lambda: self.server.submit(doc, client=client))
