"""Job execution: facade calls behind the dispatcher's worker rounds.

The dispatcher hands each round to
:func:`repro.workloads.parallel.run_tasks` with :func:`run_group` as
the worker — so a multi-group round fans out over worker processes
with the same bounded retry and pool-death in-process fallback the
sweep runner relies on, and every group comes back wrapped with its
metrics delta for the deterministic merge.

A *group* is ``(command, [exec_kwargs, ...])``: a singleton for most
jobs, or several co-queued ``engine="auto"`` characterize jobs that
differ only in budget.  For those, :func:`prefuse_characterize` runs
every (workload × budget) as lanes of one lockstep batch
(:mod:`repro.batch`) — budget-only lanes fuse onto shared machines, so
K co-queued budgets cost about one run of the largest — and primes the
engine memo so the ordinary facade call then assembles each job's
result without simulating anything.  Results are bit-identical to
direct facade calls either way; fusion only moves wall-clock time.

Deterministic failures (an :class:`~repro.api.ApiError` that slipped
past submission validation, a simulation error) are *returned* as
error envelopes rather than raised, so ``run_tasks`` never burns its
retries re-running a job that will fail identically; only a worker
process dying triggers the retry/fallback machinery.
"""

from __future__ import annotations

import time

from repro import api
from repro.obs import metrics

#: Facade calls actually executed by this process since import — the
#: service twin of ``repro.explore.runner.SIMULATIONS``.  Coalesced and
#: cache-served jobs never increment it; the dedup tests pin that.
EXECUTIONS = 0

#: command name -> facade function.
EXECUTORS = {
    "characterize": api.characterize,
    "run-workload": api.run_workload,
    "ubench": api.ubench,
    "explore": api.explore,
    "validate": api.validate,
}


def execute(command: str, kwargs: dict) -> dict:
    """Run one facade call; returns an ok/error envelope, never raises.

    The envelope's ``result`` is the facade result's ``to_json()``
    document — exactly what a direct caller would serialize, so cached
    replays are bit-identical.
    """
    global EXECUTIONS
    func = EXECUTORS[command]
    started = time.perf_counter()
    try:
        result = func(**kwargs)
    except Exception as exc:
        metrics.counter("serve.jobs.failed").inc()
        return {"ok": False,
                "error": f"{type(exc).__name__}: {exc}",
                "seconds": round(time.perf_counter() - started, 6)}
    EXECUTIONS += 1
    metrics.counter("serve.jobs.executed").inc()
    return {"ok": True, "result": result.to_json(),
            "seconds": round(time.perf_counter() - started, 6)}


def prefuse_characterize(payloads) -> int:
    """Fuse a group of budget-only characterize jobs into one batch.

    ``payloads`` agree on everything but ``instructions`` (the fusion
    group key guarantees it).  Every (workload, budget, seed) the
    group needs that is not already memoised becomes one lane;
    budget-only lanes fuse onto shared machines, and each captured
    measurement is primed into the engine memo under the key the
    facade will look up.  Returns the number of lanes run.
    """
    from repro.batch import LaneSpec, run_lanes
    from repro.workloads import engine as _engines
    from repro.workloads.registry import paper_workload_names

    lanes = []
    seen = set()
    for kwargs in payloads:
        names = kwargs.get("workloads") or paper_workload_names()
        for name in names:
            key = (name, kwargs["instructions"], kwargs["seed"])
            if key not in seen and not _engines.is_cached(*key):
                seen.add(key)
                lanes.append(LaneSpec(*key))
    if not lanes:
        return 0
    results = run_lanes(lanes)
    for lane, result in zip(lanes, results):
        _engines.prime_cache(lane.workload, lane.instructions,
                             lane.seed, result.measurement)
    metrics.counter("serve.fused_lanes").inc(len(lanes))
    return len(lanes)


def run_group(task) -> list:
    """Worker entry point (top-level, so it pickles): one job group."""
    command, payloads = task
    if command == "characterize" and len(payloads) > 1:
        try:
            prefuse_characterize(payloads)
        except Exception:
            # A failed lane fails again, identically, in the per-job
            # facade call below — which is where the error belongs,
            # attributed to the job that asked for it.
            pass
    return [execute(command, kwargs) for kwargs in payloads]
