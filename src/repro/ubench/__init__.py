"""repro.ubench: nanoBench-style microbenchmarks for the simulated 11/780.

Where the paper (and :mod:`repro.analysis`) recovers *aggregate* cycle
costs from a composite workload's µPC histogram, this package measures
*per-instruction* costs directly, the way nanoBench / uops.info do on
modern hardware: tiny steady-state kernels, one opcode and one operand
specifier mode at a time, run under a hardware-style measurement session
and confronted with an analytical prediction derived from the microcode
flows.  Exactness is the contract — see :mod:`repro.ubench.runner`.

    from repro.ubench import runner, suite
    results = runner.run_suite(suite.SMOKE_SUITE, jobs=1)
"""

from repro.ubench.kernels import (Instr, Kernel, KernelError,
                                  MEASURED_COPIES, WARMUP_COPIES, emit)
from repro.ubench.model import (BUCKETS, CAUSES, ModelError,
                                predict_kernel)
from repro.ubench.runner import UbenchError, run_kernel, run_suite
from repro.ubench.suite import (SMOKE_SUITE, STANDARD_SUITE,
                                kernel_by_name, select)

__all__ = ["Instr", "Kernel", "KernelError", "MEASURED_COPIES",
           "WARMUP_COPIES", "emit", "BUCKETS", "CAUSES", "ModelError",
           "predict_kernel", "UbenchError", "run_kernel", "run_suite",
           "SMOKE_SUITE", "STANDARD_SUITE", "kernel_by_name", "select"]
