"""Coherence check: microbenchmark model vs. the composite measurement.

The microbenchmarks measure each instruction in isolation; the paper's
composite measures everything at once.  This pass closes the loop: it
takes the composite's µPC histogram, predicts every opcode group's
execute-row busy cycles from the *same* per-family cost constants the
kernel model uses (scaled by the composite's per-family instruction
counts), and demands agreement within a tolerance.

Irreducibly data-dependent slots (a multiply's iteration count, a string
instruction's length-driven work loop, RET's mask-driven pops) cannot be
predicted from instruction counts alone; those few slots are carried at
their measured value and reported as the row's unmodeled fraction, so
the check stays honest about how much of each group it actually
predicts.  SIMPLE and FIELD are checked as one combined row: the decode
fuses the last specifier cycle into execute for register/literal forms
of families spanning both groups, and only the combined pool of fused
cycles is recoverable from the histogram.

The paper's headline (Table 5: 10.6 cycles per instruction) rides along
in the summary for orientation.
"""

from __future__ import annotations

from repro.analysis.reduction import family_groups, reference_map

#: The paper's composite average cycles per instruction (Table 5).
PAPER_CPI = 10.6

#: Default relative tolerance for per-group execute-cycle agreement.
TOLERANCE = 0.05

# Per-family execute-row cost model, slot by slot.  Rules:
#   int                      -> that many cycles per executed instruction
#   "meas"                   -> carried at the measured count (unmodeled;
#                               data-dependent loop or event count)
#   ("scale", slot, k)       -> k cycles per execution of another slot
#   ("scalesum", slots, k)   -> k cycles per execution of several slots
# Any slot a family has but this table omits is treated as "meas".
_EXEC_MODEL = {
    "MOV": {"exec": 1}, "MOVZ": {"exec": 1}, "MCOM": {"exec": 1},
    "MNEG": {"exec": 1}, "CLR": {"exec": 1}, "CVT_INT": {"exec": 1},
    "MOVA": {"exec": 1}, "NOP": {"exec": 1},
    "MOVQ": {"exec": 2}, "CLRQ": {"exec": 2}, "PSW": {"exec": 2},
    "PUSHA": {"exec": 1, "push": 1}, "PUSHL": {"exec": 1, "push": 1},
    "ADDSUB": {"alu": 1}, "INCDEC": {"alu": 1}, "ADWC": {"alu": 1},
    "LOGICAL": {"alu": 1}, "BIT": {"alu": 1}, "CMP": {"alu": 1},
    "TST": {"alu": 1},
    "ADAWI": {"alu": 1, "interlock": 2},
    "INDEX": {"setup": 2, "check": 2, "mul": 8},
    "ASH": {"setup": 1, "shift": 2}, "ASHQ": {"setup": 1, "shift": 4},
    "ROT": {"setup": 1, "shift": 1},
    # Taken-branch work scales with the (measured) redirect count.
    "BCOND": {"test": 1, "redirect": "meas"},
    "BLB": {"test": 1, "redirect": "meas"},
    "AOB": {"alu": 1, "redirect": "meas"},
    "SOB": {"alu": 1, "redirect": "meas"},
    "ACB": {"alu": 2, "redirect": "meas"},
    "JMP": {"setup": 1, "redirect": 1},
    "BSB": {"setup": 1, "push": 1, "redirect": 1},
    "JSB": {"setup": 1, "push": 1, "redirect": 1},
    "RSB": {"setup": 1, "pop": 1, "redirect": 1},
    "CASE": {"setup": 2, "table": "meas", "redirect": 1},
    "EXT": {"setup": 5, "shift": 4, "fread": "meas"},
    "INSV": {"setup": 5, "shift": 4, "fread": "meas", "fwrite": "meas"},
    "CMPV": {"setup": 5, "shift": 4, "fread": "meas"},
    "FF": {"setup": 5, "fread": "meas", "scan": "meas"},
    "BB": {"setup": "meas", "fread": "meas", "fwrite": "meas",
           "redirect": "meas"},
    "FADDSUB": {"prep": 1, "fpa": 6}, "DADDSUB": {"prep": 1, "fpa": 6},
    "FCVT": {"prep": 1, "fpa": 5}, "DCVT": {"prep": 1, "fpa": 7},
    "FMOV": {"exec": 3}, "FCMP": {"exec": 3}, "DMOV": {"exec": 3},
    "DCMP": {"exec": 4},
    # Multiply/divide iteration counts are operand-value dependent.
    "FMULDIV": {"prep": 1, "fpa": "meas"},
    "DMULDIV": {"prep": 1, "fpa": "meas"},
    "MULDIV_INT": {"prep": 1, "loop": "meas"},
    "EMUL": {"prep": 1, "loop": 10}, "EDIV": {"prep": 1, "loop": 21},
    "CALL": {"entry": 6, "mask_read": 1, "work": ("scale", "push", 4),
             "push": "meas", "finish": 7, "redirect": 1},
    "RET": {"entry": 5, "pop": "meas", "work": "meas", "finish": 5,
            "redirect": 1},
    "PUSHR": {"entry": 2, "work": ("scale", "push", 2), "push": "meas"},
    "POPR": {"entry": 2, "work": ("scale", "pop", 2), "pop": "meas"},
    "CHM": {"entry": 9, "vector": 1, "push": 3, "finish": 7,
            "redirect": 1},
    "REI": {"entry": 6, "pop": 2, "finish": 7, "redirect": 1},
    "PROBE": {"check": 4},
    "INSQUE": {"entry": 5, "link": 1, "relink": 4, "finish": 2},
    "REMQUE": {"entry": 3, "link": 2, "relink": 2, "finish": 2},
    "MTPR": {"op": 5}, "MFPR": {"op": 5}, "HALT": {"op": 1},
    "SVPCTX": {"entry": 8, "work": 15, "save": 18, "pop": 2},
    "LDPCTX": {"entry": 8, "work": 17, "load": 18, "push": 2},
    "MOVC": {"entry": 4, "fetch": "meas", "work": "meas",
             "stores": "meas", "exit": 4},
    "CMPC": {"entry": 3, "fetch": "meas", "work": "meas", "exit": 2},
    "LOCC": {"entry": 2, "fetch": "meas", "work": ("scale", "fetch", 3),
             "exit": 2},
    "SKPC": {"entry": 2, "fetch": "meas", "work": ("scale", "fetch", 3),
             "exit": 2},
    "SCANC": {"entry": 2, "fetch": "meas", "table": "meas",
              "work": ("scale", "fetch", 2), "exit": 2},
    "SPANC": {"entry": 2, "fetch": "meas", "table": "meas",
              "work": ("scale", "fetch", 2), "exit": 2},
    "MOVTC": {"entry": 4, "fetch": "meas", "table": "meas",
              "work": "meas", "stores": "meas", "exit": 4},
    "MOVP": {"entry": 10, "fetch": "meas", "stores": "meas",
             "work": ("scalesum", ("fetch", "stores"), 6), "exit": 8},
    "CMPP": {"entry": 10, "fetch": "meas",
             "work": ("scalesum", ("fetch",), 6), "exit": 8},
    "ADDP": {"entry": 10, "fetch": "meas", "stores": "meas",
             "work": ("scalesum", ("fetch", "stores"), 6), "exit": 8},
    "SUBP": {"entry": 10, "fetch": "meas", "stores": "meas",
             "work": ("scalesum", ("fetch", "stores"), 6), "exit": 8},
    "CVTLP": {"entry": 10, "stores": "meas",
              "work": ("scalesum", ("stores",), 6), "exit": 8},
    "CVTPL": {"entry": 10, "fetch": "meas",
              "work": ("scalesum", ("fetch",), 6), "exit": 8},
}


def _family_prediction(family, slots, ns, n, extra=0):
    """(predicted cycles, modeled cycles) for one family's execute row.

    ``slots`` is the family's slot->address map; ``ns`` the nonstalled
    histogram; ``n`` the family's executed-instruction count; ``extra``
    the machine's per-instruction execute surcharge for the family's
    group (zero on the 780).  The modeled part excludes every slot
    carried at its measured value.
    """
    rules = _EXEC_MODEL.get(family, {})
    predicted = modeled = extra * n
    for slot, addr in slots.items():
        rule = rules.get(slot, "meas")
        if rule == "meas":
            predicted += ns[addr]
        elif isinstance(rule, int):
            predicted += rule * n
            modeled += rule * n
        elif rule[0] == "scale":
            _, src, k = rule
            cycles = k * ns[slots[src]]
            predicted += cycles
            modeled += cycles
        elif rule[0] == "scalesum":
            _, srcs, k = rule
            cycles = k * sum(ns[slots[s]] for s in srcs if s in slots)
            predicted += cycles
            modeled += cycles
        else:
            raise AssertionError(f"bad rule {rule!r} for {family}.{slot}")
    return predicted, modeled


def check_composite(measurement, tolerance=TOLERANCE, machine=None):
    """Check per-group execute cycles of a composite measurement.

    Returns a dict with one row per populated opcode group (SIMPLE and
    FIELD combined): measured vs. predicted busy cycles in the group's
    execute row, the relative error, and the modeled fraction.  ``ok``
    is True when every row's relative error is within ``tolerance``.
    ``machine`` optionally names the backend the composite ran on, so
    the prediction includes that machine's per-group execute surcharge.
    """
    extras = {}
    if machine is not None:
        from repro.machines import get_machine

        extras = dict(get_machine(machine).params.exec_extra_cycles)
    store, umap = reference_map()
    ns = measurement.histogram.nonstalled
    groups = family_groups()

    per_group = {}
    for family, slots in umap.exec_flows.items():
        n = ns[umap.ird[family]]
        measured = sum(ns[addr] for addr in slots.values())
        if not n and not measured:
            continue
        predicted, modeled = _family_prediction(
            family, slots, ns, n,
            extra=extras.get(groups[family].name, 0))
        group = groups[family].name.lower()
        row = per_group.setdefault(group, {
            "group": group, "instructions": 0, "measured": 0,
            "predicted": 0, "modeled": 0,
        })
        row["instructions"] += n
        row["measured"] += measured
        row["predicted"] += predicted
        row["modeled"] += modeled

    # Merge SIMPLE and FIELD: their fused specifier+execute cycles are
    # charged to the spec rows' fused slots, and that pool is only
    # recoverable combined.  Subtract it from the prediction.
    fused_pool = sum(ns[addr] for addr in umap.spec_fused.values())
    merged = {"group": "simple+field", "instructions": 0, "measured": 0,
              "predicted": 0, "modeled": 0}
    for name in ("simple", "field"):
        row = per_group.pop(name, None)
        if row is None:
            continue
        for key in ("instructions", "measured", "predicted", "modeled"):
            merged[key] += row[key]
    if merged["instructions"]:
        merged["predicted"] -= fused_pool
        merged["modeled"] -= fused_pool
        per_group["simple+field"] = merged

    rows = []
    for row in per_group.values():
        measured, predicted = row["measured"], row["predicted"]
        rel_err = (abs(measured - predicted) / measured) if measured \
            else (1.0 if predicted else 0.0)
        row["rel_err"] = rel_err
        row["modeled_fraction"] = (row["modeled"] / predicted) \
            if predicted else 1.0
        row["ok"] = rel_err <= tolerance
        rows.append(row)
    rows.sort(key=lambda r: r["group"])

    instructions = sum(ns[addr] for addr in umap.ird.values())
    total = measurement.cycles
    return {
        "rows": rows,
        "tolerance": tolerance,
        "ok": all(r["ok"] for r in rows),
        "instructions": instructions,
        "cycles": total,
        "cpi": (total / instructions) if instructions else 0.0,
        "paper_cpi": PAPER_CPI,
    }
