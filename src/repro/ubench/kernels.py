"""Microbenchmark kernel descriptions and code generation.

A *kernel* is a tiny steady-state program in the nanoBench style: one
instruction sequence (usually a single instruction) repeated as
straight-line unrolled copies, preceded by a prologue that establishes
register state and warms the cache/TB, and followed by warm-up copies
that bring the pipeline to steady state before the measured window.

The same :class:`Kernel` object drives both sides of the measurement:

* :func:`emit` turns it into an executable :class:`~repro.asm.program.Image`
  (data area, shared subroutines, prologue, warm-up copies, measured
  copies, HALT), reporting exactly how many instructions each phase
  executes so the runner can place the measurement window;
* :mod:`repro.ubench.model` walks the same operand/instruction specs to
  predict the busy-cycle cost of one copy analytically.

Keeping one description for both is what lets the runner demand *exact*
agreement between the analytical model and the µPC histogram.
"""

from __future__ import annotations

import struct

from repro.arch import encode as enc
from repro.asm.program import ProgramBuilder
from repro.vm.address import S0_BASE

#: Image base: data area first, then code (labels resolve forward).
DATA_BASE = S0_BASE + 0x8000

#: Fresh, never-touched regions for cold-variant kernels (each measured
#: copy strides onto a new 512-byte page: compulsory TB and cache miss).
COLD_READ_BASE = S0_BASE + 0x200000
COLD_WRITE_BASE = S0_BASE + 0x240000

#: Page stride used by cold kernels (the 11/780 page is 512 bytes).
COLD_STRIDE = 512

#: Default shape of a run: warm-up copies then measured copies.
WARMUP_COPIES = 8
MEASURED_COPIES = 32

#: Registers the prologue's pre-touch loop clobbers; kernels must not
#: depend on them (R12-R15 are AP/FP/SP/PC and also off limits except
#: where a kernel manages them deliberately).
PRETOUCH_REGS = (9, 10, 11)


class KernelError(Exception):
    """A kernel description that cannot be emitted."""


class Op:
    """One operand specifier: addressing mode plus its parameters.

    ``label`` may be a data-area label name or ``(name, offset)``; it is
    resolved to an absolute address at emission time (for ``absolute``
    operands and register initial values).  ``stride`` shifts a
    displacement by ``stride * copy_index`` so cold kernels can touch a
    fresh page per copy while keeping the encoding length fixed.
    """

    __slots__ = ("mode", "reg", "value", "disp", "disp_size", "stride",
                 "label", "index")

    def __init__(self, mode, reg=0, value=0, disp=0, disp_size=0,
                 stride=0, label=None, index=None):
        self.mode = mode
        self.reg = reg
        self.value = value
        self.disp = disp
        self.disp_size = disp_size
        self.stride = stride
        self.label = label
        self.index = index


def lit(value):
    """Short literal ``S^#value``."""
    return Op("literal", value=value)


def reg(n):
    """Register ``Rn``."""
    return Op("register", reg=n)


def regdef(n):
    """Register deferred ``(Rn)``."""
    return Op("regdef", reg=n)


def autoinc(n):
    """Autoincrement ``(Rn)+``."""
    return Op("autoinc", reg=n)


def autodec(n):
    """Autodecrement ``-(Rn)``."""
    return Op("autodec", reg=n)


def autoincdef(n):
    """Autoincrement deferred ``@(Rn)+``."""
    return Op("autoincdef", reg=n)


def imm(value):
    """Immediate ``I^#value``."""
    return Op("immediate", value=value)


def absref(label):
    """Absolute ``@#label`` against the kernel's data area."""
    return Op("absolute", label=label)


def dispop(n, disp, size=1, stride=0):
    """Displacement ``d(Rn)`` with an explicit B^/W^/L^ width."""
    return Op("disp", reg=n, disp=disp, disp_size=size, stride=stride)


def dispdef(n, disp, size=1):
    """Displacement deferred ``@d(Rn)``."""
    return Op("dispdef", reg=n, disp=disp, disp_size=size)


def indexed(base, xreg):
    """Add an ``[Rx]`` index prefix to a base operand."""
    out = Op(base.mode, reg=base.reg, value=base.value, disp=base.disp,
             disp_size=base.disp_size, stride=base.stride,
             label=base.label)
    out.index = xreg
    return out


class Instr:
    """One instruction of a kernel copy.

    ``branch`` is ``None``, ``"next"`` (branch displacement targeting the
    next copy) or an explicit label (shared subroutines).  ``emit=False``
    marks instructions *executed* per copy but emitted once elsewhere
    (a shared RSB/RET subroutine body); the model still costs them and
    the runner still steps them.  ``params`` carries the data-dependent
    quantities the analytical model needs (documented per use in
    :func:`repro.ubench.model.exec_busy`).
    """

    __slots__ = ("mnemonic", "ops", "branch", "emit", "params")

    def __init__(self, mnemonic, ops=(), branch=None, emit=True,
                 params=None):
        self.mnemonic = mnemonic
        self.ops = tuple(ops)
        self.branch = branch
        self.emit = emit
        self.params = dict(params or {})


class Kernel:
    """A complete microbenchmark description."""

    __slots__ = ("name", "group", "mode", "variant", "instrs", "regs",
                 "sp_label", "data", "pretouch", "needs", "cc_reg", "note",
                 "smoke")

    def __init__(self, name, group, mode, instrs, variant="warm",
                 regs=None, sp_label=None, data=(), pretouch=(),
                 needs=(), cc_reg=None, note="", smoke=False):
        self.name = name
        self.group = group            # opcode-group label, lowercase
        self.mode = mode              # operand-mode label for filtering
        self.variant = variant        # "warm" | "cold"
        self.instrs = tuple(instrs)
        self.regs = dict(regs or {})  # reg -> int | label | (label, off)
        self.sp_label = sp_label
        self.data = tuple(data)       # (label, payload-spec) pairs
        self.pretouch = tuple(pretouch)   # (label|"stack"|int, nbytes)
        self.needs = tuple(needs)     # shared subroutines: rsb_proc/ret_proc
        self.cc_reg = cc_reg          # TSTL Rn in the prologue sets CC
        self.note = note
        self.smoke = smoke

    @property
    def ipc(self):
        """Instructions executed per copy (including emit=False ones)."""
        return len(self.instrs)

    def mnemonics(self):
        return tuple(i.mnemonic for i in self.instrs)


class Emitted:
    """An assembled kernel plus its phase instruction counts."""

    __slots__ = ("kernel", "image", "setup_instructions",
                 "warmup_instructions", "measured_instructions",
                 "warmup", "copies")

    def __init__(self, kernel, image, setup, warmup, copies):
        self.kernel = kernel
        self.image = image
        self.setup_instructions = setup
        self.warmup = warmup
        self.copies = copies
        self.warmup_instructions = warmup * kernel.ipc
        self.measured_instructions = copies * kernel.ipc


def _resolve(ref, labels):
    """Resolve an int / label / (label, offset) reference to an address."""
    if isinstance(ref, int):
        return ref
    if isinstance(ref, tuple):
        name, offset = ref
        return labels[name] + offset
    return labels[ref]


def _encode_op(op, labels, copy_index):
    """Turn an :class:`Op` into an encodable ``enc.Operand``."""
    mode = op.mode
    if mode == "literal":
        out = enc.literal(op.value)
    elif mode == "register":
        out = enc.register(op.reg)
    elif mode == "regdef":
        out = enc.register_deferred(op.reg)
    elif mode == "autoinc":
        out = enc.autoincrement(op.reg)
    elif mode == "autodec":
        out = enc.autodecrement(op.reg)
    elif mode == "autoincdef":
        out = enc.autoinc_deferred(op.reg)
    elif mode == "immediate":
        out = enc.immediate(op.value)
    elif mode == "absolute":
        out = enc.absolute(_resolve(op.label, labels))
    elif mode == "disp":
        out = enc.displacement(op.reg, op.disp + op.stride * copy_index,
                               size=op.disp_size)
    elif mode == "dispdef":
        out = enc.disp_deferred(op.reg, op.disp, size=op.disp_size)
    else:
        raise KernelError(f"unknown operand mode {mode!r}")
    if op.index is not None:
        out = out.indexed(op.index)
    return out


def _emit_data(b, kernel, labels):
    """Emit the kernel's data area, recording label addresses."""
    for label, spec in kernel.data:
        b.align(4)
        labels[label] = DATA_BASE + b.offset
        kind = spec[0]
        if kind == "zeros":
            b.space(spec[1])
        elif kind == "bytes":
            b.data(spec[1])
        elif kind == "ptrs":
            # A table of longword pointers at `label`, all aimed at an
            # already-emitted target label (self-reference allowed).
            _, target, count = spec
            target_addr = _resolve(target, labels)
            b.data(struct.pack("<I", target_addr & 0xFFFFFFFF) * count)
        else:
            raise KernelError(f"unknown data spec {kind!r}")
    b.align(4)


def _emit_procs(b, kernel, labels):
    """Emit shared subroutine bodies referenced by emit=False instrs."""
    if "rsb_proc" in kernel.needs:
        labels["rsb_proc"] = DATA_BASE + b.offset
        b.label("rsb_proc")
        b.emit("RSB")
    if "ret_proc" in kernel.needs:
        b.align(4)
        # CALL reads a 2-byte entry mask at the target, then enters at
        # target+2 — lay out a zero mask followed by RET.
        labels["ret_proc"] = DATA_BASE + b.offset
        b.label("ret_proc")
        b.data(b"\x00\x00")
        b.emit("RET")


def _emit_prologue(b, kernel, labels, sp_init):
    """Pre-touch loops, register init, SP init, CC setup.

    Returns the number of instructions the prologue executes (pre-touch
    loops run their body once per iteration, so this exceeds the number
    of instructions *emitted*).
    """
    executed = 0
    for seq, (target, nbytes) in enumerate(kernel.pretouch):
        if target == "stack":
            addr = sp_init - nbytes
        else:
            addr = _resolve(target, labels)
        count = max(1, (nbytes + 3) // 4)
        b.emit("MOVL", enc.immediate(addr), enc.register(10))
        b.emit("MOVL", enc.immediate(count), enc.register(11))
        loop = f"pretouch{seq}"
        b.label(loop)
        b.emit("MOVL", enc.autoincrement(10), enc.register(9))
        b.branch("SOBGTR", loop, enc.register(11))
        executed += 2 + 2 * count
    for n in sorted(kernel.regs):
        value = _resolve(kernel.regs[n], labels)
        b.emit("MOVL", enc.immediate(value & 0xFFFFFFFF), enc.register(n))
        executed += 1
    if kernel.sp_label is not None:
        b.emit("MOVL", enc.immediate(_resolve(kernel.sp_label, labels)),
               enc.register(14))
        executed += 1
    if kernel.cc_reg is not None:
        b.emit("TSTL", enc.register(kernel.cc_reg))
        executed += 1
    return executed


def _emit_copy(b, kernel, labels, index, next_label):
    """Emit one copy of the kernel body."""
    for instr in kernel.instrs:
        if not instr.emit:
            continue
        ops = [_encode_op(op, labels, index) for op in instr.ops]
        if instr.mnemonic.startswith("CASE"):
            b.case(instr.mnemonic, ops[0], ops[1], ops[2], [next_label])
        elif instr.branch is not None:
            target = next_label if instr.branch == "next" else instr.branch
            b.branch(instr.mnemonic, target, *ops)
        else:
            b.emit(instr.mnemonic, *ops)


def emit(kernel, warmup=WARMUP_COPIES, copies=MEASURED_COPIES):
    """Assemble a kernel into an image with known phase boundaries."""
    b = ProgramBuilder()
    labels = {}
    _emit_data(b, kernel, labels)
    _emit_procs(b, kernel, labels)
    b.label("start")
    sp_init = DATA_BASE - 0x100 if kernel.sp_label is None \
        else _resolve(kernel.sp_label, labels)
    setup = _emit_prologue(b, kernel, labels, sp_init)
    total = warmup + copies
    for i in range(total):
        b.label(f"c{i}")
        _emit_copy(b, kernel, labels, i, f"c{i + 1}")
    b.label(f"c{total}")
    b.emit("HALT")
    image = b.assemble(DATA_BASE)
    return Emitted(kernel, image, setup, warmup, copies)
