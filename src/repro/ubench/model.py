"""Analytical cycle-cost model for microbenchmark kernels.

Predicts, from the microcode address map alone, how many *busy* cycles
one copy of a kernel spends in each stage of the 11/780's instruction
flow: I-Decode, specifier evaluation, the fused specifier+execute
optimization, branch-displacement processing, the ECO patch detour, and
the execute micro-routine.  These are the cycles the machine charges to
COMPUTE/READ/WRITE micro-addresses independent of machine state, so for
a steady-state kernel the prediction must match the measured histogram
*exactly* — any difference appears in the runner's itemized overhead
causes (IB stalls, cache-miss stalls, TB-miss service, ...), never as an
unexplained busy-cycle delta.

The busy-bucket predictions mirror, stage by stage, what
``VAX780.step`` / ``EBox.evaluate_specifiers`` / the executor tables
charge; ``tests/ubench/test_exactness.py`` holds the two accountable to
each other for every kernel in the suite.
"""

from __future__ import annotations

from repro.arch.opcodes import opcode
from repro.cpu.machine import _FUSABLE_FAMILIES
from repro.params import VAX780 as _STOCK

#: Families routed through the ECO "patch board" detour by default
#: (mirrors MachineParams.patched_families): one extra cycle per decode.
PATCHED_FAMILIES = frozenset({"ADDSUB", "CALL", "CHM", "MOVC"})

#: Busy-cycle buckets reported per kernel, in pipeline order.
BUCKETS = ("decode", "patch", "spec", "fused", "bdisp", "execute")

#: Itemized overhead causes (measured, never predicted to a constant).
CAUSES = ("ib-stall", "read-stall", "write-stall", "tb-miss",
          "unaligned", "interrupt", "other")


class ModelError(Exception):
    """A kernel the analytical model cannot cost."""


# Addressing modes whose a/v access pays a one-cycle address compute
# (the deferred modes already computed the pointer during the deref).
_ADDR_CALC_MODES = frozenset({"regdef", "autoinc", "autodec", "disp",
                              "absolute"})
_MEMORY_MODES = frozenset({"regdef", "autoinc", "autodec", "autoincdef",
                           "absolute", "disp", "dispdef"})


def specifier_cost(op, kind) -> int:
    """Busy cycles one operand specifier costs (evaluation + store).

    ``op`` is a :class:`repro.ubench.kernels.Op`; ``kind`` the matching
    :class:`~repro.arch.opcodes.OperandKind`.  Result-store writes for
    ``w``/``m`` access are included here: the machine charges them to the
    same specifier flow rows when the executor stores the result.
    """
    access, size = kind.access, kind.size
    mode = op.mode
    cost = 0
    if mode in ("literal", "register"):
        return 0
    if mode == "immediate":
        # Literal bytes come from the I-stream; one compute cycle per
        # longword assembled.
        return 1 if size <= 4 else 2
    if mode == "absolute":
        cost += 1                       # assemble the address longword
    elif mode == "autodec":
        cost += 1                       # register update cycle
    elif mode == "autoincdef":
        cost += 1                       # pointer read through the table
    elif mode == "disp":
        cost += 1 if op.disp_size > 1 else 0    # word/long displacement add
    elif mode == "dispdef":
        cost += (1 if op.disp_size > 1 else 0) + 1 + 1  # calc + upd + ptr
    if op.index is not None:
        cost += 1                       # [Rx] scale-and-add cycle
    nrefs = 1 if size <= 4 else 2
    if access == "r":
        cost += nrefs
    elif access == "m":
        cost += 2 * nrefs               # read at evaluation, write at store
    elif access == "w":
        cost += nrefs                   # write at store
    elif access in ("a", "v"):
        if mode in _ADDR_CALC_MODES:
            cost += 1                   # materialize the address
    return cost


def _is_fused(info, ops) -> bool:
    """Does the decode fuse the last specifier cycle into execute?"""
    if info.family not in _FUSABLE_FAMILIES or not ops:
        return False
    return all(op.mode in ("literal", "register") for op in ops)


def exec_busy(info, params) -> int:
    """Busy cycles charged to the family's execute micro-routine.

    ``params`` supplies the data-dependent knobs a kernel fixes by
    construction (branch taken, field located in memory, string lengths,
    ...).  Raises :class:`ModelError` for families this model does not
    cover (e.g. MTPR/MFPR, which need privileged-register hooks).
    """
    f = info.family
    mn = info.mnemonic
    p = params
    taken = 1 if p.get("taken") else 0
    if f in ("MOV", "MOVZ", "MCOM", "MNEG", "CLR", "CVT_INT", "MOVA",
             "NOP"):
        return 1
    if f in ("MOVQ", "CLRQ", "PSW"):
        return 2
    if f in ("PUSHA", "PUSHL"):
        return 2                        # compute + push write
    if f in ("ADDSUB", "INCDEC", "ADWC", "LOGICAL", "BIT", "CMP", "TST"):
        return 1
    if f == "ADAWI":
        return 3
    if f == "INDEX":
        return 12
    if f == "ASH":
        return 3
    if f == "ASHQ":
        return 5
    if f == "ROT":
        return 2
    if f in ("BCOND", "BLB", "AOB", "SOB"):
        return 1 + taken
    if f == "ACB":
        return 2 + taken
    if f == "JMP":
        return 2
    if f in ("BSB", "JSB", "RSB"):
        return 3                        # setup + push/pop + redirect
    if f == "CASE":
        # Always redirects; the dispatch-table read happens only for an
        # in-range selector.
        return 3 + (1 if p.get("in_range", True) else 0)
    if f in ("EXT", "CMPV"):
        return 9 + p.get("field_reads", 0)
    if f == "INSV":
        return 9 + (2 if p.get("field_rmw") else 0)
    if f == "FF":
        return 6 + p.get("field_reads", 0) + (p.get("scanned", 0) >> 3)
    if f == "BB":
        cost = 4 + p.get("field_reads", 0) + taken
        if p.get("field_rmw"):
            cost += 2
        if p.get("interlocked"):
            cost += 2
        return cost
    if f in ("FADDSUB", "DADDSUB"):
        return 7
    if f == "FMULDIV":
        return 12 if mn.startswith("DIV") else 11
    if f == "DMULDIV":
        return 16 if mn.startswith("DIV") else 11
    if f == "MULDIV_INT":
        return 16 if mn.startswith("DIV") else 9
    if f == "FCVT":
        return 6
    if f == "DCVT":
        return 8
    if f in ("FMOV", "FCMP", "DMOV"):
        return 3
    if f == "DCMP":
        return 4
    if f == "EMUL":
        return 11
    if f == "EDIV":
        return 22
    if f == "CALL":
        # entry 6 + mask read + finish 7 + redirect, plus 5 per pushed
        # longword (4 work + 1 write): PC/FP/AP/status always, the numarg
        # push for CALLS, and one per entry-mask register.
        return 35 + (5 if mn == "CALLS" else 0) + 5 * p.get("save_regs", 0)
    if f == "RET":
        return (21 + (1 if p.get("calls_frame") else 0)
                + 3 * p.get("save_regs", 0))
    if f in ("PUSHR", "POPR"):
        return 2 + 3 * p.get("nregs", 0)
    if f == "CHM":
        return 21
    if f == "REI":
        return 16
    if f == "PROBE":
        return 4
    if f == "INSQUE":
        return 12
    if f == "REMQUE":
        return 9
    if f == "HALT":
        return 1
    if f == "SVPCTX":
        return 43
    if f == "LDPCTX":
        return 45
    if f == "MOVC":
        # entry 4 + exit 4; 9 per full longword moved (read+7 work+write),
        # 4 per tail byte, 3 per MOVC5 fill byte.
        return (8 + 9 * p.get("full", 0) + 4 * p.get("tail", 0)
                + 3 * p.get("fill", 0))
    if f == "CMPC":
        # entry 3 + exit 2; each byte position costs one work cycle plus
        # its operand reads (2 while both strings cover the position).
        return 5 + p.get("iters", 0) + p.get("reads", 0)
    if f in ("LOCC", "SKPC"):
        return 4 + 4 * p.get("chunks", 0)   # read + 3 work per 4-byte chunk
    if f in ("SCANC", "SPANC"):
        return 4 + 4 * p.get("iters", 0)    # 2 reads + 2 work per byte
    if f == "MOVTC":
        return 8 + 5 * p.get("moved", 0) + 2 * p.get("fill", 0)
    if f in ("MOVP", "CMPP", "ADDP", "SUBP", "CVTLP", "CVTPL"):
        # entry 10 + exit 8; every packed byte read or written costs its
        # reference plus six decimal-work cycles.
        return 18 + 7 * (p.get("pbytes_read", 0) + p.get("pbytes_written", 0))
    raise ModelError(f"no execute-cost model for family {f!r} ({mn})")


def predict_instr(instr, params=None) -> dict:
    """Busy-cycle buckets for one instruction of a kernel copy.

    ``params`` is the target machine's :class:`MachineParams` (default:
    the stock 11/780): the patch detour follows the machine's patch
    set, and a machine's per-group execute surcharge
    (``exec_extra_cycles``) lands in the execute bucket, exactly where
    the engine charges it.
    """
    if params is None:
        params = _STOCK
    info = opcode(instr.mnemonic)
    out = dict.fromkeys(BUCKETS, 0)
    out["decode"] = 1
    if info.family in params.patched_families:
        out["patch"] = 1
    kinds = info.specifier_operands
    if len(instr.ops) != len(kinds):
        raise ModelError(
            f"{instr.mnemonic} takes {len(kinds)} specifiers, kernel "
            f"supplies {len(instr.ops)}")
    for op, kind in zip(instr.ops, kinds):
        out["spec"] += specifier_cost(op, kind)
    execute = exec_busy(info, instr.params)
    execute += dict(params.exec_extra_cycles).get(info.group.name, 0)
    if _is_fused(info, instr.ops):
        # The first execute cycle issues from the fused-specifier
        # address; total busy cycles are unchanged, attribution moves.
        out["fused"] = 1
        execute -= 1
    out["execute"] = execute
    if info.branch_operand is not None and instr.params.get("taken"):
        out["bdisp"] = 1
    return out


def predict_kernel(kernel, params=None) -> dict:
    """Busy-cycle buckets for one copy of the kernel (all instructions)."""
    out = dict.fromkeys(BUCKETS, 0)
    for instr in kernel.instrs:
        for bucket, cycles in predict_instr(instr, params).items():
            out[bucket] += cycles
    out["total"] = sum(out[b] for b in BUCKETS)
    return out
