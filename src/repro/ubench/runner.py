"""Execute microbenchmark kernels and confront them with the model.

The runner boots a fresh :class:`~repro.cpu.machine.VAX780` per kernel,
steps through the prologue and warm-up copies outside any measurement,
then opens a :class:`~repro.monitor.session.MeasurementSession` around
exactly the measured copies.  The µPC histogram delta is classified into
the model's busy buckets (decode / patch / spec / fused / bdisp /
execute) plus itemized overhead causes (IB stall, cache read/write
stalls, TB-miss service, unaligned access, interrupt delivery).

Busy cycles are state-independent, so a kernel is ``exact`` when every
busy bucket matches ``copies x`` the analytical prediction; everything
else must land in a named overhead cause, and the two halves must add up
to the session's total cycle count (``reconciled``).  Anything less is a
bug in either the engine or the model — the test suite treats it as one.
"""

from __future__ import annotations

import functools

from repro import obs
from repro.analysis.reduction import reference_map
from repro.monitor.session import MeasurementSession
from repro.obs import metrics
from repro.ubench import model
from repro.ubench.kernels import MEASURED_COPIES, WARMUP_COPIES, emit
from repro.ucode.rows import CycleKind

_SPEC_SLOTS = ("calc", "update", "imm", "ptr", "read", "write")


class UbenchError(Exception):
    """A kernel that failed to run to its measurement window."""


@functools.lru_cache(maxsize=1)
def classification():
    """address -> busy bucket or overhead cause, for nonstalled counts.

    Returns ``(categories, stall_categories)``: the first maps every
    control-store address to a busy bucket / cause for its *nonstalled*
    count, the second to the cause charged for its *stalled* count
    (None where a stalled count would be a classification bug).
    """
    store, umap = reference_map()
    cat = {}

    def put(addrs, name):
        for addr in addrs:
            cat[addr] = name

    put(umap.ird.values(), "decode")
    put([umap.ird_stall], "ib-stall")
    for flows in umap.spec_flows.values():
        for flow in flows.values():
            put((getattr(flow, slot) for slot in _SPEC_SLOTS), "spec")
    put([umap.index_calc], "spec")
    put(umap.spec_fused.values(), "fused")
    put(umap.spec_stall.values(), "ib-stall")
    put([umap.bdisp_calc], "bdisp")
    put([umap.bdisp_stall], "ib-stall")
    put([umap.patch_abort], "patch")
    put([umap.trap_abort, umap.tbm_entry, umap.tbm_compute,
         umap.tbm_pte_read, umap.tbm_insert], "tb-miss")
    put([umap.unaligned_calc], "unaligned")
    put([umap.irq_entry, umap.irq_grant, umap.irq_vector_read,
         umap.irq_push_psl, umap.irq_push_pc, umap.exc_entry,
         umap.exc_push_psl, umap.exc_push_pc, umap.exc_push_param],
        "interrupt")
    for flows in umap.exec_flows.values():
        put(flows.values(), "execute")

    stall_cat = {}
    for ann in store.annotations():
        addr = ann.address
        if addr not in cat:
            cat[addr] = "other"
        if cat[addr] == "tb-miss":
            stall_cat[addr] = "tb-miss"     # the PTE fetch's memory stall
        elif ann.kind is CycleKind.READ:
            stall_cat[addr] = "read-stall"
        elif ann.kind is CycleKind.WRITE:
            stall_cat[addr] = "write-stall"
        else:
            stall_cat[addr] = None
    return cat, stall_cat


def _classify(histogram):
    """Split a histogram into busy buckets and overhead causes."""
    cat, stall_cat = classification()
    busy = dict.fromkeys(model.BUCKETS, 0)
    causes = dict.fromkeys(model.CAUSES, 0)
    for addr, count in enumerate(histogram.nonstalled):
        if not count:
            continue
        name = cat.get(addr, "other")
        if name in busy:
            busy[name] += count
        else:
            causes[name] += count
    for addr, count in enumerate(histogram.stalled):
        if not count:
            continue
        name = stall_cat.get(addr) or "other"
        causes[name] += count
    return busy, causes


def run_kernel(kernel, warmup=WARMUP_COPIES, copies=MEASURED_COPIES,
               machine="vax780"):
    """Run one kernel and return its measured-vs-predicted result dict.

    ``machine`` names the registered backend to run on (see
    :mod:`repro.machines`); the model predicts with that backend's
    params, so the busy buckets must still match exactly.
    """
    from repro.machines import get_machine

    spec = get_machine(machine)
    if copies <= 0:
        raise UbenchError(
            f"{kernel.name}: need at least one measured copy, got {copies}")
    emitted = emit(kernel, warmup=warmup, copies=copies)
    if emitted.measured_instructions <= 0:
        raise UbenchError(
            f"{kernel.name}: kernel emits no measured instructions")
    machine = spec.build()
    machine.boot(emitted.image)

    pre = emitted.setup_instructions + emitted.warmup_instructions
    ran = machine.run(max_instructions=pre)
    if ran != pre:
        raise UbenchError(
            f"{kernel.name}: halted after {ran}/{pre} warm-up instructions")

    with MeasurementSession(machine, name=f"ubench:{kernel.name}") as sess:
        ran = machine.run(max_instructions=emitted.measured_instructions)
    if ran != emitted.measured_instructions:
        raise UbenchError(
            f"{kernel.name}: halted after {ran}/"
            f"{emitted.measured_instructions} measured instructions")
    meas = sess.result

    busy, causes = _classify(meas.histogram)
    if busy["decode"] != emitted.measured_instructions:
        raise UbenchError(
            f"{kernel.name}: decode count {busy['decode']} != "
            f"{emitted.measured_instructions} measured instructions")

    predicted = model.predict_kernel(kernel, spec.params)
    delta = {b: busy[b] - predicted[b] * copies for b in model.BUCKETS}
    exact = not any(delta.values())
    overhead = {c: n for c, n in causes.items() if n}
    accounted = sum(busy.values()) + sum(causes.values())
    reconciled = accounted == meas.cycles
    metrics.counter("ubench.kernels").inc()
    metrics.counter("ubench.cycles").inc(meas.cycles)
    if not exact:
        metrics.counter("ubench.inexact").inc()
    obs.emit("kernel_finished", kernel=kernel.name, group=kernel.group,
             cycles=meas.cycles, exact=exact, reconciled=reconciled)
    return {
        "kernel": kernel.name,
        "group": kernel.group,
        "machine": spec.name,
        "mode": kernel.mode,
        "variant": kernel.variant,
        "note": kernel.note,
        "instructions_per_copy": kernel.ipc,
        "warmup_copies": warmup,
        "measured_copies": copies,
        "instructions": emitted.measured_instructions,
        "total_cycles": meas.cycles,
        "cycles_per_copy": meas.cycles / copies,
        "cycles_per_instruction": meas.cycles / emitted.measured_instructions,
        "predicted_per_copy": predicted,
        "measured_busy": busy,
        "busy_delta": {b: d for b, d in delta.items() if d},
        "exact": exact,
        "overhead": overhead,
        "overhead_per_copy": {c: n / copies for c, n in overhead.items()},
        "reconciled": reconciled,
    }


def _run_task(task):
    """Worker entry point (top-level, so it pickles): one kernel."""
    name, warmup, copies, machine = task
    from repro.ubench import suite

    return run_kernel(suite.kernel_by_name(name), warmup, copies,
                      machine=machine)


def run_suite(kernels, jobs=None, warmup=WARMUP_COPIES,
              copies=MEASURED_COPIES, machine="vax780"):
    """Run kernels (serially or across processes), preserving order.

    Every kernel gets a fresh machine, so results are bit-identical
    regardless of ``jobs`` — ``tests/ubench/test_determinism.py`` holds
    the fan-out to that.
    """
    from repro.workloads.parallel import run_tasks

    tasks = [(k.name, warmup, copies, machine) for k in kernels]
    return run_tasks(_run_task, tasks, jobs=jobs)
