"""The standard microbenchmark kernel suite.

One kernel per (opcode, operand-specifier mode) point of interest:

* a specifier sweep over ``MOVL`` isolating each addressing mode's cost;
* representatives of every Table 1 opcode group (SIMPLE, FIELD, FLOAT,
  CALLRET, SYSTEM, CHARACTER, DECIMAL);
* branch kernels in taken and not-taken flavours;
* ``cold`` variants that stride across untouched pages so every measured
  copy pays compulsory cache/TB misses (the warm counterparts pre-touch
  their data in the prologue).

Every kernel is constructed so its data-dependent execution quantities
(branch outcomes, string lengths, located bytes, saved registers) are
fixed and recorded in ``Instr.params`` — that is what lets the runner
demand exact agreement with :mod:`repro.ubench.model`.

MTPR/MFPR are deliberately absent: they require privileged-register
hooks a bare kernel image does not install.
"""

from __future__ import annotations

from repro.ubench.kernels import (COLD_READ_BASE, COLD_STRIDE,
                                  COLD_WRITE_BASE, Instr, Kernel, absref,
                                  autodec, autoinc, autoincdef, dispdef,
                                  dispop, imm, indexed, lit, reg, regdef)

#: Shared scratch data layouts.
_SCRATCH = (("scratch", ("zeros", 512)),)
_TOUCH_SCRATCH = (("scratch", 512),)


def _k(name, group, mode, instrs, **kw):
    return Kernel(name, group, mode, instrs, **kw)


def _one(name, group, mode, mnemonic, ops, params=None, **kw):
    return _k(name, group, mode,
              [Instr(mnemonic, ops, params=params)], **kw)


def _branch(name, mnemonic, ops, taken, mode="branch", **kw):
    target = "next" if taken else None
    instr = Instr(mnemonic, ops, branch="next", params={"taken": taken})
    return _k(name, "simple", mode, [instr], **kw)


def _build_suite():
    kernels = []
    add = kernels.append

    # ----- specifier sweep: MOVL under every addressing mode ----------
    add(_one("movl_literal", "simple", "literal",
             "MOVL", [lit(7), reg(2)], smoke=True))
    add(_one("movl_register", "simple", "register",
             "MOVL", [reg(1), reg(2)], regs={1: 0x1234}, smoke=True))
    add(_one("movl_immediate", "simple", "immediate",
             "MOVL", [imm(0x01020304), reg(2)], smoke=True))
    add(_one("movl_absolute", "simple", "absolute",
             "MOVL", [absref("scratch"), reg(2)],
             data=_SCRATCH, pretouch=_TOUCH_SCRATCH))
    add(_one("movl_regdef", "simple", "register-deferred",
             "MOVL", [regdef(1), reg(2)], regs={1: "scratch"},
             data=_SCRATCH, pretouch=_TOUCH_SCRATCH, smoke=True))
    add(_one("movl_autoinc", "simple", "autoincrement",
             "MOVL", [autoinc(1), reg(2)], regs={1: "scratch"},
             data=_SCRATCH, pretouch=_TOUCH_SCRATCH))
    add(_one("movl_autodec", "simple", "autodecrement",
             "MOVL", [autodec(1), reg(2)], regs={1: ("scratch", 480)},
             data=_SCRATCH, pretouch=_TOUCH_SCRATCH))
    add(_one("movl_autoincdef", "simple", "autoincrement-deferred",
             "MOVL", [autoincdef(1), reg(2)], regs={1: "ptrs"},
             data=_SCRATCH + (("ptrs", ("ptrs", "scratch", 48)),),
             pretouch=_TOUCH_SCRATCH + (("ptrs", 192),)))
    add(_one("movl_disp_byte", "simple", "displacement-byte",
             "MOVL", [dispop(1, 4, size=1), reg(2)], regs={1: "scratch"},
             data=_SCRATCH, pretouch=_TOUCH_SCRATCH, smoke=True))
    add(_one("movl_disp_word", "simple", "displacement-word",
             "MOVL", [dispop(1, 4, size=2), reg(2)], regs={1: "scratch"},
             data=_SCRATCH, pretouch=_TOUCH_SCRATCH))
    add(_one("movl_disp_long", "simple", "displacement-long",
             "MOVL", [dispop(1, 4, size=4), reg(2)], regs={1: "scratch"},
             data=_SCRATCH, pretouch=_TOUCH_SCRATCH))
    add(_one("movl_dispdef", "simple", "displacement-deferred",
             "MOVL", [dispdef(1, 0, size=1), reg(2)], regs={1: "ptrs"},
             data=_SCRATCH + (("ptrs", ("ptrs", "scratch", 4)),),
             pretouch=_TOUCH_SCRATCH + (("ptrs", 16),)))
    add(_one("movl_indexed", "simple", "indexed",
             "MOVL", [indexed(dispop(1, 0, size=1), 3), reg(2)],
             regs={1: "scratch", 3: 2},
             data=_SCRATCH, pretouch=_TOUCH_SCRATCH))
    add(_one("movl_store", "simple", "store",
             "MOVL", [reg(1), regdef(2)], regs={1: 5, 2: "scratch"},
             data=_SCRATCH, pretouch=_TOUCH_SCRATCH, smoke=True))

    # ----- SIMPLE group representatives -------------------------------
    add(_one("addl2_rr", "simple", "register",
             "ADDL2", [reg(1), reg(2)], regs={1: 1, 2: 1}, smoke=True))
    add(_one("addl3_rrr", "simple", "register",
             "ADDL3", [reg(1), reg(2), reg(3)], regs={1: 1, 2: 2}))
    add(_one("addl2_rm", "simple", "register-deferred",
             "ADDL2", [reg(1), regdef(2)], regs={1: 1, 2: "scratch"},
             data=_SCRATCH, pretouch=_TOUCH_SCRATCH))
    add(_one("incl_r", "simple", "register", "INCL", [reg(1)]))
    add(_one("cmpl_rr", "simple", "register",
             "CMPL", [reg(1), reg(2)], regs={1: 3, 2: 4}))
    add(_one("tstl_r", "simple", "register", "TSTL", [reg(1)]))
    add(_one("bitl_rr", "simple", "register",
             "BITL", [reg(1), reg(2)], regs={1: 1, 2: 3}))
    add(_one("bisl2_rr", "simple", "register",
             "BISL2", [reg(1), reg(2)], regs={1: 1}))
    add(_one("mcoml_rr", "simple", "register",
             "MCOML", [reg(1), reg(2)]))
    add(_one("movzbl_rr", "simple", "register",
             "MOVZBL", [reg(1), reg(2)], regs={1: 0x80}))
    add(_one("cvtwl_rr", "simple", "register",
             "CVTWL", [reg(1), reg(2)], regs={1: 0x8000}))
    add(_one("movq_rr", "simple", "register",
             "MOVQ", [reg(0), reg(4)], regs={0: 1, 1: 2}))
    add(_one("ashl_rr", "simple", "register",
             "ASHL", [lit(3), reg(1), reg(2)], regs={1: 5}))
    add(_one("rotl_rr", "simple", "register",
             "ROTL", [lit(3), reg(1), reg(2)], regs={1: 5}))
    add(_one("pushl_r", "simple", "register",
             "PUSHL", [reg(1)], regs={1: 7},
             pretouch=(("stack", 0x200),)))
    add(_one("moval_disp", "simple", "displacement-byte",
             "MOVAL", [dispop(1, 4, size=1), reg(2)],
             regs={1: "scratch"}, data=_SCRATCH))
    add(_one("nop", "simple", "n/a", "NOP", []))

    # ----- branches ----------------------------------------------------
    add(_branch("brb_taken", "BRB", [], True, smoke=False))
    add(_branch("bneq_taken", "BNEQ", [], True,
                regs={1: 1}, cc_reg=1, smoke=True))
    add(_branch("beql_nottaken", "BEQL", [], False, regs={1: 1}, cc_reg=1))
    add(_branch("sobgtr_taken", "SOBGTR", [reg(6)], True,
                regs={6: 1_000_000}, smoke=True))
    add(_branch("sobgtr_nottaken", "SOBGTR", [reg(6)], False,
                regs={6: 0xFFFFFF00}))
    add(_branch("aoblss_taken", "AOBLSS", [reg(5), reg(4)], True,
                regs={5: 1_000_000, 4: 0}))
    add(_branch("acbl_taken", "ACBL", [reg(5), reg(4), reg(3)], True,
                regs={5: 1_000_000, 4: 1, 3: 0}))
    add(_k("casel_inrange", "simple", "branch",
           [Instr("CASEL", [reg(3), lit(0), lit(0)],
                  params={"in_range": True})],
           regs={3: 0}))
    add(_k("jsb_rsb", "simple", "absolute",
           [Instr("JSB", [absref("rsb_proc")]),
            Instr("RSB", [], emit=False)],
           needs=("rsb_proc",), pretouch=(("stack", 0x200),)))
    add(_k("bsbw_rsb", "simple", "branch",
           [Instr("BSBW", [], branch="rsb_proc", params={"taken": True}),
            Instr("RSB", [], emit=False)],
           needs=("rsb_proc",), pretouch=(("stack", 0x200),)))

    # ----- FIELD group --------------------------------------------------
    add(_one("extzv_reg", "field", "register",
             "EXTZV", [lit(2), lit(4), reg(1), reg(2)],
             regs={1: 0xFF}, params={"field_reads": 0}, smoke=True))
    add(_one("extzv_mem", "field", "register-deferred",
             "EXTZV", [lit(2), lit(4), regdef(1), reg(2)],
             regs={1: "scratch"}, params={"field_reads": 1},
             data=_SCRATCH, pretouch=_TOUCH_SCRATCH))
    add(_one("insv_mem", "field", "register-deferred",
             "INSV", [reg(1), lit(2), lit(4), regdef(2)],
             regs={1: 3, 2: "scratch"}, params={"field_rmw": True},
             data=_SCRATCH, pretouch=_TOUCH_SCRATCH))
    add(_one("ffs_reg", "field", "register",
             "FFS", [lit(0), lit(8), reg(1), reg(2)],
             regs={1: 1}, params={"field_reads": 0, "scanned": 0}))
    add(_k("bbs_taken", "field", "register",
           [Instr("BBS", [lit(0), reg(1)], branch="next",
                  params={"taken": True, "field_reads": 0})],
           regs={1: 1}))

    # ----- FLOAT group --------------------------------------------------
    _f = {1: 0, 2: 0}
    add(_one("addf2_rr", "float", "register",
             "ADDF2", [reg(1), reg(2)], regs=_f, smoke=True))
    add(_one("mulf2_rr", "float", "register",
             "MULF2", [reg(1), reg(2)], regs=_f))
    add(_one("divf2_rr", "float", "register",
             "DIVF2", [reg(1), reg(2)], regs=_f))
    add(_one("cvtlf_rr", "float", "register",
             "CVTLF", [reg(1), reg(2)], regs={1: 3}))
    add(_one("mull2_rr", "float", "register",
             "MULL2", [reg(1), reg(2)], regs={1: 3, 2: 5}))
    add(_one("divl2_rr", "float", "register",
             "DIVL2", [reg(1), reg(2)], regs={1: 1, 2: 100}))
    add(_one("emul_rrrr", "float", "register",
             "EMUL", [reg(1), reg(2), reg(3), reg(4)],
             regs={1: 3, 2: 5, 3: 7}))

    # ----- CALLRET group ------------------------------------------------
    add(_one("pushr_3", "callret", "literal",
             "PUSHR", [lit(7)], params={"nregs": 3},
             regs={0: 1, 1: 2, 2: 3}, pretouch=(("stack", 0x300),),
             smoke=True))
    add(_one("popr_3", "callret", "literal",
             "POPR", [lit(7)], params={"nregs": 3},
             sp_label="popsp",
             data=(("popsp", ("zeros", 768)),),
             pretouch=(("popsp", 768),)))
    add(_k("calls_ret", "callret", "absolute",
           [Instr("CALLS", [lit(0), absref("ret_proc")],
                  params={"save_regs": 0}),
            Instr("RET", [], emit=False,
                  params={"calls_frame": True, "save_regs": 0})],
           needs=("ret_proc",), pretouch=(("stack", 0x300),),
           smoke=True))

    # ----- SYSTEM group -------------------------------------------------
    add(_one("prober", "system", "register-deferred",
             "PROBER", [lit(0), lit(4), regdef(1)],
             regs={1: "scratch"}, data=_SCRATCH,
             pretouch=_TOUCH_SCRATCH))
    add(_one("insque", "system", "register-deferred",
             "INSQUE", [regdef(1), regdef(2)],
             regs={1: "qentry", 2: "queue"},
             data=(("queue", ("ptrs", "queue", 2)),
                   ("qentry", ("zeros", 8))),
             pretouch=(("queue", 16),)))
    add(_one("remque", "system", "register-deferred",
             "REMQUE", [regdef(1), reg(2)],
             regs={1: "qentry"},
             data=(("qentry", ("ptrs", "qentry", 2)),),
             pretouch=(("qentry", 8),)))

    # ----- CHARACTER group ----------------------------------------------
    add(_one("movc3_16", "character", "absolute",
             "MOVC3", [lit(16), absref("scratch"), absref(("scratch", 256))],
             params={"full": 4, "tail": 0, "fill": 0},
             data=_SCRATCH, pretouch=_TOUCH_SCRATCH, smoke=True))
    add(_one("cmpc3_8", "character", "absolute",
             "CMPC3", [lit(8), absref("scratch"), absref(("scratch", 256))],
             params={"iters": 8, "reads": 16},
             data=_SCRATCH, pretouch=_TOUCH_SCRATCH))
    add(_one("locc_8", "character", "absolute",
             "LOCC", [lit(1), lit(8), absref("scratch")],
             params={"chunks": 2},
             data=_SCRATCH, pretouch=_TOUCH_SCRATCH))

    # ----- DECIMAL group ------------------------------------------------
    add(_one("movp_4", "decimal", "absolute",
             "MOVP", [lit(4), absref("scratch"), absref(("scratch", 128))],
             params={"pbytes_read": 3, "pbytes_written": 3},
             data=_SCRATCH, pretouch=_TOUCH_SCRATCH, smoke=True))
    add(_one("cmpp3_4", "decimal", "absolute",
             "CMPP3", [lit(4), absref("scratch"), absref(("scratch", 64))],
             params={"pbytes_read": 6, "pbytes_written": 0},
             data=_SCRATCH, pretouch=_TOUCH_SCRATCH))
    add(_one("addp4_4", "decimal", "absolute",
             "ADDP4", [lit(4), absref("scratch"), lit(4),
                       absref(("scratch", 32))],
             params={"pbytes_read": 6, "pbytes_written": 3},
             data=_SCRATCH, pretouch=_TOUCH_SCRATCH))

    # ----- cold cache/TB variants ---------------------------------------
    add(_one("movl_disp_cold", "simple", "displacement-long",
             "MOVL", [dispop(2, 0, size=4, stride=COLD_STRIDE), reg(1)],
             variant="cold", regs={2: COLD_READ_BASE},
             note="each copy reads a fresh 512-byte page: compulsory "
                  "cache + TB miss", smoke=True))
    add(_one("movl_store_cold", "simple", "displacement-long",
             "MOVL", [reg(1), dispop(2, 0, size=4, stride=COLD_STRIDE)],
             variant="cold", regs={1: 7, 2: COLD_WRITE_BASE},
             note="each copy writes a fresh 512-byte page: compulsory "
                  "TB miss on the write path"))

    return tuple(kernels)


STANDARD_SUITE = _build_suite()

_BY_NAME = {k.name: k for k in STANDARD_SUITE}
if len(_BY_NAME) != len(STANDARD_SUITE):
    raise RuntimeError("duplicate kernel names in STANDARD_SUITE")

#: Small fixed subset for CI smoke runs and the perf-bench sweep.
SMOKE_SUITE = tuple(k for k in STANDARD_SUITE if k.smoke)


def kernel_by_name(name):
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(f"unknown kernel {name!r}; see "
                       "repro.ubench.suite.STANDARD_SUITE") from None


def groups():
    return tuple(sorted({k.group for k in STANDARD_SUITE}))


def modes():
    return tuple(sorted({k.mode for k in STANDARD_SUITE}))


def kernel_families(kernel) -> tuple:
    """The executor families one kernel's instructions dispatch to."""
    from repro.arch.opcodes import opcode

    return tuple({opcode(instr.mnemonic).family
                  for instr in kernel.instrs})


def supported_on(kernel, machine) -> bool:
    """Whether every family the kernel uses exists on ``machine``."""
    from repro.machines import get_machine

    unsupported = set(get_machine(machine).params.unsupported_families)
    if not unsupported:
        return True
    return not any(family in unsupported
                   for family in kernel_families(kernel))


def select(group=None, mode=None, variant=None, smoke=False,
           machine=None):
    """Filter the suite by group/mode/variant labels.

    ``machine`` additionally drops kernels whose executor families the
    named backend does not implement (a subset machine refuses them at
    decode, so they cannot be benchmarked there).
    """
    pool = SMOKE_SUITE if smoke else STANDARD_SUITE
    out = [k for k in pool
           if (group is None or k.group == group)
           and (mode is None or k.mode == mode)
           and (variant is None or k.variant == variant)
           and (machine is None or supported_on(k, machine))]
    return tuple(out)
