"""Microcode model: control store map, rows/columns, costs, registry."""

from repro.ucode.controlstore import (Annotation, ControlStore,
                                      CONTROL_STORE_SIZE, FlowBlock)
from repro.ucode.map import MicrocodeMap
from repro.ucode.registry import EXECUTORS, executor
from repro.ucode.rows import (COLUMN_ORDER, Column, CycleKind, EXECUTE_ROW,
                              GROUP_FOR_ROW, ROW_ORDER, Row)

__all__ = ["Annotation", "ControlStore", "CONTROL_STORE_SIZE", "FlowBlock",
           "MicrocodeMap", "EXECUTORS", "executor", "COLUMN_ORDER",
           "Column", "CycleKind", "EXECUTE_ROW", "GROUP_FOR_ROW",
           "ROW_ORDER", "Row"]
