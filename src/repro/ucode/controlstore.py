"""The control store map: annotated microcode address allocation.

The real 11/780 holds its microcode in a control store of a few thousand
microwords; the histogram board shadows it with one count bucket per
address.  This module plays the role of the *microcode listing* the paper's
analysts had on their desks: every simulated micro-routine allocates its
addresses here, each annotated with the routine name, a slot name, its
Table 8 :class:`~repro.ucode.rows.Row` and its
:class:`~repro.ucode.rows.CycleKind`.  The analysis package walks these
annotations to classify every histogram bucket.

Allocation happens once at machine construction; executors hold their
addresses as plain ints, so the hot path never touches this module.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ucode.rows import CycleKind, Row

#: Number of addressable histogram buckets on the monitor board (§2.2).
CONTROL_STORE_SIZE = 16 * 1024


@dataclass(frozen=True)
class Annotation:
    """Metadata for one control-store address."""

    address: int
    routine: str    #: owning routine, e.g. "exec.CALL" or "spec1.displacement"
    slot: str       #: slot name within the routine, e.g. "push_regs"
    row: Row
    kind: CycleKind


class ControlStoreFullError(Exception):
    """Raised when allocation exceeds the board's bucket count."""


class FlowBlock:
    """A routine's view of its allocated addresses.

    Executors create their slots at build time::

        block = store.block("exec.CALL", Row.EX_CALLRET)
        ENTRY = block.compute("entry")
        PUSH = block.write("push_regs")

    and use the returned integer addresses on the hot path.
    """

    def __init__(self, store: "ControlStore", routine: str,
                 row: Row) -> None:
        self._store = store
        self.routine = routine
        self.row = row

    def slot(self, name: str, kind: CycleKind, row=None) -> int:
        """Allocate one address with an explicit kind (and row override)."""
        return self._store.allocate(self.routine, name,
                                    row if row is not None else self.row,
                                    kind)

    def compute(self, name: str) -> int:
        """Allocate a compute-cycle address."""
        return self.slot(name, CycleKind.COMPUTE)

    def read(self, name: str) -> int:
        """Allocate a D-stream-read address."""
        return self.slot(name, CycleKind.READ)

    def write(self, name: str) -> int:
        """Allocate a D-stream-write address."""
        return self.slot(name, CycleKind.WRITE)

    def ib_stall(self, name: str) -> int:
        """Allocate an insufficient-IB-bytes dispatch address."""
        return self.slot(name, CycleKind.IB_STALL)


class ControlStore:
    """Sequential allocator with per-address annotations."""

    def __init__(self, size: int = CONTROL_STORE_SIZE) -> None:
        self.size = size
        self._next = 0
        self._annotations: list = []

    @property
    def allocated(self) -> int:
        """Number of addresses allocated so far."""
        return self._next

    def block(self, routine: str, row: Row) -> FlowBlock:
        """Open a flow block for a routine."""
        return FlowBlock(self, routine, row)

    def allocate(self, routine: str, slot: str, row: Row,
                 kind: CycleKind) -> int:
        """Allocate one annotated address and return it."""
        if self._next >= self.size:
            raise ControlStoreFullError(
                f"control store exhausted at {self.size} addresses")
        address = self._next
        self._next += 1
        self._annotations.append(
            Annotation(address, routine, slot, row, kind))
        return address

    def annotation(self, address: int) -> Annotation:
        """The annotation for ``address``."""
        return self._annotations[address]

    def annotations(self):
        """All annotations, in address order."""
        return tuple(self._annotations)

    def addresses_for_routine(self, routine: str):
        """All addresses belonging to a routine."""
        return tuple(a.address for a in self._annotations
                     if a.routine == routine)
