"""Tunable microcode cycle budgets.

These constants are the simulator's equivalent of microcode routine
lengths: how many compute cycles each non-trivial flow spends outside its
memory references.  They are calibrated (see
``tests/integration/test_calibration.py``) so the composite workload's
Table 8/9 reproduction matches the paper's shape: the group means span two
orders of magnitude (Simple ≈ 1.2 cycles to Character ≈ 117) and a TB miss
costs ≈ 21.6 cycles including ≈ 3.5 read-stall cycles.

All values are cycle counts.
"""

# -- translation-buffer miss service (paper §4.2: 21.6 cycles, 3.5 stall) --
TBM_WALK_CYCLES = 12       # address-path computation before the PTE read
TBM_INSERT_CYCLES = 6      # insertion and restart after the PTE read

# -- interrupt and exception delivery (Row.INT_EXCEPT) ----------------------
IRQ_GRANT_CYCLES = 20       # priority arbitration and state save
EXC_SETUP_CYCLES = 8       # exception-specific parameter marshalling

# -- procedure call/return (Table 9: group mean ~45 cycles) ------------------
CALL_ENTRY_CYCLES = 6      # stack alignment, mask fetch setup
CALL_PER_PUSH_CYCLES = 4   # computes between stack pushes
CALL_FINISH_CYCLES = 7     # AP/FP/PC establishment
RET_ENTRY_CYCLES = 5
RET_PER_POP_CYCLES = 2
RET_FINISH_CYCLES = 5
PUSHR_PER_REG_CYCLES = 2
POPR_PER_REG_CYCLES = 2

# -- character strings (Table 9: group mean ~117; write every 6th cycle) ----
MOVC_ENTRY_CYCLES = 4
MOVC_PER_LONGWORD_COMPUTE = 7   # with 1 read + 1 write: 9-cycle period
MOVC_PER_TAIL_BYTE_COMPUTE = 2
MOVC_EXIT_CYCLES = 4
CMPC_PER_LONGWORD_COMPUTE = 1
LOCC_PER_LONGWORD_COMPUTE = 3
SCANC_PER_BYTE_COMPUTE = 2

# -- packed decimal (Table 9: group mean ~101) -------------------------------
DECIMAL_ENTRY_CYCLES = 10
DECIMAL_PER_BYTE_COMPUTE = 6
DECIMAL_EXIT_CYCLES = 8

# -- floating point, with FPA (all measured machines had one) -----------------
FADD_CYCLES = 7
FMUL_CYCLES = 11
FDIV_CYCLES = 12
FCVT_CYCLES = 6
DADD_CYCLES = 7
DMUL_CYCLES = 11
MULL_CYCLES = 9
DIVL_CYCLES = 16
EMUL_CYCLES = 11
EDIV_CYCLES = 22

# -- field instructions -------------------------------------------------------
FIELD_SETUP_CYCLES = 5
FIELD_SHIFT_CYCLES = 4
FFS_PER_BYTE_CYCLES = 1

# -- context switch -----------------------------------------------------------
SVPCTX_ENTRY_CYCLES = 8
LDPCTX_ENTRY_CYCLES = 8
PCB_SAVE_REGISTERS = 17    # R0-R13, SP, PC, PSL
