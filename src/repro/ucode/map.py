"""The complete microcode map of the simulated 11/780.

Built once per machine, this allocates every control-store address the
simulator can execute:

* per-family instruction decode dispatch targets (Row.DECODE),
* the per-context "insufficient bytes" dispatch addresses whose execution
  counts are the IB-stall cycles (§4.3),
* two copies of each operand-specifier flow — one charged to Row.SPEC1 and
  one to Row.SPEC26, mirroring the real microcode's ability to distinguish
  first specifiers from the rest (§3.2),
* the shared index-prefix base calculation (charged to SPEC2-6 even for
  first specifiers — the microcode-sharing artifact the paper documents in
  its Table 8 remarks),
* branch-displacement processing (Row.BDISP),
* TB-miss service, unaligned-reference microcode (Row.MEM_MGMT), microtrap
  abort cycles (Row.ABORTS), interrupt and exception delivery
  (Row.INT_EXCEPT),
* and one execute flow per registered family (rows EX_*).
"""

from __future__ import annotations

from repro.arch.opcodes import ALL_OPCODES
from repro.arch.specifiers import AddressingMode
from repro.ucode.controlstore import ControlStore
from repro.ucode.registry import EXECUTORS, KIND_CODES
from repro.ucode.rows import EXECUTE_ROW, CycleKind, Row

#: Addressing modes that get full specifier flows (literal and register
#: modes consume no EBOX cycles: they are handled by decode hardware).
_FLOW_MODES = (
    AddressingMode.IMMEDIATE,
    AddressingMode.ABSOLUTE,
    AddressingMode.REGISTER_DEFERRED,
    AddressingMode.AUTOINCREMENT,
    AddressingMode.AUTODECREMENT,
    AddressingMode.AUTOINC_DEFERRED,
    AddressingMode.DISPLACEMENT,
    AddressingMode.DISP_DEFERRED,
    AddressingMode.RELATIVE,
    AddressingMode.RELATIVE_DEFERRED,
)

#: Slots allocated for each specifier flow.  Not every mode uses every
#: slot; keeping the shape uniform keeps the evaluator branch-free.
_SPEC_SLOTS = (
    ("calc", CycleKind.COMPUTE),    # address formation cycle
    ("update", CycleKind.COMPUTE),  # autodecrement register update
    ("imm", CycleKind.COMPUTE),     # take immediate/absolute bytes from IB
    ("ptr", CycleKind.READ),        # indirect-pointer fetch (deferred)
    ("read", CycleKind.READ),       # operand datum read
    ("write", CycleKind.WRITE),     # operand datum write (result store)
)


class SpecFlow:
    """Addresses of one specifier flow (one mode, one spec row)."""

    __slots__ = ("calc", "update", "imm", "ptr", "read", "write")

    def __init__(self, block, mode_name: str) -> None:
        for name, kind in _SPEC_SLOTS:
            setattr(self, name, block.slot(f"{mode_name}.{name}", kind))


class MicrocodeMap:
    """All allocated control-store addresses, ready for the EBOX."""

    def __init__(self, store: ControlStore) -> None:
        self.store = store

        # -- instruction decode dispatch (Row.DECODE) -------------------
        decode = store.block("decode", Row.DECODE)
        #: family -> IRD dispatch address; executing it is the one
        #: non-overlapped I-Decode cycle every instruction pays (§2.1).
        self.ird = {}
        for family in dict.fromkeys(info.family for info in ALL_OPCODES):
            self.ird[family] = decode.compute(f"ird.{family}")
        #: IB stall while decoding an opcode (branch-target refills land
        #: here, hence the paper's Decode-row 0.613 cycles).
        self.ird_stall = decode.ib_stall("ird.stall")

        # -- operand specifier flows ------------------------------------
        self.spec_flows = {}
        self.spec_stall = {}
        self.spec_fused = {}
        for row in (Row.SPEC1, Row.SPEC26):
            label = "spec1" if row is Row.SPEC1 else "spec26"
            block = store.block(label, row)
            flows = {}
            for mode in _FLOW_MODES:
                flows[mode] = SpecFlow(block, mode.value)
            self.spec_flows[row] = flows
            self.spec_stall[row] = block.ib_stall("stall")
            # Literal/register-optimised first execute cycle, reported in
            # the specifier rows (paper, Table 8 remarks).
            self.spec_fused[row] = block.compute("fused_execute")
        #: Indexed-specifier base calculation: microcode sharing forces
        #: all of it into SPEC2-6, even for first specifiers.
        spec26_block = store.block("spec26", Row.SPEC26)
        self.index_calc = spec26_block.compute("index_calc")

        # -- branch displacement processing (Row.BDISP) -------------------
        bdisp = store.block("bdisp", Row.BDISP)
        self.bdisp_calc = bdisp.compute("target_calc")
        self.bdisp_stall = bdisp.ib_stall("stall")

        # -- memory management (Row.MEM_MGMT) ------------------------------
        mm = store.block("memmgmt", Row.MEM_MGMT)
        self.tbm_entry = mm.compute("tbmiss.entry")
        self.tbm_compute = mm.compute("tbmiss.walk")
        self.tbm_pte_read = mm.read("tbmiss.pte_read")
        self.tbm_insert = mm.compute("tbmiss.insert")
        self.unaligned_calc = mm.compute("unaligned.calc")

        # -- aborts (Row.ABORTS): one cycle per microtrap and one per
        # -- executed microcode patch (paper §5 lists both) ------------------
        aborts = store.block("aborts", Row.ABORTS)
        self.trap_abort = aborts.compute("microtrap")
        self.patch_abort = aborts.compute("patch")

        # -- interrupts and exceptions (Row.INT_EXCEPT) ---------------------
        intexc = store.block("intexcept", Row.INT_EXCEPT)
        self.irq_entry = intexc.compute("irq.entry")
        self.irq_grant = intexc.compute("irq.grant")
        self.irq_vector_read = intexc.read("irq.vector_read")
        self.irq_push_psl = intexc.write("irq.push_psl")
        self.irq_push_pc = intexc.write("irq.push_pc")
        self.exc_entry = intexc.compute("exc.entry")
        self.exc_push_psl = intexc.write("exc.push_psl")
        self.exc_push_pc = intexc.write("exc.push_pc")
        self.exc_push_param = intexc.write("exc.push_param")

        # -- execute flows, one per registered family -----------------------
        self.exec_flows = {}
        for info in ALL_OPCODES:
            family = info.family
            if family in self.exec_flows:
                continue
            spec = EXECUTORS.get(family)
            if spec is None:
                raise KeyError(
                    f"no executor registered for family {family!r}")
            row = EXECUTE_ROW[info.group]
            block = store.block(f"exec.{family}", row)
            self.exec_flows[family] = {
                name: block.slot(name, KIND_CODES[code])
                for name, code in spec.slots.items()
            }

    def exec_slots(self, family: str) -> dict:
        """Slot name -> address for a family's execute flow."""
        return self.exec_flows[family]
