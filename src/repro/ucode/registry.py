"""Registry of execute micro-routines (one per microcode family).

Executor functions live in :mod:`repro.cpu.executors`; they register here
with the *slot specification* of their micro-routine — the named control
store addresses the routine uses and the cycle kind of each.  The
:class:`~repro.ucode.map.MicrocodeMap` walks this registry at machine
construction to allocate and annotate every execute flow.

An executor function has the signature ``execute(ebox, inst, u)`` where
``u`` maps slot names to allocated control-store addresses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ucode.rows import CycleKind

#: Shorthand used in slot specifications.
KIND_CODES = {
    "C": CycleKind.COMPUTE,
    "R": CycleKind.READ,
    "W": CycleKind.WRITE,
}


@dataclass(frozen=True)
class ExecutorSpec:
    """A registered execute routine."""

    family: str
    func: object          #: callable (ebox, inst, u) -> next-PC or None
    slots: dict           #: slot name -> "C" | "R" | "W"


#: family name -> ExecutorSpec
EXECUTORS: dict = {}


def executor(family: str, slots: dict):
    """Decorator registering an execute routine for a microcode family.

    Example::

        @executor("ADDSUB", slots={"alu": "C"})
        def exec_addsub(ebox, inst, u):
            ...
    """
    def wrap(func):
        if family in EXECUTORS:
            raise ValueError(f"duplicate executor for family {family!r}")
        for name, code in slots.items():
            if code not in KIND_CODES:
                raise ValueError(
                    f"bad kind {code!r} for slot {name!r} of {family!r}")
        EXECUTORS[family] = ExecutorSpec(family, func, dict(slots))
        return func
    return wrap


def get_executor(family: str) -> ExecutorSpec:
    """The registered spec for ``family`` (KeyError if missing)."""
    return EXECUTORS[family]
