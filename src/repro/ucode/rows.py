"""The two dimensions of the paper's Table 8.

Every microcycle in 11/780 execution falls into exactly one *row* (the
stage or activity of instruction processing) and one *column* (the kind of
cycle).  The control store annotates each microcode address with its row
and its cycle kind; the analysis package reduces the µPC histogram along
these annotations to regenerate Table 8.
"""

from __future__ import annotations

import enum

from repro.arch.groups import OpcodeGroup


class Row(enum.Enum):
    """Table 8 rows: instruction stages, execute groups, and overheads."""

    DECODE = "Decode"
    SPEC1 = "Spec 1"
    SPEC26 = "Spec 2-6"
    BDISP = "B-Disp"
    EX_SIMPLE = "Simple"
    EX_FIELD = "Field"
    EX_FLOAT = "Float"
    EX_CALLRET = "Call/Ret"
    EX_SYSTEM = "System"
    EX_CHARACTER = "Character"
    EX_DECIMAL = "Decimal"
    INT_EXCEPT = "Int/Except"
    MEM_MGMT = "Mem Mgmt"
    ABORTS = "Aborts"


#: Table 8 row display order.
ROW_ORDER = (
    Row.DECODE, Row.SPEC1, Row.SPEC26, Row.BDISP,
    Row.EX_SIMPLE, Row.EX_FIELD, Row.EX_FLOAT, Row.EX_CALLRET,
    Row.EX_SYSTEM, Row.EX_CHARACTER, Row.EX_DECIMAL,
    Row.INT_EXCEPT, Row.MEM_MGMT, Row.ABORTS,
)

#: Execute row for each Table 1 opcode group.
EXECUTE_ROW = {
    OpcodeGroup.SIMPLE: Row.EX_SIMPLE,
    OpcodeGroup.FIELD: Row.EX_FIELD,
    OpcodeGroup.FLOAT: Row.EX_FLOAT,
    OpcodeGroup.CALLRET: Row.EX_CALLRET,
    OpcodeGroup.SYSTEM: Row.EX_SYSTEM,
    OpcodeGroup.CHARACTER: Row.EX_CHARACTER,
    OpcodeGroup.DECIMAL: Row.EX_DECIMAL,
}

#: Inverse of EXECUTE_ROW, for analysis.
GROUP_FOR_ROW = {row: group for group, row in EXECUTE_ROW.items()}


class Column(enum.Enum):
    """Table 8 columns: the six mutually exclusive cycle categories."""

    COMPUTE = "Compute"
    READ = "Read"
    RSTALL = "R-Stall"
    WRITE = "Write"
    WSTALL = "W-Stall"
    IBSTALL = "IB-Stall"


#: Table 8 column display order.
COLUMN_ORDER = (Column.COMPUTE, Column.READ, Column.RSTALL,
                Column.WRITE, Column.WSTALL, Column.IBSTALL)


class CycleKind(enum.Enum):
    """What the microinstruction at an address does.

    The monitor's non-stalled count at an address lands in the kind's
    primary column; its stalled count lands in the kind's stall column.
    IB-stall addresses are the special dispatch locations whose execution
    count *is* the stall cycle count (paper §4.3).
    """

    COMPUTE = "compute"
    READ = "read"
    WRITE = "write"
    IB_STALL = "ib_stall"

    @property
    def primary_column(self) -> Column:
        """Column for non-stalled executions at this address."""
        return _PRIMARY[self]

    @property
    def stall_column(self):
        """Column for stalled cycles at this address (None if impossible)."""
        return _STALL.get(self)


_PRIMARY = {
    CycleKind.COMPUTE: Column.COMPUTE,
    CycleKind.READ: Column.READ,
    CycleKind.WRITE: Column.WRITE,
    CycleKind.IB_STALL: Column.IBSTALL,
}

_STALL = {
    CycleKind.READ: Column.RSTALL,
    CycleKind.WRITE: Column.WSTALL,
}
