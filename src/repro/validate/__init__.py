"""Runtime validation: conservation invariants and differential fuzzing.

The paper's method rests on exact accounting — every cycle of a measured
run lands in exactly one Table 8 cell, and the µPC histogram's busy +
stall totals equal elapsed machine cycles.  This package turns those
contracts into permanent, executable checks:

* :mod:`repro.validate.invariants` — conservation laws checked against
  any completed :class:`~repro.analysis.measurement.Measurement`.
* :mod:`repro.validate.differential` — the optimised EBOX fast paths run
  in lockstep against the per-cycle reference implementations on seeded
  random workloads, with failing runs shrunk to a minimal reproducer;
  a second axis differences the lockstep batch engine
  (:mod:`repro.batch`) against independent scalar runs the same way.
* :mod:`repro.validate.paranoid` — a boundary-hook monitor that samples
  the invariants during long runs at bounded overhead.
"""

from repro.validate.invariants import (Check, InvariantViolation,
                                       ValidationReport, check_machine,
                                       check_measurement)
from repro.validate.differential import (Divergence, ReferenceEBox,
                                         fuzz, fuzz_batch, run_case,
                                         run_case_batch, shrink,
                                         shrink_batch)
from repro.validate.paranoid import ParanoidMonitor

__all__ = ["Check", "InvariantViolation", "ValidationReport",
           "check_machine", "check_measurement", "Divergence",
           "ReferenceEBox", "fuzz", "fuzz_batch", "run_case",
           "run_case_batch", "shrink", "shrink_batch",
           "ParanoidMonitor"]
