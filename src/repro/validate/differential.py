"""Fast-path vs per-cycle-reference differential fuzzing.

The optimised EBOX fast-forwards provably idle fill-engine windows,
batches IB-stall charging, and inlines the common-case D-stream
sequencing (``tick`` / ``ib_take`` / the inlined ``read``/``write``
paths).  :class:`ReferenceEBox` re-creates the original per-cycle
implementations (``tick_reference`` / ``ib_take_reference`` plus
straightforward chunked reads and writes through the memory subsystem).

The harness here boots *two* complete machines on the same seeded random
workload — one per engine — and steps them in lockstep, comparing
architectural state at every instruction boundary and the full histogram
count sets at checkpoints.  Workload generation goes through the normal
:mod:`repro.workloads.codegen` path via the executive, so the fuzzer
exercises exactly the instruction mix the experiments do, across
randomly perturbed profiles.

Everything is deterministic given (profile, seed), so a divergence found
at instruction boundary *k* reproduces on a re-run with the instruction
budget shrunk to the first divergent boundary — :func:`shrink` exploits
this to hand back a minimal reproducer with a disassembly window of at
most :data:`WINDOW` instructions around the divergence.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, replace
import random

from repro import obs
from repro.arch.datatypes import MASKS
from repro.obs import metrics
from repro.cpu import machine as machine_mod
from repro.cpu.ebox import EBox
from repro.osim.executive import Executive
from repro.workloads.profiles import MixProfile
from repro.workloads.registry import paper_workloads

#: Instructions of context reported around a divergence.
WINDOW = 10
#: Instruction boundaries between full-histogram checkpoint compares.
CHECKPOINT = 256
#: Cycle budget per measured instruction before a case is abandoned.
CYCLE_LIMIT_FACTOR = 2000


class ReferenceEBox(EBox):
    """EBox with every timing fast path replaced by the per-cycle spec."""

    def tick(self, cycles, port_free=True):
        self.tick_reference(cycles, port_free)

    def _cycle_raw(self, upc, n=1):
        self.board.count(upc, n)
        self.tick_reference(n)

    def ib_take(self, nbytes, stall_upc):
        self.ib_take_reference(nbytes, stall_upc)

    def read(self, va, size, upc):
        value = 0
        shift = 0
        for i, (chunk_va, chunk_size) in enumerate(self._chunks(va, size)):
            pa = self.translate(chunk_va, "d")
            result = self.mem.read_data(pa, chunk_size, self.now)
            self.board.count(upc)
            self.tick_reference(1, port_free=False)
            if result.stall_cycles:
                self.board.count_stall(upc, result.stall_cycles)
                self.tick_reference(result.stall_cycles, port_free=False)
            extra_refs = result.physical_refs - 1 + (1 if i else 0)
            if extra_refs:
                self._cycle_raw(self.u.unaligned_calc, extra_refs)
            value |= result.value << shift
            shift += 8 * chunk_size
        return value

    def write(self, va, value, size, upc):
        shift = 0
        for i, (chunk_va, chunk_size) in enumerate(self._chunks(va, size)):
            pa = self.translate(chunk_va, "d")
            chunk = (value >> shift) & MASKS[chunk_size]
            result = self.mem.write_data(pa, chunk, chunk_size, self.now)
            self.board.count(upc)
            self.tick_reference(1, port_free=False)
            if result.stall_cycles:
                self.board.count_stall(upc, result.stall_cycles)
                self.tick_reference(result.stall_cycles, port_free=False)
            extra_refs = result.physical_refs - 1 + (1 if i else 0)
            if extra_refs:
                self._cycle_raw(self.u.unaligned_calc, extra_refs)
            shift += 8 * chunk_size


@dataclass(frozen=True)
class FuzzCase:
    """One differential run: a profile, a seed, and a budget."""

    profile: MixProfile
    seed: int
    instructions: int

    def label(self) -> str:
        return (f"{self.profile.name} seed={self.seed} "
                f"n={self.instructions}")


@dataclass
class Divergence:
    """The first observed fast-vs-reference disagreement."""

    case: FuzzCase
    step: int                #: instruction boundaries completed
    instructions: int        #: measured instructions at divergence
    field: str               #: what disagreed ("now", "pc", ...)
    fast: object
    reference: object
    window: list             #: [(step, pc, mnemonic), ...] context

    def describe(self) -> str:
        lines = [f"divergence on {self.case.label()} at boundary "
                 f"{self.step} ({self.instructions} measured):",
                 f"  {self.field}: fast={self.fast!r} "
                 f"reference={self.reference!r}",
                 "  last instructions:"]
        lines += [f"    [{step:6d}] {pc:#010x}  {mnemonic}"
                  for step, pc, mnemonic in self.window]
        return "\n".join(lines)


@dataclass
class Reproducer:
    """A minimal failing case plus its divergence evidence."""

    case: FuzzCase
    divergence: Divergence

    def describe(self) -> str:
        return (f"minimal reproducer: budget {self.case.instructions} "
                f"instruction(s)\n" + self.divergence.describe())


#: (field name, lambda rng: value) perturbations the fuzzer draws from.
_KNOBS = (
    ("char_ops", lambda rng: rng.uniform(0.0, 25.0)),
    ("float_ops", lambda rng: rng.uniform(0.0, 15.0)),
    ("decimal_ops", lambda rng: rng.uniform(0.0, 5.0)),
    ("field_ops", lambda rng: rng.uniform(0.0, 8.0)),
    ("cond_branch", lambda rng: rng.uniform(20.0, 90.0)),
    ("syscall_density", lambda rng: rng.uniform(0.0, 0.1)),
    ("blocking_syscall_fraction", lambda rng: rng.uniform(0.0, 1.0)),
    ("string_length", lambda rng: rng.randrange(1, 80)),
    ("terminal_period_cycles", lambda rng: rng.randrange(2000, 20000)),
    ("io_block_cycles", lambda rng: rng.randrange(4000, 40000)),
    ("processes", lambda rng: rng.randrange(1, 10)),
)


def random_case(rng: random.Random, index: int,
                instructions: int) -> FuzzCase:
    """Draw one fuzz case: a perturbed standard profile and a seed."""
    # Paper profiles only, and via rng.choice over exactly five
    # entries: widening the pool would shift every draw and change
    # the deterministic fuzz corpus existing runs pin.
    base = rng.choice([spec.profile for spec in paper_workloads()])
    overrides = {field: draw(rng) for field, draw in _KNOBS
                 if rng.random() < 0.4}
    profile = replace(base, name=f"fuzz{index}-{base.name}", **overrides)
    return FuzzCase(profile, rng.randrange(1 << 30), instructions)


def _boot(case: FuzzCase, reference: bool):
    """A booted machine+executive pair for one engine."""
    if reference:
        original = machine_mod.EBox
        machine_mod.EBox = ReferenceEBox
        try:
            machine = machine_mod.VAX780()
        finally:
            machine_mod.EBox = original
    else:
        machine = machine_mod.VAX780()
    executive = Executive(machine, case.profile, seed=case.seed)
    executive.boot()
    return machine


def _mnemonic(machine, pc: int) -> str:
    """Best-effort mnemonic for the cached decode at ``pc``."""
    if pc & 0x80000000:
        inst = machine._decode_cache.get(pc)
    else:
        space = machine.translator.current_space
        inst = machine._decode_cache.get(
            (pc, space.asid if space is not None else -1))
    return inst.info.mnemonic if inst is not None else "?"


def _state(machine):
    e = machine.ebox
    return (e.now, e.pc, tuple(e.registers), e.psl.as_long(),
            machine.tracer.instructions)

_STATE_FIELDS = ("now", "pc", "registers", "psl", "instructions")


def _histogram_field(fast, ref):
    """Name of the first differing histogram component, or None."""
    fb, rb = fast.board, ref.board
    if fb.nonstalled != rb.nonstalled:
        return "histogram.nonstalled"
    if fb.stalled != rb.stalled:
        return "histogram.stalled"
    return None


def _first_bucket_diff(fast, ref, stalled: bool):
    fb = fast.board.stalled if stalled else fast.board.nonstalled
    rb = ref.board.stalled if stalled else ref.board.nonstalled
    for address, (a, b) in enumerate(zip(fb, rb)):
        if a != b:
            return address, a, b
    return None, None, None


def run_case(case: FuzzCase, checkpoint: int = CHECKPOINT):
    """Run one case in lockstep; returns a Divergence or None."""
    fast = _boot(case, reference=False)
    ref = _boot(case, reference=True)
    window = deque(maxlen=WINDOW)
    cycle_limit = case.instructions * CYCLE_LIMIT_FACTOR
    step = 0

    def diverged(field, a, b):
        return Divergence(case, step, fast.tracer.instructions, field,
                          a, b, list(window))

    while fast.tracer.instructions < case.instructions:
        if fast.halted or ref.halted:
            break
        if fast.ebox.now > cycle_limit:
            break
        pc = fast.ebox.pc
        fast.step()
        ref.step()
        step += 1
        window.append((step, pc, _mnemonic(fast, pc)))
        fs, rs = _state(fast), _state(ref)
        if fs != rs:
            for name, a, b in zip(_STATE_FIELDS, fs, rs):
                if a != b:
                    return diverged(name, a, b)
        if step % checkpoint == 0:
            field = _histogram_field(fast, ref)
            if field is not None:
                address, a, b = _first_bucket_diff(
                    fast, ref, field == "histogram.stalled")
                return diverged(f"{field}[{address}]", a, b)

    if fast.halted != ref.halted:
        return diverged("halted", fast.halted, ref.halted)
    field = _histogram_field(fast, ref)
    if field is not None:
        address, a, b = _first_bucket_diff(
            fast, ref, field == "histogram.stalled")
        return diverged(f"{field}[{address}]", a, b)
    fast_scalars = {name: getattr(fast.tracer, name)
                    for name in ("tb_miss_cycles", "tb_miss_stall_cycles",
                                 "page_faults", "tb_miss_faults",
                                 "instruction_aborts", "interrupts",
                                 "exceptions", "overlapped_decodes")}
    ref_scalars = {name: getattr(ref.tracer, name)
                   for name in fast_scalars}
    if fast_scalars != ref_scalars:
        name = next(n for n in fast_scalars
                    if fast_scalars[n] != ref_scalars[n])
        return diverged(f"tracer.{name}", fast_scalars[name],
                        ref_scalars[name])
    return None


def shrink(divergence: Divergence) -> Reproducer:
    """Shrink a failing case to the smallest budget that still fails.

    The runs are deterministic, so the divergence recurs once the
    budget admits its boundary; a budget of ``instructions + 1``
    measured instructions is sufficient (boundary *k* executes while
    the measured count is still ``instructions``), and re-running
    confirms it.  Checkpoint compares run every boundary during the
    confirmation so histogram divergences localize exactly.
    """
    budget = max(1, divergence.instructions + 1)
    small = replace(divergence.case, instructions=budget)
    confirmed = run_case(small, checkpoint=1)
    if confirmed is None:
        # Not reproducible under the smaller budget (should not happen
        # for a deterministic engine); fall back to the original.
        return Reproducer(divergence.case, divergence)
    return Reproducer(small, confirmed)


def _fuzz_task(payload):
    """Worker entry point (top-level, so it pickles): one fuzz case.

    Runs and — on divergence — shrinks the case entirely inside the
    worker, applying the optional planted perturbation there too (the
    plant's name travels in the payload, so the patch exists in the
    worker process regardless of the multiprocessing start method).
    """
    kind, case, plant = payload
    from repro.refute.perturb import perturbation

    runner, shrinker = _FUZZ_KINDS[kind]
    with perturbation(plant):
        divergence = runner(case)
        reproducer = shrinker(divergence) if divergence is not None \
            else None
    return {"case": case, "label": case.label(),
            "ok": divergence is None, "reproducer": reproducer}


def _fuzz_loop(count: int, seed: int, instructions: int, progress,
               kind: str, jobs: int = 1, plant: str = None) -> list:
    """The shared fuzz driver: draw cases, run, shrink divergences.

    Case drawing happens up front from one seeded RNG and results come
    back in submission order (``run_tasks`` preserves it), so the
    result list — including every shrunk reproducer — is identical at
    any ``jobs``; only the wall-clock changes.  Metrics and obs events
    are emitted from this process, in case order, for the same reason.
    """
    from repro.workloads.parallel import run_tasks

    rng = random.Random(seed)
    cases = [random_case(rng, index, instructions)
             for index in range(count)]
    payloads = [(kind, case, plant) for case in cases]
    results = run_tasks(_fuzz_task, payloads, jobs=jobs)
    for index, result in enumerate(results):
        metrics.counter("validate.fuzz_cases").inc()
        if not result["ok"]:
            divergence = result["reproducer"].divergence
            metrics.counter("validate.divergences").inc()
            obs.emit("fuzz_divergence", label=result["label"],
                     kind=kind, field=divergence.field,
                     step=divergence.step)
        obs.emit("fuzz_case", index=index, label=result["label"],
                 kind=kind, ok=result["ok"])
        if progress is not None:
            verdict = "ok" if result["ok"] else "DIVERGED"
            progress(f"[{index + 1}/{count}] {result['label']}: "
                     f"{verdict}")
    return results


def fuzz(count: int, seed: int, instructions: int = 400,
         progress=None, jobs: int = 1, plant: str = None) -> list:
    """Run ``count`` random fast-vs-reference differential cases.

    Returns a list of result dicts, one per case, each with the case
    label and either ``None`` or a shrunk :class:`Reproducer`.  The
    results are byte-identical at any ``jobs``.
    """
    return _fuzz_loop(count, seed, instructions, progress,
                      kind="reference", jobs=jobs, plant=plant)


# -- scalar <-> batch lockstep ------------------------------------------
#
# The second differential axis: the lockstep batch engine
# (:mod:`repro.batch`) against independent scalar runs of the same
# case.  Each case runs at several prefix boundaries so the fuzz
# exercises exactly what makes the batch engine dangerous — mid-run
# captures on a shared machine — and every observable of the resulting
# measurements is compared, not just architectural state.

#: Prefix fractions (of the case budget) a batch fuzz case captures at.
BATCH_PREFIXES = (3, 2)


def batch_targets(instructions: int) -> list:
    """The capture boundaries a batch fuzz case measures, ascending."""
    targets = {max(1, instructions // fraction)
               for fraction in BATCH_PREFIXES}
    targets.add(instructions)
    return sorted(targets)


def _scalar_lane(case: FuzzCase, target: int):
    """One scalar-engine run to ``target``: (measurement, error)."""
    from repro.analysis.measurement import Measurement

    machine = machine_mod.VAX780()
    executive = Executive(machine, case.profile, seed=case.seed)
    executive.boot()
    try:
        executive.run(target)
    except RuntimeError as exc:
        return None, str(exc)
    return Measurement.capture(case.profile.name, machine), None


_MEMORY_FIELDS = ("cache_read_hits", "cache_read_misses",
                  "cache_write_hits", "cache_write_misses", "tb_hits",
                  "tb_misses", "tb_d_misses", "tb_i_misses",
                  "ib_references", "ib_bytes_delivered",
                  "unaligned_reads", "unaligned_writes",
                  "write_stall_cycles", "writes")


def _measurement_field(batch, scalar):
    """Name + values of the first differing observable, or None.

    Compares everything a measurement carries: cycle count, both
    histogram count sets bucket by bucket, every tracer counter and
    scalar, and the memory-subsystem statistics.
    """
    if batch.cycles != scalar.cycles:
        return "cycles", batch.cycles, scalar.cycles
    for kind in ("nonstalled", "stalled"):
        mine = getattr(batch.histogram, kind)
        theirs = getattr(scalar.histogram, kind)
        if mine != theirs:
            for address, (a, b) in enumerate(zip(mine, theirs)):
                if a != b:
                    return f"histogram.{kind}[{address}]", a, b
    for name in scalar.tracer._SCALARS + scalar.tracer._COUNTERS:
        a, b = getattr(batch.tracer, name), getattr(scalar.tracer, name)
        if a != b:
            return f"tracer.{name}", a, b
    for name in _MEMORY_FIELDS:
        a, b = getattr(batch.memory, name), getattr(scalar.memory, name)
        if a != b:
            return f"memory.{name}", a, b
    return None


def run_case_batch(case: FuzzCase):
    """Run one case on both engines; returns a Divergence or None.

    The scalar side runs each target independently (fresh machine per
    budget, exactly the engine path); the batch side fuses all targets
    into one cohort.  Lane errors participate in the comparison: both
    engines must fail the same targets with the same message.
    """
    from repro.batch import LaneSpec, BatchRunner

    targets = batch_targets(case.instructions)
    lanes = [LaneSpec(case.profile.name, target, case.seed)
             for target in targets]
    runner = BatchRunner(lanes,
                         profiles={case.profile.name: case.profile})
    batch = runner.run()
    for position, (target, lane) in enumerate(zip(targets, batch)):
        measurement, error = _scalar_lane(case, target)
        divergence = None
        if lane.error != error:
            divergence = ("error", lane.error, error)
        elif error is None:
            divergence = _measurement_field(lane.measurement,
                                            measurement)
        if divergence is not None:
            field, fast, reference = divergence
            return Divergence(case, step=position, instructions=target,
                              field=field, fast=fast,
                              reference=reference, window=[])
    return None


def shrink_batch(divergence: Divergence) -> Reproducer:
    """Shrink a batch divergence to the smallest budget that fails.

    Re-runs with the budget cut to the divergent capture boundary;
    deterministic engines keep failing, possibly at an even earlier
    boundary of the smaller case, so the cut iterates to a fixed
    point.
    """
    case, best = divergence.case, divergence
    while best.instructions < case.instructions:
        small = replace(case, instructions=max(1, best.instructions))
        confirmed = run_case_batch(small)
        if confirmed is None:
            # Not reproducible under the smaller budget (should not
            # happen for deterministic engines); keep the evidence.
            return Reproducer(case, best)
        case, best = small, confirmed
    return Reproducer(case, best)


def fuzz_batch(count: int, seed: int, instructions: int = 400,
               progress=None, jobs: int = 1, plant: str = None) -> list:
    """Run ``count`` random scalar-vs-batch differential cases.

    Same result shape as :func:`fuzz`: one dict per case with either
    ``None`` or a shrunk :class:`Reproducer`.  The same (seed, count)
    draws the same cases as the reference fuzz, so a profile that
    diverges on one axis can be replayed on the other.
    """
    return _fuzz_loop(count, seed, instructions, progress,
                      kind="batch", jobs=jobs, plant=plant)


#: kind -> (runner, shrinker); the fuzz axes workers dispatch on.
_FUZZ_KINDS = {
    "reference": (run_case, shrink),
    "batch": (run_case_batch, shrink_batch),
}
