"""Conservation laws for a completed measurement.

Every law here was derived from the machine model and holds *exactly* —
a failed check means the accounting is wrong, not that a tolerance was
missed.  The checks fall into three classes:

* **histogram-internal** — relations between µPC buckets (walk length,
  PTE read per service, Table 8 classification completeness).  These
  hold unconditionally.
* **cross-instrument** — histogram counts against the ground-truth
  tracer and memory-subsystem statistics.  The board and the tracer
  share the Null-process measurement gate, but a few tracer counters
  (exceptions, interrupts, context switches, fault counts) and all
  memory statistics are deliberately ungated; those laws are exact on
  runs where the gate never closed (``tracer.gated_off_cycles == 0``,
  true of all five standard workloads) and weaken to bounds otherwise.
* **conservation** — the headline law: histogram busy + stall total
  equals measured cycles plus overlapped decodes, where measured
  cycles are wall cycles minus gated-off (Null) cycles.
"""

from __future__ import annotations

from repro.analysis.reduction import Reduction, family_groups
from repro.arch.groups import OpcodeGroup
from repro.ucode.costs import TBM_INSERT_CYCLES, TBM_WALK_CYCLES
from repro.ucode.rows import COLUMN_ORDER, Column, ROW_ORDER

#: Cycles of one completed TB-miss service: the microtrap abort cycle,
#: the service entry, the table walk, the PTE read (non-stalled part),
#: and the TB insert.  Stall cycles on the PTE read come on top.
TBM_SERVICE_CYCLES = 1 + 1 + TBM_WALK_CYCLES + 1 + TBM_INSERT_CYCLES
#: Cycles a *faulted* service charges before raising: abort, entry,
#: walk, PTE read, and the two-cycle fault exit at the insert address.
TBM_FAULT_CYCLES = 1 + 1 + TBM_WALK_CYCLES + 1 + 2


class InvariantViolation(AssertionError):
    """An exact conservation law failed."""


class Check:
    """One evaluated law: name, relation, both sides, verdict."""

    __slots__ = ("name", "relation", "expected", "actual", "ok", "note")

    def __init__(self, name: str, relation: str, expected, actual,
                 ok: bool, note: str = "") -> None:
        self.name = name
        self.relation = relation   # "==" or "<="
        self.expected = expected
        self.actual = actual
        self.ok = ok
        self.note = note

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        verdict = "ok" if self.ok else "FAIL"
        return (f"<Check {self.name}: {self.actual!r} {self.relation} "
                f"{self.expected!r} [{verdict}]>")

    def to_dict(self) -> dict:
        return {"name": self.name, "relation": self.relation,
                "expected": self.expected, "actual": self.actual,
                "ok": self.ok, "note": self.note}


class ValidationReport:
    """All checks evaluated against one measurement."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.checks: list = []

    def exact(self, name: str, expected, actual, note: str = "") -> None:
        self.checks.append(
            Check(name, "==", expected, actual, expected == actual, note))

    def bound(self, name: str, limit, actual, note: str = "") -> None:
        """Record ``actual <= limit``."""
        self.checks.append(
            Check(name, "<=", limit, actual, actual <= limit, note))

    @property
    def ok(self) -> bool:
        return all(check.ok for check in self.checks)

    def failures(self) -> list:
        return [check for check in self.checks if not check.ok]

    def raise_on_failure(self) -> None:
        bad = self.failures()
        if bad:
            lines = [f"{len(bad)} invariant(s) failed on {self.name!r}:"]
            lines += [f"  {check.name}: {check.actual!r} "
                      f"{check.relation} {check.expected!r}"
                      + (f"  ({check.note})" if check.note else "")
                      for check in bad]
            raise InvariantViolation("\n".join(lines))

    def to_dict(self) -> dict:
        return {"name": self.name, "ok": self.ok,
                "checks": [check.to_dict() for check in self.checks]}


def check_measurement(measurement, machine: str = None) \
        -> ValidationReport:
    """Evaluate every conservation law against one measurement.

    ``machine`` optionally names the registered backend the measurement
    ran on (:mod:`repro.machines`); the capability laws that only make
    sense for that backend's feature set are then selected — e.g. a
    machine without the autonomous IB engine must show zero IB
    references, zero IB-stall cycles and zero overlapped decodes.
    """
    t = measurement.tracer
    h = measurement.histogram
    mem = measurement.memory
    red = Reduction(h)
    u = red.umap
    report = ValidationReport(measurement.name)
    ungated = t.gated_off_cycles == 0

    # -- conservation ----------------------------------------------------
    report.exact(
        "cycle-conservation",
        measurement.measured_cycles + t.overlapped_decodes,
        h.total_cycles(),
        "histogram busy+stall == wall - gated-off + overlapped decodes")

    # -- Table 8 classification ------------------------------------------
    report.exact("classification-complete", h.total_cycles(),
                 red.total_cycles(),
                 "every counted bucket lands in a Table 8 cell")
    report.exact("row-totals", red.total_cycles(),
                 sum(red.row_total(row) for row in ROW_ORDER),
                 "Table 8 row totals sum to the grand total")
    report.exact("column-totals", red.total_cycles(),
                 sum(red.column_total(col) for col in COLUMN_ORDER),
                 "Table 8 column totals sum to the grand total")

    # -- per-group execute attribution -----------------------------------
    groups = family_groups()
    raw = {group: 0 for group in OpcodeGroup}
    ns, st = h.nonstalled, h.stalled
    for family, slots in u.exec_flows.items():
        group = groups[family]
        for addr in slots.values():
            raw[group] += ns[addr] + st[addr]
    for group in OpcodeGroup:
        report.exact(f"execute-attribution-{group.name.lower()}",
                     raw[group], red.group_execute_cycles(group),
                     "group execute row == sum of its µPC flow slots")

    # -- instruction counts ----------------------------------------------
    report.exact("instructions-reduction-vs-dispatches",
                 t.decode_dispatches, red.instructions,
                 "IRD dispatch buckets == tracer dispatch count")
    if ungated:
        report.exact("instructions-dispatch-vs-completed",
                     t.instructions + t.instruction_aborts,
                     t.decode_dispatches,
                     "every dispatch completes or aborts (and a fault "
                     "restart re-dispatches)")
    else:
        # The gate toggles mid-instruction (inside the rescheduler's
        # MFPR), so one dispatch/completion pair can straddle it: the
        # difference is 0 with the gate open at capture, 1 with it
        # closed — never anything else.
        report.bound("instructions-dispatch-vs-completed-upper",
                     t.instructions + t.instruction_aborts + 1,
                     t.decode_dispatches,
                     "a close mid-instruction counts the dispatch only")
        report.bound("instructions-dispatch-vs-completed-lower",
                     t.decode_dispatches,
                     t.instructions + t.instruction_aborts,
                     "an open mid-instruction counts the completion only")

    # -- TB-miss service accounting --------------------------------------
    services = sum(t.tb_miss_services.values())
    report.exact("tb-walk-length",
                 TBM_WALK_CYCLES * ns[u.tbm_entry], ns[u.tbm_compute],
                 "every service entry walks the full table")
    report.exact("tb-pte-read-per-service",
                 ns[u.tbm_entry], ns[u.tbm_pte_read],
                 "one PTE read per service entry")
    expected_insert = (TBM_INSERT_CYCLES * services
                       + 2 * t.tb_miss_faults)
    if ungated:
        report.exact("tb-entries", services + t.tb_miss_faults,
                     ns[u.tbm_entry],
                     "service entries == completions + faulted services")
        report.exact("tb-insert-cycles", expected_insert,
                     ns[u.tbm_insert],
                     "insert cycles: full insert per completion, "
                     "2-cycle fault exit per faulted service")
    else:
        report.bound("tb-entries", services + t.tb_miss_faults,
                     ns[u.tbm_entry],
                     "fault counter is ungated; bound only")
        report.bound("tb-insert-cycles", expected_insert,
                     ns[u.tbm_insert],
                     "fault counter is ungated; bound only")
    report.exact("tb-service-cycles",
                 TBM_SERVICE_CYCLES * services + t.tb_miss_stall_cycles,
                 t.tb_miss_cycles,
                 "tracer service cycles == fixed cost + PTE stalls")
    if ungated and t.tb_miss_faults == 0:
        report.exact("tb-pte-stalls", t.tb_miss_stall_cycles,
                     st[u.tbm_pte_read],
                     "board PTE-read stalls == tracer stalls")
    else:
        # Faulted services stall on the board but are not in the
        # tracer's per-completion stall count.
        report.bound("tb-pte-stalls", st[u.tbm_pte_read],
                     t.tb_miss_stall_cycles,
                     "faulted services stall on the board only")

    # -- delivered events -------------------------------------------------
    if ungated:
        report.exact("exceptions-delivered", t.exceptions,
                     red.exceptions_delivered(),
                     "exception setup buckets recover the tracer count")
        report.exact("interrupts-delivered", t.interrupts,
                     red.interrupts_delivered(),
                     "irq entry executions == tracer interrupt count")
        report.exact("context-switches", t.context_switches,
                     red.context_switches(),
                     "LDPCTX dispatches == tracer switch count")
    else:
        report.bound("exceptions-delivered", t.exceptions,
                     red.exceptions_delivered(),
                     "event counters are ungated; bound only")
        report.bound("interrupts-delivered", t.interrupts,
                     red.interrupts_delivered(),
                     "event counters are ungated; bound only")
        report.bound("context-switches", t.context_switches,
                     red.context_switches(),
                     "event counters are ungated; bound only")

    # -- write-port accounting --------------------------------------------
    wstall = red.column_total(Column.WSTALL)
    writes = red.column_total(Column.WRITE)
    if ungated:
        report.exact("write-stalls", mem.write_stall_cycles, wstall,
                     "WSTALL column == write-buffer stall cycles")
    else:
        report.bound("write-stalls", mem.write_stall_cycles, wstall,
                     "memory statistics are ungated; bound only")
    report.bound("write-issues", mem.writes, writes,
                 "a crossing write issues twice for one WRITE cycle")

    # -- machine capabilities ---------------------------------------------
    if machine is not None:
        from repro.machines import get_machine

        params = get_machine(machine).params
        if not params.ib_prefetch:
            report.exact("no-ib-engine", 0, mem.ib_references,
                         "a machine without the IB fill engine never "
                         "references the IB")
            report.exact("no-ib-stalls", 0,
                         red.column_total(Column.IBSTALL),
                         "no IB engine, no IB-stall cycles")
        if not params.overlapped_decode:
            report.exact("no-overlapped-decode", 0, t.overlapped_decodes,
                         "overlapped decode is absent from this machine")
        if params.unsupported_families:
            unsupported_groups = {
                family_groups()[family]
                for family in params.unsupported_families}
            for group in sorted(unsupported_groups,
                                key=lambda g: g.name):
                implemented = any(
                    family_groups()[family] is group
                    and family not in params.unsupported_families
                    for family in u.exec_flows)
                if implemented:
                    continue
                report.exact(
                    f"no-{group.name.lower()}-group-cycles", 0,
                    red.group_execute_cycles(group),
                    "the machine implements none of this group's "
                    "families, so its execute row must be empty")

    return report


def check_machine(machine, name: str = "machine") -> ValidationReport:
    """Capture a machine's state and evaluate the laws against it."""
    from repro.analysis.measurement import Measurement

    return check_measurement(Measurement.capture(name, machine))
