"""Sampled invariant checking during long runs (``--paranoid`` mode).

A :class:`ParanoidMonitor` hangs off the machine's instruction-boundary
hook and, every *interval* instructions, re-verifies the cheap
conservation laws in **delta form** against a rolling baseline:

* histogram busy+stall growth == cycle growth − gated-off growth
  + overlapped-decode growth;
* TB-miss walk/PTE-read bucket growth stays in lockstep with service
  entries.

Delta form makes the monitor robust to counter clears (a measurement
session's CSR CLEAR shrinks the histogram total; the monitor rebases
and carries on) and keeps each sample O(histogram size) at worst.  The
sampling interval adapts: the monitor times its own checks against the
wall-clock time the simulation spends between them and widens the
interval until the overhead fraction drops under ``overhead``.

A violated law raises
:class:`~repro.validate.invariants.InvariantViolation` at the exact
instruction boundary where the books stopped balancing.
"""

from __future__ import annotations

import time

from repro import obs
from repro.obs import metrics
from repro.ucode.costs import TBM_WALK_CYCLES
from repro.validate.invariants import InvariantViolation

#: Interval bounds for the adaptive sampler.
_MIN_INTERVAL = 64
_MAX_INTERVAL = 1 << 20


class ParanoidMonitor:
    """Boundary-hook invariant sampler with bounded overhead."""

    def __init__(self, machine, interval: int = 1024,
                 overhead: float = 0.02) -> None:
        self.machine = machine
        self.interval = max(_MIN_INTERVAL, interval)
        self.overhead = overhead
        self.samples = 0
        self.rebases = 0
        self._countdown = self.interval
        self._prev_hook = None
        self._installed = False
        self._last_check_ended = None
        self._baseline = None

    # -- lifecycle -------------------------------------------------------

    def install(self) -> "ParanoidMonitor":
        """Chain onto the machine's boundary hook and take a baseline."""
        if self._installed:
            return self
        self._prev_hook = self.machine.boundary_hook
        self.machine.boundary_hook = self._on_boundary
        self._installed = True
        self.rebase()
        return self

    def uninstall(self) -> None:
        """Run one final check and restore the previous hook."""
        if not self._installed:
            return
        self.check_now()
        self.machine.boundary_hook = self._prev_hook
        self._prev_hook = None
        self._installed = False

    def __enter__(self) -> "ParanoidMonitor":
        return self.install()

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is None:
            self.uninstall()
        elif self._installed:
            self.machine.boundary_hook = self._prev_hook
            self._installed = False
        return False

    # -- sampling --------------------------------------------------------

    def rebase(self) -> None:
        """Take a fresh baseline at the current machine state."""
        self._baseline = self._snapshot()
        self.rebases += 1

    def _snapshot(self):
        m = self.machine
        tracer = m.tracer
        tracer.settle_gate(m.cycles)
        board = m.board
        u = m.umap
        return (m.cycles, tracer.gated_off_cycles,
                tracer.overlapped_decodes,
                sum(board.nonstalled) + sum(board.stalled),
                board.nonstalled[u.tbm_entry],
                board.nonstalled[u.tbm_compute],
                board.nonstalled[u.tbm_pte_read])

    def _violation(self, law: str, message: str) -> InvariantViolation:
        metrics.counter("validate.paranoid_violations").inc()
        obs.emit("paranoid_violation", law=law, message=message,
                 samples=self.samples)
        return InvariantViolation(message)

    def check_now(self) -> None:
        """Evaluate the delta laws immediately (raises on violation)."""
        now = self._snapshot()
        base = self._baseline
        if now[3] < base[3]:
            # Counters were cleared since the baseline (a measurement
            # session started): rebase rather than compare garbage.
            self._baseline = now
            self.rebases += 1
            return
        self.samples += 1
        metrics.counter("validate.paranoid_samples").inc()
        d_cycles = now[0] - base[0]
        d_gated = now[1] - base[1]
        d_overlap = now[2] - base[2]
        d_hist = now[3] - base[3]
        if d_hist != d_cycles - d_gated + d_overlap:
            raise self._violation(
                "cycle-conservation",
                f"cycle conservation broke between cycles {base[0]} and "
                f"{now[0]}: histogram grew {d_hist}, expected "
                f"{d_cycles} - {d_gated} gated + {d_overlap} overlapped")
        d_entry = now[4] - base[4]
        if now[5] - base[5] != TBM_WALK_CYCLES * d_entry:
            raise self._violation(
                "tb-walk-lockstep",
                f"TB walk cycles out of step between cycles {base[0]} "
                f"and {now[0]}: {now[5] - base[5]} walk cycles for "
                f"{d_entry} service entries")
        if now[6] - base[6] != d_entry:
            raise self._violation(
                "tb-pte-lockstep",
                f"TB PTE reads out of step between cycles {base[0]} "
                f"and {now[0]}: {now[6] - base[6]} reads for "
                f"{d_entry} service entries")
        self._baseline = now

    def _on_boundary(self, machine) -> None:
        if self._prev_hook is not None:
            self._prev_hook(machine)
        self._countdown -= 1
        if self._countdown > 0:
            return
        started = time.perf_counter()
        self.check_now()
        ended = time.perf_counter()
        # Adapt the interval so check time stays under the overhead
        # budget relative to the simulation time between checks.
        if self._last_check_ended is not None:
            spent = ended - started
            between = started - self._last_check_ended
            budget = self.overhead * between
            if spent > budget and self.interval < _MAX_INTERVAL:
                self.interval = min(_MAX_INTERVAL, self.interval * 2)
            elif spent < budget / 4 and self.interval > _MIN_INTERVAL:
                self.interval = max(_MIN_INTERVAL, self.interval // 2)
        self._last_check_ended = ended
        self._countdown = self.interval
