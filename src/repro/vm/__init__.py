"""Virtual memory: address decomposition, page tables, translation buffer."""

from repro.vm.address import (P0, P1, S0, P0_BASE, P1_BASE, S0_BASE,
                              PAGE_BYTES, PAGE_SHIFT, global_vpn,
                              is_system_space, make_va, offset_of,
                              region_of, vpn_of)
from repro.vm.pagetable import (AddressSpace, PageFault, RegionTable,
                                TranslationNotMapped, Translator,
                                PTE_VALID)
from repro.vm.tb import TBStats, TranslationBuffer

__all__ = ["P0", "P1", "S0", "P0_BASE", "P1_BASE", "S0_BASE", "PAGE_BYTES",
           "PAGE_SHIFT", "global_vpn", "is_system_space", "make_va",
           "offset_of", "region_of", "vpn_of", "AddressSpace", "PageFault",
           "RegionTable", "TranslationNotMapped", "Translator", "PTE_VALID",
           "TBStats", "TranslationBuffer"]
