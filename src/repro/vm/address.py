"""VAX virtual address decomposition.

A 32-bit VAX virtual address selects one of four regions with its top two
bits — P0 (program), P1 (control/stack), S0 (system) — and within a region
a 21-bit virtual page number over 512-byte pages:

    31 30 | 29 ............. 9 | 8 ....... 0
    region|  virtual page no.  |   offset

The translation buffer is split into *process* (P0/P1) and *system* (S0)
halves, indexed here by :func:`is_system_space`.
"""

from __future__ import annotations

#: Region codes from VA<31:30>.
P0, P1, S0, RESERVED = 0, 1, 2, 3

REGION_NAMES = {P0: "P0", P1: "P1", S0: "S0", RESERVED: "reserved"}

PAGE_BYTES = 512
PAGE_SHIFT = 9
OFFSET_MASK = PAGE_BYTES - 1
#: VPN within region: VA<29:9>.
REGION_VPN_MASK = (1 << 21) - 1


def region_of(va: int) -> int:
    """Region code (P0/P1/S0/RESERVED) of a virtual address."""
    return (va >> 30) & 3


def vpn_of(va: int) -> int:
    """Virtual page number within the address's region."""
    return (va >> PAGE_SHIFT) & REGION_VPN_MASK


def global_vpn(va: int) -> int:
    """Region-qualified VPN (unique across the whole address space)."""
    return (va & 0xFFFFFFFF) >> PAGE_SHIFT


def offset_of(va: int) -> int:
    """Byte offset within the page."""
    return va & OFFSET_MASK


def is_system_space(va: int) -> bool:
    """True for S0 (and reserved) addresses — VA bit 31 set."""
    return bool(va & 0x80000000)


def make_va(region: int, vpn: int, offset: int = 0) -> int:
    """Compose a virtual address from region, VPN and offset."""
    return ((region & 3) << 30) | ((vpn & REGION_VPN_MASK) << PAGE_SHIFT) \
        | (offset & OFFSET_MASK)


#: Conventional base addresses of the three regions.
P0_BASE = 0x00000000
P1_BASE = 0x40000000
S0_BASE = 0x80000000
