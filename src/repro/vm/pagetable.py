"""VAX page tables, stored in simulated physical memory.

Each region (P0, P1 per process; S0 shared) has a linear page table of
4-byte PTEs at a physical base address.  The TB-miss micro-routine fetches
the PTE *through the cache*, which is what gives the paper its observation
that PTE reads often miss (3.5 read-stall cycles per TB miss).

PTE format (simplified from the architecture): bit 31 = valid, low 21 bits
= page frame number.  Protection fields are not modeled; an invalid PTE
raises :class:`PageFault`, which the executive services by making the page
resident.

The real VAX places process page tables in S0 *virtual* space (so a
process-PTE fetch can itself TB-miss).  This model keeps all page tables
physical — a documented single-level simplification; the dominant cost the
paper measures (a cache-visible PTE read per TB miss) is preserved.
"""

from __future__ import annotations

from repro.vm.address import (P0, P1, S0, PAGE_SHIFT, region_of, vpn_of)

PTE_VALID = 0x80000000
PFN_MASK = (1 << 21) - 1


class PageFault(Exception):
    """Raised when translation reaches an invalid (non-resident) PTE."""

    def __init__(self, va: int) -> None:
        super().__init__(f"page fault at {va:#010x}")
        self.va = va


class TranslationNotMapped(Exception):
    """Raised when a VA falls outside its region's page table."""

    def __init__(self, va: int) -> None:
        super().__init__(f"address not mapped: {va:#010x}")
        self.va = va


class RegionTable:
    """One region's linear page table: a physical base and a page count."""

    __slots__ = ("base_pa", "length")

    def __init__(self, base_pa: int, length: int) -> None:
        self.base_pa = base_pa
        self.length = length

    def pte_address(self, vpn: int) -> int:
        """Physical address of the PTE for ``vpn``."""
        return self.base_pa + 4 * vpn


class AddressSpace:
    """The per-process translation context: P0 and P1 region tables.

    The shared S0 table lives in :class:`Translator`; an AddressSpace only
    carries what LDPCTX swaps.
    """

    def __init__(self, asid: int, p0: RegionTable, p1: RegionTable) -> None:
        self.asid = asid
        self.regions = {P0: p0, P1: p1}

    def __repr__(self) -> str:
        return f"AddressSpace(asid={self.asid})"


class Translator:
    """Page-table walker over simulated physical memory."""

    def __init__(self, memory, s0: RegionTable) -> None:
        self._memory = memory
        self.s0 = s0
        self.current_space = None

    def set_space(self, space: AddressSpace) -> None:
        """Install a process address space (LDPCTX)."""
        self.current_space = space

    def region_table(self, va: int) -> RegionTable:
        """The region table governing ``va``."""
        region = region_of(va)
        if region == S0:
            return self.s0
        if self.current_space is None:
            raise TranslationNotMapped(va)
        table = self.current_space.regions.get(region)
        if table is None:
            raise TranslationNotMapped(va)
        return table

    def pte_address(self, va: int) -> int:
        """Physical address of the PTE translating ``va``."""
        table = self.region_table(va)
        vpn = vpn_of(va)
        if vpn >= table.length:
            raise TranslationNotMapped(va)
        return table.pte_address(vpn)

    def read_pte(self, va: int) -> int:
        """Fetch the raw PTE for ``va`` (untimed; timing is the CPU's job)."""
        return self._memory.read(self.pte_address(va), 4)

    def translate(self, va: int) -> int:
        """Translate to a physical address or raise :class:`PageFault`."""
        pte = self.read_pte(va)
        if not pte & PTE_VALID:
            raise PageFault(va)
        return ((pte & PFN_MASK) << PAGE_SHIFT) | (va & (1 << PAGE_SHIFT) - 1)

    # -- mapping helpers used by the executive and tests -------------------

    def map_page(self, va: int, pfn: int, valid: bool = True) -> None:
        """Write the PTE mapping ``va``'s page to frame ``pfn``."""
        pte = (pfn & PFN_MASK) | (PTE_VALID if valid else 0)
        self._memory.write(self.pte_address(va), pte, 4)

    def set_valid(self, va: int, valid: bool) -> None:
        """Flip the valid bit of an existing PTE (page-fault service)."""
        addr = self.pte_address(va)
        pte = self._memory.read(addr, 4)
        if valid:
            pte |= PTE_VALID
        else:
            pte &= ~PTE_VALID & 0xFFFFFFFF
        self._memory.write(addr, pte, 4)
