"""The 11/780 translation buffer (TB).

128 entries, two-way set associative, split into a *system* half (S0
addresses) and a *process* half (P0/P1) — the organisation studied in
Clark & Emer's companion TB paper (reference [3]).  A hit translates in
the same cycle as the access; a miss raises a microcode trap into the
miss-service routine (see :mod:`repro.ucode.flows_sys`), which fetches the
PTE through the cache and inserts the translation.

LDPCTX invalidates the process half (context switch); the system half
survives across switches.
"""

from __future__ import annotations

import random

from repro.vm.address import global_vpn, is_system_space


class TBStats:
    """Hit/miss counters, split by stream and by half."""

    __slots__ = ("hits", "misses", "d_misses", "i_misses", "flushes")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.d_misses = 0
        self.i_misses = 0
        self.flushes = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.__init__()

    @property
    def miss_ratio(self) -> float:
        """Misses per lookup."""
        total = self.hits + self.misses
        return self.misses / total if total else 0.0


class TranslationBuffer:
    """Two-halved, set-associative VPN -> PFN cache."""

    def __init__(self, entries: int, ways: int, seed: int = 11780) -> None:
        if entries % (2 * ways):
            raise ValueError("entries must divide into two halves of ways")
        self.ways = ways
        self.sets = entries // (2 * ways)
        if self.sets & (self.sets - 1):
            raise ValueError("sets per half must be a power of two")
        self._set_mask = self.sets - 1
        self._tag_shift = self.sets.bit_length() - 1
        # _tags/_pfns[half][way][set]; tag -1 means invalid.
        self._tags = [[[-1] * self.sets for _ in range(ways)]
                      for _ in range(2)]
        self._pfns = [[[0] * self.sets for _ in range(ways)]
                      for _ in range(2)]
        #: Flat mirrors of the associative arrays, vpn -> pfn, one per
        #: half.  Lookups have no side effect on the arrays (replacement
        #: is random, decided at insert time only), so a dict hit is
        #: exactly an associative hit — the arrays stay the ground truth
        #: and every mutation updates both.
        self._maps = [{}, {}]
        self._rng = random.Random(seed)
        self.stats = TBStats()

    def _locate(self, va: int):
        half = 1 if is_system_space(va) else 0
        vpn = global_vpn(va)
        index = vpn & self._set_mask
        tag = vpn >> self._tag_shift
        return half, index, tag

    def lookup(self, va: int, stream: str = "d"):
        """Translate ``va``; returns the PFN or None on a TB miss."""
        va &= 0xFFFFFFFF
        pfn = self._maps[va >> 31].get(va >> 9)  # half by VA<31>, VPN
        stats = self.stats
        if pfn is not None:
            stats.hits += 1
            return pfn
        stats.misses += 1
        if stream == "i":
            stats.i_misses += 1
        else:
            stats.d_misses += 1
        return None

    def probe(self, va: int) -> bool:
        """Non-counting presence test (for tests and analysis)."""
        half, index, tag = self._locate(va)
        return any(self._tags[half][way][index] == tag
                   for way in range(self.ways))

    def insert(self, va: int, pfn: int) -> None:
        """Install a translation (the tail of TB-miss service)."""
        half, index, tag = self._locate(va)
        tags = self._tags[half]
        vmap = self._maps[half]
        for way in range(self.ways):
            if tags[way][index] == -1:
                tags[way][index] = tag
                self._pfns[half][way][index] = pfn
                vmap[(tag << self._tag_shift) | index] = pfn
                return
        victim = self._rng.randrange(self.ways)
        old_tag = tags[victim][index]
        vmap.pop((old_tag << self._tag_shift) | index, None)
        tags[victim][index] = tag
        self._pfns[half][victim][index] = pfn
        vmap[(tag << self._tag_shift) | index] = pfn

    def invalidate_process_half(self) -> None:
        """Flush P0/P1 translations (LDPCTX behaviour)."""
        self.stats.flushes += 1
        for way in self._tags[0]:
            for i in range(self.sets):
                way[i] = -1
        self._maps[0].clear()

    def invalidate_all(self) -> None:
        """Flush everything (power-up)."""
        for half in self._tags:
            for way in half:
                for i in range(self.sets):
                    way[i] = -1
        self._maps[0].clear()
        self._maps[1].clear()

    def invalidate_va(self, va: int) -> None:
        """Invalidate a single translation (MTPR TBIS behaviour)."""
        half, index, tag = self._locate(va)
        tags = self._tags[half]
        for way in range(self.ways):
            if tags[way][index] == tag:
                tags[way][index] = -1
        self._maps[half].pop((tag << self._tag_shift) | index, None)
