"""Workload generation: mix profiles, code generator, experiments."""

from repro.workloads.codegen import GeneratedProgram, ProgramGenerator
from repro.workloads.rte import ScriptedTerminalMux, ScriptedUser
from repro.workloads.profiles import (COMMERCIAL, EDUCATIONAL, MixProfile,
                                      SCIENTIFIC, STANDARD_PROFILES,
                                      TIMESHARING_CPU_DEV,
                                      TIMESHARING_RESEARCH)

__all__ = ["GeneratedProgram", "ProgramGenerator", "COMMERCIAL",
           "EDUCATIONAL", "MixProfile", "SCIENTIFIC", "STANDARD_PROFILES",
           "TIMESHARING_CPU_DEV", "TIMESHARING_RESEARCH",
           "ScriptedTerminalMux", "ScriptedUser"]
