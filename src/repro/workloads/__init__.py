"""Workload generation: registry, mix profiles, codegen, traces.

The registry (:mod:`repro.workloads.registry`) is the front door:
every workload — the paper's five, the synthetic zoo
(:mod:`repro.workloads.zoo`), and recorded traces
(:mod:`repro.workloads.trace`) — resolves by name through it.
"""

from repro.workloads.codegen import GeneratedProgram, ProgramGenerator
from repro.workloads.rte import ScriptedTerminalMux, ScriptedUser
from repro.workloads.profiles import (COMMERCIAL, EDUCATIONAL, MixProfile,
                                      SCIENTIFIC, STANDARD_PROFILES,
                                      TIMESHARING_CPU_DEV,
                                      TIMESHARING_RESEARCH)
from repro.workloads.registry import (DEFAULT_WORKLOAD, WORKLOADS,
                                      WorkloadError, WorkloadSpec,
                                      find_workload, get_workload,
                                      paper_workload_names,
                                      paper_workloads, register,
                                      unregister, validate_workload,
                                      workload_names)
from repro.workloads.zoo import ZOO_PROFILES
from repro.workloads.trace import (TraceError, TraceHandle, load_trace,
                                   record_trace, register_trace, replay)

__all__ = ["GeneratedProgram", "ProgramGenerator", "COMMERCIAL",
           "EDUCATIONAL", "MixProfile", "SCIENTIFIC", "STANDARD_PROFILES",
           "TIMESHARING_CPU_DEV", "TIMESHARING_RESEARCH",
           "ScriptedTerminalMux", "ScriptedUser",
           "DEFAULT_WORKLOAD", "WORKLOADS", "WorkloadError",
           "WorkloadSpec", "find_workload", "get_workload",
           "paper_workload_names", "paper_workloads", "register",
           "unregister", "validate_workload", "workload_names",
           "ZOO_PROFILES",
           "TraceError", "TraceHandle", "load_trace", "record_trace",
           "register_trace", "replay"]
