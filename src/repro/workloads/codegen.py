"""Synthetic VAX program generation.

The RTE scripts of the paper drove real programs; we generate them.  A
:class:`ProgramGenerator` emits a complete user program for one process —
a DAG of CALLS-able subroutines with loops, conditional branches, scalar
work, field operations, string/decimal blocks and system-service requests
— with instruction-category frequencies and operand addressing modes drawn
from a :class:`~repro.workloads.profiles.MixProfile`.

Register conventions in generated code::

    r0-r5   scratch (volatile across string/decimal ops and calls)
    r6      subroutine loop counter (saved by entry masks)
    r7      small index value, 0..7
    r8      pointer-table cursor (autoincrement deferred)
    r9      roving data pointer
    r10     string/decimal region base
    r11     scalar data region base

The generator also produces the *initial contents* of the data regions
(pointer tables that point back into the region, valid packed decimals,
text for string operations) so that every generated instruction executes
on well-formed operands.
"""

from __future__ import annotations

import random
import struct
from dataclasses import dataclass

from repro.arch import encode as enc
from repro.arch.specifiers import AddressingMode
from repro.asm.program import ProgramBuilder
from repro.workloads.profiles import MixProfile

_WORD = 0xFFFFFFFF

#: Scalar data occupies the start of the region, so that the hot zone is
#: reachable with byte displacements off r11 (the paper: byte most often).
SCALAR_OFFSET = 0
#: bytes reserved at the end of the data region for the pointer table.
POINTER_TABLE_BYTES = 512
#: queue area: heads and entries, just below the pointer table.
QUEUE_AREA_BYTES = 256

#: offset of the packed-decimal area within the string region.
DECIMAL_AREA_OFFSET = 4096
DECIMAL_SLOTS = 64
DECIMAL_SLOT_BYTES = 16

#: fixed size of each subroutine slot in the code region.
SUBROUTINE_SLOT = 0x700

#: entry mask saving r6-r9 (the registers every generated body uses).
ENTRY_MASK = 0x03C0


@dataclass
class GeneratedProgram:
    """A complete generated user program plus its initial data images."""

    code: bytes           #: machine code, loaded at ``code_base``
    entry: int            #: VA of the first instruction of ``main``
    code_base: int
    data_base: int
    data_init: bytes      #: initial contents of the data region
    string_base: int
    string_init: bytes    #: initial contents of the string region
    subroutine_entries: list


class ProgramGenerator:
    """Emits one process's program from a mix profile."""

    def __init__(self, profile: MixProfile, seed: int,
                 code_base: int = 0x1000, data_base: int = 0x20000,
                 string_base: int = 0x30000) -> None:
        self.profile = profile
        self.rng = random.Random(seed)
        self.code_base = code_base
        self.data_base = data_base
        self.string_base = string_base
        self.data_bytes = profile.data_kb * 1024
        self.string_bytes = profile.string_kb * 1024
        self._ptr_table = self.data_bytes - POINTER_TABLE_BYTES
        self._queue_area = self._ptr_table - QUEUE_AREA_BYTES
        self._scalar_limit = self._queue_area - 64
        self._categories, self._weights = self._category_table()
        self._label_counter = 0

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def generate(self) -> GeneratedProgram:
        """Generate the program and its initial data images."""
        n_subs = max(2, self.profile.code_kb * 1024 // SUBROUTINE_SLOT - 1)
        entries = []
        chunks = []
        for index in range(n_subs):
            slot_base = self.code_base + index * SUBROUTINE_SLOT
            chunk, entry = self._generate_subroutine(slot_base, entries)
            chunks.append(chunk)
            entries.append(entry)
        main_base = self.code_base + n_subs * SUBROUTINE_SLOT
        chunks.append(self._generate_main(main_base, entries))
        code = b"".join(chunks)
        return GeneratedProgram(
            code=code, entry=main_base, code_base=self.code_base,
            data_base=self.data_base, data_init=self._build_data_init(),
            string_base=self.string_base,
            string_init=self._build_string_init(),
            subroutine_entries=entries)

    # ------------------------------------------------------------------
    # data region initial contents
    # ------------------------------------------------------------------

    def _build_data_init(self) -> bytes:
        rng = random.Random(self.rng.randrange(1 << 30))
        out = bytearray(rng.randbytes(self.data_bytes))
        # Pointer table: longwords pointing at aligned scalar data.
        for i in range(POINTER_TABLE_BYTES // 4):
            target = self.data_base + 4 * rng.randrange(
                self._scalar_limit // 4)
            offset = self._ptr_table + 4 * i
            out[offset:offset + 4] = struct.pack("<I", target)
        # Queue heads: self-referential (empty queues).
        for offset in range(self._queue_area, self._queue_area + 128, 16):
            head = self.data_base + offset
            out[offset:offset + 4] = struct.pack("<I", head)
            out[offset + 4:offset + 8] = struct.pack("<I", head)
        return bytes(out)

    def _build_string_init(self) -> bytes:
        rng = random.Random(self.rng.randrange(1 << 30))
        # Printable bytes, drawn as randrange(0x20, 0x7F) would draw
        # them: range 95 has bit_length 7, and CPython's _randbelow
        # rejection-samples getrandbits(7) until the draw fits.  Calling
        # getrandbits directly consumes the identical generator stream
        # (byte-identical output) at a fraction of the interpreter cost —
        # this is the largest single constructor expense.
        getrandbits = rng.getrandbits
        out = bytearray(self.string_bytes)
        for i in range(self.string_bytes):
            r = getrandbits(7)
            while r >= 95:
                r = getrandbits(7)
            out[i] = 0x20 + r
        # Valid packed decimals in the decimal area.
        digits = self.profile.decimal_digits
        nbytes = digits // 2 + 1
        for slot in range(DECIMAL_SLOTS):
            offset = DECIMAL_AREA_OFFSET + slot * DECIMAL_SLOT_BYTES
            packed = bytearray()
            for i in range(nbytes - 1):
                packed.append((rng.randrange(10) << 4) | rng.randrange(10))
            packed.append((rng.randrange(10) << 4)
                          | (0xC if rng.random() < 0.8 else 0xD))
            out[offset:offset + nbytes] = packed
        return bytes(out)

    # ------------------------------------------------------------------
    # program structure
    # ------------------------------------------------------------------

    def _label(self, stem: str) -> str:
        self._label_counter += 1
        return f"{stem}_{self._label_counter}"

    def _generate_subroutine(self, slot_base: int, earlier_entries):
        b = ProgramBuilder()
        # Local JSB helper first, so its absolute address is known.
        helper_offset = b.offset
        self._emit_straight_line(b, self.rng.randrange(3, 7),
                                 allow_heavy=False)
        b.emit("RSB")
        helper_addr = slot_base + helper_offset

        entry_offset = b.offset
        b.data(struct.pack("<H", ENTRY_MASK))  # CALLS entry mask
        if self.rng.random() < 0.40:
            # Straight-line subroutine: every visit streams cold code,
            # the way editors/compilers traverse large texts of code.
            self._emit_loop_body(b, slot_base, earlier_entries,
                                 helper_addr)
            self._emit_straight_line(b, self.rng.randrange(12, 24),
                                     allow_heavy=True)
            if self.rng.random() < self.profile.syscall_density * 20:
                self._emit_syscall(b)
            for _ in range(self.rng.randrange(0, 3)):
                if earlier_entries and self.rng.random() < \
                        self.profile.call_density:
                    self._emit_call_site(b, slot_base, earlier_entries)
            b.emit("RET")
            image = b.assemble(slot_base)
            chunk = image.data
            if len(chunk) > SUBROUTINE_SLOT:
                raise AssertionError(
                    f"subroutine overflow: {len(chunk)} > "
                    f"{SUBROUTINE_SLOT}")
            chunk += bytes(SUBROUTINE_SLOT - len(chunk))
            return chunk, slot_base + entry_offset
        loop_reg = 6
        iters = self._loop_iterations()
        b.emit("MOVL", enc.literal(min(iters, 63)), enc.register(loop_reg))
        streaming = iters >= 20
        if streaming:
            # Array-scan loop: r9 marches through the data region, one
            # fresh stretch per iteration — the data-streaming pattern
            # (string scans, array sweeps) that keeps live D-streams from
            # being cache-warm.
            start = 4 * self.rng.randrange(
                max(1, (self._scalar_limit - 8192) // 4))
            b.emit("MOVAB", enc.displacement(11, start), enc.register(9))
        loop_label = self._label("loop")
        b.label(loop_label)
        loop_start = b.offset
        if streaming:
            # Re-anchor the pointer-table cursor every iteration: the
            # body's autoincrement-deferred operands advance it, and a
            # long scan loop would otherwise walk it off the table.
            b.emit("MOVAB",
                   enc.displacement(11, self._ptr_table
                                    + 4 * self.rng.randrange(64)),
                   enc.register(8))
            # Scan a fresh stretch: small-displacement reads off the
            # marching base, one store, then advance the base.
            for i in range(self.rng.randrange(2, 4)):
                b.emit("MOVL", enc.displacement(9, 4 * i),
                       enc.register(self.rng.randrange(3)))
            b.emit("MOVL", enc.register(self.rng.randrange(3)),
                   enc.displacement(9, 12))
            b.emit("ADDL2", enc.literal(self.rng.choice((16, 24, 32, 48))),
                   enc.register(9))
            self._emit_straight_line(b, self.rng.randrange(5, 11),
                                     allow_heavy=False)
        else:
            self._emit_loop_body(b, slot_base, earlier_entries,
                                 helper_addr)
        # Close the loop: SOBGTR's byte displacement reaches short bodies;
        # longer ones use ACBL's word displacement (or AOBLSS when the
        # body happens to be mid-sized) — the compiler-like mix the
        # paper's loop-branch row aggregates.
        body = b.offset - loop_start
        if body <= 118:
            b.branch(self.rng.choice(("SOBGTR", "SOBGEQ")), loop_label,
                     enc.register(loop_reg))
        else:
            b.branch("ACBL", loop_label, enc.literal(1),
                     enc.immediate(0xFFFFFFFF), enc.register(loop_reg))
        # Post-loop call sites: executed once per invocation, so callee
        # bodies stream fresh code without 10x loop amplification.
        for _ in range(self.rng.randrange(0, 3)):
            if earlier_entries and self.rng.random() < \
                    self.profile.call_density * 4:
                self._emit_call_site(b, slot_base, earlier_entries)
        b.emit("RET")

        image = b.assemble(slot_base)
        chunk = image.data
        if len(chunk) > SUBROUTINE_SLOT:
            raise AssertionError(
                f"subroutine overflow: {len(chunk)} > {SUBROUTINE_SLOT}")
        chunk += bytes(SUBROUTINE_SLOT - len(chunk))
        return chunk, slot_base + entry_offset

    def _loop_iterations(self) -> int:
        """Loop trip counts: a mix of short, medium and long loops whose
        per-execution taken ratio averages the paper's ~91 % while most
        subroutine visits get little code reuse (live code is not 10x
        warm everywhere)."""
        roll = self.rng.random()
        if roll < 0.62:
            return self.rng.randrange(2, 6)
        if roll < 0.87:
            return self.rng.randrange(8, 13)
        return self.rng.randrange(25, 50)

    def _generate_main(self, main_base: int, entries) -> bytes:
        b = ProgramBuilder()
        # Establish the roving registers before any generated operand
        # uses them (r10/r11 come preloaded from the PCB).
        b.emit("MOVAB", enc.displacement(11, 64, 1), enc.register(9))
        b.emit("MOVAB", enc.displacement(11, self._ptr_table),
               enc.register(8))
        b.emit("CLRL", enc.register(7))
        main_loop = self._label("main")
        b.label(main_loop)
        # Call a shuffled selection of subroutines, with occasional
        # syscalls between call sites (think: an RTE script iteration).
        picks = self.rng.sample(entries,
                                k=min(len(entries),
                                      self.rng.randrange(12, 20)))
        for entry in picks:
            self._emit_calls(b, main_base, entry, 0)
            if self.rng.random() < self.profile.syscall_density * 4:
                self._emit_syscall(b)
        self._emit_straight_line(b, 6, allow_heavy=False)
        b.branch("BRW", main_loop)
        return b.assemble(main_base).data

    def _emit_calls(self, b, slot_base: int, target: int,
                    nargs: int) -> None:
        """CALLS with a PC-relative (word displacement) target, the way
        compilers emit it; falls back to absolute when out of range."""
        site = slot_base + b.offset
        disp = target - (site + 5)  # opcode + numarg literal + 3-byte spec
        if -32768 <= disp <= 32767:
            b.emit("CALLS", enc.literal(nargs),
                   enc.displacement(15, disp, size=2))
        else:
            b.emit("CALLS", enc.literal(nargs), enc.absolute(target))

    def _emit_jsb(self, b, slot_base: int, target: int) -> None:
        """JSB or BSBW to the local helper (PC-relative)."""
        site = slot_base + b.offset
        if self.rng.random() < 0.40:
            b.branch("BSBW", target - (site + 3))
            return
        disp = target - (site + 4)
        if -32768 <= disp <= 32767:
            b.emit("JSB", enc.displacement(15, disp, size=2))
        else:
            b.emit("JSB", enc.absolute(target))

    def _emit_loop_body(self, b, slot_base, earlier_entries,
                        helper_addr) -> None:
        profile = self.profile
        rng = self.rng
        # Reset the roving registers every iteration to keep all memory
        # operands inside the data region.
        b.emit("MOVAB",
               enc.displacement(11,
                                4 * rng.randrange(self._scalar_limit // 4
                                                  - 64)),
               enc.register(9))
        b.emit("MOVAB",
               enc.displacement(11, self._ptr_table
                                + 4 * rng.randrange(64)),
               enc.register(8))
        b.emit("EXTZV", enc.literal(0), enc.literal(3), enc.register(6),
               enc.register(7))

        n_items = rng.randrange(5, 10)
        self._emit_straight_line(b, n_items, allow_heavy=False)

        if earlier_entries and rng.random() < profile.call_density:
            self._emit_call_site(b, slot_base, earlier_entries)
        if earlier_entries and rng.random() < profile.call_density * 0.6:
            self._emit_call_site(b, slot_base, earlier_entries)
        if rng.random() < profile.jsb_density:
            self._emit_jsb(b, slot_base, helper_addr)
        if rng.random() < 0.04:
            self._emit_pushr_popr(b)

    def _emit_call_site(self, b, slot_base, earlier_entries) -> None:
        """A procedure call to one of the nearest preceding subroutines.

        Restricting targets to close predecessors keeps call chains
        shallow and spreads execution across the whole code region
        (uniform choice over all predecessors concentrates execution
        exponentially in the lowest-numbered subroutines)."""
        rng = self.rng
        target = rng.choice(earlier_entries[-6:])
        nargs = rng.randrange(3)
        for _ in range(nargs):
            b.emit("PUSHL", self._read_operand())
        self._emit_calls(b, slot_base, target, nargs)

    def _emit_syscall(self, b) -> None:
        if self.rng.random() < self.profile.blocking_syscall_fraction:
            code = 2  # QIO-style blocking service
        else:
            code = self.rng.choice((0, 1, 3))
        b.emit("CHMK", enc.literal(code))

    def _emit_pushr_popr(self, b) -> None:
        mask = 0
        bits = self.rng.sample(range(6), k=self.profile.save_mask_bits)
        for bit in bits:
            mask |= 1 << bit
        b.emit("PUSHR", enc.literal(mask) if mask <= 63
               else enc.immediate(mask))
        b.emit("POPR", enc.literal(mask) if mask <= 63
               else enc.immediate(mask))

    # ------------------------------------------------------------------
    # straight-line item emission
    # ------------------------------------------------------------------

    def _category_table(self):
        p = self.profile
        table = [
            ("move", p.move), ("arith", p.arith), ("boolean", p.boolean),
            ("cmp_test", p.cmp_test), ("mova_push", p.mova_push),
            ("field", p.field_ops), ("bit_branch", p.bit_branch),
            ("low_bit", p.low_bit_test), ("float", p.float_ops),
            ("muldiv", p.int_muldiv), ("char", p.char_ops),
            ("decimal", p.decimal_ops), ("queue", p.queue_ops),
            ("probe", p.probe_ops), ("case", p.case_branch),
            ("cond_branch", p.cond_branch), ("brb", p.uncond_branch),
            ("jmp", p.jmp_branch),
        ]
        names = [name for name, _ in table]
        weights = [weight for _, weight in table]
        return names, weights

    _HEAVY = frozenset({"char", "decimal", "case", "queue"})

    def _emit_straight_line(self, b, n_items: int,
                            allow_heavy: bool) -> None:
        for _ in range(n_items):
            category = self.rng.choices(self._categories,
                                        weights=self._weights)[0]
            if not allow_heavy and category in self._HEAVY:
                category = "move"
            getattr(self, f"_emit_{category}")(b)

    # -- operand construction ------------------------------------------------

    def _scalar_offset(self) -> int:
        rng = self.rng
        roll = rng.random()
        if roll < 0.50:
            return 4 * rng.randrange(31)  # hot zone, byte displacement
        if roll < 0.74:
            return 4 * rng.randrange(1024)  # warm 4 KB
        return 4 * rng.randrange(self._scalar_limit // 4)

    def _read_operand(self, size: int = 4):
        """A read operand following (approximately) Table 4's mix."""
        rng = self.rng
        roll = rng.random()
        if roll < 0.36:
            return enc.register(rng.randrange(6))
        if roll < 0.52:
            return enc.literal(rng.randrange(64))
        if roll < 0.555:
            return enc.immediate(rng.randrange(1 << 16))
        operand = self._memory_operand(size)
        if operand.mode not in (AddressingMode.SHORT_LITERAL,
                                AddressingMode.REGISTER,
                                AddressingMode.IMMEDIATE) and \
                rng.random() < 0.65:
            operand = operand.indexed(7)
        return operand

    def _read_operand_memory_biased(self, size: int = 4):
        """Second/middle read operands: the paper's Spec 2-6 read rate
        implies these are memory more often than first operands."""
        rng = self.rng
        if rng.random() < 0.30:
            roll = rng.random()
            if roll < 0.55:
                return enc.register(rng.randrange(6))
            if roll < 0.9:
                return enc.literal(rng.randrange(64))
            return enc.immediate(rng.randrange(1 << 12))
        operand = self._memory_operand(size)
        if operand.mode not in (AddressingMode.SHORT_LITERAL,
                                AddressingMode.REGISTER,
                                AddressingMode.IMMEDIATE) and \
                rng.random() < 0.4:
            operand = operand.indexed(7)
        return operand

    def _memory_operand(self, size: int = 4):
        rng = self.rng
        roll = rng.random()
        if roll < 0.70:
            return enc.displacement(11, self._scalar_offset())
        if roll < 0.78:
            return enc.register_deferred(9)
        if roll < 0.86 and size == 4:
            # Sub-longword autoincrement would knock r9 off alignment
            # for every later longword reference through it.
            return enc.autoincrement(9)
        if roll < 0.89 and size == 4:
            return enc.autodecrement(9)
        if roll < 0.965:
            return enc.disp_deferred(11, self._ptr_table + 4 * rng.randrange(
                POINTER_TABLE_BYTES // 4))
        if roll < 0.985:
            return enc.absolute(self.data_base + self._scalar_offset())
        return enc.autoinc_deferred(8)

    def _modify_operand(self, size: int = 4):
        """Destination of a 2-operand op (read-modify-write): memory
        more often than a plain store target, per the Spec 2-6 read rate
        of Table 5."""
        rng = self.rng
        if rng.random() < 0.35:
            return enc.register(rng.randrange(6))
        if rng.random() < 0.8:
            return enc.displacement(11, self._scalar_offset())
        return enc.register_deferred(9)

    def _write_operand(self, size: int = 4):
        rng = self.rng
        roll = rng.random()
        if roll < 0.55:
            return enc.register(rng.randrange(6))
        if roll < 0.88:
            return enc.displacement(11, self._scalar_offset())
        if roll < 0.95:
            return enc.register_deferred(9)
        return enc.displacement(11, self._scalar_offset())

    # -- category emitters -------------------------------------------------

    def _emit_move(self, b) -> None:
        rng = self.rng
        roll = rng.random()
        if roll < 0.55:
            b.emit("MOVL", self._read_operand(), self._write_operand())
        elif roll < 0.70:
            mnem = rng.choice(("MOVB", "MOVW"))
            b.emit(mnem, self._read_operand(), self._write_operand())
        elif roll < 0.80:
            b.emit(rng.choice(("MOVZBL", "MOVZWL", "MOVZBW")),
                   self._read_operand(), self._write_operand())
        elif roll < 0.88:
            b.emit(rng.choice(("CLRL", "CLRB", "CLRW")),
                   self._write_operand())
        elif roll < 0.94:
            b.emit(rng.choice(("CVTBL", "CVTWL", "CVTLB", "CVTLW")),
                   self._read_operand(), self._write_operand())
        else:
            b.emit(rng.choice(("MCOML", "MNEGL", "MCOMB")),
                   self._read_operand(), self._write_operand())

    def _emit_arith(self, b) -> None:
        rng = self.rng
        roll = rng.random()
        if roll < 0.25:
            b.emit(rng.choice(("ADDL2", "SUBL2")), self._read_operand(),
                   self._modify_operand())
        elif roll < 0.70:
            b.emit(rng.choice(("ADDL3", "SUBL3")), self._read_operand(),
                   self._read_operand_memory_biased(),
                   self._write_operand())
        elif roll < 0.80:
            b.emit(rng.choice(("INCL", "DECL", "INCW", "DECB")),
                   self._write_operand())
        elif roll < 0.86:
            b.emit(rng.choice(("ADDW2", "SUBB2")), self._read_operand(),
                   self._write_operand())
        elif roll < 0.90:
            if rng.random() < 0.5:
                b.emit("ADAWI", enc.literal(rng.randrange(16)),
                       enc.displacement(11, self._scalar_offset() & ~1))
            else:
                b.emit("INDEX", enc.register(7), enc.literal(0),
                       enc.literal(7), enc.literal(4),
                       enc.literal(0), enc.register(1))
        else:
            b.emit(rng.choice(("ASHL", "ROTL")),
                   enc.literal(rng.randrange(16)), self._read_operand(),
                   self._write_operand())

    def _emit_boolean(self, b) -> None:
        rng = self.rng
        if rng.random() < 0.55:
            b.emit(rng.choice(("BISL2", "BICL2", "XORL2")),
                   self._read_operand(), self._modify_operand())
        elif rng.random() < 0.7:
            b.emit(rng.choice(("XORB2", "BISB2", "BICW2")),
                   self._read_operand(), self._modify_operand())
        else:
            b.emit(rng.choice(("BISL3", "BICL3", "XORL3")),
                   self._read_operand(),
                   self._read_operand() if rng.random() < 0.5
                   else enc.register(2),
                   self._write_operand())

    def _emit_cmp_test(self, b) -> None:
        rng = self.rng
        if rng.random() < 0.55:
            b.emit(rng.choice(("CMPL", "CMPB", "CMPW")),
                   self._read_operand(),
                   self._read_operand_memory_biased())
        elif rng.random() < 0.75:
            b.emit(rng.choice(("TSTL", "TSTB", "TSTW")),
                   self._read_operand())
        else:
            b.emit(rng.choice(("BITL", "BITW")), self._read_operand(),
                   self._read_operand_memory_biased())

    def _emit_mova_push(self, b) -> None:
        rng = self.rng
        roll = rng.random()
        if roll < 0.4:
            b.emit("MOVAB", enc.displacement(11, self._scalar_offset()),
                   enc.register(rng.randrange(6)))
        elif roll < 0.6:
            b.emit("MOVAL", enc.displacement(11, self._scalar_offset()),
                   enc.register(rng.randrange(6)))
        elif roll < 0.8:
            b.emit("PUSHL", self._read_operand())
            b.emit("MOVL", enc.autoincrement(14), enc.register(0))
        else:
            b.emit("PUSHAB", enc.displacement(11, self._scalar_offset()))
            b.emit("TSTL", enc.autoincrement(14))

    def _emit_field(self, b) -> None:
        rng = self.rng
        roll = rng.random()
        pos = enc.literal(rng.randrange(24)) if rng.random() < 0.6 \
            else enc.register(7)
        size = enc.literal(rng.choice((1, 2, 3, 4, 8, 12, 16)))
        base = enc.register(3) if rng.random() < 0.5 \
            else enc.displacement(11, self._scalar_offset())
        if roll < 0.45:
            b.emit(rng.choice(("EXTZV", "EXTV")), pos, size, base,
                   enc.register(rng.randrange(6)))
        elif roll < 0.70:
            # INSV into a register field must fit one register; into
            # memory the field must fit a longword read-modify-write.
            b.emit("INSV", enc.register(rng.randrange(6)),
                   enc.literal(rng.randrange(8)),
                   enc.literal(rng.choice((1, 2, 4, 8, 12))), base)
        elif roll < 0.85:
            b.emit(rng.choice(("CMPV", "CMPZV")), pos, size, base,
                   self._read_operand())
        else:
            b.emit(rng.choice(("FFS", "FFC")), enc.literal(0),
                   enc.literal(rng.choice((8, 16, 32))), base,
                   enc.register(rng.randrange(6)))

    def _emit_bit_branch(self, b) -> None:
        rng = self.rng
        mnem = rng.choices(
            ("BBS", "BBC", "BBSS", "BBCC", "BBCS", "BBSC"),
            weights=(32, 32, 12, 12, 6, 6))[0]
        pos = enc.literal(rng.randrange(8)) if rng.random() < 0.4 \
            else enc.register(7)
        base = enc.displacement(11, self._scalar_offset()) \
            if rng.random() < 0.6 else enc.register(4)
        skip = self._label("bb")
        b.branch(mnem, skip, pos, base)
        self._emit_filler(b, rng.randrange(1, 3))
        b.label(skip)

    def _emit_low_bit(self, b) -> None:
        rng = self.rng
        skip = self._label("blb")
        roll = rng.random()
        if roll < 0.40:
            operand = enc.register(7)  # cycles 0..7: bit 0 alternates
        elif roll < 0.85:
            operand = enc.displacement(11, self._scalar_offset())
        else:
            operand = enc.register(rng.randrange(6))
        b.branch(rng.choice(("BLBS", "BLBC")), skip, operand)
        self._emit_filler(b, rng.randrange(1, 3))
        b.label(skip)

    def _emit_float(self, b) -> None:
        rng = self.rng
        roll = rng.random()
        fsrc = enc.displacement(11, self._scalar_offset())
        if roll < 0.25:
            b.emit("MOVF", fsrc, enc.register(2))
        elif roll < 0.55:
            b.emit(rng.choice(("ADDF2", "SUBF2", "MULF2")),
                   fsrc, enc.register(2))
        elif roll < 0.70:
            b.emit(rng.choice(("ADDF3", "MULF3", "SUBF3")),
                   enc.register(2), fsrc, self._write_operand())
        elif roll < 0.80:
            b.emit("DIVF2", enc.register(2), enc.register(3))
        elif roll < 0.88:
            b.emit(rng.choice(("CVTLF", "CVTFL", "CVTWF", "CVTFW",
                               "CVTBF")), self._read_operand(),
                   enc.register(rng.randrange(6)))
        elif roll < 0.92:
            b.emit(rng.choice(("CVTLD", "CVTDL")), enc.register(2),
                   enc.register(4))
        elif roll < 0.95:
            b.emit(rng.choice(("CMPF", "MNEGF")), enc.register(2),
                   enc.register(3))
        else:
            b.emit("TSTF", enc.register(2))

    def _emit_muldiv(self, b) -> None:
        rng = self.rng
        roll = rng.random()
        if roll < 0.25:
            b.emit("MULL2", self._read_operand(), self._write_operand())
        elif roll < 0.5:
            b.emit("MULL3", self._read_operand(), self._read_operand(),
                   self._write_operand())
        elif roll < 0.65:
            b.emit("DIVL2", self._read_operand(), self._write_operand())
        elif roll < 0.8:
            b.emit("DIVL3", self._read_operand(), self._read_operand(),
                   self._write_operand())
        elif roll < 0.92:
            b.emit("EMUL", self._read_operand(), self._read_operand(),
                   self._read_operand(), enc.register(2))
        else:
            b.emit("EDIV", enc.literal(7), enc.register(2),
                   enc.register(4), enc.register(5))

    def _string_site(self, length: int):
        """Source/destination offsets in the string region, no overlap."""
        rng = self.rng
        half = DECIMAL_AREA_OFFSET // 2
        src = 4 * rng.randrange(0, (half - length - 8) // 4)
        dst = half + 4 * rng.randrange(0, (half - length - 8) // 4)
        if rng.random() < 0.3:
            src += rng.randrange(4)  # unaligned strings happen (§3.3.1)
        return src, dst

    def _emit_char(self, b) -> None:
        rng = self.rng
        length = max(4, int(rng.gauss(self.profile.string_length, 8)))
        src, dst = self._string_site(length)
        roll = rng.random()
        len_op = enc.literal(length) if length <= 63 \
            else enc.immediate(length)
        # Subset machines restrict the mnemonic set; draws happen
        # unconditionally so the rng stream (and hence everything
        # generated afterwards) is identical across machines.
        supported = self.profile.char_opcodes
        if roll < 0.55:
            b.emit("MOVC3", len_op, enc.displacement(10, src),
                   enc.displacement(10, dst))
        elif roll < 0.70:
            # Compare a string against itself: equal bytes, so the
            # microcode scans the whole length (random-vs-random data
            # would mismatch after a byte or two and undercount work).
            if "CMPC3" in supported:
                b.emit("CMPC3", len_op, enc.displacement(10, src),
                       enc.displacement(10, src))
            else:
                b.emit("MOVC3", len_op, enc.displacement(10, src),
                       enc.displacement(10, dst))
        elif roll < 0.85:
            # Search printable text for a control character: full scan.
            mnemonic = rng.choice(("LOCC", "SKPC"))
            char_op = enc.literal(1 if rng.random() < 0.5 else 0)
            if mnemonic in supported:
                b.emit(mnemonic, char_op, len_op,
                       enc.displacement(10, src))
            else:
                b.emit("MOVC3", len_op, enc.displacement(10, src),
                       enc.displacement(10, dst))
        elif roll < 0.95:
            if "MOVC5" in supported:
                b.emit("MOVC5", enc.literal(min(63, length // 2)),
                       enc.displacement(10, src), enc.literal(0x20),
                       len_op, enc.displacement(10, dst))
            else:
                b.emit("MOVC3", len_op, enc.displacement(10, src),
                       enc.displacement(10, dst))
        elif "SCANC" in supported:
            # Mask 0x80 never matches printable table bytes: full scan.
            b.emit("SCANC", len_op, enc.displacement(10, src),
                   enc.displacement(10, dst & ~0xFF), enc.immediate(0x80))
        else:
            b.emit("MOVC3", len_op, enc.displacement(10, src),
                   enc.displacement(10, dst))

    def _emit_decimal(self, b) -> None:
        rng = self.rng
        digits = self.profile.decimal_digits
        slot_a = DECIMAL_AREA_OFFSET + DECIMAL_SLOT_BYTES * \
            rng.randrange(DECIMAL_SLOTS)
        slot_b = DECIMAL_AREA_OFFSET + DECIMAL_SLOT_BYTES * \
            rng.randrange(DECIMAL_SLOTS)
        roll = rng.random()
        dig = enc.literal(digits)
        if roll < 0.35:
            b.emit(rng.choice(("ADDP4", "SUBP4")), dig,
                   enc.displacement(10, slot_a), dig,
                   enc.displacement(10, slot_b))
        elif roll < 0.55:
            b.emit("MOVP", dig, enc.displacement(10, slot_a),
                   enc.displacement(10, slot_b))
        elif roll < 0.75:
            b.emit("CMPP3", dig, enc.displacement(10, slot_a),
                   enc.displacement(10, slot_b))
        elif roll < 0.90:
            b.emit("CVTLP", self._read_operand(), dig,
                   enc.displacement(10, slot_a))
        else:
            b.emit("CVTPL", dig, enc.displacement(10, slot_a),
                   enc.register(rng.randrange(6)))

    def _emit_queue(self, b) -> None:
        rng = self.rng
        site = rng.randrange(4)
        head = self._queue_area + 16 * site
        entry = self._queue_area + 128 + 16 * site
        b.emit("INSQUE", enc.displacement(11, entry),
               enc.displacement(11, head))
        b.emit("REMQUE", enc.displacement(11, entry), enc.register(0))

    def _emit_probe(self, b) -> None:
        b.emit(self.rng.choice(("PROBER", "PROBEW")), enc.literal(3),
               enc.literal(4), enc.displacement(11, self._scalar_offset()))

    def _emit_case(self, b) -> None:
        rng = self.rng
        n = rng.randrange(2, 5)
        labels = [self._label("case") for _ in range(n)]
        done = self._label("case_done")
        # Bound the selector into [0, 3] first.
        b.emit("EXTZV", enc.literal(0), enc.literal(2), enc.register(7),
               enc.register(1))
        b.case("CASEL", enc.register(1), enc.literal(0),
               enc.literal(n - 1), labels)
        # Out-of-range selectors fall through to here.
        b.branch("BRB", done)
        for label in labels:
            b.label(label)
            self._emit_filler(b, rng.randrange(1, 3))
            b.branch("BRB", done)
        b.label(done)

    def _emit_cond_branch(self, b) -> None:
        rng = self.rng
        skip = self._label("if")
        if rng.random() < 0.55:
            # Fresh comparison against the data region.
            b.emit("CMPB", enc.displacement(11, self._scalar_offset()),
                   enc.literal(rng.randrange(64)))
        # else: branch on whatever the preceding instruction left in the
        # condition codes, as compiled code often does.
        mnem = rng.choices(
            ("BLSS", "BGEQ", "BGTR", "BLEQ", "BNEQ", "BEQL", "BCC", "BCS",
             "BGTRU"),
            weights=(18, 18, 18, 18, 11, 11, 2, 2, 2))[0]
        b.branch(mnem, skip)
        self._emit_filler(b, rng.randrange(1, 3))
        b.label(skip)

    def _emit_brb(self, b) -> None:
        """Unconditional short branch over dead code (BRB/BRW share the
        conditional-branch microcode, as the paper notes)."""
        target = self._label("brb")
        b.branch(self.rng.choice(("BRB", "BRB", "BRW")), target)
        self._emit_filler(b, self.rng.randrange(1, 3))
        b.label(target)

    def _emit_jmp(self, b) -> None:
        # JMP with a PC-relative address operand targeting the next
        # instruction (displacement 0 past the specifier).
        b.emit("JMP", enc.displacement(15, 0, size=1))

    def _emit_filler(self, b, n: int) -> None:
        for _ in range(n):
            roll = self.rng.random()
            if roll < 0.5:
                b.emit("MOVL", self._read_operand(), self._write_operand())
            elif roll < 0.8:
                b.emit("ADDL2", self._read_operand(), enc.register(0))
            else:
                b.emit("INCL", enc.register(1))
