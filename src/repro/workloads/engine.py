"""Measurement experiments over registered workloads, and composites.

Each experiment builds a fresh machine, boots the executive with one
registered workload (:mod:`repro.workloads.registry` — the paper's
five, the zoo, or an ingested trace), runs a measurement window, and
captures a :class:`~repro.analysis.measurement.Measurement`.  The
composite — the basis of every table in the paper — is the sum of the
selected workloads' histograms; the default composite is the paper's
five (§2.2: "we will report results for the composite of all five,
that is, the sum of the five µPC histograms") and stays bit-identical
no matter how large the registry grows.

Workloads are resolved *by name* through the registry.  Passing a
:class:`~repro.workloads.profiles.MixProfile` object for a registered
workload — the calling convention this module launched with — still
works but raises :class:`DeprecationWarning`; ad-hoc, unregistered
profiles (the fuzzers, the explore sweeps' perturbed variants) run
silently, as before.

Results are memoised per (workload, instructions, seed, machine) so
that the table benchmarks, which all consume the same composite, pay
for the simulation once per process.  Trace-backed workloads replay
their recording (bit-verified, see :mod:`repro.workloads.trace`) and
are pinned to the recorded budget, seed and machine.

This is the internal engine behind the public facade
(:mod:`repro.api`); the old home of these functions,
:mod:`repro.workloads.experiments`, remains as deprecated wrappers.

Observability: runs report through :mod:`repro.obs` — lifecycle events,
an adaptive instruction-boundary progress sampler, and registry
counters.  All of it is passive (the sampler only reads counters), so
an observed run is bit-identical to an unobserved one and memoises
under the same key.
"""

from __future__ import annotations

import warnings

from repro import obs
from repro.analysis.measurement import Measurement, composite
from repro.machines.registry import DEFAULT_MACHINE, get_machine
from repro.obs import metrics
from repro.osim.executive import Executive
from repro.workloads.profiles import MixProfile, STANDARD_PROFILES
from repro.workloads.registry import (WORKLOADS, WorkloadError,
                                      WorkloadSpec, get_workload,
                                      paper_workload_names)

#: Default measurement window per workload, in measured instructions.
#: ~60k per workload keeps a five-workload composite comfortably under a
#: minute while leaving per-instruction ratios stable to ~1 %.
DEFAULT_INSTRUCTIONS = 60_000

#: The fixed small budget behind every command's ``--smoke``.
SMOKE_INSTRUCTIONS = 2_000

_CACHE: dict = {}


def _resolve(workload):
    """Resolve a workload argument to ``(spec_or_None, profile)``.

    ``str`` (or None, meaning the default) resolves through the
    registry, raising :class:`WorkloadError` for unknown names before
    anything simulates.  A :class:`MixProfile` is the deprecated PR-5
    calling convention: if it *is* a registered workload's profile the
    caller gets a :class:`DeprecationWarning` telling them to pass the
    name; an ad-hoc profile (perturbed variants, fuzz inputs) passes
    through silently with no spec.
    """
    if isinstance(workload, WorkloadSpec):
        return workload, workload.profile
    if workload is None or isinstance(workload, str):
        spec = get_workload(workload)
        return spec, spec.profile
    spec = WORKLOADS.get(workload.name)
    if spec is not None and spec.profile is workload:
        warnings.warn(
            "passing a MixProfile for a registered workload is "
            "deprecated; pass the workload name "
            f"({workload.name!r}) instead", DeprecationWarning,
            stacklevel=3)
        return spec, workload
    return None, workload


def _finish(key, measurement, name, instructions) -> Measurement:
    _CACHE[key] = measurement
    metrics.counter("workloads.runs").inc()
    metrics.counter("workloads.cycles").inc(measurement.cycles)
    metrics.counter("workloads.instructions").inc(
        measurement.tracer.instructions)
    obs.emit("workload_finished", workload=name,
             instructions=instructions, cycles=measurement.cycles,
             cached=False)
    obs.record_measurement(measurement)
    return measurement


def _run_trace(spec: WorkloadSpec, instructions, seed: int,
               machine: str) -> Measurement:
    """Replay a trace-backed workload (pinned to its recording)."""
    handle = spec.trace
    spec.check_machine(machine)
    if instructions is None:
        instructions = handle.instructions
    if instructions != handle.instructions or seed != handle.seed:
        raise WorkloadError(
            f"trace workload {spec.name!r} was recorded at "
            f"{handle.instructions} instructions with seed "
            f"{handle.seed} and replays only there (got "
            f"instructions={instructions}, seed={seed})")
    key = (spec.name, instructions, seed, machine)
    cached = _CACHE.get(key)
    if cached is not None:
        metrics.counter("workloads.memo_hits").inc()
        obs.emit("workload_finished", workload=spec.name,
                 instructions=instructions, cycles=cached.cycles,
                 cached=True)
        obs.record_measurement(cached)
        return cached
    from repro.workloads.trace import replay

    obs.emit("workload_started", workload=spec.name,
             instructions=instructions, seed=seed)
    with metrics.timer("workloads.run_seconds").time():
        measurement = replay(handle)
    return _finish(key, measurement, spec.name, instructions)


def run_workload(workload, instructions: int = None,
                 seed: int = 1984, paranoid: bool = False,
                 machine: str = DEFAULT_MACHINE) -> Measurement:
    """Run one workload experiment and return its measurement.

    ``workload`` is a registered workload name (the canonical calling
    convention; ``None`` means the default), a
    :class:`~repro.workloads.registry.WorkloadSpec`, or — deprecated
    for registered workloads — a :class:`MixProfile`.  With
    ``paranoid`` the run carries a sampling invariant monitor (see
    :mod:`repro.validate.paranoid`); the monitor is passive, so the
    measurement is bit-identical and memoised under the same key.
    ``machine`` names a registered backend (:mod:`repro.machines`);
    workloads whose required executor families the machine refuses
    raise :class:`WorkloadError` here, before anything simulates, and
    a subset machine's profile adaptation is applied here, so callers
    always pass the canonical profiles.
    """
    spec, profile = _resolve(workload)
    if spec is not None and spec.trace is not None:
        # Replay verifies bit-identity against the recording — a
        # strictly stronger check than the paranoid monitor.
        return _run_trace(spec, instructions, seed, machine)
    if spec is not None:
        spec.check_machine(machine)
    if instructions is None:
        instructions = DEFAULT_INSTRUCTIONS
    key = (profile.name, instructions, seed, machine)
    cached = _CACHE.get(key)
    if cached is not None:
        metrics.counter("workloads.memo_hits").inc()
        obs.emit("workload_finished", workload=profile.name,
                 instructions=instructions, cycles=cached.cycles,
                 cached=True)
        obs.record_measurement(cached)
        return cached
    obs.emit("workload_started", workload=profile.name,
             instructions=instructions, seed=seed)
    machine_spec = get_machine(machine)
    sim = machine_spec.build()
    executive = Executive(sim, machine_spec.adapt_profile(profile),
                          seed=seed)
    executive.boot()
    observation = obs.active()
    sampler = None
    if observation is not None:
        # Chain after whatever the executive installed; the paranoid
        # monitor (installed below) chains after the sampler in turn.
        sampler = obs.ProgressSampler(sim, observation, profile.name)
        sampler.install()
    try:
        with metrics.timer("workloads.run_seconds").time():
            if paranoid:
                from repro.validate.paranoid import ParanoidMonitor

                with ParanoidMonitor(sim):
                    executive.run(instructions)
            else:
                executive.run(instructions)
    finally:
        if sampler is not None:
            sampler.uninstall()
    measurement = Measurement.capture(profile.name, sim)
    return _finish(key, measurement, profile.name, instructions)


def run_many(workloads=None, instructions: int = DEFAULT_INSTRUCTIONS,
             seed: int = 1984, jobs: int = 1, paranoid: bool = False,
             engine: str = "scalar",
             machine: str = DEFAULT_MACHINE) -> dict:
    """Run a set of registered workloads; returns name -> Measurement.

    ``workloads`` is an iterable of registered names (default: the
    paper's five, in the paper's order).  Unknown names and
    machine-refused workloads raise :class:`WorkloadError` for the
    whole set before anything simulates.  With ``jobs > 1`` the
    independent simulations are distributed over worker processes (see
    :mod:`repro.workloads.parallel`); with ``engine="batch"`` (or
    ``"auto"``) they run as one in-process lockstep batch instead (see
    :mod:`repro.batch`).  Both paths are bit-identical to the serial
    loop, so results memoise under the same per-workload keys.
    ``paranoid`` forces the serial scalar path (the monitor hooks one
    live machine in this process); a non-default ``machine`` or a
    trace-backed workload in the set also forces scalar (lockstep
    fusion shares one 780 timing model across lanes, and a replay is
    pinned to its recording).
    """
    from repro.batch import validate_engine

    if workloads is None:
        names = paper_workload_names()
    else:
        names = tuple(workloads)
    specs = [get_workload(name) for name in names]
    for spec in specs:
        spec.check_machine(machine)
    engine = validate_engine(engine)
    has_trace = any(spec.trace is not None for spec in specs)
    if paranoid or machine != DEFAULT_MACHINE or has_trace:
        jobs = 1 if paranoid else jobs
        engine = "scalar"
    if engine == "auto":
        # The batch path needs no spare cores and shares one histogram
        # sink, so auto prefers it whenever a pool was not requested.
        engine = "scalar" if jobs > 1 else "batch"
    todo = [spec for spec in specs
            if (spec.name, instructions, seed, machine) not in _CACHE]
    if engine == "batch" and todo:
        from repro.workloads.parallel import run_standard_batch

        fresh = run_standard_batch(
            instructions, seed,
            profiles=[spec.profile for spec in todo])
        for spec in todo:
            _CACHE[(spec.name, instructions, seed, machine)] = \
                fresh[spec.name]
    elif jobs > 1 and len(todo) > 1:
        from repro.workloads.parallel import run_standard_parallel

        fresh = run_standard_parallel(
            instructions, seed, jobs, machine=machine,
            workloads=[spec.name for spec in todo])
        for spec in todo:
            _CACHE[(spec.name, instructions, seed, machine)] = \
                fresh[spec.name]
    return {spec.name: run_workload(spec.name, instructions, seed,
                                    paranoid=paranoid, machine=machine)
            for spec in specs}


def run_standard_experiments(instructions: int = DEFAULT_INSTRUCTIONS,
                             seed: int = 1984, jobs: int = 1,
                             paranoid: bool = False,
                             engine: str = "scalar",
                             machine: str = DEFAULT_MACHINE) -> dict:
    """Run the paper's five experiments; returns name -> Measurement."""
    return run_many(None, instructions, seed, jobs=jobs,
                    paranoid=paranoid, engine=engine, machine=machine)


def _composite_key(names, instructions, seed, machine):
    if tuple(names) == paper_workload_names():
        # The historical key: the paper's composite memoises exactly
        # where it always has, no matter how the registry grows.
        return ("composite", instructions, seed, machine)
    return ("composite[%s]" % ",".join(names), instructions, seed,
            machine)


def standard_composite(instructions: int = DEFAULT_INSTRUCTIONS,
                       seed: int = 1984, jobs: int = 1,
                       paranoid: bool = False,
                       engine: str = "scalar",
                       machine: str = DEFAULT_MACHINE,
                       workloads=None) -> Measurement:
    """A composite measurement over ``workloads`` (memoised).

    The default — ``workloads=None`` — is the paper's five-workload
    composite, bit-identical to what this function has always
    returned.  Any other iterable of registered names sums that set's
    histograms instead, memoised under a key naming the set.
    """
    names = paper_workload_names() if workloads is None \
        else tuple(workloads)
    key = _composite_key(names, instructions, seed, machine)
    cached = _CACHE.get(key)
    if cached is not None:
        obs.record_measurement(cached)
        return cached
    runs = run_many(names, instructions, seed, jobs=jobs,
                    paranoid=paranoid, engine=engine, machine=machine)
    total = composite(runs.values())
    _CACHE[key] = total
    obs.emit("composite_finished", workloads=len(runs),
             instructions=instructions, cycles=total.cycles)
    obs.record_measurement(total)
    return total


def clear_cache() -> None:
    """Drop memoised measurements (tests that vary parameters use this)."""
    _CACHE.clear()


def prime_cache(name: str, instructions: int, seed: int, measurement,
                machine: str = DEFAULT_MACHINE) -> None:
    """Memoise a measurement produced elsewhere under its run key.

    The lockstep batch engine's lanes are bit-identical to
    :func:`run_workload`, so a caller that already holds a lane's
    measurement (the serve dispatcher fusing co-queued budgets) may
    pre-seed the memo and let the ordinary facade path find it.
    """
    _CACHE[(name, instructions, seed, machine)] = measurement


def is_cached(name: str, instructions: int, seed: int,
              machine: str = DEFAULT_MACHINE) -> bool:
    """Whether a (workload, instructions, seed) run is already memoised."""
    return (name, instructions, seed, machine) in _CACHE
