"""The paper's five measurement experiments and their composite.

Each experiment builds a fresh machine, boots the executive with one of
the five standard workload profiles, runs a measurement window, and
captures a :class:`~repro.analysis.measurement.Measurement`.  The
composite — the basis of every table in the paper — is the sum of the
five (§2.2: "we will report results for the composite of all five, that
is, the sum of the five µPC histograms").

Results are memoised per (profile, instructions, seed) so that the table
benchmarks, which all consume the same composite, pay for the simulation
once per process.

This is the internal engine behind the public facade
(:mod:`repro.api`); the old home of these functions,
:mod:`repro.workloads.experiments`, remains as deprecated wrappers.

Observability: runs report through :mod:`repro.obs` — lifecycle events,
an adaptive instruction-boundary progress sampler, and registry
counters.  All of it is passive (the sampler only reads counters), so
an observed run is bit-identical to an unobserved one and memoises
under the same key.
"""

from __future__ import annotations

from repro import obs
from repro.analysis.measurement import Measurement, composite
from repro.machines.registry import DEFAULT_MACHINE, get_machine
from repro.obs import metrics
from repro.osim.executive import Executive
from repro.workloads.profiles import MixProfile, STANDARD_PROFILES

#: Default measurement window per workload, in measured instructions.
#: ~60k per workload keeps a five-workload composite comfortably under a
#: minute while leaving per-instruction ratios stable to ~1 %.
DEFAULT_INSTRUCTIONS = 60_000

#: The fixed small budget behind every command's ``--smoke``.
SMOKE_INSTRUCTIONS = 2_000

_CACHE: dict = {}


def run_workload(profile: MixProfile, instructions: int = None,
                 seed: int = 1984, paranoid: bool = False,
                 machine: str = DEFAULT_MACHINE) -> Measurement:
    """Run one workload experiment and return its measurement.

    With ``paranoid`` the run carries a sampling invariant monitor (see
    :mod:`repro.validate.paranoid`); the monitor is passive, so the
    measurement is bit-identical and memoised under the same key.
    ``machine`` names a registered backend (:mod:`repro.machines`); a
    subset machine's profile adaptation is applied here, so callers
    always pass the paper's profiles.
    """
    if instructions is None:
        instructions = DEFAULT_INSTRUCTIONS
    key = (profile.name, instructions, seed, machine)
    cached = _CACHE.get(key)
    if cached is not None:
        metrics.counter("workloads.memo_hits").inc()
        obs.emit("workload_finished", workload=profile.name,
                 instructions=instructions, cycles=cached.cycles,
                 cached=True)
        obs.record_measurement(cached)
        return cached
    obs.emit("workload_started", workload=profile.name,
             instructions=instructions, seed=seed)
    spec = get_machine(machine)
    machine = spec.build()
    executive = Executive(machine, spec.adapt_profile(profile),
                          seed=seed)
    executive.boot()
    observation = obs.active()
    sampler = None
    if observation is not None:
        # Chain after whatever the executive installed; the paranoid
        # monitor (installed below) chains after the sampler in turn.
        sampler = obs.ProgressSampler(machine, observation, profile.name)
        sampler.install()
    try:
        with metrics.timer("workloads.run_seconds").time():
            if paranoid:
                from repro.validate.paranoid import ParanoidMonitor

                with ParanoidMonitor(machine):
                    executive.run(instructions)
            else:
                executive.run(instructions)
    finally:
        if sampler is not None:
            sampler.uninstall()
    measurement = Measurement.capture(profile.name, machine)
    _CACHE[key] = measurement
    metrics.counter("workloads.runs").inc()
    metrics.counter("workloads.cycles").inc(measurement.cycles)
    metrics.counter("workloads.instructions").inc(
        measurement.tracer.instructions)
    obs.emit("workload_finished", workload=profile.name,
             instructions=instructions, cycles=measurement.cycles,
             cached=False)
    obs.record_measurement(measurement)
    return measurement


def run_standard_experiments(instructions: int = DEFAULT_INSTRUCTIONS,
                             seed: int = 1984, jobs: int = 1,
                             paranoid: bool = False,
                             engine: str = "scalar",
                             machine: str = DEFAULT_MACHINE) -> dict:
    """Run all five standard experiments; returns name -> Measurement.

    With ``jobs > 1`` the five independent simulations are distributed
    over worker processes (see :mod:`repro.workloads.parallel`); with
    ``engine="batch"`` (or ``"auto"``) they run as one in-process
    lockstep batch instead (see :mod:`repro.batch`).  Both paths are
    bit-identical to the serial loop, so results memoise under the same
    per-workload keys.  ``paranoid`` forces the serial scalar path (the
    monitor hooks one live machine in this process); a non-default
    ``machine`` also forces scalar (lockstep fusion shares one 780
    timing model across lanes).
    """
    from repro.batch import validate_engine

    engine = validate_engine(engine)
    if paranoid or machine != DEFAULT_MACHINE:
        jobs = 1 if paranoid else jobs
        engine = "scalar"
    if engine == "auto":
        # The batch path needs no spare cores and shares one histogram
        # sink, so auto prefers it whenever a pool was not requested.
        engine = "scalar" if jobs > 1 else "batch"
    todo = [profile for profile in STANDARD_PROFILES
            if (profile.name, instructions, seed, machine) not in _CACHE]
    if engine == "batch" and todo:
        from repro.workloads.parallel import run_standard_batch

        fresh = run_standard_batch(instructions, seed, profiles=todo)
        for profile in todo:
            _CACHE[(profile.name, instructions, seed, machine)] = \
                fresh[profile.name]
    elif jobs > 1 and len(todo) > 1:
        from repro.workloads.parallel import run_standard_parallel

        fresh = run_standard_parallel(instructions, seed, jobs,
                                      machine=machine)
        for profile in todo:
            _CACHE[(profile.name, instructions, seed, machine)] = \
                fresh[profile.name]
    return {profile.name: run_workload(profile, instructions, seed,
                                       paranoid=paranoid,
                                       machine=machine)
            for profile in STANDARD_PROFILES}


def standard_composite(instructions: int = DEFAULT_INSTRUCTIONS,
                       seed: int = 1984, jobs: int = 1,
                       paranoid: bool = False,
                       engine: str = "scalar",
                       machine: str = DEFAULT_MACHINE) -> Measurement:
    """The five-workload composite measurement (memoised)."""
    key = ("composite", instructions, seed, machine)
    cached = _CACHE.get(key)
    if cached is not None:
        obs.record_measurement(cached)
        return cached
    runs = run_standard_experiments(instructions, seed, jobs=jobs,
                                    paranoid=paranoid, engine=engine,
                                    machine=machine)
    total = composite(runs.values())
    _CACHE[key] = total
    obs.emit("composite_finished", workloads=len(runs),
             instructions=instructions, cycles=total.cycles)
    obs.record_measurement(total)
    return total


def clear_cache() -> None:
    """Drop memoised measurements (tests that vary parameters use this)."""
    _CACHE.clear()


def prime_cache(name: str, instructions: int, seed: int, measurement,
                machine: str = DEFAULT_MACHINE) -> None:
    """Memoise a measurement produced elsewhere under its run key.

    The lockstep batch engine's lanes are bit-identical to
    :func:`run_workload`, so a caller that already holds a lane's
    measurement (the serve dispatcher fusing co-queued budgets) may
    pre-seed the memo and let the ordinary facade path find it.
    """
    _CACHE[(name, instructions, seed, machine)] = measurement


def is_cached(name: str, instructions: int, seed: int,
              machine: str = DEFAULT_MACHINE) -> bool:
    """Whether a (profile, instructions, seed) run is already memoised."""
    return (name, instructions, seed, machine) in _CACHE
