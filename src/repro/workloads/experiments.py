"""The paper's five measurement experiments and their composite.

Each experiment builds a fresh machine, boots the executive with one of
the five standard workload profiles, runs a measurement window, and
captures a :class:`~repro.analysis.measurement.Measurement`.  The
composite — the basis of every table in the paper — is the sum of the
five (§2.2: "we will report results for the composite of all five, that
is, the sum of the five µPC histograms").

Results are memoised per (profile, instructions, seed) so that the table
benchmarks, which all consume the same composite, pay for the simulation
once per process.
"""

from __future__ import annotations

from repro.analysis.measurement import Measurement, composite
from repro.cpu.machine import VAX780
from repro.osim.executive import Executive
from repro.workloads.profiles import MixProfile, STANDARD_PROFILES

#: Default measurement window per workload, in measured instructions.
#: ~60k per workload keeps a five-workload composite comfortably under a
#: minute while leaving per-instruction ratios stable to ~1 %.
DEFAULT_INSTRUCTIONS = 60_000

_CACHE: dict = {}


def run_workload(profile: MixProfile, instructions: int,
                 seed: int = 1984, paranoid: bool = False) -> Measurement:
    """Run one workload experiment and return its measurement.

    With ``paranoid`` the run carries a sampling invariant monitor (see
    :mod:`repro.validate.paranoid`); the monitor is passive, so the
    measurement is bit-identical and memoised under the same key.
    """
    key = (profile.name, instructions, seed)
    cached = _CACHE.get(key)
    if cached is not None:
        return cached
    machine = VAX780()
    executive = Executive(machine, profile, seed=seed)
    executive.boot()
    if paranoid:
        from repro.validate.paranoid import ParanoidMonitor

        with ParanoidMonitor(machine):
            executive.run(instructions)
    else:
        executive.run(instructions)
    measurement = Measurement.capture(profile.name, machine)
    _CACHE[key] = measurement
    return measurement


def run_standard_experiments(instructions: int = DEFAULT_INSTRUCTIONS,
                             seed: int = 1984, jobs: int = 1,
                             paranoid: bool = False) -> dict:
    """Run all five standard experiments; returns name -> Measurement.

    With ``jobs > 1`` the five independent simulations are distributed
    over worker processes (see :mod:`repro.workloads.parallel`); results
    are bit-identical to the serial path, so they are memoised under the
    same per-workload keys.  ``paranoid`` forces the serial path (the
    monitor lives in this process).
    """
    if paranoid:
        jobs = 1
    if jobs > 1:
        from repro.workloads.parallel import run_standard_parallel

        todo = [profile for profile in STANDARD_PROFILES
                if (profile.name, instructions, seed) not in _CACHE]
        if len(todo) > 1:
            fresh = run_standard_parallel(instructions, seed, jobs)
            for profile in todo:
                _CACHE[(profile.name, instructions, seed)] = \
                    fresh[profile.name]
    return {profile.name: run_workload(profile, instructions, seed,
                                       paranoid=paranoid)
            for profile in STANDARD_PROFILES}


def standard_composite(instructions: int = DEFAULT_INSTRUCTIONS,
                       seed: int = 1984, jobs: int = 1,
                       paranoid: bool = False) -> Measurement:
    """The five-workload composite measurement (memoised)."""
    key = ("composite", instructions, seed)
    cached = _CACHE.get(key)
    if cached is not None:
        return cached
    runs = run_standard_experiments(instructions, seed, jobs=jobs,
                                    paranoid=paranoid)
    total = composite(runs.values())
    _CACHE[key] = total
    return total


def clear_cache() -> None:
    """Drop memoised measurements (tests that vary parameters use this)."""
    _CACHE.clear()
