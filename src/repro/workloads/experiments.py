"""Deprecated home of the workload experiment entry points.

The implementation moved to :mod:`repro.workloads.engine` (internal)
behind the :mod:`repro.api` facade (the documented public surface).
These wrappers keep the original import paths and keyword signatures
working — they delegate to the engine's memoised implementations, so
results are *bit-identical* to the new paths — while emitting a
:class:`DeprecationWarning` per call so callers know where to move:

================================  =================================
old                               new
================================  =================================
``experiments.run_workload``      ``repro.api.run_workload`` /
                                  ``engine.run_workload``
``experiments.standard_composite``  ``repro.api.characterize`` /
                                  ``engine.standard_composite``
``experiments.run_standard_experiments``  ``engine.run_standard_experiments``
``experiments.clear_cache``       ``engine.clear_cache``
================================  =================================

``tests/test_deprecation.py`` holds both halves of that contract: the
warnings fire, and the shims return the same measurements.
"""

from __future__ import annotations

import warnings

from repro.workloads import engine
from repro.workloads.engine import DEFAULT_INSTRUCTIONS  # noqa: F401

__all__ = ["DEFAULT_INSTRUCTIONS", "run_workload",
           "run_standard_experiments", "standard_composite",
           "clear_cache"]


def _deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"repro.workloads.experiments.{old} is deprecated; "
        f"use {new} instead", DeprecationWarning, stacklevel=3)


def run_workload(profile, instructions, seed=1984, paranoid=False):
    """Deprecated alias of :func:`repro.workloads.engine.run_workload`."""
    _deprecated("run_workload", "repro.api.run_workload")
    return engine.run_workload(profile, instructions, seed=seed,
                               paranoid=paranoid)


def run_standard_experiments(instructions=DEFAULT_INSTRUCTIONS,
                             seed=1984, jobs=1, paranoid=False):
    """Deprecated alias of
    :func:`repro.workloads.engine.run_standard_experiments`."""
    _deprecated("run_standard_experiments",
                "repro.workloads.engine.run_standard_experiments")
    return engine.run_standard_experiments(instructions, seed=seed,
                                           jobs=jobs, paranoid=paranoid)


def standard_composite(instructions=DEFAULT_INSTRUCTIONS, seed=1984,
                       jobs=1, paranoid=False):
    """Deprecated alias of
    :func:`repro.workloads.engine.standard_composite`."""
    _deprecated("standard_composite", "repro.api.characterize")
    return engine.standard_composite(instructions, seed=seed, jobs=jobs,
                                     paranoid=paranoid)


def clear_cache():
    """Deprecated alias of :func:`repro.workloads.engine.clear_cache`."""
    _deprecated("clear_cache", "repro.workloads.engine.clear_cache")
    engine.clear_cache()
