"""Process-level parallelism for the five workload experiments.

Each of the paper's five experiments is an independent simulation — a
fresh machine, its own executive, its own seed-derived programs — so the
composite is embarrassingly parallel at workload granularity.  This
module fans the five runs out over a :class:`ProcessPoolExecutor` (the
cycle-level model is pure Python, so threads would serialize on the
GIL) and reassembles the results in profile order.

Determinism: a worker runs exactly the code the serial path runs —
``run_workload`` on a fresh interpreter state — so for a fixed
(instructions, seed) the per-workload measurements, and therefore the
composite histogram, are bit-identical to a serial run.  The
integration test ``tests/integration/test_determinism.py`` enforces
this.

On a single-core host the pool degenerates to sequential execution plus
process overhead; callers default to the serial path unless ``jobs > 1``
is requested explicitly.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor

from repro.workloads.profiles import STANDARD_PROFILES


def default_jobs() -> int:
    """A sensible worker count: one per workload, capped by the host."""
    return max(1, min(len(STANDARD_PROFILES), os.cpu_count() or 1))


def _run_one(task) -> "Measurement":
    """Worker entry point (top-level, so it pickles): one experiment."""
    name, instructions, seed = task
    from repro.workloads import experiments

    profile = next(p for p in STANDARD_PROFILES if p.name == name)
    return experiments.run_workload(profile, instructions, seed)


def run_standard_parallel(instructions: int, seed: int = 1984,
                          jobs: int = None) -> dict:
    """Run all five standard experiments across worker processes.

    Returns name -> Measurement in the paper's profile order, exactly as
    :func:`repro.workloads.experiments.run_standard_experiments` does.
    """
    if jobs is None:
        jobs = default_jobs()
    tasks = [(profile.name, instructions, seed)
             for profile in STANDARD_PROFILES]
    if jobs <= 1:
        results = [_run_one(task) for task in tasks]
    else:
        with ProcessPoolExecutor(max_workers=min(jobs, len(tasks))) as pool:
            # pool.map preserves submission order.
            results = list(pool.map(_run_one, tasks))
    return {profile.name: measurement
            for profile, measurement in zip(STANDARD_PROFILES, results)}
