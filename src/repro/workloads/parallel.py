"""Process-level parallelism for the five workload experiments.

Each of the paper's five experiments is an independent simulation — a
fresh machine, its own executive, its own seed-derived programs — so the
composite is embarrassingly parallel at workload granularity.  This
module fans the five runs out over a :class:`ProcessPoolExecutor` (the
cycle-level model is pure Python, so threads would serialize on the
GIL) and reassembles the results in profile order.

Determinism: a worker runs exactly the code the serial path runs —
``run_workload`` on a fresh interpreter state — so for a fixed
(instructions, seed) the per-workload measurements, and therefore the
composite histogram, are bit-identical to a serial run.  The
integration test ``tests/integration/test_determinism.py`` enforces
this.

Observability: every pooled task runs under a scoped metrics registry
(:func:`repro.obs.metrics.scoped_registry`) and comes back wrapped with
its metrics *delta*, duration and worker pid.  The parent merges the
deltas in task order — the merge rules are associative and commutative,
so the merged totals match a serial run regardless of worker
scheduling — and, when an observation is active, emits one
``task_finished`` event per task (the Chrome-trace exporter turns these
into per-worker lanes).

On a single-core host the pool degenerates to sequential execution plus
process overhead; callers default to the serial path unless ``jobs > 1``
is requested explicitly.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool

from repro import obs
from repro.obs import metrics
from repro.workloads.registry import paper_workload_names

#: Sentinel for a task slot that has not produced a result yet.
_UNSET = object()


def default_jobs() -> int:
    """A sensible worker count: one per workload, capped by the host."""
    return max(1, min(len(paper_workload_names()), os.cpu_count() or 1))


class _Instrumented:
    """Wraps a pool worker so each task reports its observability.

    The wrapped call runs the worker under a fresh scoped registry and
    returns an envelope: the real result plus the registry snapshot
    (the task's metrics delta), wall seconds, and the worker's pid.
    Pickles as long as ``worker`` does (top-level function).
    """

    __slots__ = ("worker",)

    def __init__(self, worker) -> None:
        self.worker = worker

    def __call__(self, task) -> dict:
        started = time.monotonic()
        with metrics.scoped_registry() as registry:
            result = self.worker(task)
        return {"result": result, "metrics": registry.snapshot(),
                "seconds": time.monotonic() - started,
                "worker": os.getpid()}


def run_tasks(worker, tasks, jobs: int = None, retries: int = 1) -> list:
    """Map ``worker`` over ``tasks``, optionally across processes.

    The generic fan-out shared by the composite experiments, the
    microbenchmark runner and the design-space sweep runner:
    order-preserving, degenerating to a plain serial loop for
    ``jobs <= 1`` (so single-job runs carry no pool overhead and the
    jobs=1 / jobs=N results are trivially comparable).  ``worker`` and
    each task must pickle (top-level function, plain data).

    Fault tolerance: results completed before a worker crash are kept.
    Tasks that fail in a pool worker — whether by raising or by killing
    the worker process outright (which breaks the whole pool) — are
    retried on a fresh pool up to ``retries`` times, then executed
    in-process as the last resort.  Only a task that also fails
    in-process propagates its exception to the caller.
    """
    tasks = list(tasks)
    if jobs is None:
        jobs = default_jobs()
    if jobs <= 1 or len(tasks) <= 1:
        return [worker(task) for task in tasks]
    wrapped = _Instrumented(worker)
    label = getattr(worker, "__name__", worker.__class__.__name__)
    obs.emit("pool_opened", jobs=min(jobs, len(tasks)),
             tasks=len(tasks), label=label)
    results = [_UNSET] * len(tasks)
    pending = list(range(len(tasks)))
    for _attempt in range(1 + max(0, retries)):
        if not pending:
            break
        try:
            with ProcessPoolExecutor(
                    max_workers=min(jobs, len(tasks))) as pool:
                futures = [(pool.submit(wrapped, tasks[i]), i)
                           for i in pending]
                failed = []
                for future, i in futures:
                    try:
                        results[i] = future.result()
                    except Exception:
                        # Worker raised, or the pool died and took this
                        # future with it; either way the task gets
                        # another round.
                        failed.append(i)
                if failed:
                    metrics.counter("parallel.retries").inc(len(failed))
                pending = failed
        except (BrokenProcessPool, OSError):
            # The pool itself broke down (a worker died, or workers
            # could not be spawned at all); keep whatever completed.
            metrics.counter("parallel.pool_failures").inc()
            pending = [i for i in pending if results[i] is _UNSET]
    # Last resort: run the stragglers in-process, serially.  A task
    # that still fails here raises to the caller.  The wrapper still
    # applies: its scoped registry keeps the fallback from writing the
    # parent registry directly *and* returning a delta (double count).
    for i in pending:
        results[i] = wrapped(tasks[i])
    # Unwrap in task order: deterministic metric merge and event order.
    metrics.counter("parallel.tasks").inc(len(tasks))
    registry = metrics.registry()
    out = []
    for index, envelope in enumerate(results):
        registry.merge(envelope["metrics"])
        obs.emit("task_finished", index=index, label=label,
                 worker=envelope["worker"],
                 seconds=round(envelope["seconds"], 6))
        out.append(envelope["result"])
    return out


def run_standard_batch(instructions: int, seed: int = 1984,
                       profiles=None) -> dict:
    """Run workload experiments as one lockstep batch.

    The alternative to the process pool on hosts without spare cores:
    the selected workloads (default: the paper's five) become lanes of
    a single :class:`repro.batch.BatchRunner`, advancing in lockstep
    and accumulating their histograms in one struct-of-arrays sink.
    Results are bit-identical to the serial path — same boot, same
    measured loop, same capture — so callers memoise them under the
    same per-workload keys.
    """
    from repro.batch import LaneSpec, run_lanes
    from repro.workloads.registry import paper_workloads

    if profiles is None:
        profiles = [spec.profile for spec in paper_workloads()]
    lanes = [LaneSpec(profile.name, instructions, seed)
             for profile in profiles]
    results = run_lanes(lanes, profiles=profiles)
    return {profile.name: result.measurement
            for profile, result in zip(profiles, results)}


def _run_one(task) -> "Measurement":
    """Worker entry point (top-level, so it pickles): one experiment."""
    name, instructions, seed, machine = task
    from repro.workloads import engine

    return engine.run_workload(name, instructions, seed,
                               machine=machine)


def run_standard_parallel(instructions: int, seed: int = 1984,
                          jobs: int = None, machine: str = "vax780",
                          workloads=None) -> dict:
    """Run registered workload experiments across worker processes.

    ``workloads`` is an iterable of registered names (default: the
    paper's five).  Dynamically registered workloads (ingested traces)
    cannot cross the process boundary — workers resolve names against
    the import-time registry — so the engine routes them to the serial
    path instead.  Returns name -> Measurement in the given order,
    exactly as :func:`repro.workloads.engine.run_many` does.
    """
    names = tuple(workloads) if workloads is not None \
        else paper_workload_names()
    tasks = [(name, instructions, seed, machine) for name in names]
    results = run_tasks(_run_one, tasks, jobs=jobs)
    return dict(zip(names, results))
