"""Workload mix profiles for the five measured environments.

The paper measured two live timesharing machines and three RTE-driven
synthetic environments (§2.2).  Each profile shapes the synthetic code
generator: relative weights of instruction categories, string/decimal
operand sizes, procedure-call density, system-service rate, and the
working-set sizes that drive cache/TB behaviour.

The *composite* of the five profiles is calibrated so that the summed
histograms land near Table 1's group frequencies (SIMPLE 83.6 %, FIELD
6.9 %, FLOAT 3.6 %, CALL/RET 3.2 %, SYSTEM 2.1 %, CHARACTER 0.4 %,
DECIMAL 0.03 %) — the downstream tables then follow from the simulated
machine rather than from further fitting.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MixProfile:
    """Generation parameters for one workload class."""

    name: str
    description: str

    # -- straight-line instruction category weights ----------------------
    move: float = 24.0
    arith: float = 10.0
    boolean: float = 4.0
    cmp_test: float = 16.0
    mova_push: float = 3.5
    field_ops: float = 3.6
    bit_branch: float = 9.0
    low_bit_test: float = 5.0
    float_ops: float = 5.5
    int_muldiv: float = 1.4
    char_ops: float = 8.5
    decimal_ops: float = 1.2
    queue_ops: float = 0.60
    probe_ops: float = 0.50
    case_branch: float = 3.2
    cond_branch: float = 68.0
    uncond_branch: float = 3.0
    jmp_branch: float = 0.8

    # -- structural parameters ---------------------------------------------
    #: mean loop iteration count (paper: ~10 -> 91% loop branches taken).
    loop_iterations: int = 10
    #: probability a block ends with a procedure call site.
    call_density: float = 1.0
    #: probability a block contains a JSB/RSB subroutine pair site.
    jsb_density: float = 0.85
    #: CHMK system services per generated block.
    syscall_density: float = 0.035
    #: fraction of syscalls that block the process (QIO-style).
    blocking_syscall_fraction: float = 0.11
    #: mean character-string length in bytes (paper: 36-44).
    string_length: int = 44
    #: character-string mnemonics the generator may emit.  Subset-VAX
    #: machine backends restrict this (the 78032 implements only the
    #: MOVC forms in its base microcode); draws for a restricted
    #: mnemonic substitute an equivalent full-scan MOVC so the string
    #: workload volume is preserved.
    char_opcodes: tuple = ("MOVC3", "CMPC3", "LOCC", "SKPC", "MOVC5",
                           "SCANC")
    #: packed-decimal digit count (paper: ~101-cycle average).
    decimal_digits: int = 12
    #: registers pushed by PUSHR/POPR pairs and typical entry masks.
    save_mask_bits: int = 4

    # -- memory behaviour -----------------------------------------------------
    code_kb: int = 64          #: generated code footprint per process
    data_kb: int = 64          #: scalar/pointer data region
    string_kb: int = 8         #: string/decimal region
    processes: int = 8         #: simultaneously active processes

    # -- executive pacing ------------------------------------------------------
    clock_period_cycles: int = 46000
    terminal_period_cycles: int = 7500
    quantum_ticks: int = 1
    io_block_cycles: int = 12000


#: The research-group machine: editing, mail, program development (§2.2).
TIMESHARING_RESEARCH = MixProfile(
    name="timesharing-research",
    description="General timesharing, ~15 users: editing, program "
                "development, electronic mail",
    char_ops=10.0, field_ops=3.9, call_density=1.0,
    terminal_period_cycles=7500, processes=7,
)

#: The CPU-development machine: heavier load, circuit simulation (§2.2).
TIMESHARING_CPU_DEV = MixProfile(
    name="timesharing-cpu-dev",
    description="General timesharing plus circuit simulation and "
                "microcode development, ~30 users",
    float_ops=6.0, int_muldiv=2.0, arith=11.0, char_ops=5.0,
    terminal_period_cycles=7500, processes=8,
)

#: RTE educational environment: 40 users doing program development.
EDUCATIONAL = MixProfile(
    name="rte-educational",
    description="RTE, 40 simulated users: program development in several "
                "languages, file manipulation",
    field_ops=4.6, cond_branch=70.0, char_ops=10.0,
    call_density=1.0, syscall_density=0.038,
    terminal_period_cycles=7500, processes=8,
)

#: RTE scientific/engineering environment.
SCIENTIFIC = MixProfile(
    name="rte-scientific",
    description="RTE, 40 simulated users: scientific computation and "
                "program development",
    float_ops=13.0, int_muldiv=4.0, arith=12.0, char_ops=3.4,
    decimal_ops=0.30, call_density=1.0,
    terminal_period_cycles=7500, processes=8,
)

#: RTE commercial transaction-processing environment.
COMMERCIAL = MixProfile(
    name="rte-commercial",
    description="RTE, 32 simulated users: transactional database "
                "inquiries and updates",
    decimal_ops=3.5, char_ops=15.0, field_ops=4.4, float_ops=1.2,
    queue_ops=0.4, syscall_density=0.045,
    blocking_syscall_fraction=0.35,
    terminal_period_cycles=7000, processes=6,
)

#: The paper's five experiments, in its order.
STANDARD_PROFILES = (
    TIMESHARING_RESEARCH,
    TIMESHARING_CPU_DEV,
    EDUCATIONAL,
    SCIENTIFIC,
    COMMERCIAL,
)
