"""The workload registry: named, selectable workload specifications.

Mirrors :mod:`repro.machines.registry`: a :class:`WorkloadSpec` binds a
workload name to everything that makes it runnable — the
:class:`~repro.workloads.profiles.MixProfile` driving the synthetic
code generator (or, for recorded traces, the embedded profile of a
:class:`~repro.workloads.trace.TraceHandle`), the executor families it
cannot live without, and whether it is one of the paper's original
five.  Every layer above the executive resolves workloads *by name*
through this module — the engine memo, the explore sweep axes, the
serve canonicalizer, the refutation planner and the analytical
calibrator all share one namespace and one validation contract:
unknown names raise :class:`WorkloadError` listing the registry,
eagerly, before anything simulates.

Three workload kinds coexist:

``paper``
    The five environments of §2.2, registered first and in the paper's
    order.  Their specs hold the *same* profile objects as
    ``profiles.STANDARD_PROFILES``, so registry resolution is
    bit-identical to direct construction, and subset machines keep the
    silent profile adaptation they have always applied.

``generator``
    The zoo (:mod:`repro.workloads.zoo`): new profile-driven generator
    classes.  A spec may declare ``requires_families``; a machine whose
    params refuse any of them rejects the workload *cleanly* (a
    :class:`WorkloadError` naming the families) instead of silently
    measuring an adapted imitation.

``trace``
    A recorded instruction trace ingested via :func:`register_trace`
    (see :mod:`repro.workloads.trace`): replay is pinned to the
    recorded (machine, seed, budget) and verified bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.profiles import MixProfile, STANDARD_PROFILES
from repro.workloads.zoo import ZOO_PROFILES


class WorkloadError(ValueError):
    """An unknown or unusable workload (callers map this to ApiError)."""


@dataclass(frozen=True)
class WorkloadSpec:
    """One registered workload."""

    name: str
    description: str
    #: Generator-class tag for reports ("timesharing", "rte",
    #: "compiler", ... or "trace").
    generator: str
    profile: MixProfile
    #: One of the paper's original five (§2.2).
    paper: bool = False
    #: Executor family names the workload's generated stream depends
    #: on.  A machine refusing any of them refuses the workload; an
    #: empty tuple means subset machines may adapt the profile instead
    #: (the paper-five behaviour).
    requires_families: tuple = ()
    #: The :class:`~repro.workloads.trace.TraceHandle` behind a
    #: trace-backed workload, else None.
    trace: object = None

    @property
    def kind(self) -> str:
        """``paper``, ``generator`` or ``trace``."""
        if self.trace is not None:
            return "trace"
        return "paper" if self.paper else "generator"

    def refused_families(self, machine: str = None) -> tuple:
        """The required families ``machine`` does not implement."""
        from repro.machines.registry import get_machine

        unsupported = set(get_machine(machine).params
                          .unsupported_families)
        return tuple(family for family in self.requires_families
                     if family in unsupported)

    def supported_on(self, machine: str = None) -> bool:
        """Whether ``machine`` can run this workload at all.

        A trace-backed workload is supported only on the machine it was
        recorded on — replay on any other backend could never be
        bit-identical to the recording.
        """
        if self.trace is not None:
            from repro.machines.registry import get_machine

            return get_machine(machine).name == self.trace.machine
        return not self.refused_families(machine)

    def check_machine(self, machine: str = None) -> None:
        """Raise :class:`WorkloadError` unless ``machine`` supports it."""
        if self.trace is not None:
            from repro.machines.registry import get_machine

            resolved = get_machine(machine).name
            if resolved != self.trace.machine:
                raise WorkloadError(
                    f"trace workload {self.name!r} was recorded on "
                    f"machine {self.trace.machine!r} and replays only "
                    f"there, not on {resolved!r}")
            return
        refused = self.refused_families(machine)
        if refused:
            from repro.machines.registry import get_machine

            raise WorkloadError(
                f"workload {self.name!r} needs executor families "
                f"{', '.join(refused)} that machine "
                f"{get_machine(machine).name!r} does not implement")


def _generator_tag(profile: MixProfile) -> str:
    prefix = profile.name.split("-", 1)[0]
    return {"timesharing": "timesharing", "rte": "rte"}.get(
        prefix, prefix)


#: name -> WorkloadSpec, insertion-ordered: the paper's five first (in
#: the paper's order), then the zoo, then anything registered at
#: runtime (recorded traces).
WORKLOADS = {}

#: The workload every example reaches for first.
DEFAULT_WORKLOAD = STANDARD_PROFILES[0].name

#: Executor families behind the packed-decimal emission the
#: transaction workload is *about* (subset machines refuse, not adapt).
_DECIMAL_FAMILIES = ("ADDP", "MOVP", "CMPP", "CVTLP", "CVTPL")

#: Zoo workloads whose point would be lost by silent adaptation.
_ZOO_REQUIRES = {
    "transaction-decimal": _DECIMAL_FAMILIES,
}

#: Generator-class tags for the zoo (reports and the CLI listing).
_ZOO_GENERATORS = {
    "compiler-build": "compiler",
    "transaction-decimal": "transaction",
    "interrupt-storm": "io-storm",
    "tb-thrash": "thrasher",
    "cache-thrash": "thrasher",
    "vector-scientific": "numeric",
    "editor-interactive": "interactive",
    "queue-kernel": "kernel",
}


def register(spec: WorkloadSpec, replace: bool = False) -> WorkloadSpec:
    """Add a workload to the registry (name collisions are errors)."""
    if not replace and spec.name in WORKLOADS:
        raise WorkloadError(
            f"workload {spec.name!r} is already registered")
    WORKLOADS[spec.name] = spec
    return spec


def unregister(name: str) -> None:
    """Remove a runtime-registered workload (tests and trace tooling).

    The built-in paper and zoo workloads are load-bearing — every
    layer's defaults name them — so they cannot be unregistered.
    """
    spec = WORKLOADS.get(name)
    if spec is None:
        raise WorkloadError(f"workload {name!r} is not registered")
    if spec.trace is None:
        raise WorkloadError(
            f"workload {name!r} is built in and cannot be unregistered")
    del WORKLOADS[name]


for _profile in STANDARD_PROFILES:
    register(WorkloadSpec(
        name=_profile.name, description=_profile.description,
        generator=_generator_tag(_profile), profile=_profile,
        paper=True))
for _profile in ZOO_PROFILES:
    register(WorkloadSpec(
        name=_profile.name, description=_profile.description,
        generator=_ZOO_GENERATORS.get(_profile.name, "synthetic"),
        profile=_profile,
        requires_families=_ZOO_REQUIRES.get(_profile.name, ())))
del _profile


def workload_names() -> tuple:
    """Registered workload names, in registration order."""
    return tuple(WORKLOADS)


def paper_workloads() -> tuple:
    """The paper's five specs, in the paper's order."""
    return tuple(spec for spec in WORKLOADS.values() if spec.paper)


def paper_workload_names() -> tuple:
    """The paper's five names, in the paper's order."""
    return tuple(spec.name for spec in paper_workloads())


def validate_workload(name) -> str:
    """Resolve a workload name argument; ``None`` means the default.

    Unknown names raise :class:`WorkloadError` listing the registry —
    the same pre-validation contract as machines, engines and sweep
    axes.
    """
    if name is None:
        return DEFAULT_WORKLOAD
    if name not in WORKLOADS:
        raise WorkloadError(
            f"unknown workload {name!r}; choose from "
            f"{', '.join(WORKLOADS)}")
    return name


def get_workload(name) -> WorkloadSpec:
    """The :class:`WorkloadSpec` for ``name`` (``None`` = default)."""
    return WORKLOADS[validate_workload(name)]


def find_workload(nameish) -> WorkloadSpec:
    """Resolve a loose workload spelling, or return None.

    Accepts a registered name, a unique name suffix (``"research"`` ->
    ``timesharing-research``, the facade's historical convenience), or
    a ``trace:PATH`` reference, which ingests the trace file on the
    spot (idempotently) and resolves to the registered trace workload.
    Registration order is paper-first, so every suffix that resolved
    against the original five still resolves to the same profile.
    """
    if isinstance(nameish, WorkloadSpec):
        return nameish
    if not isinstance(nameish, str):
        return None
    if nameish.startswith("trace:"):
        from repro.workloads.trace import register_trace

        return register_trace(nameish[len("trace:"):])
    for spec in WORKLOADS.values():
        if spec.name == nameish or spec.name.endswith(nameish):
            return spec
    return None
